"""Layout engine tests: anchors, propagation, conversions, costs."""

import numpy as np
import pytest

from repro.engine import KernelBuilder, LayoutEngine
from repro.engine.ir import OpKind
from repro.hardware import GH200, MI250, RTX4090
from repro.interp import execute_graph
from repro.mxfp import BF16, F16, F32, F8E5M2, I16, I8


def gemm_builder(m=64, n=64, k=64, a=F16, b=F16):
    kb = KernelBuilder("gemm")
    x = kb.load((m, k), a)
    w = kb.load((k, n), b)
    kb.store(kb.dot(x, w))
    return kb


class TestAnchors:
    def test_load_gets_blocked_layout(self):
        kb = KernelBuilder()
        x = kb.load((64, 64), F16)
        LayoutEngine(RTX4090, "linear").compile(kb.graph)
        assert x.layout is not None
        assert x.layout.total_out_size() == 64 * 64

    def test_dot_gets_platform_flavor(self):
        from repro.layouts import (
            AmdMfmaLayout, NvidiaMmaLayout, WgmmaLayout,
        )

        expectations = [
            (RTX4090, NvidiaMmaLayout),
            (GH200, WgmmaLayout),
            (MI250, AmdMfmaLayout),
        ]
        for spec, expected in expectations:
            kb = gemm_builder()
            compiled = LayoutEngine(spec, "linear").compile(kb.graph)
            dots = [
                op for op in compiled.graph.ops
                if op.kind == OpKind.DOT
            ]
            assert isinstance(dots[0].output.descriptor, expected), spec


class TestConversionInsertion:
    def test_gemm_epilogue_conversion(self):
        """dot result (mma layout) -> store anchor (blocked)."""
        kb = gemm_builder()
        compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
        assert compiled.graph.count(OpKind.CONVERT_LAYOUT) >= 1

    def test_elementwise_unifies_layouts(self):
        kb = KernelBuilder()
        a = kb.load((64, 64), F16)
        b = kb.load((64, 64), F16)
        c = kb.dot(a, b)
        d = kb.load((64, 64), F32)
        kb.store(kb.elementwise(c, d, name="add"))
        compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
        for op in compiled.graph.ops:
            if op.kind == OpKind.ELEMENTWISE:
                layouts = {id(v.layout) for v in op.inputs}
                maps = [v.layout for v in op.inputs]
                assert maps[0].equivalent(maps[1])
                del layouts

    def test_welford_noop_detection(self):
        """Linear mode removes the sliced->blocked conversion that
        legacy cannot even compare (Section 6.2)."""
        def build():
            kb = KernelBuilder()
            part = kb.load((128, 1), F32)
            combined = kb.reduce(part, axis=1, op="sum")
            kb.store(combined)
            return kb

        linear = LayoutEngine(RTX4090, "linear").compile(build().graph)
        legacy = LayoutEngine(RTX4090, "legacy").compile(build().graph)
        assert linear.graph.count(OpKind.CONVERT_LAYOUT) == 0
        assert legacy.graph.count(OpKind.CONVERT_LAYOUT) == 1

    def test_broadcast_remat_converts_small_tensor(self):
        """The conversion lands on the [rows, 1] tensor, not the
        [rows, cols] one."""
        kb = KernelBuilder()
        x = kb.load((64, 64), F32)
        mx = kb.reduce(x, axis=1, op="max")
        mx2 = kb.broadcast(kb.expand_dims(mx, 1), (64, 64))
        kb.store(kb.elementwise(x, mx2, name="sub"))
        compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
        for op in compiled.graph.ops:
            if op.kind == OpKind.CONVERT_LAYOUT:
                assert op.inputs[0].shape in ((64, 1), (64, 64))
                if op.inputs[0].shape == (64, 1):
                    break

    def test_legacy_mma_transpose_bounces_through_blocked(self):
        def build():
            kb = KernelBuilder()
            a = kb.load((64, 64), F16)
            b = kb.load((64, 64), F16)
            c = kb.dot(a, b)
            kb.store(kb.trans(c))
            return kb

        linear = LayoutEngine(RTX4090, "linear").compile(build().graph)
        legacy = LayoutEngine(RTX4090, "legacy").compile(build().graph)
        assert legacy.graph.count(OpKind.CONVERT_LAYOUT) >= (
            linear.graph.count(OpKind.CONVERT_LAYOUT)
        )


class TestFailureModes:
    def test_legacy_unsupported_conversion_fails_compile(self):
        """A value stuck in an MMA-input layout has no legacy path back
        to blocked: compilation reports the failure, as in Table 4."""
        from repro.core.errors import LegacyUnsupportedError
        from repro.layouts import MmaOperandLayout, NvidiaMmaLayout
        from repro.layouts.legacy import LegacyLayoutSystem

        from repro.engine.passes import AnchorCatalog

        legacy = LegacyLayoutSystem()
        operand = MmaOperandLayout(NvidiaMmaLayout((2, 2)), 0, 2)
        blocked_anchor = AnchorCatalog(RTX4090, 4).blocked_anchor(
            (64, 64), F16
        )[0]
        with pytest.raises(LegacyUnsupportedError):
            legacy.check_conversion(operand, blocked_anchor)

    def test_compiled_kernel_flags_errors(self):
        from repro.core.errors import LegacyUnsupportedError
        from repro.engine.engine import CompiledKernel
        from repro.gpusim import Trace

        ck = CompiledKernel(
            graph=None, trace=Trace(RTX4090), mode="legacy",
            error="nope",
        )
        assert not ck.ok


class TestCosts:
    def test_linear_never_slower_on_suite(self):
        for spec in (RTX4090, GH200, MI250):
            lin = LayoutEngine(spec, "linear").compile(
                gemm_builder().graph
            )
            leg = LayoutEngine(spec, "legacy").compile(
                gemm_builder().graph
            )
            assert lin.cycles() <= leg.cycles() * 1.1, spec.name

    def test_op_counts_structure(self):
        compiled = LayoutEngine(RTX4090, "linear").compile(
            gemm_builder().graph
        )
        counts = compiled.op_counts()
        assert set(counts) == {
            "convert_layout", "local_load", "local_store",
        }

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            LayoutEngine(RTX4090, "turbo")


class TestNumericPreservation:
    def test_gemm_numerics_survive_compilation(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        kb = gemm_builder()
        reference = execute_graph(
            gemm_builder().graph, [a, b]
        ).stores[0]
        compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
        result = execute_graph(compiled.graph, [a, b]).stores[0]
        assert np.allclose(result, reference)

    def test_attention_numerics_survive_compilation(self):
        from repro.kernels.models import build_template_attention

        rng = np.random.default_rng(11)
        inputs = [
            rng.standard_normal(s)
            for s in [(64, 64)] * 4
        ]
        kb = build_template_attention(seq=64, head=64, kv_iters=1)
        reference = execute_graph(
            build_template_attention(64, 64, 1).graph, inputs
        ).stores[0]
        compiled = LayoutEngine(GH200, "linear").compile(kb.graph)
        result = execute_graph(compiled.graph, inputs).stores[0]
        assert np.allclose(result, reference)
