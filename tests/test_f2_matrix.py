"""Unit tests for F2 matrices (repro.f2.matrix)."""

import pytest

from repro.f2 import F2Matrix
from repro.f2.bitvec import bits_of


class TestConstruction:
    def test_identity(self):
        m = F2Matrix.identity(4)
        assert m.shape == (4, 4)
        assert m.is_identity()

    def test_zeros(self):
        m = F2Matrix.zeros(3, 5)
        assert m.shape == (3, 5)
        assert m.is_zero()

    def test_from_rows_round_trip(self):
        rows = [[1, 0, 1], [0, 1, 1]]
        m = F2Matrix.from_rows(rows)
        assert m.to_rows() == rows

    def test_from_rows_rejects_non_binary(self):
        with pytest.raises(ValueError):
            F2Matrix.from_rows([[2, 0]])

    def test_from_rows_rejects_ragged(self):
        with pytest.raises(ValueError):
            F2Matrix.from_rows([[1, 0], [1]])

    def test_column_overflow_rejected(self):
        with pytest.raises(ValueError):
            F2Matrix(2, [4])

    def test_entry_access(self):
        m = F2Matrix.from_rows([[1, 0], [1, 1]])
        assert m.entry(0, 0) == 1
        assert m.entry(0, 1) == 0
        assert m.entry(1, 1) == 1

    def test_row_out_of_range(self):
        m = F2Matrix.identity(2)
        with pytest.raises(IndexError):
            m.entry(2, 0)


class TestAlgebra:
    def test_matvec_is_column_xor(self):
        m = F2Matrix(3, [0b001, 0b010, 0b100])
        assert m.matvec(0b101) == 0b101
        assert m.matvec(0b111) == 0b111
        assert m.matvec(0) == 0

    def test_matvec_range_check(self):
        m = F2Matrix.identity(2)
        with pytest.raises(ValueError):
            m.matvec(4)

    def test_matmul_identity(self):
        m = F2Matrix(3, [0b011, 0b101, 0b110])
        assert m @ F2Matrix.identity(3) == m
        assert F2Matrix.identity(3) @ m == m

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            F2Matrix.identity(2) @ F2Matrix.identity(3)

    def test_matmul_associative(self):
        a = F2Matrix(2, [0b01, 0b11])
        b = F2Matrix(2, [0b10, 0b01])
        c = F2Matrix(2, [0b11, 0b10])
        assert (a @ b) @ c == a @ (b @ c)

    def test_addition_is_xor(self):
        a = F2Matrix(2, [0b01, 0b11])
        assert (a + a).is_zero()

    def test_transpose_involution(self):
        m = F2Matrix.from_rows([[1, 0, 1], [1, 1, 0]])
        assert m.transpose().transpose() == m
        assert m.transpose().shape == (3, 2)

    def test_transpose_entries(self):
        m = F2Matrix.from_rows([[1, 0], [1, 1], [0, 1]])
        t = m.transpose()
        for i in range(3):
            for j in range(2):
                assert m.entry(i, j) == t.entry(j, i)

    def test_direct_sum_block_structure(self):
        a = F2Matrix.identity(2)
        b = F2Matrix(1, [1])
        s = a.direct_sum(b)
        assert s.shape == (3, 3)
        assert s.is_identity()

    def test_direct_sum_off_diagonal_zero(self):
        a = F2Matrix(2, [0b11, 0b01])
        b = F2Matrix(2, [0b10, 0b11])
        s = a.direct_sum(b)
        assert s.submatrix((0, 2), (0, 2)) == a
        assert s.submatrix((2, 4), (2, 4)) == b
        assert s.submatrix((0, 2), (2, 4)).is_zero()
        assert s.submatrix((2, 4), (0, 2)).is_zero()

    def test_hstack_vstack(self):
        a = F2Matrix.identity(2)
        h = a.hstack(a)
        assert h.shape == (2, 4)
        v = a.vstack(a)
        assert v.shape == (4, 2)
        assert v.column(0) == 0b0101

    def test_permutation_detection(self):
        assert F2Matrix(2, [0b10, 0b01]).is_permutation()
        assert not F2Matrix(2, [0b10, 0b10]).is_permutation()
        assert not F2Matrix(2, [0b11, 0b01]).is_permutation()
        assert not F2Matrix(2, [0b00, 0b01]).is_permutation()

    def test_select_columns(self):
        m = F2Matrix(2, [0b01, 0b10, 0b11])
        sel = m.select_columns([2, 0])
        assert sel.columns == (0b11, 0b01)

    def test_hash_eq_consistency(self):
        a = F2Matrix(2, [1, 2])
        b = F2Matrix(2, [1, 2])
        assert a == b and hash(a) == hash(b)
        assert a != F2Matrix(2, [2, 1])
