"""Tests for the register-broadcast extension of the shuffle planner.

The paper's Section 5.4 assumes no broadcasting; this reproduction
deduplicates broadcast registers, shuffles the quotient, and fans the
received values out with a final register permute — so conversions
between replicated layouts still skip shared memory.
"""

import random

import pytest

from repro.codegen import ConversionKind, classify_conversion, plan_conversion
from repro.codegen.plan import RegisterPermute, ShuffleRound
from repro.core import LANE, LinearLayout, REGISTER, WARP
from repro.gpusim import Machine, distributed_data
from repro.gpusim.registers import assert_matches_layout
from repro.hardware import RTX4090


def layout_with_free_reg(reg_images, lane_images, warp_images, size):
    return LinearLayout(
        {
            REGISTER: [(x,) for x in reg_images],
            LANE: [(x,) for x in lane_images],
            WARP: [(x,) for x in warp_images],
        },
        {"dim0": size},
    )


class TestBroadcastShuffles:
    def setup_method(self):
        self.src = layout_with_free_reg(
            [1, 0], [2, 4, 8, 16, 32], [64, 128], 256
        )
        self.dst = layout_with_free_reg(
            [0, 4], [1, 2, 8, 16, 32], [64, 128], 256
        )

    def test_classified_as_shuffle(self):
        assert classify_conversion(self.src, self.dst) == (
            ConversionKind.SHUFFLE
        )

    def test_plan_has_replication_step(self):
        plan = plan_conversion(self.src, self.dst, 16, spec=RTX4090)
        assert plan.kind == "shuffle"
        assert isinstance(plan.steps[-1], RegisterPermute)
        assert all(
            isinstance(s, ShuffleRound) for s in plan.steps[:-1]
        )

    def test_replication_table_clears_free_bits(self):
        plan = plan_conversion(self.src, self.dst, 16, spec=RTX4090)
        table = plan.steps[-1].dst_to_src
        # dst free bit is bit 0: registers 1 and 3 copy 0 and 2.
        assert table == (0, 0, 2, 2)

    def test_executed_correctly(self):
        plan = plan_conversion(self.src, self.dst, 16, spec=RTX4090)
        registers = distributed_data(self.src, 4, 32)
        converted, trace = Machine(RTX4090, 4).run_conversion(
            plan, registers
        )
        assert_matches_layout(converted, self.dst)
        assert "st.shared" not in trace.histogram()

    def test_cheaper_than_shared(self):
        from repro.gpusim.opcost import price_plan

        shuffle = plan_conversion(self.src, self.dst, 16, spec=RTX4090)
        shared = plan_conversion(
            self.src, self.dst, 16, spec=RTX4090, allow_shuffle=False
        )
        assert (
            price_plan(shuffle, RTX4090).cycles()
            < price_plan(shared, RTX4090).cycles()
        )

    def test_lane_broadcast_still_falls_back(self):
        src = layout_with_free_reg(
            [1, 2], [0, 4, 8, 16, 32], [64, 128], 256
        )
        dst = layout_with_free_reg(
            [4, 2], [0, 1, 8, 16, 32], [64, 128], 256
        )
        assert classify_conversion(src, dst) == ConversionKind.SHARED

    @pytest.mark.parametrize("seed", range(5))
    def test_random_broadcast_pairs(self, seed):
        rng = random.Random(seed)
        units = [1 << i for i in range(8)]
        rng.shuffle(units)
        warp = units[:2]

        def make():
            rest = units[2:]
            order = list(range(6))
            rng.shuffle(order)
            regs = [rest[order[0]], 0, rest[order[1]]]
            lanes = [rest[order[i]] for i in range(2, 6)]
            return LinearLayout(
                {
                    REGISTER: [(x,) for x in regs],
                    LANE: [(x,) for x in lanes],
                    WARP: [(x,) for x in warp],
                },
                {"dim0": 256},
            )

        src, dst = make(), make()
        plan = plan_conversion(src, dst, 16, spec=RTX4090)
        registers = distributed_data(src, 4, 32)
        converted, _ = Machine(RTX4090, 4).run_conversion(
            plan, registers
        )
        assert_matches_layout(converted, dst)
