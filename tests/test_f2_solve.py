"""Unit and property tests for F2 solving (repro.f2.solve)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.f2 import (
    F2Matrix,
    InconsistentSystemError,
    image_basis,
    inverse,
    is_injective,
    is_surjective,
    kernel_basis,
    min_weight_solution,
    pivot_columns,
    rank,
    right_inverse,
    row_echelon,
    solve,
    solve_matrix,
)


def random_matrix(draw, max_dim=6):
    rows = draw(st.integers(1, max_dim))
    cols = draw(st.integers(1, max_dim))
    columns = draw(
        st.lists(
            st.integers(0, (1 << rows) - 1), min_size=cols, max_size=cols
        )
    )
    return F2Matrix(rows, columns)


matrices = st.builds(
    lambda rows, cols_seed: F2Matrix(
        rows, [c % (1 << rows) for c in cols_seed]
    ),
    st.integers(1, 6),
    st.lists(st.integers(0, 255), min_size=1, max_size=6),
)


class TestRowEchelon:
    def test_identity_unchanged(self):
        m = F2Matrix.identity(4)
        reduced, pivots, transform = row_echelon(m)
        assert reduced == m
        assert pivots == [0, 1, 2, 3]
        assert transform.is_identity()

    @given(matrices)
    @settings(max_examples=150)
    def test_transform_reproduces_reduction(self, m):
        reduced, pivots, transform = row_echelon(m)
        assert transform @ m == reduced
        assert len(pivots) == rank(m)

    @given(matrices)
    @settings(max_examples=100)
    def test_pivot_columns_are_unit_in_reduced(self, m):
        reduced, pivots, _ = row_echelon(m)
        for row_idx, col in enumerate(pivots):
            assert reduced.column(col) == (1 << row_idx)


class TestRank:
    def test_zero_matrix(self):
        assert rank(F2Matrix.zeros(3, 3)) == 0

    def test_full_rank(self):
        assert rank(F2Matrix.identity(5)) == 5

    @given(matrices)
    @settings(max_examples=100)
    def test_rank_bounded(self, m):
        r = rank(m)
        assert 0 <= r <= min(m.rows, m.cols)

    @given(matrices)
    @settings(max_examples=100)
    def test_rank_transpose_invariant(self, m):
        assert rank(m) == rank(m.transpose())


class TestKernel:
    @given(matrices)
    @settings(max_examples=150)
    def test_kernel_vectors_annihilate(self, m):
        for v in kernel_basis(m):
            assert m.matvec(v) == 0
            assert v != 0

    @given(matrices)
    @settings(max_examples=100)
    def test_rank_nullity(self, m):
        assert rank(m) + len(kernel_basis(m)) == m.cols

    def test_image_basis_spans_columns(self):
        m = F2Matrix(3, [0b001, 0b001, 0b010])
        basis = image_basis(m)
        assert len(basis) == 2


class TestSolve:
    def test_simple_system(self):
        m = F2Matrix.from_rows([[1, 1], [0, 1]])
        x = solve(m, 0b11)
        assert m.matvec(x) == 0b11

    def test_inconsistent_raises(self):
        m = F2Matrix(2, [0b01])  # image is span{e0}
        with pytest.raises(InconsistentSystemError):
            solve(m, 0b10)

    @given(matrices, st.integers(0, 255))
    @settings(max_examples=150)
    def test_solution_validity(self, m, seed):
        b = m.matvec(seed % (1 << m.cols))  # guaranteed consistent
        x = solve(m, b)
        assert m.matvec(x) == b

    @given(matrices, st.integers(0, 255))
    @settings(max_examples=100)
    def test_min_weight_no_worse_than_default(self, m, seed):
        b = m.matvec(seed % (1 << m.cols))
        x0 = solve(m, b)
        xm = min_weight_solution(m, b)
        assert xm is not None
        assert m.matvec(xm) == b
        assert bin(xm).count("1") <= bin(x0).count("1")

    def test_min_weight_inconsistent_returns_none(self):
        m = F2Matrix(2, [0b01])
        assert min_weight_solution(m, 0b10) is None

    def test_solve_matrix(self):
        m = F2Matrix.from_rows([[1, 0, 1], [0, 1, 1]])
        rhs = F2Matrix.identity(2)
        x = solve_matrix(m, rhs)
        assert m @ x == rhs


class TestInverse:
    def test_identity(self):
        assert inverse(F2Matrix.identity(3)).is_identity()

    def test_swizzle_like_matrix(self):
        # Upper triangular with ones: its own inverse pattern exists.
        m = F2Matrix.from_rows([[1, 1], [0, 1]])
        inv = inverse(m)
        assert (m @ inv).is_identity()
        assert (inv @ m).is_identity()

    def test_singular_raises(self):
        with pytest.raises((InconsistentSystemError, ValueError)):
            inverse(F2Matrix(2, [0b01, 0b01]))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            inverse(F2Matrix.zeros(2, 3))

    @given(st.integers(1, 6), st.randoms())
    @settings(max_examples=50)
    def test_random_invertible(self, n, rng):
        # Build a random invertible matrix as a product of elementary
        # operations applied to the identity.
        cols = [1 << i for i in range(n)]
        for _ in range(3 * n):
            i = rng.randrange(n)
            j = rng.randrange(n)
            if i != j:
                cols[i] ^= cols[j]
        m = F2Matrix(n, cols)
        inv = inverse(m)
        assert (m @ inv).is_identity()
        assert (inv @ m).is_identity()


class TestRightInverse:
    def test_wide_surjective(self):
        m = F2Matrix.from_rows([[1, 0, 1], [0, 1, 1]])
        rinv = right_inverse(m)
        assert (m @ rinv).is_identity()

    def test_not_surjective_raises(self):
        m = F2Matrix(2, [0b01, 0b01])
        with pytest.raises(InconsistentSystemError):
            right_inverse(m)

    @given(matrices)
    @settings(max_examples=100)
    def test_right_inverse_when_surjective(self, m):
        if is_surjective(m):
            rinv = right_inverse(m)
            assert (m @ rinv).is_identity()


class TestPredicates:
    def test_surjective_injective(self):
        tall = F2Matrix.from_rows([[1, 0], [0, 1], [1, 1]])
        assert is_injective(tall)
        assert not is_surjective(tall)
        wide = tall.transpose()
        assert is_surjective(wide)
        assert not is_injective(wide)

    def test_pivot_columns_independent(self):
        m = F2Matrix(3, [0b001, 0b001, 0b011, 0b100])
        cols = pivot_columns(m)
        assert cols == [0, 2, 3]
        assert rank(m.select_columns(cols)) == len(cols)

    @given(matrices)
    @settings(max_examples=100)
    def test_pivot_columns_match_rank(self, m):
        assert len(pivot_columns(m)) == rank(m)
