"""Vectorization analysis tests (Section 5.1, Table 3 unit level)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.vectorize import (
    best_coalesced_layout,
    global_access_plan,
    legacy_default_blocked,
    legacy_vector_width_bits,
    ptx_vector_name,
    vector_width_bits,
)
from repro.core import LANE, REGISTER, WARP
from repro.core.properties import is_distributed_layout
from repro.hardware import RTX4090
from repro.hardware.instructions import InstructionKind
from repro.mxfp.types import F16, F32, F8E5M2


class TestLegacyAnalysis:
    def test_512x2_f8_is_the_bug(self):
        """The headline Table 3 failure: 16-bit accesses."""
        desc = legacy_default_blocked((512, 2), 8)
        assert legacy_vector_width_bits(desc, (512, 2), 8) == 16

    def test_512x1_f8_vectorizes_on_dim0(self):
        desc = legacy_default_blocked((512, 1), 8)
        assert legacy_vector_width_bits(desc, (512, 1), 8) == 32

    def test_wide_last_dim_is_fine(self):
        desc = legacy_default_blocked((512, 16), 8)
        assert legacy_vector_width_bits(desc, (512, 16), 8) == 128

    def test_cap(self):
        desc = legacy_default_blocked((512, 16), 16)
        assert legacy_vector_width_bits(desc, (512, 16), 16) == 128


class TestLinearAnalysis:
    def test_cross_dim_contiguity(self):
        layout = best_coalesced_layout((512, 2), 8)
        assert vector_width_bits(layout, 8) == 128

    def test_all_table3_rows_dominate(self):
        for bits in (8, 16):
            for k in (1, 2, 4, 8, 16):
                legacy_desc = legacy_default_blocked((512, k), bits)
                legacy = legacy_vector_width_bits(
                    legacy_desc, (512, k), bits
                )
                linear = vector_width_bits(
                    best_coalesced_layout((512, k), bits), bits
                )
                assert linear >= legacy, (bits, k)

    def test_coalesced_layout_is_valid(self):
        layout = best_coalesced_layout((512, 2), 8)
        assert is_distributed_layout(layout)
        assert layout.total_out_size() == 1024

    @given(
        st.sampled_from([(512, 1), (512, 2), (256, 4), (64, 64),
                         (4096,), (128, 2, 2)]),
        st.sampled_from([8, 16, 32]),
    )
    @settings(max_examples=30, deadline=None)
    def test_coalesced_layout_always_valid(self, shape, bits):
        layout = best_coalesced_layout(shape, bits)
        assert is_distributed_layout(layout)
        total = 1
        for s in shape:
            total *= s
        assert layout.total_out_size() == total

    def test_small_tensor_broadcasts(self):
        layout = best_coalesced_layout((16,), 32, num_warps=4)
        assert is_distributed_layout(layout)
        # 16 elements over 128 threads: lanes and warps broadcast.
        free = layout.free_variable_masks()
        assert free[LANE] or free[WARP]


class TestAccessPlans:
    def test_instruction_count(self):
        layout = best_coalesced_layout((512, 2), 8)
        inst, count = global_access_plan(layout, 8, RTX4090)
        assert inst.kind == InstructionKind.GLOBAL_LOAD
        assert inst.vector_bits == 128
        # 8 elements per thread at 8 bits = 64 bits... registers hold
        # 1024/128 = 8 elements: 64 bits => 1 access of 128? No:
        # count = regs * bits / vec = 8 * 8 / 128 -> floors to 1.
        assert count >= 1

    def test_ptx_names(self):
        assert ptx_vector_name(128) == "v4.b32"
        assert ptx_vector_name(64) == "v2.b32"
        assert ptx_vector_name(32) == "v1.b32"
        assert ptx_vector_name(16) == "v1.b16"
