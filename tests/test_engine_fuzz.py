"""Engine fuzzing: random kernel graphs compile and preserve numerics.

Generates random straight-line programs over the builder API —
loads, elementwise ops, shape operations, reductions, broadcasts,
dots — compiles them in linear mode, and checks the compiled graph
computes exactly what the source graph computes under the NumPy
interpreter.  Legacy mode must either compile to the same numerics or
fail with a LegacyUnsupportedError (never crash).
"""

import random

import numpy as np
import pytest

from repro.core.errors import LegacyUnsupportedError
from repro.engine import KernelBuilder, LayoutEngine
from repro.engine.ir import OpKind
from repro.hardware import GH200, RTX4090
from repro.interp import execute_graph
from repro.mxfp import F16, F32


def random_program(rng: random.Random, kb: KernelBuilder):
    """Grow a random program; returns the number of LOAD ops."""
    shapes = [(32, 32), (32, 64), (64, 32)]
    values = []
    loads = 0

    def fresh(shape):
        nonlocal loads
        loads += 1
        return kb.load(shape, F32)

    values.append(fresh(rng.choice(shapes)))
    for _ in range(rng.randrange(3, 9)):
        choice = rng.random()
        v = rng.choice(values)
        if choice < 0.25:
            values.append(fresh(rng.choice(shapes)))
        elif choice < 0.45:
            peer = next(
                (u for u in values if u.shape == v.shape and u is not v),
                None,
            )
            if peer is None:
                values.append(kb.elementwise(v, name="exp"))
            else:
                values.append(
                    kb.elementwise(v, peer, name=rng.choice(
                        ["add", "sub", "mul"]
                    ))
                )
        elif choice < 0.60:
            values.append(kb.trans(v))
        elif choice < 0.72:
            total = v.shape[0] * v.shape[1]
            values.append(kb.reshape(v, (total // 32, 32)))
        elif choice < 0.84:
            reduced = kb.reduce(v, axis=1, op="sum")
            grown = kb.broadcast(
                kb.expand_dims(reduced, 1), v.shape
            )
            values.append(kb.elementwise(v, grown, name="sub"))
        else:
            m, k = v.shape
            other = fresh((k, 32))
            values.append(kb.dot(v, other))
    for v in values[-2:]:
        kb.store(v)
    return loads


def inputs_for(graph, rng):
    out = []
    for op in graph.ops:
        if op.kind == OpKind.LOAD:
            out.append(
                rng.standard_normal(op.output.shape) * 0.25
            )
    return out


@pytest.mark.parametrize("seed", range(15))
def test_fuzzed_program_numerics(seed):
    rng = random.Random(seed)
    kb_ref = KernelBuilder()
    random_program(random.Random(seed), kb_ref)
    kb = KernelBuilder()
    random_program(random.Random(seed), kb)

    np_rng = np.random.default_rng(seed)
    inputs = inputs_for(kb_ref.graph, np_rng)
    reference = execute_graph(kb_ref.graph, inputs).stores

    compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
    assert compiled.ok, compiled.error
    result = execute_graph(compiled.graph, inputs).stores
    assert len(result) == len(reference)
    for want, got in zip(reference, result):
        assert np.allclose(want, got), seed


@pytest.mark.parametrize("seed", range(15))
def test_fuzzed_program_legacy_never_crashes(seed):
    kb = KernelBuilder()
    random_program(random.Random(seed), kb)
    compiled = LayoutEngine(GH200, "legacy").compile(kb.graph)
    # ok or a clean behavioural failure — never an exception.
    assert compiled.ok or "legacy" in compiled.error


@pytest.mark.parametrize("seed", range(10))
def test_fuzzed_program_linear_cost_sane(seed):
    kb = KernelBuilder()
    random_program(random.Random(seed), kb)
    compiled = LayoutEngine(GH200, "linear").compile(kb.graph)
    assert compiled.ok
    assert 0 < compiled.cycles() < 10_000_000
