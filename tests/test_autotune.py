"""Tests for the layout autotuner (the Section 8 future-work loop)."""

import pytest

from repro.engine.autotune import TuningConfig, autotune
from repro.hardware import GH200, RTX4090
from repro.kernels.models import build_gemm, build_softmax


class TestAutotune:
    def test_finds_a_configuration(self):
        result = autotune(build_gemm, {"m": 64, "n": 64, "k": 64},
                          spec=RTX4090)
        assert result.best.num_warps in (1, 2, 4, 8)
        assert result.best_cycles > 0
        assert len(result.trials) == 4

    def test_best_is_minimum(self):
        result = autotune(build_softmax, {"rows": 128, "cols": 128})
        valid = [c for _, c in result.trials if c is not None]
        assert result.best_cycles == min(valid)

    def test_speedup_over_worst(self):
        result = autotune(build_gemm, {"m": 64, "n": 64, "k": 64},
                          spec=GH200)
        assert result.speedup_over_worst() >= 1.0

    def test_failures_are_recorded(self):
        def broken(**kwargs):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            autotune(broken)

    def test_config_repr(self):
        assert "num_warps=4" in str(TuningConfig(4))
