"""Warp-shuffle planner tests (Section 5.4, Figure 4)."""

import pytest

from repro.codegen.plan import ShuffleRound
from repro.codegen.shuffles import (
    ShufflePlanError,
    plan_warp_shuffle,
    shuffle_preconditions,
)
from repro.codegen.views import DistributedView
from repro.core import LANE, LinearLayout, REGISTER, WARP
from repro.layouts import BlockedLayout


def figure4_layouts():
    """The Figure 4 setting: four threads, two registers each, on an
    8-element tensor; source and destination disagree on every thread
    bit (V and I empty)."""
    src = LinearLayout(
        {REGISTER: [(1,)], LANE: [(2,), (4,)]}, {"dim0": 8}
    )
    dst = LinearLayout(
        {REGISTER: [(4,)], LANE: [(1,), (2,)]}, {"dim0": 8}
    )
    return src, dst


class TestFigure4:
    def test_round_structure(self):
        src, dst = figure4_layouts()
        rounds = plan_warp_shuffle(src, dst, elem_bits=32)
        # |V| = 0, |I| = 0, |G| = 2, so R has 1 vector: 2 rounds,
        # each moving one element per thread — as in the figure.
        assert len(rounds) == 2
        for rnd in rounds:
            assert len(set(rnd.src_lane)) == 4  # a permutation of lanes
            assert all(len(regs) == 1 for regs in rnd.send_regs)

    def test_data_movement(self):
        src, dst = figure4_layouts()
        rounds = plan_warp_shuffle(src, dst, elem_bits=32)
        values = {}  # (lane, reg) -> element, per src
        sview = DistributedView(src)
        for lane in range(4):
            for reg in range(2):
                values[(lane, reg)] = sview.flat_of(
                    {REGISTER: reg, LANE: lane}
                )
        received = {}
        for rnd in rounds:
            for lane, src_lane in enumerate(rnd.src_lane):
                for s_reg, d_reg in zip(
                    rnd.send_regs[src_lane], rnd.recv_regs[lane]
                ):
                    received[(lane, d_reg)] = values[(src_lane, s_reg)]
        dview = DistributedView(dst)
        for lane in range(4):
            for reg in range(2):
                expected = dview.flat_of({REGISTER: reg, LANE: lane})
                assert received[(lane, reg)] == expected


class TestVectorization:
    def test_shared_registers_vectorize(self):
        """Shared register bases raise the per-shuffle payload."""
        src = BlockedLayout((1, 2), (8, 4), (1, 1), (1, 0)).to_linear(
            (16, 16)
        )
        dst = BlockedLayout((2, 2), (4, 8), (1, 1), (0, 1)).to_linear(
            (16, 16)
        )
        # Both registers hold the dim1-low element: V is non-trivial,
        # so each shuffle moves a vectorized pair of f8 elements.
        rounds = plan_warp_shuffle(src, dst, elem_bits=8)
        assert all(len(r.send_regs[0]) >= 2 for r in rounds)

    def test_wide_elements_span_instructions(self):
        src, dst = figure4_layouts()
        rounds_32 = plan_warp_shuffle(src, dst, elem_bits=32)
        rounds_64 = plan_warp_shuffle(src, dst, elem_bits=64)
        assert rounds_32[0].insts_per_round == 1
        assert rounds_64[0].insts_per_round == 2


class TestPreconditions:
    def test_warp_mismatch(self):
        a = BlockedLayout((1, 1), (4, 8), (4, 1), (1, 0)).to_linear(
            (16, 32)
        )
        b = BlockedLayout((1, 1), (4, 8), (1, 4), (1, 0)).to_linear(
            (16, 32)
        )
        ok, why = shuffle_preconditions(
            DistributedView(a), DistributedView(b)
        )
        assert not ok and "warp" in why
        with pytest.raises(ShufflePlanError):
            plan_warp_shuffle(a, b, 16)

    def test_broadcast_rejected(self):
        a = LinearLayout(
            {REGISTER: [(1,), (0,)], LANE: [(2,), (4,)]}, {"dim0": 8}
        )
        b = LinearLayout(
            {REGISTER: [(4,), (2,)], LANE: [(1,), (0,)]},
            {"dim0": 8},
        )
        with pytest.raises(ShufflePlanError):
            plan_warp_shuffle(a, b, 16)

    def test_full_warp_case(self):
        """A realistic full-warp conversion: every round covers all 32
        lanes exactly once each way."""
        a = BlockedLayout((1, 2), (8, 4), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        b = BlockedLayout((2, 1), (4, 8), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        rounds = plan_warp_shuffle(a, b, elem_bits=16)
        for rnd in rounds:
            assert sorted(set(rnd.src_lane)) == list(range(32))
