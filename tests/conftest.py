"""Shared test configuration.

Registers a hypothesis profile with ``deadline=None``: per-example
deadlines measure wall time, so a cold cache, a busy CI host, or a
parallel ``pytest-xdist``/stress run can push an otherwise-fine
example over the default 200ms and flake the suite.  Determinism is
covered by the assertions themselves, not by timing.
"""

from hypothesis import settings

settings.register_profile("repro", deadline=None)
settings.load_profile("repro")
