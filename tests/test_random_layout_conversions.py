"""The heavyweight correctness property: *arbitrary* distributed
layouts (random permutation matrices with random zero columns, per
Definition 4.10) convert correctly through whatever path the planner
picks, on every platform.

This is the claim that legacy Triton could not make — conversions were
implemented per pair — and the one the paper's formalism buys.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import plan_conversion
from repro.core import LANE, LinearLayout, REGISTER, WARP
from repro.gpusim import Machine, distributed_data
from repro.gpusim.registers import assert_matches_layout
from repro.hardware import GH200, RTX4090


def random_distributed_layout(
    rng: random.Random,
    total_bits: int,
    lane_bits: int = 5,
    warp_bits: int = 2,
    extra_reg_bits: int = 0,
    shape=None,
) -> LinearLayout:
    """A uniformly random Definition 4.10 layout.

    The nonzero columns are a random permutation of the unit vectors;
    ``extra_reg_bits`` adds zero (broadcast) register columns at
    random positions.
    """
    reg_bits = total_bits - lane_bits - warp_bits
    assert reg_bits >= 0
    units = [1 << i for i in range(total_bits)]
    rng.shuffle(units)
    reg_images = units[:reg_bits]
    lane_images = units[reg_bits: reg_bits + lane_bits]
    warp_images = units[reg_bits + lane_bits:]
    for _ in range(extra_reg_bits):
        reg_images.insert(rng.randrange(len(reg_images) + 1), 0)
    if shape is None:
        shape = {"dim0": 1 << total_bits}

    def images_for(flats):
        out = []
        for flat in flats:
            coords = []
            rem = flat
            for size in reversed(list(shape.values())):
                coords.append(rem % size)
                rem //= size
            coords.reverse()
            out.append(tuple(coords))
        return out

    return LinearLayout(
        {
            REGISTER: images_for(reg_images),
            LANE: images_for(lane_images),
            WARP: images_for(warp_images),
        },
        dict(shape),
    )


@pytest.mark.parametrize("seed", range(12))
def test_random_pairs_convert_correctly(seed):
    rng = random.Random(seed)
    total_bits = 9  # 512-element tensors keep the run quick
    shape = {"dim0": 16, "dim1": 32}
    src = random_distributed_layout(rng, total_bits, shape=shape)
    dst = random_distributed_layout(rng, total_bits, shape=shape)
    plan = plan_conversion(src, dst, elem_bits=16, spec=RTX4090)
    machine = Machine(RTX4090, num_warps=4)
    registers = distributed_data(src, 4, 32)
    converted, _ = machine.run_conversion(plan, registers)
    assert_matches_layout(converted, dst)


@pytest.mark.parametrize("seed", range(6))
def test_random_pairs_with_broadcast_registers(seed):
    rng = random.Random(100 + seed)
    shape = {"dim0": 16, "dim1": 32}
    src = random_distributed_layout(
        rng, 9, extra_reg_bits=1, shape=shape
    )
    dst = random_distributed_layout(
        rng, 9, extra_reg_bits=1, shape=shape
    )
    plan = plan_conversion(src, dst, elem_bits=32, spec=GH200)
    machine = Machine(GH200, num_warps=4)
    registers = distributed_data(src, 4, 32)
    converted, _ = machine.run_conversion(plan, registers)
    assert_matches_layout(converted, dst)


@pytest.mark.parametrize("seed", range(6))
def test_random_same_warp_pairs_use_fast_paths(seed):
    """Pairs sharing the warp component never touch shared memory."""
    rng = random.Random(200 + seed)
    total_bits = 9
    units = [1 << i for i in range(total_bits)]
    rng.shuffle(units)
    warp_images = units[:2]
    rest = units[2:]

    def make(order):
        reg = [rest[i] for i in order[:2]]
        lane = [rest[i] for i in order[2:]]
        return LinearLayout(
            {
                REGISTER: [(x,) for x in reg],
                LANE: [(x,) for x in lane],
                WARP: [(x,) for x in warp_images],
            },
            {"dim0": 512},
        )

    order_a = list(range(7))
    order_b = list(range(7))
    rng.shuffle(order_a)
    rng.shuffle(order_b)
    src, dst = make(order_a), make(order_b)
    plan = plan_conversion(src, dst, elem_bits=16)
    assert plan.kind in ("noop", "register", "shuffle")
    machine = Machine(RTX4090, num_warps=4)
    converted, _ = machine.run_conversion(
        plan, distributed_data(src, 4, 32)
    )
    assert_matches_layout(converted, dst)
