"""Tests for the backward rematerialization pass (Section 4.4)."""

import numpy as np
import pytest

from repro.engine import KernelBuilder, LayoutEngine
from repro.engine.ir import OpKind
from repro.hardware import RTX4090
from repro.interp import execute_graph
from repro.mxfp import F16, F32


def count_converts(compiled):
    return compiled.graph.count(OpKind.CONVERT_LAYOUT)


class TestRematerialization:
    def test_single_use_load_reanchored(self):
        """A load feeding only a dot operand re-anchors in the operand
        layout; its conversion disappears."""
        kb = KernelBuilder()
        a = kb.load((64, 64), F16)
        b = kb.load((64, 64), F16)
        kb.store(kb.dot(a, b))
        compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
        # Without remat: 2 operand conversions + 1 epilogue = 3.
        assert count_converts(compiled) < 3
        loads = [
            op for op in compiled.graph.ops if op.kind == OpKind.LOAD
        ]
        # At least one load now carries a non-blocked (operand) layout.
        from repro.layouts.mma import MmaOperandLayout

        assert any(
            isinstance(ld.output.descriptor, MmaOperandLayout)
            for ld in loads
        )

    def test_elementwise_chain_rematerialized(self):
        """load -> exp -> dot: the unary chain re-anchors too."""
        kb = KernelBuilder()
        a = kb.load((64, 64), F16)
        a = kb.elementwise(a, name="exp")
        b = kb.load((64, 64), F16)
        kb.store(kb.dot(a, b))
        compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
        assert count_converts(compiled) < 3

    def test_multi_use_load_not_rematerialized(self):
        """A load with two consumers keeps its coalesced layout (one
        consumer would pay uncoalesced access otherwise)."""
        kb = KernelBuilder()
        a = kb.load((64, 64), F16)
        b = kb.load((64, 64), F16)
        c = kb.dot(a, b)
        d = kb.elementwise(a, name="exp")  # second use of a
        kb.store(c)
        kb.store(d)
        compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
        loads = [
            op for op in compiled.graph.ops if op.kind == OpKind.LOAD
        ]
        from repro.layouts.blocked import BlockedLayout

        a_load = loads[0]
        assert isinstance(a_load.output.descriptor, BlockedLayout)

    def test_remat_never_increases_cost(self):
        """Compare against a pipeline without the remat pass."""
        from repro.engine import PassManager, standard_passes

        def build():
            kb = KernelBuilder()
            a = kb.load((64, 64), F16)
            b = kb.load((64, 64), F16)
            kb.store(kb.dot(a, b))
            return kb

        engine = LayoutEngine(RTX4090, "linear")
        with_remat = engine.compile(build().graph)

        no_remat = PassManager(
            [p for p in standard_passes("linear")
             if p.name != "backward-remat"]
        )
        without = engine.compile(build().graph, passes=no_remat)
        assert with_remat.cycles() <= without.cycles()

    def test_numerics_preserved_through_remat(self):
        kb = KernelBuilder()
        a = kb.load((32, 32), F16)
        a2 = kb.elementwise(a, name="exp")
        b = kb.load((32, 32), F16)
        kb.store(kb.dot(a2, b))
        rng = np.random.default_rng(21)
        inputs = [rng.standard_normal((32, 32)) * 0.1 for _ in range(2)]
        reference_kb = KernelBuilder()
        ra = reference_kb.load((32, 32), F16)
        ra2 = reference_kb.elementwise(ra, name="exp")
        rb = reference_kb.load((32, 32), F16)
        reference_kb.store(reference_kb.dot(ra2, rb))
        reference = execute_graph(reference_kb.graph, inputs).stores[0]
        compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
        result = execute_graph(compiled.graph, inputs).stores[0]
        assert np.allclose(result, reference)

    def test_legacy_remat_requires_known_descriptor(self):
        """Legacy mode only re-anchors layouts it can name; the
        compilation still succeeds either way."""
        kb = KernelBuilder()
        a = kb.load((64, 64), F16)
        b = kb.load((64, 64), F16)
        kb.store(kb.dot(a, b))
        compiled = LayoutEngine(RTX4090, "legacy").compile(kb.graph)
        assert compiled.ok
