"""Unit and property tests for subspace algebra (repro.f2.subspace)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.f2 import (
    Subspace,
    complement_basis,
    extend_to_basis,
    intersect,
    is_independent,
    reduce_to_basis,
)

vectors = st.lists(st.integers(0, 255), min_size=0, max_size=6)


class TestReduceToBasis:
    def test_removes_dependent(self):
        assert reduce_to_basis([1, 2, 3]) == [1, 2]

    def test_keeps_original_vectors(self):
        basis = reduce_to_basis([6, 5, 3])
        assert basis[0] == 6 and basis[1] == 5

    def test_drops_zero(self):
        assert reduce_to_basis([0, 1]) == [1]

    @given(vectors)
    @settings(max_examples=100)
    def test_result_independent(self, vs):
        assert is_independent(reduce_to_basis(vs))

    @given(vectors)
    @settings(max_examples=100)
    def test_same_span(self, vs):
        basis = reduce_to_basis(vs)
        s1 = Subspace(8, vs)
        s2 = Subspace(8, basis)
        assert s1 == s2


class TestSubspace:
    def test_contains(self):
        s = Subspace(4, [0b0011, 0b0101])
        assert s.contains(0b0110)
        assert s.contains(0)
        assert not s.contains(0b1000)

    def test_enumerate(self):
        s = Subspace(3, [0b011, 0b101])
        elems = sorted(s.enumerate())
        assert elems == [0b000, 0b011, 0b101, 0b110]

    def test_enumerate_too_large(self):
        s = Subspace.full(24)
        with pytest.raises(ValueError):
            s.enumerate()

    def test_full_and_trivial(self):
        assert Subspace.full(5).rank == 5
        assert Subspace.trivial(5).rank == 0
        assert len(Subspace.full(3)) == 8

    def test_vector_out_of_ambient(self):
        with pytest.raises(ValueError):
            Subspace(2, [4])

    def test_ambient_mismatch(self):
        with pytest.raises(ValueError):
            Subspace(2, [1]).sum(Subspace(3, [1]))

    def test_sum(self):
        a = Subspace(4, [0b0001])
        b = Subspace(4, [0b0010])
        assert a.sum(b).rank == 2

    def test_paper_figure4_span(self):
        """The span(G) computation from Figure 4's worked example."""
        g = Subspace(3, [0b110, 0b011])
        elems = sorted(g.enumerate())
        assert elems == [0b000, 0b011, 0b101, 0b110]


class TestIntersection:
    def test_disjoint(self):
        a = Subspace(4, [0b0001, 0b0010])
        b = Subspace(4, [0b0100, 0b1000])
        assert a.intersect(b).rank == 0
        assert a.trivial_intersection(b)

    def test_overlap(self):
        a = Subspace(4, [0b0001, 0b0010])
        b = Subspace(4, [0b0010, 0b0100])
        inter = a.intersect(b)
        assert inter.rank == 1
        assert inter.contains(0b0010)

    def test_nontrivial_combination(self):
        # span{0011, 0100} and span{0111, 1000} share 0111 = 0011^0100.
        a = Subspace(4, [0b0011, 0b0100])
        b = Subspace(4, [0b0111, 0b1000])
        inter = a.intersect(b)
        assert inter.rank == 1
        assert inter.contains(0b0111)

    @given(vectors, vectors)
    @settings(max_examples=100)
    def test_intersection_contained_in_both(self, va, vb):
        a = Subspace(8, va)
        b = Subspace(8, vb)
        inter = a.intersect(b)
        for v in inter.basis:
            assert a.contains(v)
            assert b.contains(v)

    @given(vectors, vectors)
    @settings(max_examples=100)
    def test_dimension_formula(self, va, vb):
        a = Subspace(8, va)
        b = Subspace(8, vb)
        assert (
            a.sum(b).rank + a.intersect(b).rank == a.rank + b.rank
        )

    def test_intersect_helper(self):
        basis = intersect(4, [0b0001, 0b0010], [0b0010, 0b1000])
        assert basis == [0b0010]


class TestComplementExtend:
    @given(vectors)
    @settings(max_examples=100)
    def test_complement_properties(self, vs):
        s = Subspace(8, vs)
        c = s.complement()
        assert s.sum(c).rank == 8
        assert s.intersect(c).rank == 0

    def test_extend_to_basis(self):
        added = extend_to_basis(3, [0b011])
        assert is_independent([0b011] + added)
        assert len(added) == 2

    def test_extend_rejects_dependent_partial(self):
        with pytest.raises(ValueError):
            extend_to_basis(3, [0b011, 0b011])

    def test_extend_with_candidates(self):
        added = extend_to_basis(2, [0b01], candidates=[0b01, 0b11])
        assert added == [0b11]

    def test_extend_candidates_insufficient(self):
        with pytest.raises(ValueError):
            extend_to_basis(3, [0b001], candidates=[0b001])

    def test_complement_basis_helper(self):
        comp = complement_basis(4, [0b0011, 0b0101])
        assert len(comp) == 2
        assert is_independent([0b0011, 0b0101] + comp)
