"""AMD-specific paths: 64-lane wavefronts through every codegen stage."""

import pytest

from repro.codegen import classify_conversion, plan_conversion
from repro.codegen.shuffles import plan_warp_shuffle
from repro.core import LANE, REGISTER, WARP
from repro.gpusim import Machine, distributed_data
from repro.gpusim.registers import assert_matches_layout
from repro.hardware import MI250
from repro.layouts import AmdMfmaLayout, BlockedLayout


def blocked64(size_per_thread, threads, warps, order=(1, 0)):
    return BlockedLayout(size_per_thread, threads, warps, order)


class TestWarp64Shuffles:
    def test_shuffle_covers_64_lanes(self):
        a = blocked64((1, 2), (16, 4), (2, 2)).to_linear((64, 64))
        b = blocked64((2, 1), (8, 8), (2, 2)).to_linear((64, 64))
        rounds = plan_warp_shuffle(a, b, elem_bits=16)
        for rnd in rounds:
            assert sorted(set(rnd.src_lane)) == list(range(64))

    def test_shuffle_conversion_verified(self):
        a = blocked64((1, 2), (16, 4), (2, 2)).to_linear((64, 64))
        b = blocked64((2, 1), (8, 8), (2, 2)).to_linear((64, 64))
        plan = plan_conversion(a, b, 16, spec=MI250)
        assert plan.kind == "shuffle"
        registers = distributed_data(a, 4, 64)
        converted, _ = Machine(MI250, 4).run_conversion(plan, registers)
        assert_matches_layout(converted, b)


class TestMfmaConversions:
    def test_blocked_to_mfma_shared(self):
        a = blocked64((1, 4), (16, 4), (2, 2)).to_linear((64, 64))
        b = AmdMfmaLayout((2, 2)).to_linear((64, 64))
        plan = plan_conversion(a, b, 16, spec=MI250)
        registers = distributed_data(a, 4, 64)
        converted, trace = Machine(MI250, 4).run_conversion(
            plan, registers
        )
        assert_matches_layout(converted, b)
        # No ldmatrix on MI250 (Table 2 / Section 6.2).
        assert "ldmatrix" not in trace.histogram()

    def test_mfma_epilogue(self):
        a = AmdMfmaLayout((2, 2)).to_linear((64, 64))
        b = blocked64((1, 4), (16, 4), (2, 2)).to_linear((64, 64))
        plan = plan_conversion(a, b, 32, spec=MI250)
        registers = distributed_data(a, 4, 64)
        converted, _ = Machine(MI250, 4).run_conversion(plan, registers)
        assert_matches_layout(converted, b)


class TestBankModelOn64Lanes:
    def test_full_wavefront_sweep(self):
        from repro.gpusim.memory import SharedMemory

        mem = SharedMemory(MI250, elem_bytes=4)
        # 64 lanes over 64 consecutive words = two 128B rows: the
        # 32-bank model serves two words per bank.
        requests = [(lane, 1) for lane in range(64)]
        assert mem.wavefronts(requests, False) == 2
