"""Concurrency properties of :mod:`repro.cache`.

Hypothesis-driven and hand-built thread stress of
:class:`~repro.cache.BoundedCache` plus the thread-locality contract
of the cache off-switch.  The invariants (``docs/SERVING.md``):

* ``hits + misses == lookups`` — no lost statistics updates.
* ``len(cache) <= maxsize`` at every observable moment.
* First insertion wins: every thread racing ``get_or_create`` on a
  key receives the *same object*.
* ``clear()`` cannot be undone by an in-flight factory (generation
  guard).
* ``set_enabled`` / ``disabled()`` toggle the calling thread only.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cache


def run_threads(n, target):
    """Run ``target(i)`` on n threads through a start barrier."""
    barrier = threading.Barrier(n)
    errors = []

    def wrapped(i):
        barrier.wait()
        try:
            target(i)
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestStatsInvariants:
    def test_no_lost_stat_updates_under_contention(self):
        c = cache.BoundedCache("t_conc_stats", maxsize=64, register=False)
        gets_per_thread = 500
        n_threads = 8

        def work(i):
            for j in range(gets_per_thread):
                key = (i * 7 + j) % 40
                if c.get(key) is None:
                    c.put(key, key)

        run_threads(n_threads, work)
        snap = c.stats()
        # Every lookup was counted exactly once despite 8 threads
        # hammering the same lock-guarded counters.
        assert snap.hits + snap.misses == snap.lookups
        assert snap.lookups == n_threads * gets_per_thread
        assert snap.size <= 64
        assert snap.size == len(c)

    def test_eviction_accounting_balances(self):
        c = cache.BoundedCache("t_conc_evict", maxsize=8, register=False)
        keys_per_thread = 200
        n_threads = 4

        def work(i):
            for j in range(keys_per_thread):
                c.put((i, j), j)

        run_threads(n_threads, work)
        snap = c.stats()
        inserted = n_threads * keys_per_thread  # all keys distinct
        assert snap.size <= 8
        assert snap.evictions == inserted - snap.size

    def test_maxsize_never_observed_exceeded(self):
        c = cache.BoundedCache("t_conc_max", maxsize=16, register=False)
        stop = threading.Event()
        violations = []

        def sampler():
            while not stop.is_set():
                if len(c) > 16:  # pragma: no cover
                    violations.append(len(c))

        watcher = threading.Thread(target=sampler)
        watcher.start()
        try:
            run_threads(
                4,
                lambda i: [c.put((i, j), j) for j in range(500)],
            )
        finally:
            stop.set()
            watcher.join()
        assert not violations


class TestFirstInsertionWins:
    def test_racing_get_or_create_agree_on_one_object(self):
        c = cache.BoundedCache("t_conc_win", maxsize=64, register=False)
        per_key_results: dict = {k: [] for k in range(8)}
        lock = threading.Lock()

        def work(i):
            for key in range(8):
                value = c.get_or_create(key, lambda: object())
                with lock:
                    per_key_results[key].append(value)

        run_threads(8, work)
        for key, values in per_key_results.items():
            assert len(values) == 8
            first = values[0]
            assert all(v is first for v in values), (
                f"key {key}: racing threads saw different objects"
            )

    def test_clear_is_not_resurrected_by_inflight_factory(self):
        c = cache.BoundedCache("t_conc_gen", maxsize=16, register=False)
        in_factory = threading.Event()
        release = threading.Event()
        out: list = []

        def compute():
            in_factory.set()
            release.wait()
            return "stale"

        worker = threading.Thread(
            target=lambda: out.append(c.get_or_create("k", compute))
        )
        worker.start()
        in_factory.wait()
        c.clear()  # invalidate while the factory is still running
        release.set()
        worker.join()
        # The caller still gets its value, but the cleared cache must
        # not have been repopulated with pre-clear state.
        assert out == ["stale"]
        missing = object()
        assert c.get("k", missing) is missing
        assert len(c) == 0


@st.composite
def op_schedules(draw):
    """A per-thread schedule of (op, key) cache operations."""
    ops = st.sampled_from(["get", "put", "get_or_create", "clear"])
    keys = st.integers(min_value=0, max_value=12)
    return draw(
        st.lists(
            st.tuples(ops, keys), min_size=1, max_size=40
        )
    )


class TestPropertyStress:
    @settings(max_examples=15, deadline=None)
    @given(
        schedules=st.lists(op_schedules(), min_size=2, max_size=4),
        maxsize=st.integers(min_value=1, max_value=8),
    )
    def test_random_concurrent_schedules_preserve_invariants(
        self, schedules, maxsize
    ):
        """Concurrent get/put/get_or_create/clear: no corruption."""
        c = cache.BoundedCache(
            "t_conc_prop", maxsize=maxsize, register=False
        )
        legal = {key: set() for key in range(13)}
        legal_lock = threading.Lock()

        def run_schedule(i):
            schedule = schedules[i]
            for op, key in schedule:
                if op == "get":
                    c.get(key)
                elif op == "put":
                    value = (i, key, "put")
                    with legal_lock:
                        legal[key].add(value)
                    c.put(key, value)
                elif op == "get_or_create":
                    value = (i, key, "created")
                    with legal_lock:
                        legal[key].add(value)
                    got = c.get_or_create(key, lambda v=value: v)
                    assert got[1] == key
                elif op == "clear":
                    c.clear()

        run_threads(len(schedules), run_schedule)
        # Size bound held and whatever survived is a value some
        # thread legitimately inserted under that key — no torn or
        # cross-key state.
        assert len(c) <= maxsize
        snap = c.stats()
        assert snap.hits + snap.misses == snap.lookups
        for key in range(13):
            sentinel = object()
            value = c.get(key, sentinel)
            if value is not sentinel:
                assert value in legal[key]


class TestThreadLocalToggle:
    """Regression: a worker toggling the cache must not affect other
    threads (the satellite fix for ``set_enabled``/``disabled``)."""

    def setup_method(self):
        cache.set_enabled(True)

    def teardown_method(self):
        cache.set_enabled(True)

    def test_disabled_context_is_thread_local(self):
        seen = {}

        def other_thread():
            seen["enabled"] = cache.enabled()
            c = cache.BoundedCache(
                "t_tls_other", maxsize=4, register=False
            )
            seen["value"] = cache.cached(c, "k", lambda: "cached")
            seen["size"] = len(c)

        with cache.disabled():
            assert cache.enabled() is False
            t = threading.Thread(target=other_thread)
            t.start()
            t.join()
        # The other thread kept caching while this one had it off.
        assert seen == {"enabled": True, "value": "cached", "size": 1}

    def test_worker_disable_does_not_leak_to_main(self):
        done = threading.Event()

        def worker():
            cache.set_enabled(False)
            assert cache.enabled() is False
            done.set()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert done.is_set()
        assert cache.enabled() is True

    def test_set_enabled_returns_previous_effective_value(self):
        assert cache.set_enabled(False) is True
        assert cache.set_enabled(True) is False
        assert cache.enabled() is True

    def test_default_governs_threads_without_override(self):
        seen = {}
        previous = cache.set_enabled_default(False)
        try:

            def fresh_thread():
                seen["enabled"] = cache.enabled()

            t = threading.Thread(target=fresh_thread)
            t.start()
            t.join()
            # A fresh thread inherits the process default...
            assert seen["enabled"] is False
            # ...but this thread's explicit override still wins.
            assert cache.enabled() is True
        finally:
            cache.set_enabled_default(previous)

    def test_intern_layout_respects_thread_local_toggle(self):
        from repro.core.layout import LinearLayout

        results = {}

        def interning_thread():
            layout = LinearLayout.identity1d(4, "reg", "out")
            results["interned"] = cache.intern_layout(layout)
            results["same"] = cache.intern_layout(
                LinearLayout.identity1d(4, "reg", "out")
            )

        with cache.disabled():
            t = threading.Thread(target=interning_thread)
            t.start()
            t.join()
        # Interning stayed active on the other thread.
        assert results["interned"] is results["same"]


class TestCountersAreThreadLocal:
    def test_other_threads_do_not_pollute_attribution(self):
        c = cache.BoundedCache("t_tls_cnt", maxsize=32, register=False)
        before = cache.counters()
        noise_done = threading.Event()

        def noisy():
            for j in range(100):
                c.get(("noise", j))
            noise_done.set()

        t = threading.Thread(target=noisy)
        t.start()
        t.join()
        assert noise_done.is_set()
        # 100 misses happened on the other thread; this thread's
        # counters (what the pass manager attributes per pass) are
        # untouched.
        delta = cache.counters_delta(before)
        assert delta == {"hits": 0, "misses": 0}
        c.put("mine", 1)
        c.get("mine")
        delta = cache.counters_delta(before)
        assert delta["hits"] == 1


@pytest.mark.parametrize("maxsize", [0, -3])
def test_invalid_maxsize_rejected(maxsize):
    with pytest.raises(ValueError):
        cache.BoundedCache("t_bad", maxsize=maxsize, register=False)
