"""Tests for the scan op and the legacy scan bugs the paper cites.

"This has been a persistent source of bugs in Triton over the past
few years" (Section 5.1) — two of the cited issues are scans:
triton-lang/triton#3017 (tl.sum + tl.cumsum in one kernel) and #4362
(associative_scan with reverse=True).
"""

import numpy as np
import pytest

from repro.engine import KernelBuilder, LayoutEngine
from repro.hardware import RTX4090
from repro.interp import execute_graph
from repro.layouts.legacy import LegacyLayoutSystem
from repro.layouts import BlockedLayout
from repro.core.errors import LegacyUnsupportedError
from repro.mxfp import F32


def scan_kernel(reverse=False, with_reduce=False, rows=64, cols=64):
    kb = KernelBuilder("scan")
    x = kb.load((rows, cols), F32)
    if with_reduce:
        # Issue #3017's shape: a reduce and a scan over the same value.
        total = kb.reduce(x, axis=1, op="sum")
        total2 = kb.broadcast(kb.expand_dims(total, 1), (rows, cols))
        x = kb.elementwise(x, total2, name="div")
    kb.store(kb.scan(x, axis=1, op="sum", reverse=reverse))
    return kb


class TestInterpreter:
    def test_cumsum(self):
        kb = scan_kernel()
        data = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
        out = execute_graph(kb.graph, [data]).stores[0]
        assert np.array_equal(out, np.cumsum(data, axis=1))

    def test_reverse_cumsum(self):
        kb = scan_kernel(reverse=True)
        data = np.ones((64, 64))
        out = execute_graph(kb.graph, [data]).stores[0]
        assert np.array_equal(out[:, 0], np.full(64, 64.0))
        assert np.array_equal(out[:, -1], np.ones(64))

    def test_cummax_cumprod(self):
        kb = KernelBuilder()
        x = kb.load((4, 8), F32)
        kb.store(kb.scan(x, axis=1, op="max"))
        kb.store(kb.scan(x, axis=1, op="mul"))
        data = np.array([[3, 1, 4, 1, 5, 9, 2, 6]] * 4, dtype=float)
        res = execute_graph(kb.graph, [data])
        assert np.array_equal(
            res.stores[0], np.maximum.accumulate(data, axis=1)
        )
        assert np.array_equal(
            res.stores[1], np.cumprod(data, axis=1)
        )


class TestEngineLowering:
    def test_linear_compiles_everything(self):
        for reverse in (False, True):
            for with_reduce in (False, True):
                compiled = LayoutEngine(RTX4090, "linear").compile(
                    scan_kernel(reverse, with_reduce).graph
                )
                assert compiled.ok, (reverse, with_reduce)

    def test_legacy_fails_reverse(self):
        """Issue #4362 as a behavioural failure."""
        compiled = LayoutEngine(RTX4090, "legacy").compile(
            scan_kernel(reverse=True).graph
        )
        assert not compiled.ok
        assert "reverse=True" in compiled.error

    def test_legacy_forward_scan_ok(self):
        compiled = LayoutEngine(RTX4090, "legacy").compile(
            scan_kernel(reverse=False).graph
        )
        assert compiled.ok

    def test_scan_emits_shuffles(self):
        from repro.hardware.instructions import InstructionKind

        compiled = LayoutEngine(RTX4090, "linear").compile(
            scan_kernel().graph
        )
        assert compiled.trace.count(InstructionKind.SHUFFLE) > 0

    def test_numerics_through_compilation(self):
        rng = np.random.default_rng(31)
        data = rng.standard_normal((64, 64))
        reference = execute_graph(
            scan_kernel().graph, [data]
        ).stores[0]
        compiled = LayoutEngine(RTX4090, "linear").compile(
            scan_kernel().graph
        )
        result = execute_graph(compiled.graph, [data]).stores[0]
        assert np.allclose(result, reference)


class TestLegacyGates:
    def setup_method(self):
        self.legacy = LegacyLayoutSystem()
        self.blocked = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0))

    def test_reverse_rejected(self):
        assert not self.legacy.supports_scan(self.blocked, True, False)
        with pytest.raises(LegacyUnsupportedError):
            self.legacy.check_scan(self.blocked, True, False)

    def test_duplicates_rejected(self):
        """Issue #3017: duplicated data combined twice."""
        assert not self.legacy.supports_scan(self.blocked, False, True)

    def test_plain_scan_ok(self):
        assert self.legacy.supports_scan(self.blocked, False, False)
