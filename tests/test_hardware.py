"""Tests for the hardware package: specs, instruction tiles, cost."""

import pytest

from repro.core import LANE, OFFSET, REGISTER
from repro.hardware import (
    CostModel,
    GH200,
    Instruction,
    InstructionKind,
    MI250,
    PLATFORMS,
    RTX4090,
    get_platform,
    ldmatrix_tile,
    stmatrix_tile,
    vector_shared_tile,
)


class TestSpecs:
    def test_table2_inventory(self):
        assert set(PLATFORMS) == {"RTX4090", "GH200", "MI250"}
        assert RTX4090.warp_size == 32
        assert MI250.warp_size == 64
        assert GH200.mma_flavor == "wgmma"
        assert MI250.mma_flavor == "mfma"

    def test_matrix_instruction_availability(self):
        """The Section 6.2 explanations hinge on these bits."""
        assert RTX4090.has_ldmatrix and not RTX4090.has_stmatrix
        assert GH200.has_ldmatrix and GH200.has_stmatrix
        assert not MI250.has_ldmatrix and not MI250.has_stmatrix

    def test_bank_row(self):
        for spec in PLATFORMS.values():
            assert spec.bank_row_bytes == 128

    def test_lookup(self):
        assert get_platform("GH200") is GH200
        with pytest.raises(KeyError):
            get_platform("H100")

    def test_str(self):
        assert "mfma" in str(MI250)


class TestTiles:
    def test_vector_tile_sizes(self):
        tile = vector_shared_tile(128, 16)
        assert tile.in_dim_size(REGISTER) == 8
        assert tile.out_dim_size(OFFSET) == 8

    def test_vector_tile_too_small(self):
        with pytest.raises(ValueError):
            vector_shared_tile(16, 32)

    def test_ldmatrix_tile_geometry(self):
        """id_k(Reg->Off) x id_2(Thr->Off) with k = log2(4/w)."""
        f16 = ldmatrix_tile(16)
        assert f16.in_dim_size(REGISTER) == 2   # 2 x 2B = 4B
        assert f16.in_dim_size(LANE) == 4
        f8 = ldmatrix_tile(8)
        assert f8.in_dim_size(REGISTER) == 4    # 4 x 1B
        f32 = ldmatrix_tile(32)
        assert f32.in_dim_size(REGISTER) == 1

    def test_ldmatrix_element_range(self):
        with pytest.raises(ValueError):
            ldmatrix_tile(64)

    def test_stmatrix_matches_ldmatrix(self):
        assert stmatrix_tile(16) == ldmatrix_tile(16)


class TestCostModel:
    def setup_method(self):
        self.model = CostModel(RTX4090)

    def test_wavefronts_scale_shared_cost(self):
        one = Instruction(InstructionKind.SHARED_LOAD, wavefronts=1)
        four = Instruction(InstructionKind.SHARED_LOAD, wavefronts=4)
        assert self.model.instruction_cycles(four) > (
            self.model.instruction_cycles(one)
        )

    def test_dependent_pays_latency(self):
        pipelined = Instruction(InstructionKind.SHARED_LOAD)
        dependent = Instruction(
            InstructionKind.SHARED_LOAD, dependent=True
        )
        assert self.model.instruction_cycles(dependent) > (
            3 * self.model.instruction_cycles(pipelined)
        )

    def test_global_transactions(self):
        narrow = Instruction(InstructionKind.GLOBAL_LOAD, vector_bits=32)
        wide = Instruction(InstructionKind.GLOBAL_LOAD, vector_bits=128)
        # Wide vectors move 4x the data in 4x the transactions but one
        # instruction; per-byte they are cheaper.
        assert self.model.instruction_cycles(wide) < (
            4 * self.model.instruction_cycles(narrow)
        )

    def test_mma_weight(self):
        mma = Instruction(InstructionKind.MMA, wavefronts=1)
        wgmma = Instruction(InstructionKind.MMA, wavefronts=24)
        assert self.model.instruction_cycles(wgmma) == (
            24 * self.model.instruction_cycles(mma)
        )

    def test_count_multiplies(self):
        single = Instruction(InstructionKind.SHUFFLE, count=1)
        batch = Instruction(InstructionKind.SHUFFLE, count=7)
        assert self.model.instruction_cycles(batch) == (
            7 * self.model.instruction_cycles(single)
        )

    def test_histogram(self):
        insts = [
            Instruction(InstructionKind.SHUFFLE, count=2),
            Instruction(InstructionKind.BARRIER),
            Instruction(InstructionKind.SHUFFLE, count=3),
        ]
        hist = self.model.histogram(insts)
        assert hist == {"shfl.sync": 5, "bar.sync": 1}

    def test_ptx_names(self):
        inst = Instruction(InstructionKind.SHARED_LOAD, vector_bits=128)
        assert inst.ptx_name() == "ld.shared.v4.b32"
        assert Instruction(InstructionKind.SHUFFLE).ptx_name() == (
            "shfl.sync"
        )
        sub = Instruction(InstructionKind.GLOBAL_LOAD, vector_bits=16)
        assert sub.ptx_name() == "ld.global.v1.b16"
