"""Tests for shape operations on layouts (Theorem 9.3's transfers).

Each transfer must make the op a register-level no-op: the hardware
slot that held element x before the op holds op(x)'s image after it.
These tests verify that elementwise against reference coordinate math.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DimensionError,
    LANE,
    REGISTER,
    WARP,
    broadcast_layout,
    expand_dims_layout,
    flatten_outs,
    join_layout,
    reshape_layout,
    split_layout,
    transpose_layout,
)
from repro.core.reshape import squeeze_layout
from repro.layouts import BlockedLayout


def sample_layout(shape=(16, 32)):
    return BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear(shape)


def all_slots(layout):
    for w in range(layout.in_dim_size(WARP)):
        for l in range(layout.in_dim_size(LANE)):
            for r in range(layout.in_dim_size(REGISTER)):
                yield {REGISTER: r, LANE: l, WARP: w}


class TestTranspose:
    def test_coordinates_swap(self):
        layout = sample_layout()
        transposed = transpose_layout(layout, (1, 0))
        for slot in all_slots(layout):
            before = layout.apply(slot)
            after = transposed.apply(slot)
            assert after["dim0"] == before["dim1"]
            assert after["dim1"] == before["dim0"]

    def test_shape_swaps(self):
        transposed = transpose_layout(sample_layout(), (1, 0))
        assert transposed.out_dim_sizes() == {"dim0": 32, "dim1": 16}

    def test_identity_permutation(self):
        layout = sample_layout()
        assert transpose_layout(layout, (0, 1)) == layout

    def test_bad_permutation(self):
        with pytest.raises(DimensionError):
            transpose_layout(sample_layout(), (0, 0))

    def test_mma_transpose_exists(self):
        """The case legacy layouts cannot express (Section 4.4)."""
        from repro.layouts import NvidiaMmaLayout

        mma = NvidiaMmaLayout((2, 2)).to_linear((32, 64))
        transposed = transpose_layout(mma, (1, 0))
        assert transposed.out_dim_sizes() == {"dim0": 64, "dim1": 32}
        assert transposed.is_surjective()


class TestReshape:
    def test_flatten_round_trip(self):
        layout = sample_layout()
        flat = reshape_layout(layout, [512])
        back = reshape_layout(flat, [16, 32])
        assert back == reshape_layout(layout, [16, 32])

    def test_row_major_semantics(self):
        layout = sample_layout()
        flat = reshape_layout(layout, [512])
        for slot in all_slots(layout):
            coords = layout.apply(slot)
            expected = coords["dim0"] * 32 + coords["dim1"]
            assert flat.apply(slot)["dim0"] == expected

    def test_split_dims(self):
        layout = sample_layout()
        wide = reshape_layout(layout, [16, 2, 16])
        for slot in all_slots(layout):
            coords = layout.apply(slot)
            got = wide.apply(slot)
            assert got["dim0"] == coords["dim0"]
            assert got["dim1"] * 16 + got["dim2"] == coords["dim1"]

    def test_size_mismatch(self):
        with pytest.raises(DimensionError):
            reshape_layout(sample_layout(), [16, 16])

    def test_flatten_outs_helper(self):
        layout = sample_layout()
        flat = flatten_outs(layout)
        assert flat.out_dim_sizes() == {"dim0": 512}


class TestExpandSqueeze:
    def test_expand_inserts_unit_dim(self):
        layout = sample_layout()
        expanded = expand_dims_layout(layout, 1)
        assert expanded.out_dim_sizes() == {
            "dim0": 16, "dim1": 1, "dim2": 32,
        }

    def test_expand_squeeze_round_trip(self):
        layout = sample_layout()
        assert squeeze_layout(expand_dims_layout(layout, 0), 0) == (
            reshape_layout(layout, [16, 32])
        )

    def test_squeeze_non_unit_rejected(self):
        with pytest.raises(DimensionError):
            squeeze_layout(sample_layout(), 0)

    def test_expand_out_of_range(self):
        with pytest.raises(DimensionError):
            expand_dims_layout(sample_layout(), 5)


class TestBroadcast:
    def test_register_replication(self):
        layout = sample_layout((16, 1))
        wide = broadcast_layout(layout, 1, 8)
        assert wide.out_dim_size("dim1") == 8
        # The new registers enumerate the broadcast positions.
        base_regs = layout.in_dim_size(REGISTER)
        assert wide.in_dim_size(REGISTER) == base_regs * 8

    def test_surjective_result(self):
        layout = sample_layout((16, 1))
        wide = broadcast_layout(layout, 1, 8)
        assert wide.is_surjective()

    def test_non_unit_source_rejected(self):
        with pytest.raises(DimensionError):
            broadcast_layout(sample_layout(), 1, 64)


class TestJoinSplit:
    def test_join_appends_minor_dim(self):
        layout = sample_layout()
        joined = join_layout(layout)
        assert joined.out_dim_sizes() == {
            "dim0": 16, "dim1": 32, "dim2": 2,
        }
        # The pair index lives in the first register bit.
        assert joined.apply({REGISTER: 1})["dim2"] == 1

    def test_join_split_round_trip(self):
        layout = sample_layout()
        assert split_layout(join_layout(layout)) == layout

    def test_split_requires_structure(self):
        # The trailing size-2 dim lives in a *lane* bit, not the first
        # register bit, so the free split is impossible.
        layout = BlockedLayout((1, 1), (16, 2), (4, 1), (1, 0)).to_linear(
            (64, 2)
        )
        with pytest.raises(DimensionError):
            split_layout(layout)


@given(
    st.sampled_from([(16, 32), (32, 32), (8, 64)]),
    st.permutations([0, 1]),
)
@settings(max_examples=20, deadline=None)
def test_transpose_involution(shape, perm):
    layout = sample_layout(shape)
    twice = transpose_layout(transpose_layout(layout, perm), perm)
    if tuple(perm) == (1, 0):
        assert twice == transpose_layout(layout, (0, 1))
    else:
        assert twice == layout
