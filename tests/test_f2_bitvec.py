"""Unit tests for bit-vector primitives (repro.f2.bitvec)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.f2 import (
    bits_of,
    dot,
    is_power_of_two,
    log2_int,
    parity,
    popcount,
)
from repro.f2.bitvec import (
    highest_set_bit,
    iter_set_bits,
    lowest_set_bit,
)


class TestPopcountParity:
    def test_basics(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert parity(0b1011) == 1
        assert parity(0b11) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    @given(st.integers(0, 2 ** 64))
    @settings(max_examples=100)
    def test_parity_is_popcount_mod_2(self, x):
        assert parity(x) == popcount(x) % 2


class TestDot:
    def test_orthogonal(self):
        assert dot(0b01, 0b10) == 0

    def test_overlap(self):
        assert dot(0b11, 0b01) == 1
        assert dot(0b11, 0b11) == 0  # two overlaps cancel mod 2

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=100)
    def test_bilinear(self, a, b, c):
        assert dot(a ^ b, c) == dot(a, c) ^ dot(b, c)


class TestBitsOf:
    def test_lsb_first(self):
        assert bits_of(0b0110, 4) == [0, 1, 1, 0]

    def test_width_check(self):
        with pytest.raises(ValueError):
            bits_of(16, 4)

    @given(st.integers(0, 255))
    @settings(max_examples=50)
    def test_round_trip(self, x):
        bits = bits_of(x, 8)
        assert sum(b << i for i, b in enumerate(bits)) == x


class TestPowersOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(64) == 6
        with pytest.raises(ValueError):
            log2_int(48)
        with pytest.raises(ValueError):
            log2_int(0)


class TestBitScans:
    def test_iter_set_bits(self):
        assert list(iter_set_bits(0b10110)) == [1, 2, 4]
        assert list(iter_set_bits(0)) == []

    def test_lowest_highest(self):
        assert lowest_set_bit(0b1100) == 2
        assert highest_set_bit(0b1100) == 3
        assert lowest_set_bit(0) == -1
        assert highest_set_bit(0) == -1

    @given(st.integers(1, 2 ** 32))
    @settings(max_examples=50)
    def test_scan_consistency(self, x):
        bits = list(iter_set_bits(x))
        assert bits[0] == lowest_set_bit(x)
        assert bits[-1] == highest_set_bit(x)
        assert len(bits) == popcount(x)
