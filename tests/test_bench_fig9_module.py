"""Tests for the Figure 9 harness module itself."""

import pytest

from repro.bench.fig9 import (
    compile_case,
    run_fig9,
    run_table2,
    summarize_by_platform,
)
from repro.bench.harness import Table
from repro.kernels import KERNELS


class TestTable2:
    def test_three_platforms(self):
        table = run_table2()
        assert len(table.rows) == 3
        platforms = table.column("platform")
        assert set(platforms) == {"RTX4090", "GH200", "MI250"}

    def test_mi250_has_no_matrix_insts(self):
        table = run_table2()
        row = next(r for r in table.rows if r[0] == "MI250")
        assert row[4] == "no" and row[5] == "no"


class TestFig9Harness:
    @pytest.mark.slow
    def test_subset_run(self):
        fig, tab6, speedups = run_fig9(kernels=["vector_add", "sum"])
        assert speedups
        assert all(s > 0 for s in speedups)
        # vector_add has no local memory or converts: only sum shows
        # up in the table 6 rows, if at all.
        names = [r[0] for r in tab6.rows]
        assert "vector_add" not in names

    def test_compile_case(self):
        model = KERNELS["sum"]
        compiled = compile_case(
            model, model.cases[0], "RTX4090", "linear"
        )
        assert compiled.ok

    def test_summary(self):
        fig, _, _ = run_fig9(kernels=["sum"])
        summary = summarize_by_platform(fig)
        assert summary.column("platform")
        for row in summary.rows:
            _, cases, mn, geo, mx = row
            assert cases > 0
            assert mn <= geo <= mx
