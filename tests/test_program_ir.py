"""The unified warp-program IR: lowering, interpreters, optimizer.

The heavyweight property: random src/dst layout pairs executed
through the vectorized interpreter match the scalar oracle AND direct
``LinearLayout`` evaluation bit-for-bit — register files *and*
traces — and peephole-optimized programs match unoptimized ones.
"""

import random

import pytest

from repro.codegen import plan_conversion
from repro.codegen.gather import plan_gather
from repro.codegen.views import DistributedView
from repro.core import LANE, REGISTER, WARP
from repro.gpusim import (
    Machine,
    RegisterFile,
    distributed_data,
    price_program,
)
from repro.gpusim.registers import assert_matches_layout
from repro.hardware import GH200, RTX4090
from repro.layouts import BlockedLayout, NvidiaMmaLayout
from repro.program import (
    MovR,
    R_IN,
    R_OUT,
    WarpProgram,
    lower_plan,
    optimize_program,
    program_from_json,
    program_to_json,
)

from tests.test_random_layout_conversions import (
    random_distributed_layout,
)


def both_machines(spec=RTX4090, num_warps=4):
    return (
        Machine(spec, num_warps, backend="scalar"),
        Machine(spec, num_warps, backend="vector"),
    )


class TestInterpreterEquivalence:
    """Vectorized == scalar oracle == direct layout evaluation."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_pairs_all_backends_bit_for_bit(self, seed):
        rng = random.Random(seed)
        shape = {"dim0": 16, "dim1": 32}
        src = random_distributed_layout(rng, 9, shape=shape)
        dst = random_distributed_layout(rng, 9, shape=shape)
        plan = plan_conversion(src, dst, elem_bits=16, spec=RTX4090)
        scalar, vector = both_machines()
        registers = distributed_data(src, 4, 32)
        out_s, trace_s = scalar.run_conversion(plan, registers)
        out_v, trace_v = vector.run_conversion(plan, registers)
        # Bit-for-bit register files and identical traces.
        assert out_s.as_dict() == out_v.as_dict()
        assert trace_s.instructions == trace_v.instructions
        # And both agree with what the layouts say directly.
        assert_matches_layout(out_v, dst)

    @pytest.mark.parametrize("seed", range(6))
    def test_broadcast_pairs_all_backends(self, seed):
        rng = random.Random(300 + seed)
        shape = {"dim0": 16, "dim1": 32}
        src = random_distributed_layout(
            rng, 9, extra_reg_bits=1, shape=shape
        )
        dst = random_distributed_layout(
            rng, 9, extra_reg_bits=1, shape=shape
        )
        plan = plan_conversion(src, dst, elem_bits=32, spec=GH200)
        scalar, vector = both_machines(GH200)
        registers = distributed_data(src, 4, 32)
        out_s, trace_s = scalar.run_conversion(plan, registers)
        out_v, trace_v = vector.run_conversion(plan, registers)
        assert out_s.as_dict() == out_v.as_dict()
        assert trace_s.instructions == trace_v.instructions
        assert_matches_layout(out_v, dst)

    @pytest.mark.parametrize("seed", range(8))
    def test_optimized_matches_unoptimized(self, seed):
        rng = random.Random(500 + seed)
        shape = {"dim0": 16, "dim1": 32}
        src = random_distributed_layout(rng, 9, shape=shape)
        dst = random_distributed_layout(rng, 9, shape=shape)
        plan = plan_conversion(src, dst, elem_bits=16, spec=RTX4090)
        raw = lower_plan(plan, optimize=False)
        opt = optimize_program(raw)
        machine = Machine(RTX4090, 4)
        registers = distributed_data(src, 4, 32)
        files_r, trace_r = machine.run_program(raw, {R_IN: registers})
        files_o, trace_o = machine.run_program(opt, {R_IN: registers})
        if raw.instrs:
            assert_matches_layout(files_r[raw.result], dst)
            assert_matches_layout(files_o[opt.result], dst)
        # The optimizer only touches free register moves: identical
        # priced traces, statically and dynamically.
        assert trace_r.instructions == trace_o.instructions
        assert (
            price_program(raw, RTX4090).instructions
            == price_program(opt, RTX4090).instructions
        )

    def test_pricing_agrees_with_execution_counts(self):
        src = BlockedLayout((1, 4), (8, 4), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        dst = NvidiaMmaLayout((2, 2)).to_linear((32, 64))
        plan = plan_conversion(src, dst, 16, spec=RTX4090)
        program = plan.program()
        priced = price_program(program, RTX4090)
        _, executed = Machine(RTX4090, 4).run_conversion(
            plan, distributed_data(src, 4, 32)
        )
        # One pricing path, one execution path, same stream shape.
        assert [i.kind for i in priced.instructions] == [
            i.kind for i in executed.instructions
        ]
        assert [i.count for i in priced.instructions] == [
            i.count for i in executed.instructions
        ]


class TestGatherBackends:
    def _setup(self):
        layout = BlockedLayout((1, 2), (4, 8), (4, 1), (1, 0)).to_linear(
            (16, 16)
        )
        view = DistributedView(layout)
        src = distributed_data(layout, 4, 32)
        index = RegisterFile(4, 32)
        for w in range(4):
            for lane in range(32):
                for r in range(layout.in_dim_size(REGISTER)):
                    p = view.flat_of(
                        {REGISTER: r, LANE: lane, WARP: w}
                    )
                    index.write(w, lane, r, (p * 7 + 3) % 16)
        return layout, src, index

    def test_gather_shuffle_backends_agree(self):
        layout, src, index = self._setup()
        scalar, vector = both_machines()
        out_s, trace_s = scalar.run_gather_shuffle(layout, 1, src, index)
        out_v, trace_v = vector.run_gather_shuffle(layout, 1, src, index)
        assert out_s.as_dict() == out_v.as_dict()
        assert trace_s.instructions == trace_v.instructions

    def test_gather_shared_backends_agree(self):
        layout, src, index = self._setup()
        scalar, vector = both_machines()
        out_s, trace_s = scalar.run_gather_shared(layout, 1, src, index)
        out_v, trace_v = vector.run_gather_shared(layout, 1, src, index)
        assert out_s.as_dict() == out_v.as_dict()
        assert trace_s.instructions == trace_v.instructions

    def test_gather_program_shuffle_count(self):
        layout, _, _ = self._setup()
        gplan = plan_gather(layout, 1)
        program = gplan.to_program(layout)
        assert len(program) == 1
        assert program.instrs[0].shuffle_count == gplan.total_shuffles


class TestOptimizerRewrites:
    def test_identity_move_dropped(self):
        program = WarpProgram(
            (
                MovR((0, 1), 32, 4, src=R_IN, dst=R_OUT),
                MovR((0, 1), 32, 4, src=R_OUT, dst=R_OUT),
            )
        )
        opt = optimize_program(program)
        assert len(opt) == 1
        assert opt.instrs[0].src == R_IN

    def test_adjacent_moves_fuse(self):
        program = WarpProgram(
            (
                MovR((1, 0, 3, 2), 32, 4, src=R_IN, dst=R_OUT),
                MovR((2, 3, 0, 1), 32, 4, src=R_OUT, dst=R_OUT),
            )
        )
        opt = optimize_program(program)
        assert len(opt) == 1
        fused = opt.instrs[0]
        assert fused.src == R_IN and fused.dst == R_OUT
        # Composition: out2[r] = out1[t2[r]] = in[t1[t2[r]]].
        assert fused.dst_to_src == (3, 2, 1, 0)

    def test_fusion_can_cancel_to_identity(self):
        table = (1, 0, 3, 2)
        program = WarpProgram(
            (
                MovR(table, 32, 4, src=R_IN, dst="tmp"),
                MovR(table, 32, 4, src="tmp", dst="tmp"),
                MovR((0, 1, 2, 3), 32, 4, src="tmp", dst=R_OUT),
            )
        )
        opt = optimize_program(program)
        # The two applications of an involution cancel; what remains
        # is one copy from "in" to the result space.
        assert len(opt) == 1
        assert opt.instrs[0].is_identity()
        assert opt.instrs[0].src == R_IN
        assert opt.instrs[0].dst == R_OUT

    def test_dead_move_eliminated(self):
        program = WarpProgram(
            (
                MovR((1, 0), 32, 4, src=R_IN, dst="scratch"),
                MovR((0, 1), 32, 4, src=R_IN, dst=R_OUT),
            )
        )
        opt = optimize_program(program)
        assert all(i.dst != "scratch" for i in opt.instrs)

    def test_result_space_never_eliminated(self):
        program = WarpProgram(
            (MovR((1, 0), 32, 4, src=R_IN, dst=R_OUT),),
            result=R_OUT,
        )
        assert len(optimize_program(program)) == 1


class TestProgramStructure:
    def test_noop_plan_is_empty_program(self):
        layout = BlockedLayout((1, 1), (8, 4), (2, 2), (1, 0)).to_linear(
            (16, 8)
        )
        plan = plan_conversion(layout, layout, elem_bits=32)
        program = plan.program()
        assert len(program) == 0
        assert program.result == R_IN

    def test_spaces_and_num_regs(self):
        src = BlockedLayout((1, 4), (8, 4), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        dst = NvidiaMmaLayout((2, 2)).to_linear((32, 64))
        program = plan_conversion(src, dst, 16).program()
        assert R_IN in program.spaces()
        assert program.num_regs(R_IN) >= 1
        assert program.num_regs("nonexistent") == 0

    def test_json_round_trip_preserves_execution(self):
        rng = random.Random(7)
        shape = {"dim0": 16, "dim1": 32}
        src = random_distributed_layout(rng, 9, shape=shape)
        dst = random_distributed_layout(rng, 9, shape=shape)
        plan = plan_conversion(src, dst, elem_bits=16)
        program = plan.program()
        rebuilt = program_from_json(program_to_json(program))
        assert rebuilt.instrs == program.instrs
        assert rebuilt.result == program.result
        machine = Machine(RTX4090, 4)
        registers = distributed_data(src, 4, 32)
        files, trace = machine.run_program(rebuilt, {R_IN: registers})
        if rebuilt.instrs:
            assert_matches_layout(files[rebuilt.result], dst)
        assert (
            trace.instructions
            == machine.run_program(program, {R_IN: registers})[1].instructions
        )


class TestPreshuffleProgram:
    def test_table_matches_numpy_preshuffle(self):
        import numpy as np

        from repro.mxfp.shuffle_opt import (
            preshuffle_operand,
            preshuffle_register_table,
        )

        kwidth = 2
        k = 16
        table = preshuffle_register_table(k, kwidth)
        w = np.arange(k, dtype=np.float64).reshape(k, 1)
        shuffled = preshuffle_operand(w, kwidth)
        assert [int(v) for v in shuffled[:, 0]] == list(table)
