"""Tests for layout predicates and utilities (repro.core.properties)."""

import pytest

from repro.core import (
    LANE,
    LinearLayout,
    REGISTER,
    WARP,
    is_distributed_layout,
    is_memory_layout,
    largest_vectorization,
    make_identity,
    num_contiguous_elements,
)
from repro.core.properties import unique_data_threads
from repro.layouts import (
    BlockedLayout,
    NvidiaMmaLayout,
    SwizzledSharedLayout,
    shared_layout_for_mma,
)


class TestDistributedPredicate:
    def test_blocked_is_distributed(self):
        layout = BlockedLayout((2, 2), (4, 8), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        assert is_distributed_layout(layout)

    def test_mma_is_distributed(self):
        assert is_distributed_layout(
            NvidiaMmaLayout((2, 2)).to_linear((32, 32))
        )

    def test_zero_columns_allowed(self):
        layout = LinearLayout(
            {REGISTER: [(1,), (0,)], LANE: [(2,)]}, {"dim0": 4}
        )
        assert is_distributed_layout(layout)

    def test_two_bit_column_rejected(self):
        layout = LinearLayout(
            {REGISTER: [(3,), (2,)]}, {"dim0": 4},
            require_surjective=False,
        )
        assert not is_distributed_layout(layout)

    def test_repeated_nonzero_column_rejected(self):
        layout = LinearLayout(
            {REGISTER: [(1,), (1,)], LANE: [(2,)]}, {"dim0": 4}
        )
        assert not is_distributed_layout(layout)

    def test_non_surjective_rejected(self):
        layout = LinearLayout(
            {REGISTER: [(1,)]}, {"dim0": 4}, require_surjective=False
        )
        assert not is_distributed_layout(layout)


class TestMemoryPredicate:
    def test_unswizzled_is_memory(self):
        layout = SwizzledSharedLayout().to_linear((16, 16))
        assert is_memory_layout(layout)

    def test_mma_swizzled_is_memory(self):
        sw = shared_layout_for_mma(16, (64, 64))
        assert is_memory_layout(sw.to_linear((64, 64)))

    def test_distributed_is_not_memory(self):
        layout = BlockedLayout((1, 1), (4, 8), (2, 2), (1, 0)).to_linear(
            (8, 32)
        )
        # Multiple input dims but still invertible: columns have one
        # bit each, which IS allowed; a blocked layout of matching
        # size actually satisfies Definition 4.14's column rule, so
        # use a non-invertible one instead.
        sliced = LinearLayout(
            {REGISTER: [(0,)], LANE: [(1,), (2,)]},
            {"dim0": 4},
        )
        assert not is_memory_layout(sliced)
        del layout

    def test_three_bit_column_rejected(self):
        layout = LinearLayout(
            {"offset": [(0b111,), (0b010,), (0b100,)]},
            {"dim0": 8},
            require_surjective=False,
        )
        assert not is_memory_layout(layout)


class TestContiguity:
    def test_contiguous_registers(self):
        layout = make_identity([(8, REGISTER, "dim0")])
        assert num_contiguous_elements(layout) == 8

    def test_cross_dim_contiguity(self):
        """The Table 3 case: contiguity spans the dim boundary."""
        layout = BlockedLayout((8, 2), (16, 2), (4, 1), (1, 0)).to_linear(
            (512, 2)
        )
        assert num_contiguous_elements(layout) == 16

    def test_vectorization_cap(self):
        layout = make_identity([(32, REGISTER, "dim0")])
        assert largest_vectorization(layout, 32) == 128
        assert largest_vectorization(layout, 8) == 128
        assert largest_vectorization(layout, 8, max_vector_bits=64) == 64

    def test_scalar_floor(self):
        layout = LinearLayout(
            {REGISTER: [(2,)], LANE: [(1,)]}, {"dim0": 4}
        )
        assert largest_vectorization(layout, 16) == 16


class TestUniqueThreads:
    def test_no_duplicates(self):
        layout = BlockedLayout((1, 1), (4, 8), (1, 1), (1, 0)).to_linear(
            (4, 8)
        )
        assert unique_data_threads(layout) == 32

    def test_halved_by_free_lane_bit(self):
        layout = LinearLayout(
            {LANE: [(1,), (0,)], REGISTER: [(2,)]}, {"dim0": 4}
        )
        assert unique_data_threads(layout) == 2
