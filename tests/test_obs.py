"""The observability layer's contract (``docs/OBSERVABILITY.md``).

Four families of guarantees:

* **Spans** — per-thread hierarchy (parent = enclosing span, trace id
  inherited, roots start fresh traces), completion ordering, error
  status propagation, and the bounded recorder.
* **Metrics** — label-set identity, counter family sums, gauge
  last-write-wins, histogram summaries.
* **Exporters** — JSONL round-trips, Chrome trace validity, and the
  CLI ``check`` path, including that ``convert`` and direct export
  produce identical traces.
* **Transparency** — observability off is a true no-op (the same
  singleton span, no counters), and compiles/conversions are
  bit-identical whether recording is on or off.

Plus the satellite regression: one :class:`CostModel` per
:class:`GpuSpec`, shared by every :class:`Trace`.
"""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro import cache
from repro import obs
from repro.codegen import plan_conversion
from repro.gpusim import Machine, distributed_data
from repro.gpusim.trace import Trace
from repro.hardware import RTX4090
from repro.hardware.cost import CostModel, cost_model
from repro.hardware.instructions import InstructionKind
from repro.obs import core as obs_core
from repro.serve import CompileRequest, CompileService
from tests.test_random_layout_conversions import random_distributed_layout


@pytest.fixture(autouse=True)
def obs_disabled():
    """Every test starts and ends with observability off."""
    previous = obs_core.disable()
    yield
    obs_core._recorder = previous


# ======================================================================
# Spans
# ======================================================================
class TestSpans:
    def test_nesting_parent_and_trace_ids(self):
        with obs.capture() as rec:
            with obs.span("outer", level=0) as outer:
                with obs.span("mid") as mid:
                    with obs.span("inner") as inner:
                        pass
        assert mid.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id
        assert outer.parent_id is None
        assert inner.trace_id == mid.trace_id == outer.trace_id
        # Completion order: innermost finishes (and records) first.
        assert [s.name for s in rec.spans()] == ["inner", "mid", "outer"]

    def test_sibling_roots_get_fresh_traces(self):
        with obs.capture() as rec:
            with obs.span("root-a"):
                pass
            with obs.span("root-b"):
                pass
        a, b = rec.spans()
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_child_interval_inside_parent(self):
        with obs.capture() as rec:
            with obs.span("parent"):
                with obs.span("child"):
                    pass
        child, parent = rec.spans()
        assert parent.start_us <= child.start_us
        assert child.end_us <= parent.end_us
        assert child.duration_us >= 0

    def test_exception_marks_error_status(self):
        with obs.capture() as rec:
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("boom")
        (sp,) = rec.spans()
        assert sp.status == "error"
        assert "ValueError: boom" in sp.attrs["error"]
        assert sp.end_us is not None  # still timed and recorded

    def test_attrs_from_kwargs_and_setters(self):
        with obs.capture() as rec:
            with obs.span("op", mode="linear") as sp:
                sp.set("cycles", 42)
                sp.set_attrs({"ok": True})
        (sp,) = rec.spans()
        assert sp.attrs == {"mode": "linear", "cycles": 42, "ok": True}
        d = sp.to_dict()
        assert d["type"] == "span" and d["name"] == "op"
        json.dumps(d)  # every record must be JSON-serializable

    def test_threads_get_independent_hierarchies(self):
        with obs.capture() as rec:
            def work():
                with obs.span("thread-root"):
                    with obs.span("thread-child"):
                        pass

            with obs.span("main-root"):
                t = threading.Thread(target=work, name="obs-worker")
                t.start()
                t.join()
        by_name = {s.name: s for s in rec.spans()}
        # The other thread's root is a root — not a child of main-root.
        assert by_name["thread-root"].parent_id is None
        assert by_name["thread-root"].trace_id != (
            by_name["main-root"].trace_id
        )
        assert by_name["thread-child"].parent_id == (
            by_name["thread-root"].span_id
        )
        assert by_name["thread-root"].thread_name == "obs-worker"

    def test_recorder_bound_drops_past_max_spans(self):
        with obs.capture(max_spans=3) as rec:
            for i in range(5):
                with obs.span(f"s{i}"):
                    pass
        assert len(rec.spans()) == 3
        assert rec.dropped_spans == 2
        meta = obs.jsonl_events(rec)[-1]
        assert meta["dropped_spans"] == 2

    def test_capture_restores_previous_state(self):
        assert not obs.is_enabled()
        with obs.capture() as outer_rec:
            assert obs_core.current_recorder() is outer_rec
            with obs.capture() as inner_rec:
                assert obs_core.current_recorder() is inner_rec
                obs.count("x")
            assert obs_core.current_recorder() is outer_rec
            assert inner_rec.metrics.counter_value("x") == 1
            assert outer_rec.metrics.counter_value("x") == 0
        assert not obs.is_enabled()


# ======================================================================
# Noop fast path
# ======================================================================
class TestDisabledPath:
    def test_span_returns_shared_noop_singleton(self):
        assert not obs.is_enabled()
        sp = obs.span("anything", key="value")
        assert sp is obs_core.NOOP_SPAN
        assert obs.span("other") is sp
        with sp as inner:
            inner.set("k", 1)
            inner.set_attrs({"a": 2})
        assert inner.duration_ms == 0.0

    def test_metric_helpers_are_noops(self):
        obs.count("c", 5, label="x")
        obs.gauge("g", 1.0)
        obs.observe("h", 2.0)
        # Nothing was installed, nothing recorded.
        assert obs_core.current_recorder() is None


# ======================================================================
# Metrics
# ======================================================================
class TestMetrics:
    def test_label_sets_are_separate_series(self):
        reg = obs.MetricsRegistry()
        reg.count("cache.hits", 2, cache="plans")
        reg.count("cache.hits", 3, cache="layouts")
        reg.count("cache.hits", 1, cache="plans")
        assert reg.counter_value("cache.hits", cache="plans") == 3
        assert reg.counter_value("cache.hits", cache="layouts") == 3
        # Family sum when no labels are given.
        assert reg.counter_value("cache.hits") == 6
        assert reg.counter_value("cache.hits", cache="absent") == 0

    def test_label_order_does_not_split_series(self):
        reg = obs.MetricsRegistry()
        reg.count("m", 1, a="1", b="2")
        reg.count("m", 1, b="2", a="1")
        assert reg.counter_value("m", a="1", b="2") == 2
        (row,) = reg.snapshot()["counters"]
        assert row["labels"] == {"a": "1", "b": "2"}

    def test_gauge_last_write_wins(self):
        reg = obs.MetricsRegistry()
        reg.gauge("size", 10, cache="plans")
        reg.gauge("size", 7, cache="plans")
        (row,) = reg.snapshot()["gauges"]
        assert row["value"] == 7

    def test_histogram_summary_and_buckets(self):
        reg = obs.MetricsRegistry()
        for v in (0.5, 1.0, 3.0, 5.0):
            reg.observe("lat_ms", v)
        (row,) = reg.snapshot()["histograms"]
        value = row["value"]
        assert value["count"] == 4
        assert value["min"] == 0.5 and value["max"] == 5.0
        assert value["mean"] == pytest.approx(9.5 / 4)
        # 0.5 and 1.0 in le_1; 3.0 in le_4; 5.0 in le_8.
        assert value["buckets"] == {"le_1": 2, "le_4": 1, "le_8": 1}

    def test_registry_concurrent_counts_are_exact(self):
        reg = obs.MetricsRegistry()
        n_threads, bumps = 8, 2000

        def worker():
            for _ in range(bumps):
                reg.count("hits", 1, cache="shared")

        threads = [
            threading.Thread(target=worker) for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("hits", cache="shared") == (
            n_threads * bumps
        )


# ======================================================================
# Exporters
# ======================================================================
def _small_capture() -> obs.Recorder:
    with obs.capture() as rec:
        with obs.span("compile:kernel", mode="linear") as sp:
            with obs.span("pass:lower-to-plans"):
                obs.count("cache.hits", 4, cache="plans")
                obs.observe("pipeline.pass_ms", 1.5, **{"pass": "lower"})
            sp.set("ok", True)
        obs.gauge("cache.size", 12, cache="plans")
    return rec


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        rec = _small_capture()
        path = str(tmp_path / "cap.jsonl")
        obs.write_jsonl(rec, path)
        assert obs.read_jsonl(path) == obs.jsonl_events(rec)

    def test_chrome_trace_is_valid_and_loadable_shape(self):
        rec = _small_capture()
        trace = obs.chrome_trace(rec)
        assert obs.validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {
            "compile:kernel",
            "pass:lower-to-plans",
        }
        # category = prefix before ":", used for Perfetto filtering.
        assert {e["cat"] for e in xs} == {"compile", "pass"}
        assert any(e["ph"] == "M" for e in events)  # thread names
        assert any(e["ph"] == "C" for e in events)  # counter track
        # Span args carry the ids and attributes.
        kernel = next(e for e in xs if e["name"] == "compile:kernel")
        assert kernel["args"]["ok"] is True
        assert kernel["args"]["parent_id"] is None
        json.dumps(trace)

    def test_convert_equals_direct_export(self, tmp_path):
        """CLI convert and direct export share one builder."""
        rec = _small_capture()
        jsonl = str(tmp_path / "cap.jsonl")
        obs.write_jsonl(rec, jsonl)
        converted = obs.chrome_trace_from_events(obs.read_jsonl(jsonl))
        direct = obs.chrome_trace(rec)
        direct["otherData"]["epoch"] = converted["otherData"]["epoch"]
        assert converted == direct

    def test_validate_rejects_malformed_traces(self):
        assert obs.validate_chrome_trace([]) != []
        assert obs.validate_chrome_trace({"traceEvents": "nope"}) != []
        assert "traceEvents is empty" in obs.validate_chrome_trace(
            {"traceEvents": []}
        )
        bad = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0},
                {"ph": "X", "name": "y", "pid": 1, "tid": 1, "ts": 0},
            ]
        }
        problems = obs.validate_chrome_trace(bad)
        assert any("bad phase" in p for p in problems)
        assert any("dur" in p for p in problems)

    def test_summarize_events_mentions_spans_and_counters(self):
        rec = _small_capture()
        text = obs.summarize_events(obs.jsonl_events(rec))
        assert "compile:kernel" in text
        assert "cache.hits{cache=plans} = 4" in text

    def test_cli_check_accepts_export_and_rejects_garbage(
        self, tmp_path, capsys
    ):
        from repro.obs.__main__ import main

        rec = _small_capture()
        good = str(tmp_path / "trace.json")
        obs.write_chrome_trace(rec, good)
        assert main(["check", good]) == 0
        assert main(["--check", good]) == 0  # CI spelling
        bad = str(tmp_path / "bad.json")
        with open(bad, "w") as fh:
            json.dump({"traceEvents": []}, fh)
        assert main(["--check", bad]) == 1
        capsys.readouterr()

    def test_cli_summary_reads_both_formats(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        rec = _small_capture()
        jsonl = str(tmp_path / "cap.jsonl")
        trace = str(tmp_path / "trace.json")
        obs.write_jsonl(rec, jsonl)
        obs.write_chrome_trace(rec, trace)
        for path in (jsonl, trace):
            assert main(["summary", path]) == 0
            out = capsys.readouterr().out
            assert "compile:kernel" in out
            assert "cache.hits" in out


# ======================================================================
# Instrumented subsystems
# ======================================================================
class TestInstrumentation:
    def test_compile_records_pipeline_hierarchy(self):
        cache.clear()
        req = CompileRequest("softmax", "r64c64")
        with obs.capture() as rec:
            req.build_and_compile()
        by_name = {}
        for sp in rec.spans():
            by_name.setdefault(sp.name, []).append(sp)
        for name in (
            "compile:kernel",
            "pipeline:run",
            "pass:anchor-selection",
            "pass:forward-propagation",
            "pass:backward-remat",
            "pass:lower-to-plans",
            "pass:cost-summary",
        ):
            assert name in by_name, f"missing span {name}"
        (kernel,) = by_name["compile:kernel"]
        (pipeline,) = by_name["pipeline:run"]
        assert pipeline.parent_id == kernel.span_id
        for name, spans in by_name.items():
            if name.startswith("pass:"):
                assert spans[0].parent_id == pipeline.span_id
        # Thin view: the pass span's attrs ARE the PassDiagnostics.
        lower = by_name["pass:lower-to-plans"][0]
        assert lower.attrs["name"] == "lower-to-plans"
        assert "wall_time_ms" in lower.attrs
        assert kernel.attrs["ok"] is True
        assert rec.metrics.counter_value("engine.compiles") >= 1

    def test_cache_counters_flow_into_metrics(self):
        cache.clear()
        req = CompileRequest("softmax", "r64c64")
        with obs.capture() as rec:
            req.build_and_compile()  # cold: misses
            req.build_and_compile()  # warm: hits
        hits = rec.metrics.counter_value("cache.hits", cache="engine")
        misses = rec.metrics.counter_value(
            "cache.misses", cache="engine"
        )
        assert misses >= 1 and hits >= 1

    def test_simulator_spans_and_metrics(self):
        rng = random.Random(7)
        shape = {"dim0": 16, "dim1": 32}
        src = random_distributed_layout(rng, 9, shape=shape)
        dst = random_distributed_layout(rng, 9, shape=shape)
        plan = plan_conversion(src, dst, elem_bits=16, spec=RTX4090)
        machine = Machine(RTX4090, num_warps=4)
        registers = distributed_data(src, 4, 32)
        with obs.capture() as rec:
            machine.run_conversion(plan, registers)
        sims = [s for s in rec.spans() if s.name == "sim:run_program"]
        assert len(sims) == 1
        assert sims[0].attrs["platform"] == "RTX4090"
        assert sims[0].attrs["issued"] >= 1
        labels = {"platform": "RTX4090", "backend": machine.backend}
        assert rec.metrics.counter_value("sim.programs", **labels) == 1
        assert (
            rec.metrics.counter_value("sim.instructions", **labels)
            == sims[0].attrs["issued"]
        )

    def test_serve_stress_capture_is_thread_safe(self):
        """8 submitters through the service while recording."""
        cache.clear()
        requests = [
            CompileRequest("softmax", "r64c64"),
            CompileRequest("vector_add", "n4096"),
            CompileRequest("dropout", "n4096"),
            CompileRequest("softmax", "r64c64", platform="MI250"),
        ]
        n_threads = 8
        errors = []
        with obs.capture() as rec:
            with CompileService(workers=4, name="obs-stress") as svc:
                barrier = threading.Barrier(n_threads)

                def hammer(seed):
                    rng = random.Random(seed)
                    suite = list(requests)
                    rng.shuffle(suite)
                    barrier.wait()
                    for req in suite:
                        res = svc.submit(req).result()
                        if res.error is not None:
                            errors.append(res.error)

                threads = [
                    threading.Thread(target=hammer, args=(i,))
                    for i in range(n_threads)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
        assert errors == []
        serve_spans = [
            s for s in rec.spans() if s.name == "serve:request"
        ]
        assert len(serve_spans) == n_threads * len(requests)
        # Thin view: span attrs are the RequestStats record.
        for sp in serve_spans:
            assert sp.status == "ok"
            assert "queue_wait_ms" in sp.attrs
            assert sp.attrs["ok"] is True
        assert rec.metrics.counter_value("serve.requests") == (
            n_threads * len(requests)
        )
        outcomes = {
            tuple(row["labels"].items())
            for row in rec.metrics.snapshot()["counters"]
            if row["name"] == "serve.requests"
        }
        assert any(
            ("outcome", "compiled") in key for key in outcomes
        )
        # Every span landed exactly once: ids are unique.
        ids = [s.span_id for s in rec.spans()]
        assert len(ids) == len(set(ids))


# ======================================================================
# Transparency: recording must not change results
# ======================================================================
class TestBitEquivalence:
    def test_compile_summary_identical_on_and_off(self):
        req = CompileRequest("welford", "r128c64")
        cache.clear()
        baseline = req.build_and_compile().summary()
        cache.clear()
        with obs.capture():
            recorded = req.build_and_compile().summary()
        assert recorded == baseline

    @pytest.mark.parametrize("seed", range(4))
    def test_random_conversions_identical_on_and_off(self, seed):
        rng = random.Random(seed)
        shape = {"dim0": 16, "dim1": 32}
        src = random_distributed_layout(rng, 9, shape=shape)
        dst = random_distributed_layout(rng, 9, shape=shape)
        machine = Machine(RTX4090, num_warps=4)
        registers = distributed_data(src, 4, 32)

        def run():
            plan = plan_conversion(
                src, dst, elem_bits=16, spec=RTX4090
            )
            converted, trace = machine.run_conversion(plan, registers)
            return (
                plan.program().instrs,
                converted.as_dict(),
                trace.cycles(),
            )

        cache.clear()
        instrs_off, data_off, cycles_off = run()
        cache.clear()
        with obs.capture():
            instrs_on, data_on, cycles_on = run()
        assert instrs_on == instrs_off
        assert data_on == data_off
        assert cycles_on == cycles_off


# ======================================================================
# Satellite: one CostModel per GpuSpec
# ======================================================================
class TestCostModelReuse:
    def test_cost_model_memoized_per_spec(self):
        assert cost_model(RTX4090) is cost_model(RTX4090)

    def test_trace_reuses_the_shared_model(self):
        t1, t2 = Trace(RTX4090), Trace(RTX4090)
        assert t1.cost_model() is t2.cost_model()
        assert t1.cost_model() is cost_model(RTX4090)

    def test_cycles_unchanged_by_memoization(self):
        trace = Trace(RTX4090)
        trace.emit(InstructionKind.GLOBAL_LOAD, count=3)
        trace.emit(InstructionKind.SHUFFLE, count=2)
        fresh = CostModel(RTX4090)
        assert trace.cycles() == fresh.total_cycles(trace.instructions)
