"""Tests for MMA-family layouts (Proposition 4.7): mma, wgmma, mfma,
and the operand (MMA Input) layouts."""

import pytest

from repro.core import LANE, REGISTER, WARP
from repro.core.errors import DimensionError
from repro.core.properties import is_distributed_layout
from repro.layouts import (
    AmdMfmaLayout,
    MmaOperandLayout,
    NvidiaMmaLayout,
    WgmmaLayout,
    WgmmaOperandLayout,
    mma_operand_tile,
    mma_output_tile,
)
from repro.layouts.mfma import mfma_operand_tile, mfma_output_tile


class TestMmaOutputTile:
    def test_ptx_accumulator_positions(self):
        """c0/c1 at (group, 2*tid4 + {0,1}); c2/c3 at (group + 8, .)."""
        tile = mma_output_tile()
        for lane in range(32):
            group, tid4 = lane >> 2, lane & 3
            for reg in range(4):
                out = tile.apply({REGISTER: reg, LANE: lane})
                expected_row = group + 8 * (reg >> 1)
                expected_col = 2 * tid4 + (reg & 1)
                assert out["dim0"] == expected_row
                assert out["dim1"] == expected_col

    def test_tile_is_bijective(self):
        tile = mma_output_tile()
        assert tile.is_invertible()
        assert tile.out_dim_sizes() == {"dim0": 16, "dim1": 8}


class TestMmaOperandTiles:
    def test_a_fragment_fp16(self):
        """m16n8k16 A fragment: a0..a7 per PTX."""
        tile = mma_operand_tile(0, kwidth=2)
        assert tile.out_dim_sizes() == {"dim0": 16, "dim1": 16}
        assert tile.in_dim_size(REGISTER) == 8
        lane = 5  # group 1, tid4 1
        # a0, a1: row = group, col = 2*tid4 + {0, 1}
        assert tile.apply({REGISTER: 0, LANE: lane}) == {
            "dim0": 1, "dim1": 2,
        }
        assert tile.apply({REGISTER: 1, LANE: lane}) == {
            "dim0": 1, "dim1": 3,
        }
        # a2, a3: row + 8.
        assert tile.apply({REGISTER: 2, LANE: lane})["dim0"] == 9
        # a4..: second K group (col + 8).
        assert tile.apply({REGISTER: 4, LANE: lane})["dim1"] == 10

    def test_b_fragment_transposed(self):
        tile = mma_operand_tile(1, kwidth=2)
        assert tile.out_dim_sizes() == {"dim0": 16, "dim1": 8}
        assert tile.in_dim_size(REGISTER) == 4

    def test_kwidth_scales_k(self):
        assert mma_operand_tile(0, 4).out_dim_size("dim1") == 32
        assert mma_operand_tile(0, 1).out_dim_size("dim1") == 8

    def test_bad_op_idx(self):
        with pytest.raises(DimensionError):
            mma_operand_tile(2, 2)


class TestNvidiaMmaLayout:
    def test_distributed(self):
        layout = NvidiaMmaLayout((2, 2)).to_linear((64, 64))
        assert is_distributed_layout(layout)
        assert layout.in_dim_size(WARP) == 4

    def test_register_replication(self):
        layout = NvidiaMmaLayout((2, 2)).to_linear((64, 64))
        # 64x64 over 32x16 warp-tiles: 2x4 replicas x 4 base regs.
        assert layout.in_dim_size(REGISTER) == 32

    def test_small_shape_broadcasts_warps(self):
        layout = NvidiaMmaLayout((2, 2)).to_linear((16, 8))
        free = layout.free_variable_masks()
        assert free[WARP] == 0b11
        assert is_distributed_layout(layout)

    def test_wrong_rank(self):
        with pytest.raises(DimensionError):
            NvidiaMmaLayout((2, 2)).to_linear((16, 8, 4))

    def test_instr_shape_guard(self):
        with pytest.raises(DimensionError):
            NvidiaMmaLayout((2, 2), instr_shape=(32, 8))


class TestMmaOperandLayout:
    def test_a_operand_warps_broadcast_along_n(self):
        parent = NvidiaMmaLayout((2, 2))
        layout = MmaOperandLayout(parent, 0, 2).to_linear((64, 32))
        free = layout.free_variable_masks()
        # The N-warp bit (bit 1 by construction) holds duplicates.
        assert free[WARP] & 0b10
        assert is_distributed_layout(layout)

    def test_b_operand_warps_broadcast_along_m(self):
        parent = NvidiaMmaLayout((2, 2))
        layout = MmaOperandLayout(parent, 1, 2).to_linear((32, 64))
        free = layout.free_variable_masks()
        assert free[WARP] & 0b01
        assert is_distributed_layout(layout)

    def test_operand_covers_full_k(self):
        parent = NvidiaMmaLayout((2, 2))
        layout = MmaOperandLayout(parent, 0, 2).to_linear((64, 128))
        assert layout.total_out_size() == 64 * 128


class TestWgmma:
    def test_warp_group_structure(self):
        layout = WgmmaLayout((4, 1), instr_n=64).to_linear((64, 64))
        assert is_distributed_layout(layout)
        # Warps 0..3 stack along M in 16-row slabs.
        for warp in range(4):
            out = layout.apply({REGISTER: 0, LANE: 0, WARP: warp})
            assert out["dim0"] == 16 * warp

    def test_needs_four_warps_along_m(self):
        with pytest.raises(DimensionError):
            WgmmaLayout((2, 2))

    def test_instr_n_range(self):
        with pytest.raises(DimensionError):
            WgmmaLayout((4, 1), instr_n=4)

    def test_operand_a(self):
        parent = WgmmaLayout((4, 1), instr_n=64)
        layout = WgmmaOperandLayout(parent, 2).to_linear((64, 64))
        assert is_distributed_layout(layout)


class TestMfma:
    def test_uses_64_lanes(self):
        tile = mfma_output_tile()
        assert tile.in_dim_size(LANE) == 64
        assert tile.out_dim_sizes() == {"dim0": 32, "dim1": 32}
        assert tile.is_invertible()

    def test_full_layout(self):
        layout = AmdMfmaLayout((2, 2)).to_linear((64, 64))
        assert is_distributed_layout(layout)
        assert layout.in_dim_size(LANE) == 64
        assert layout.in_dim_size(REGISTER) == 16

    def test_operand_tiles(self):
        a = mfma_operand_tile(0)
        b = mfma_operand_tile(1)
        assert a.out_dim_sizes() == {"dim0": 32, "dim1": 8}
        assert b.out_dim_sizes() == {"dim0": 8, "dim1": 32}
        assert a.is_invertible() and b.is_invertible()

    def test_bad_operand(self):
        with pytest.raises(DimensionError):
            mfma_operand_tile(3)

    def test_instr_shape_guard(self):
        with pytest.raises(DimensionError):
            AmdMfmaLayout((2, 2), instr_shape=(16, 16))
