"""Tests for sliced layouts (Proposition 4.8) and the legacy baseline."""

import pytest

from repro.core import LANE, REGISTER, WARP
from repro.core.errors import DimensionError, LegacyUnsupportedError
from repro.core.properties import is_distributed_layout
from repro.layouts import (
    BlockedLayout,
    MmaOperandLayout,
    NvidiaMmaLayout,
    SlicedLayout,
    WgmmaLayout,
    slice_linear_layout,
)
from repro.layouts.legacy import LegacyLayoutSystem, layout_kind
from repro.mxfp.types import F16, F64, F8E5M2, I8


class TestSliceLinear:
    def test_surjective_not_injective(self):
        parent = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        sliced = slice_linear_layout(parent, 1)
        assert sliced.is_surjective()
        assert not sliced.is_injective()
        assert sliced.out_dim_sizes() == {"dim0": 16}

    def test_still_distributed(self):
        """Remark after Prop 4.8: zero columns appear, surjectivity
        survives — the layout stays in the Definition 4.10 family."""
        parent = NvidiaMmaLayout((2, 2)).to_linear((32, 32))
        for dim in (0, 1):
            assert is_distributed_layout(slice_linear_layout(parent, dim))

    def test_duplicates_match_removed_dim(self):
        parent = BlockedLayout((1, 1), (4, 8), (1, 1), (1, 0)).to_linear(
            (4, 8)
        )
        sliced = slice_linear_layout(parent, 1)
        # Lanes that differed only in dim1 now hold duplicates.
        free = sliced.free_variable_masks()
        assert free[LANE] == 0b111  # the three dim1 lane bits

    def test_dim_out_of_range(self):
        parent = BlockedLayout((1, 1), (4, 8), (1, 1), (1, 0)).to_linear(
            (4, 8)
        )
        with pytest.raises(DimensionError):
            slice_linear_layout(parent, 2)


class TestSlicedDescriptor:
    def test_round_trip_shapes(self):
        desc = SlicedLayout(
            BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)), 1, 32
        )
        assert desc.rank == 1
        assert desc.parent_shape((16,)) == [16, 32]
        layout = desc.to_linear((16,))
        assert layout.out_dim_sizes() == {"dim0": 16}

    def test_kind_string(self):
        desc = SlicedLayout(
            BlockedLayout((1, 1), (4, 8), (1, 1), (1, 0)), 0, 4
        )
        assert layout_kind(desc) == "sliced<blocked>"


class TestLegacySystem:
    def setup_method(self):
        self.legacy = LegacyLayoutSystem()
        self.blocked = BlockedLayout((1, 1), (4, 8), (2, 2), (1, 0))
        self.mma = NvidiaMmaLayout((2, 2))
        self.operand = MmaOperandLayout(self.mma, 0, 2)

    def test_kind_dispatch(self):
        assert layout_kind(self.blocked) == "blocked"
        assert layout_kind(self.mma) == "mma"
        assert layout_kind(self.operand) == "mma_input"
        assert layout_kind(WgmmaLayout((4, 1))) == "mma"
        assert layout_kind(object()) == "custom"

    def test_cross_kind_comparison_fails(self):
        """The welford limitation: legacy cannot compare kinds."""
        sliced = SlicedLayout(self.blocked, 1, 8)
        assert not self.legacy.can_compare(sliced, self.blocked)
        assert self.legacy.can_compare(self.blocked, self.blocked)

    def test_conversion_matrix(self):
        assert self.legacy.supports_conversion(self.blocked, self.mma)
        assert self.legacy.supports_conversion(self.mma, self.blocked)
        assert not self.legacy.supports_conversion(
            self.operand, self.blocked
        )
        with pytest.raises(LegacyUnsupportedError):
            self.legacy.check_conversion(self.operand, self.blocked)

    def test_reduction_support(self):
        assert self.legacy.supports_reduction(self.blocked)
        assert self.legacy.supports_reduction(self.mma)
        assert not self.legacy.supports_reduction(self.operand)
        sliced_mma = SlicedLayout(self.mma, 1, 8)
        assert not self.legacy.supports_reduction(sliced_mma)
        with pytest.raises(LegacyUnsupportedError):
            self.legacy.check_reduction(self.operand)

    def test_mma_shape_gate_large_ok(self):
        assert self.legacy.supports_mma_shape(F16, F16, 64, 64, 64)

    def test_mma_shape_gate_small_k_fails(self):
        """Low-precision operands need a full K tile in legacy."""
        assert not self.legacy.supports_mma_shape(I8, F8E5M2, 32, 16, 16)
        with pytest.raises(LegacyUnsupportedError):
            self.legacy.check_mma_shape(I8, F8E5M2, 32, 16, 16)

    def test_mma_shape_gate_small_mn_fails(self):
        assert not self.legacy.supports_mma_shape(F16, F16, 8, 8, 64)

    def test_wide_dtypes_more_permissive(self):
        # Wide dtypes have kwidth 1, so a modest K already satisfies
        # the legacy operand-tile requirement.
        assert self.legacy.supports_mma_shape(F64, F64, 16, 8, 16)
        assert not self.legacy.supports_mma_shape(F64, F64, 16, 8, 8)
