"""Tests for blocked layouts (Proposition 4.6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import LANE, REGISTER, WARP
from repro.core.errors import DimensionError
from repro.core.properties import is_distributed_layout
from repro.layouts import BlockedLayout, default_blocked_layout


class TestConstruction:
    def test_figure1_layout_a(self):
        """Figure 1(a) as a blocked layout descriptor."""
        desc = BlockedLayout((2, 2), (4, 8), (2, 1), (1, 0))
        layout = desc.to_linear((16, 16))
        out = layout.apply({REGISTER: 1, LANE: 9, WARP: 0})
        assert (out["dim0"], out["dim1"]) == (2, 3)

    def test_rank_validation(self):
        with pytest.raises(DimensionError):
            BlockedLayout((1,), (4, 8), (2, 2), (1, 0))

    def test_order_validation(self):
        with pytest.raises(DimensionError):
            BlockedLayout((1, 1), (4, 8), (2, 2), (0, 0))

    def test_power_of_two_validation(self):
        with pytest.raises(ValueError):
            BlockedLayout((3, 1), (4, 8), (2, 2), (1, 0))

    def test_tile_shape(self):
        desc = BlockedLayout((2, 2), (4, 8), (2, 1), (1, 0))
        assert desc.tile_shape() == [16, 16]
        assert desc.num_warps() == 2
        assert desc.threads_per_warp_total() == 32


class TestTiling:
    def test_exact_tile(self):
        desc = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0))
        layout = desc.to_linear((8, 32))
        assert layout.in_dim_size(REGISTER) == 2
        assert is_distributed_layout(layout)
        assert layout.is_invertible()

    def test_replication_grows_registers(self):
        """A tensor larger than the tile wraps into extra registers."""
        desc = BlockedLayout((1, 1), (4, 8), (2, 2), (1, 0))
        layout = desc.to_linear((32, 64))
        # Tile is 8x16; tensor needs 4x4 = 16 replicas.
        assert layout.in_dim_size(REGISTER) == 16
        assert is_distributed_layout(layout)

    def test_broadcast_shrinks_to_tensor(self):
        """A tile larger than the tensor broadcasts (zero columns)."""
        desc = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0))
        layout = desc.to_linear((8, 16))
        assert layout.in_dim_size(WARP) == 4
        free = layout.free_variable_masks()
        assert free[WARP] != 0 or free[LANE] != 0
        assert is_distributed_layout(layout)

    def test_replication_order_follows_order(self):
        """Replicas walk the fastest dim first."""
        desc = BlockedLayout((1, 1), (8, 4), (4, 1), (1, 0))
        layout = desc.to_linear((32, 16))
        # Tile 32x4: replicas along dim1 (order[0] = 1) come first.
        assert layout.basis_image(REGISTER, 0) == (0, 4)
        assert layout.basis_image(REGISTER, 1) == (0, 8)

    def test_rank3(self):
        desc = BlockedLayout((1, 1, 2), (1, 4, 8), (2, 2, 1), (2, 1, 0))
        layout = desc.to_linear((4, 8, 16))
        assert is_distributed_layout(layout)
        assert layout.out_dim_sizes() == {
            "dim0": 4, "dim1": 8, "dim2": 16,
        }

    def test_shape_rank_mismatch(self):
        desc = BlockedLayout((1, 1), (4, 8), (2, 2), (1, 0))
        with pytest.raises(DimensionError):
            desc.to_linear((8, 8, 8))


class TestDefaultLayout:
    def test_covers_shape(self):
        desc = default_blocked_layout((128, 64), num_warps=4)
        layout = desc.to_linear((128, 64))
        assert is_distributed_layout(layout)
        assert layout.total_out_size() == 128 * 64

    def test_threads_fill_fast_dim(self):
        desc = default_blocked_layout((64, 64))
        assert desc.threads_per_warp[1] >= desc.threads_per_warp[0]

    def test_1d(self):
        desc = default_blocked_layout((4096,), num_warps=4)
        layout = desc.to_linear((4096,))
        assert is_distributed_layout(layout)

    @given(
        st.sampled_from([16, 32, 64, 128, 256]),
        st.sampled_from([1, 2, 16, 64]),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_distributed(self, rows, cols, warps):
        desc = default_blocked_layout((rows, cols), num_warps=warps)
        layout = desc.to_linear((rows, cols))
        assert is_distributed_layout(layout)
        assert layout.total_out_size() == rows * cols
