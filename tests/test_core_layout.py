"""Unit tests for the LinearLayout core (repro.core.layout).

Includes the paper's running example: Layout A of Figure 1 / Table 1.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DimensionError,
    LANE,
    LayoutError,
    LinearLayout,
    NonInvertibleLayoutError,
    REGISTER,
    WARP,
    make_identity,
)
from repro.f2 import F2Matrix


def layout_a():
    """Figure 1(a): 16x16 tensor, 2x2 regs, 4x8 lanes, 2x1 warps.

    Built fastest-dim-first (dim1 = j is the fastest), matching the
    matrix displayed in Section 4.1.
    """
    return (
        make_identity([(2, REGISTER, "dim1"), (2, REGISTER, "dim0")])
        * make_identity([(8, LANE, "dim1"), (4, LANE, "dim0")])
        * make_identity([(2, WARP, "dim0")])
    )


class TestPaperExample:
    def test_table1_mappings(self):
        a = layout_a()
        cases = [
            # (reg, lane, warp) -> (i, j) rows of Table 1
            ((0, 0, 0), (0, 0)),
            ((1, 0, 0), (0, 1)),
            ((0, 1, 0), (0, 2)),
            ((1, 1, 0), (0, 3)),
            ((2, 0, 0), (1, 0)),
            ((3, 0, 0), (1, 1)),
            ((0, 9, 0), (2, 2)),
            ((1, 9, 0), (2, 3)),
            ((2, 9, 0), (3, 2)),
            ((3, 9, 0), (3, 3)),
        ]
        for (r, l, w), (i, j) in cases:
            out = a.apply({REGISTER: r, LANE: l, WARP: w})
            assert (out["dim0"], out["dim1"]) == (i, j), (r, l, w)

    def test_section41_worked_example(self):
        """r1 in t9 of w0 lands at (2, 3) = locw0 ^ loct9 ^ locr1."""
        a = layout_a()
        out = a.apply({REGISTER: 1, LANE: 9, WARP: 0})
        assert (out["dim0"], out["dim1"]) == (2, 3)

    def test_warp_offset(self):
        a = layout_a()
        out = a.apply({REGISTER: 0, LANE: 0, WARP: 1})
        assert (out["dim0"], out["dim1"]) == (8, 0)

    def test_bijective(self):
        a = layout_a()
        assert a.is_surjective()
        assert a.is_injective()
        assert a.is_invertible()

    def test_inverse_round_trip(self):
        a = layout_a()
        inv = a.invert()
        back = inv.apply({"dim0": 2, "dim1": 3})
        assert back == {REGISTER: 1, LANE: 9, WARP: 0}


class TestConstruction:
    def test_identity1d(self):
        l = LinearLayout.identity1d(8, REGISTER, "dim0")
        for v in range(8):
            assert l.apply({REGISTER: v})["dim0"] == v

    def test_zeros1d_broadcasts(self):
        l = LinearLayout.zeros1d(4, REGISTER, "dim0")
        for v in range(4):
            assert l.apply({REGISTER: v})["dim0"] == 0

    def test_strided1d(self):
        l = LinearLayout.strided1d(4, 4, REGISTER, "dim0")
        assert [l.apply({REGISTER: v})["dim0"] for v in range(4)] == [
            0, 4, 8, 12,
        ]

    def test_empty(self):
        e = LinearLayout.empty()
        assert e.total_in_bits() == 0
        assert e.total_out_bits() == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            LinearLayout({}, {"dim0": 3})

    def test_coordinate_out_of_range_rejected(self):
        with pytest.raises(DimensionError):
            LinearLayout({REGISTER: [(4,)]}, {"dim0": 4})

    def test_wrong_arity_rejected(self):
        with pytest.raises(DimensionError):
            LinearLayout({REGISTER: [(1, 1)]}, {"dim0": 2})

    def test_surjectivity_enforced(self):
        with pytest.raises(LayoutError):
            LinearLayout({REGISTER: [(0,)]}, {"dim0": 2})

    def test_surjectivity_opt_out(self):
        l = LinearLayout(
            {REGISTER: [(0,)]}, {"dim0": 2}, require_surjective=False
        )
        assert not l.is_surjective()


class TestApplication:
    def test_missing_dims_default_zero(self):
        a = layout_a()
        out = a.apply({REGISTER: 3})
        assert (out["dim0"], out["dim1"]) == (1, 1)

    def test_unknown_dim_rejected(self):
        with pytest.raises(DimensionError):
            layout_a().apply({"bogus": 1})

    def test_out_of_range_rejected(self):
        with pytest.raises(DimensionError):
            layout_a().apply({REGISTER: 4})

    def test_apply_flat_row_major(self):
        # 2x4 layout: flat = i*4 + j by default.
        l = make_identity([(4, REGISTER, "dim1"), (2, REGISTER, "dim0")])
        l = l.transpose_outs(["dim0", "dim1"])
        assert l.apply_flat({REGISTER: 0b101}) == 0b101

    def test_unflatten_round_trip(self):
        # Canonical out-dim order (dim0, dim1): row-major flattening.
        a = layout_a().transpose_outs(["dim0", "dim1"])
        for flat in (0, 1, 100, 255):
            coords = a.unflatten_out(flat)
            assert coords["dim0"] * 16 + coords["dim1"] == flat


class TestMatrixRoundTrip:
    def test_to_from_matrix(self):
        a = layout_a()
        m = a.to_matrix()
        rebuilt = LinearLayout.from_matrix(
            m, a.in_dim_sizes(), a.out_dim_sizes()
        )
        assert rebuilt == a

    def test_matrix_shape(self):
        a = layout_a()
        assert a.to_matrix().shape == (8, 8)

    def test_from_matrix_shape_mismatch(self):
        with pytest.raises(DimensionError):
            LinearLayout.from_matrix(
                F2Matrix.identity(3), {REGISTER: 4}, {"dim0": 4}
            )


class TestOperators:
    def test_product_block_diagonal(self):
        a = LinearLayout.identity1d(4, REGISTER, "dim0")
        b = LinearLayout.identity1d(2, LANE, "dim1")
        p = a * b
        assert p.in_dim_sizes() == {REGISTER: 4, LANE: 2}
        assert p.out_dim_sizes() == {"dim0": 4, "dim1": 2}

    def test_product_shared_dims_shift(self):
        a = LinearLayout.identity1d(2, REGISTER, "dim0")
        b = LinearLayout.identity1d(4, REGISTER, "dim0")
        p = a * b
        assert p.in_dim_size(REGISTER) == 8
        assert p.out_dim_size("dim0") == 8
        # b's bits occupy the high positions of both spaces.
        assert p.apply({REGISTER: 0b010})["dim0"] == 0b010

    def test_compose(self):
        inner = LinearLayout.identity1d(4, REGISTER, "mid")
        outer = LinearLayout.strided1d(4, 2, "mid", "dim0")
        c = outer.compose(inner)
        assert c.apply({REGISTER: 3})["dim0"] == 6

    def test_compose_dim_mismatch(self):
        inner = LinearLayout.identity1d(4, REGISTER, "x")
        outer = LinearLayout.identity1d(4, "y", "dim0")
        with pytest.raises(DimensionError):
            outer.compose(inner)

    def test_invert_requires_bijection(self):
        l = LinearLayout(
            {REGISTER: [(1,), (0,)]}, {"dim0": 2}, require_surjective=False
        )
        with pytest.raises(NonInvertibleLayoutError):
            l.invert()

    def test_right_inverse_of_broadcast(self):
        # Surjective but not injective: second register bit broadcasts.
        l = LinearLayout(
            {REGISTER: [(1,), (0,)]}, {"dim0": 2}, require_surjective=True
        )
        rinv = l.right_inverse()
        # The right inverse picks the canonical (free-bits-zero) owner.
        assert rinv.apply({"dim0": 1})[REGISTER] == 1

    def test_invert_and_compose_identity(self):
        a = layout_a()
        conv = a.invert_and_compose(a)
        for r, l, w in [(0, 0, 0), (3, 17, 1), (2, 9, 0)]:
            out = conv.apply({REGISTER: r, LANE: l, WARP: w})
            assert out == {REGISTER: r, LANE: l, WARP: w}

    def test_invert_and_compose_shape_mismatch(self):
        a = LinearLayout.identity1d(4, REGISTER, "dim0")
        b = LinearLayout.identity1d(8, REGISTER, "dim0")
        with pytest.raises(DimensionError):
            a.invert_and_compose(b)


class TestDimSurgery:
    def test_sublayout(self):
        a = layout_a()
        s = a.sublayout([REGISTER], ["dim1"])
        assert s.in_dims == [REGISTER]
        assert s.out_dims == ["dim1"]
        assert s.apply({REGISTER: 1})["dim1"] == 1

    def test_rename(self):
        a = LinearLayout.identity1d(4, REGISTER, "dim0")
        assert a.rename_in_dim(REGISTER, LANE).in_dims == [LANE]
        assert a.rename_out_dim("dim0", "off").out_dims == ["off"]

    def test_rename_missing(self):
        a = LinearLayout.identity1d(4, REGISTER, "dim0")
        with pytest.raises(DimensionError):
            a.rename_in_dim("nope", LANE)
        with pytest.raises(DimensionError):
            a.rename_out_dim("nope", "off")

    def test_transpose_outs(self):
        a = layout_a()
        t = a.transpose_outs(["dim1", "dim0"])
        out = t.apply({REGISTER: 1, LANE: 9, WARP: 0})
        assert (out["dim1"], out["dim0"]) == (3, 2)

    def test_resize_grow_adds_broadcast(self):
        a = LinearLayout.identity1d(2, REGISTER, "dim0")
        g = a.resize_in_dim(REGISTER, 8)
        assert g.in_dim_size(REGISTER) == 8
        assert g.apply({REGISTER: 0b110})["dim0"] == 0
        assert g.apply({REGISTER: 0b111})["dim0"] == 1

    def test_resize_shrink(self):
        a = LinearLayout.identity1d(8, REGISTER, "dim0")
        s = a.resize_in_dim(REGISTER, 2)
        assert s.in_dim_size(REGISTER) == 2

    def test_concat_ins(self):
        a = LinearLayout.identity1d(4, REGISTER, "dim0")
        b = LinearLayout(
            {LANE: [(0,), (0,)]}, {"dim0": 4}, require_surjective=False
        )
        c = a.concat_ins(b)
        assert set(c.in_dims) == {REGISTER, LANE}


class TestFreeVariables:
    def test_zero_columns_detected(self):
        l = LinearLayout(
            {REGISTER: [(1,), (0,), (2,)]},
            {"dim0": 4},
            require_surjective=True,
        )
        assert l.zero_basis_masks()[REGISTER] == 0b010
        assert l.free_variable_masks()[REGISTER] == 0b010

    def test_duplicate_column_is_free(self):
        l = LinearLayout(
            {REGISTER: [(1,), (1,)], LANE: [(2,)]},
            {"dim0": 4},
            require_surjective=True,
        )
        assert l.free_variable_masks()[REGISTER] == 0b10

    def test_equivalent_vs_equal(self):
        a = layout_a()
        assert a.equivalent(a)
        b = a.transpose_ins([WARP, LANE, REGISTER])
        assert a.equivalent(b)
        assert a != b


@given(st.integers(0, 3), st.integers(0, 31), st.integers(0, 1))
@settings(max_examples=64, deadline=None)
def test_layout_a_linearity(r, l, w):
    """f(x ^ y) == f(x) ^ f(y) — the defining property."""
    a = layout_a()
    x = {REGISTER: r, LANE: l, WARP: w}
    y = {REGISTER: 3 - r, LANE: 31 - l, WARP: 1 - w}
    fx = a.apply(x)
    fy = a.apply(y)
    xy = {k: x[k] ^ y[k] for k in x}
    fxy = a.apply(xy)
    assert fxy == {k: fx[k] ^ fy[k] for k in fx}
