"""Tests for the kernel-model suite and the benchmark harness."""

import numpy as np
import pytest

from repro.bench.harness import Table, geomean
from repro.engine import LayoutEngine
from repro.hardware import PLATFORMS, RTX4090
from repro.interp import execute_graph
from repro.kernels import KERNELS, kernel_names


class TestRegistry:
    def test_has_the_suite(self):
        names = kernel_names()
        assert len(names) >= 20
        for required in ("gemm", "int4_gemm", "template_attention",
                         "welford", "gather_gemv", "rope", "embedding"):
            assert required in names

    def test_every_model_has_cases_and_platforms(self):
        for model in KERNELS.values():
            assert model.cases
            assert model.platforms
            for platform in model.platforms:
                assert platform in PLATFORMS

    def test_case_kwargs(self):
        case = KERNELS["gemm"].cases[0]
        assert isinstance(case.kwargs(), dict)


class TestCompilation:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_first_case_compiles_both_modes(self, name):
        model = KERNELS[name]
        case = model.cases[0]
        spec = PLATFORMS[model.platforms[0]]
        for mode in ("linear", "legacy"):
            compiled = LayoutEngine(spec, mode).compile(
                model.build(**case.kwargs()).graph
            )
            assert compiled.ok, (name, mode, compiled.error)
            assert compiled.cycles() > 0

    @pytest.mark.parametrize(
        "name", ["gemm", "softmax", "welford", "rope"]
    )
    def test_linear_not_slower(self, name):
        # The smallest tiles may regress slightly (the paper's Figure
        # 9 bottoms out at 0.96x), so check a mid-sized case.
        model = KERNELS[name]
        case = model.cases[min(1, len(model.cases) - 1)]
        spec = PLATFORMS[model.platforms[0]]
        linear = LayoutEngine(spec, "linear").compile(
            model.build(**case.kwargs()).graph
        )
        legacy = LayoutEngine(spec, "legacy").compile(
            model.build(**case.kwargs()).graph
        )
        assert linear.cycles() <= legacy.cycles() * 1.05


class TestNumericEquivalence:
    @pytest.mark.parametrize("name", ["softmax", "layer_norm", "gemm"])
    def test_compiled_graph_preserves_semantics(self, name):
        model = KERNELS[name]
        case = model.cases[0]
        rng = np.random.default_rng(42)

        def inputs_for(graph):
            from repro.engine.ir import OpKind

            out = []
            for op in graph.ops:
                if op.kind == OpKind.LOAD:
                    out.append(rng.standard_normal(op.output.shape))
            return out

        reference_graph = model.build(**case.kwargs()).graph
        inputs = inputs_for(reference_graph)
        reference = execute_graph(reference_graph, inputs).stores

        compiled = LayoutEngine(RTX4090, "linear").compile(
            model.build(**case.kwargs()).graph
        )
        rng = np.random.default_rng(42)
        result = execute_graph(compiled.graph, inputs).stores
        for want, got in zip(reference, result):
            assert np.allclose(want, got), name


class TestHarness:
    def test_table_formatting(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2.5)
        text = table.format()
        assert "T" in text and "2.50" in text

    def test_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_to_dict(self):
        table = Table("T", ["a"])
        table.add_row(1)
        d = table.to_dict()
        assert d["rows"] == [[1]]


class TestBenchModules:
    """Smoke tests: every experiment runs and has the paper's shape."""

    def test_fig2_smoke(self):
        from repro.bench.fig2 import run_fig2

        table = run_fig2(sizes=(32, 64))
        assert len(table.rows) == 4

    def test_table3_pattern(self):
        from repro.bench.table3 import run_table3

        table = run_table3()
        gains = table.column("gain")
        assert "+700%" in gains

    def test_table4_pass_rates(self):
        from repro.bench.table4 import run_table4

        table = run_table4()
        linear_passes = table.column("Triton-Linear pass")
        assert all(p.split("/")[0] == p.split("/")[1]
                   for p in linear_passes)

    @pytest.mark.slow
    def test_fig7_all_above_one(self):
        from repro.bench.fig7 import run_fig7

        table = run_fig7(sizes=(32, 64))
        assert all(s > 1.0 for s in table.column("speedup"))

    @pytest.mark.slow
    def test_fig8_crossover(self):
        from repro.bench.fig8 import run_fig8

        table = run_fig8(axis_sizes=(2, 8, 32, 64))
        f16 = [r[4] for r in table.rows if r[1] == "f16"]
        assert f16[0] > f16[-1]
        assert f16[-1] <= 1.05

    @pytest.mark.slow
    def test_fig6_f16_dominates(self):
        from repro.bench.fig6 import run_fig6

        table = run_fig6(sizes=(1024,))
        rows = {r[0]: r[4] for r in table.rows}
        assert rows["f16"] > rows["bf16"]
