"""Deeper tests of the benchmark modules' internals."""

import numpy as np
import pytest

from repro.bench.fig2 import transpose_conversion_cycles
from repro.bench.fig8 import gather_layout
from repro.bench.robustness import CASES, run_robustness
from repro.bench.table5 import linear_case_passes, shape_sweep
from repro.codegen.gather import plan_gather
from repro.hardware import GH200
from repro.mxfp import F16, F64, F8E5M2, I16, I8, dtype_by_name


class TestFig2Internals:
    def test_modes_differ(self):
        legacy = transpose_conversion_cycles(64, 64, GH200, "legacy")
        linear = transpose_conversion_cycles(64, 64, GH200, "linear")
        assert legacy != linear

    def test_cycles_positive(self):
        assert transpose_conversion_cycles(32, 32, GH200, "linear") > 0


class TestFig8Internals:
    def test_gather_layout_keeps_axis_in_warp(self):
        for axis in (2, 8, 32, 128):
            layout = gather_layout(512, axis)
            plan = plan_gather(layout, 1)
            assert plan.rounds_per_position == min(axis, 32)

    def test_rounds_monotone(self):
        rounds = [
            plan_gather(gather_layout(512, a), 1).total_shuffles
            for a in (2, 4, 8, 16, 32)
        ]
        assert rounds == sorted(rounds)


class TestTable5Internals:
    def test_shape_sweep_scales_with_precision(self):
        narrow = shape_sweep(I8, F8E5M2)
        wide = shape_sweep(I16, F64)
        assert len(narrow) > len(wide)

    @pytest.mark.parametrize(
        "a,b", [("i8", "f16"), ("i16", "f8"), ("i32", "f64")]
    )
    def test_linear_numeric_check_passes(self, a, b):
        assert linear_case_passes(
            dtype_by_name(a), dtype_by_name(b), 16, 8, 32
        )


class TestRobustnessInternals:
    def test_every_case_returns_triple(self):
        for case in CASES:
            name, legacy_ok, linear_ok = case()
            assert isinstance(name, str)
            assert linear_ok and not legacy_ok

    def test_table_shape(self):
        table = run_robustness()
        assert len(table.rows) == len(CASES)
