"""Conversion planner tests — including the end-to-end property:
every plan, executed on the simulated GPU, routes every element to the
slot the destination layout demands."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import (
    ConversionKind,
    classify_conversion,
    plan_conversion,
)
from repro.core import LANE, REGISTER, WARP
from repro.core.errors import LayoutError
from repro.gpusim import Machine, distributed_data
from repro.gpusim.registers import assert_matches_layout
from repro.hardware import GH200, MI250, RTX4090
from repro.layouts import (
    BlockedLayout,
    MmaOperandLayout,
    NvidiaMmaLayout,
    SlicedLayout,
)
from repro.core.reshape import transpose_layout


def run_and_verify(src, dst, elem_bits=16, spec=RTX4090, **kwargs):
    plan = plan_conversion(src, dst, elem_bits, spec=spec, **kwargs)
    num_warps = max(src.in_dim_size(WARP), dst.in_dim_size(WARP))
    machine = Machine(spec, num_warps=num_warps)
    registers = distributed_data(src, num_warps, spec.warp_size)
    converted, trace = machine.run_conversion(plan, registers)
    assert_matches_layout(converted, dst)
    return plan, trace


class TestClassification:
    def test_noop(self):
        a = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        assert classify_conversion(a, a) == ConversionKind.NOOP

    def test_equivalent_sliced_blocked_is_noop(self):
        """The welford case: different kinds, same map."""
        blocked1d = BlockedLayout((1,), (32,), (4,), (0,)).to_linear(
            (128,)
        )
        parent = BlockedLayout((1, 1), (32, 1), (4, 1), (1, 0))
        sliced = SlicedLayout(parent, 1, 1).to_linear((128,))
        assert classify_conversion(sliced, blocked1d) == (
            ConversionKind.NOOP
        )

    def test_register_permutation(self):
        a = BlockedLayout((2, 1), (4, 8), (2, 2), (0, 1)).to_linear(
            (16, 32)
        )
        # Same lanes/warps; registers walk the other direction.
        b_bases = a.bases
        b_bases[REGISTER] = list(reversed(b_bases[REGISTER]))
        from repro.core import LinearLayout

        b = LinearLayout(b_bases, a.out_dim_sizes())
        assert classify_conversion(a, b) == ConversionKind.REGISTER

    def test_shuffle(self):
        a = BlockedLayout((1, 2), (8, 4), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        b = BlockedLayout((2, 1), (4, 8), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        assert classify_conversion(a, b) == ConversionKind.SHUFFLE

    def test_shared_when_warps_move(self):
        a = BlockedLayout((1, 1), (4, 8), (4, 1), (1, 0)).to_linear(
            (16, 32)
        )
        b = BlockedLayout((1, 1), (4, 8), (1, 4), (1, 0)).to_linear(
            (16, 32)
        )
        assert classify_conversion(a, b) == ConversionKind.SHARED

    def test_shape_mismatch_rejected(self):
        a = BlockedLayout((1, 1), (4, 8), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        b = BlockedLayout((1, 1), (4, 8), (2, 2), (1, 0)).to_linear(
            (32, 32)
        )
        with pytest.raises(LayoutError):
            classify_conversion(a, b)


class TestExecutedPlans:
    def test_register_plan(self):
        a = BlockedLayout((2, 1), (4, 8), (2, 2), (0, 1)).to_linear(
            (16, 32)
        )
        from repro.core import LinearLayout

        b_bases = a.bases
        b_bases[REGISTER] = list(reversed(b_bases[REGISTER]))
        b = LinearLayout(b_bases, a.out_dim_sizes())
        plan, trace = run_and_verify(a, b)
        assert plan.kind == "register"
        assert trace.cycles() == 0  # register renaming is free

    def test_shuffle_plan(self):
        a = BlockedLayout((1, 2), (8, 4), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        b = BlockedLayout((2, 1), (4, 8), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        plan, trace = run_and_verify(a, b)
        assert plan.kind == "shuffle"
        assert not plan.uses_shared_memory()

    def test_shared_plan_blocked_to_mma(self):
        a = BlockedLayout((1, 4), (8, 4), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        b = NvidiaMmaLayout((2, 2)).to_linear((32, 64))
        plan, trace = run_and_verify(a, b)
        assert plan.kind == "shared"
        assert trace.histogram().get("bar.sync", 0) == 1

    def test_shared_plan_to_operand(self):
        a = BlockedLayout((1, 8), (8, 4), (2, 2), (1, 0)).to_linear(
            (64, 64)
        )
        b = MmaOperandLayout(NvidiaMmaLayout((2, 2)), 0, 2).to_linear(
            (64, 64)
        )
        run_and_verify(a, b)

    def test_transpose_conversion(self):
        src = BlockedLayout((1, 4), (4, 8), (2, 2), (1, 0)).to_linear(
            (32, 32)
        )
        transposed = transpose_layout(src, (1, 0))
        dst = BlockedLayout((1, 4), (4, 8), (2, 2), (1, 0)).to_linear(
            (32, 32)
        )
        plan, _ = run_and_verify(transposed, dst, elem_bits=8)
        assert plan.kind == "shared"

    def test_padded_mode(self):
        a = BlockedLayout((1, 4), (8, 4), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        b = NvidiaMmaLayout((2, 2)).to_linear((32, 64))
        plan, _ = run_and_verify(
            a, b, swizzle_mode="padded", allow_shuffle=False,
            dedupe_broadcast=False,
        )
        assert any("padded" in n for n in plan.notes)

    def test_shuffle_disabled_falls_back_to_shared(self):
        a = BlockedLayout((1, 2), (8, 4), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        b = BlockedLayout((2, 1), (4, 8), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        plan, _ = run_and_verify(a, b, allow_shuffle=False)
        assert plan.kind == "shared"

    def test_broadcast_source_dedupe(self):
        """A source with warp duplicates stores each element once."""
        a = BlockedLayout((2, 2), (8, 4), (1, 4), (1, 0)).to_linear(
            (16, 16)
        )
        b = NvidiaMmaLayout((2, 2)).to_linear((16, 16))
        plan, _ = run_and_verify(a, b)
        assert plan.kind == "shared"

    def test_amd_warp64(self):
        a = BlockedLayout((1, 2), (8, 8), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        from repro.layouts import AmdMfmaLayout

        b = AmdMfmaLayout((2, 2)).to_linear((32, 64))
        run_and_verify(a, b, spec=MI250)


BLOCKED_PARAMS = st.sampled_from([
    ((1, 2), (4, 8), (2, 2), (1, 0)),
    ((2, 1), (8, 4), (2, 2), (1, 0)),
    ((1, 1), (4, 8), (4, 1), (1, 0)),
    ((2, 2), (8, 4), (1, 4), (0, 1)),
    ((1, 4), (16, 2), (2, 2), (1, 0)),
    ((4, 1), (2, 16), (2, 2), (0, 1)),
])


@given(BLOCKED_PARAMS, BLOCKED_PARAMS, st.sampled_from([8, 16, 32]))
@settings(max_examples=25, deadline=None)
def test_any_blocked_pair_converts_correctly(pa, pb, elem_bits):
    """Property: plan_conversion + Machine move every element right,
    whatever path the planner picks."""
    shape = (32, 32)
    src = BlockedLayout(*pa).to_linear(shape)
    dst = BlockedLayout(*pb).to_linear(shape)
    run_and_verify(src, dst, elem_bits=elem_bits)


@given(
    BLOCKED_PARAMS,
    st.sampled_from([(1, 1), (2, 2), (4, 1), (1, 4), (2, 1)]),
    st.sampled_from([16, 32]),
)
@settings(max_examples=15, deadline=None)
def test_blocked_to_mma_converts_correctly(pa, warps, elem_bits):
    shape = (32, 64)
    src = BlockedLayout(*pa).to_linear(shape)
    dst = NvidiaMmaLayout(warps).to_linear(shape)
    run_and_verify(src, dst, elem_bits=elem_bits, spec=GH200)
