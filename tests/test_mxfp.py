"""Tests for the mixed-precision codecs (repro.mxfp)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.mxfp import (
    BF16,
    F16,
    F32,
    F64,
    F8E4M3,
    F8E5M2,
    I8,
    MXFP4,
    MxfpTensor,
    decode_fp4_e2m1,
    decode_fp8,
    decode_mxfp4,
    dtype_by_name,
    encode_bf16,
    encode_fp4_e2m1,
    encode_fp8,
    encode_mxfp4,
    mma_kwidth,
    quantize_to,
)
from repro.mxfp.emulate import compute_precision, emulated_matmul
from repro.mxfp.quantize import MXFP4_GROUP
from repro.mxfp.shuffle_opt import (
    analyze_pair,
    fragment_positions,
    preshuffle_operand,
    unshuffle_operand,
)


class TestDTypeRegistry:
    def test_lookup(self):
        assert dtype_by_name("f16") is F16
        assert dtype_by_name("f8") is F8E5M2
        with pytest.raises(KeyError):
            dtype_by_name("f4")

    def test_kwidth(self):
        assert mma_kwidth(F16) == 2
        assert mma_kwidth(F8E5M2) == 4
        assert mma_kwidth(MXFP4) == 8
        assert mma_kwidth(F32) == 1
        assert mma_kwidth(F64) == 1

    def test_bytes(self):
        assert F16.bytes == 2
        assert MXFP4.bytes == 1  # floor; packing handled separately


class TestFp8:
    @pytest.mark.parametrize("dtype", [F8E4M3, F8E5M2])
    def test_exact_values_round_trip(self, dtype):
        values = np.array([0.0, 1.0, -1.0, 0.5, 2.0, -4.0, 0.25])
        codes = encode_fp8(values, dtype)
        decoded = decode_fp8(codes, dtype)
        assert np.array_equal(decoded, values)

    @pytest.mark.parametrize("dtype", [F8E4M3, F8E5M2])
    def test_idempotent(self, dtype):
        rng = np.random.default_rng(3)
        values = rng.standard_normal(256) * 10
        once = decode_fp8(encode_fp8(values, dtype), dtype)
        twice = decode_fp8(encode_fp8(once, dtype), dtype)
        assert np.array_equal(once, twice)

    def test_saturation(self):
        assert decode_fp8(encode_fp8(np.array([1e6]), F8E4M3), F8E4M3)[0] == 448.0
        assert decode_fp8(
            encode_fp8(np.array([1e9]), F8E5M2), F8E5M2
        )[0] == 57344.0

    def test_sign_preserved(self):
        values = np.array([-0.75, 0.75])
        decoded = decode_fp8(encode_fp8(values, F8E5M2), F8E5M2)
        assert decoded[0] == -decoded[1]

    @given(hnp.arrays(np.float64, 32,
                      elements=st.floats(-400, 400, allow_nan=False)))
    @settings(max_examples=50, deadline=None)
    def test_relative_error_bound(self, values):
        decoded = decode_fp8(encode_fp8(values, F8E4M3), F8E4M3)
        big = np.abs(values) > 2 ** -6
        # e4m3 has 3 mantissa bits: relative error < 2^-3 on normals.
        rel = np.abs(decoded[big] - values[big]) / np.abs(values[big])
        assert np.all(rel <= 0.125 + 1e-9)


class TestBf16:
    def test_truncation(self):
        values = np.array([1.0, 3.140625, -2.5], dtype=np.float32)
        encoded = encode_bf16(values)
        bits = encoded.view(np.uint32)
        assert np.all(bits & 0xFFFF == 0)

    def test_idempotent(self):
        rng = np.random.default_rng(5)
        values = rng.standard_normal(128).astype(np.float32)
        once = encode_bf16(values)
        assert np.array_equal(encode_bf16(once), once)


class TestFp4Mxfp4:
    def test_grid_values_exact(self):
        grid = np.array([0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0,
                         -0.5, -6.0])
        decoded = decode_fp4_e2m1(encode_fp4_e2m1(grid))
        assert np.array_equal(decoded, grid)

    def test_rounding_to_grid(self):
        decoded = decode_fp4_e2m1(encode_fp4_e2m1(np.array([5.4, 0.7])))
        assert decoded[0] in (4.0, 6.0)
        assert decoded[1] in (0.5, 1.0)

    def test_mxfp4_group_scaling(self):
        """Values far outside [0, 6] come back via the shared scale."""
        values = np.full((1, MXFP4_GROUP), 48.0)
        tensor = encode_mxfp4(values)
        decoded = decode_mxfp4(tensor)
        assert np.allclose(decoded, values)

    def test_mxfp4_group_independence(self):
        values = np.concatenate(
            [np.full(MXFP4_GROUP, 100.0), np.full(MXFP4_GROUP, 0.01)]
        )[None, :]
        tensor = encode_mxfp4(values)
        assert tensor.scales.shape == (1, 2)
        assert tensor.scales[0, 0] != tensor.scales[0, 1]
        decoded = decode_mxfp4(tensor)
        assert np.allclose(decoded[0, :32], 100.0, rtol=0.2)
        assert np.allclose(decoded[0, 32:], 0.01, rtol=0.2)

    def test_group_size_enforced(self):
        with pytest.raises(ValueError):
            encode_mxfp4(np.zeros((4, 40)))

    def test_mxfp4_relative_error(self):
        rng = np.random.default_rng(9)
        values = rng.standard_normal((8, 128))
        decoded = decode_mxfp4(encode_mxfp4(values))
        rel = np.abs(decoded - values).mean() / np.abs(values).mean()
        assert rel < 0.2  # 4-bit quantization noise


class TestQuantizeTo:
    def test_int_clipping(self):
        out = quantize_to(np.array([300.0, -300.0, 5.4]), I8)
        assert list(out) == [127.0, -128.0, 5.0]

    def test_f64_identity(self):
        values = np.array([1.234567890123])
        assert np.array_equal(quantize_to(values, F64), values)

    @pytest.mark.parametrize(
        "dtype", [F8E4M3, F8E5M2, BF16, F16, F32, I8]
    )
    def test_idempotent(self, dtype):
        rng = np.random.default_rng(13)
        values = rng.standard_normal(64) * 3
        once = quantize_to(values, dtype)
        assert np.array_equal(quantize_to(once, dtype), once)


class TestEmulatedMatmul:
    def test_compute_precision(self):
        assert compute_precision(I8, F16) is F16
        assert compute_precision(BF16, MXFP4) is BF16
        assert compute_precision(MXFP4, MXFP4) is F32

    def test_against_float64(self):
        rng = np.random.default_rng(1)
        a = rng.integers(-3, 4, (16, 32)).astype(np.float64)
        b = rng.integers(-3, 4, (32, 8)).astype(np.float64)
        out, prec = emulated_matmul(a, b, I8, F64)
        assert prec is F64
        assert np.array_equal(out, a @ b)

    def test_quantization_error_present(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((16, 32))
        b = rng.standard_normal((32, 8))
        out, _ = emulated_matmul(a, b, F8E5M2, F16)
        exact = a @ b
        assert not np.allclose(out, exact, atol=1e-12)
        assert np.allclose(out, exact, atol=2.0)


class TestPreShuffle:
    def test_round_trip(self):
        rng = np.random.default_rng(4)
        w = rng.standard_normal((64, 16))
        for kwidth in (1, 2, 4):
            assert np.array_equal(
                unshuffle_operand(preshuffle_operand(w, kwidth), kwidth),
                w,
            )

    def test_fragment_becomes_contiguous(self):
        """After the shuffle, a lane's two K runs are adjacent."""
        kwidth = 2
        k = 16
        perm = preshuffle_operand(
            np.arange(k, dtype=np.float64)[:, None], kwidth
        )[:, 0].astype(int)
        fragment = fragment_positions(kwidth)
        positions = sorted(np.where(np.isin(perm, fragment))[0])
        assert positions == list(range(positions[0],
                                       positions[0] + len(fragment)))

    def test_k_must_be_multiple(self):
        with pytest.raises(ValueError):
            preshuffle_operand(np.zeros((12, 4)), kwidth=2)

    def test_analysis_gains(self):
        gain = analyze_pair(MXFP4)
        assert gain.vector_bits_before == 32
        assert gain.vector_bits_after == 128
        assert gain.speed_ratio == 4.0
