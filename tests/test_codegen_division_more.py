"""Tests for generalized vectorization and fixed-staging conversions."""

import pytest

from repro.codegen.conversion import plan_conversion
from repro.codegen.division import (
    ldmatrix_applicable,
    match_instruction_tile,
    permute_registers_for_tile,
    register_offset_map,
)
from repro.codegen.plan import RegisterPermute, SharedLoad
from repro.core import LANE, LinearLayout, OFFSET, REGISTER
from repro.gpusim import Machine, distributed_data
from repro.gpusim.registers import assert_matches_layout
from repro.hardware import GH200
from repro.hardware.instructions import ldmatrix_tile, vector_shared_tile
from repro.layouts import (
    BlockedLayout,
    MmaOperandLayout,
    NvidiaMmaLayout,
    SwizzledSharedLayout,
    shared_layout_for_mma,
)


class TestRegisterOffsetMap:
    def test_identity_staging(self):
        dist = BlockedLayout((1, 4), (4, 8), (1, 1), (1, 0)).to_linear(
            (4, 32)
        )
        mem = SwizzledSharedLayout().to_linear((4, 32))
        reg_off = register_offset_map(dist, mem)
        assert reg_off.out_dims == [OFFSET]
        # Registers are row-contiguous: identity on the low bits.
        assert reg_off.basis_images_flat(REGISTER) == [1, 2]


class TestGeneralizedVectorization:
    def test_column_major_registers_permuted(self):
        """Section 5.3's example: a column-major register order blocks
        direct division; permuting registers exposes the tile."""
        # Registers walk offsets [0, 4, 1, 5]: bit order swapped.
        layout = LinearLayout(
            {REGISTER: [(4,), (1,)], LANE: [(2,), (8,)]},
            {OFFSET: 16},
        )
        tile = vector_shared_tile(32, 16)  # 2 elements
        assert not match_instruction_tile(layout, tile)
        result = permute_registers_for_tile(layout, tile)
        assert result is not None
        permuted, perm = result
        assert match_instruction_tile(permuted, tile)
        assert isinstance(perm, RegisterPermute)
        # The permutation swaps the two register bits.
        assert perm.dst_to_src == (0, 2, 1, 3)

    def test_identity_when_already_divisible(self):
        layout = LinearLayout(
            {REGISTER: [(1,), (2,)], LANE: [(4,), (8,)]},
            {OFFSET: 16},
        )
        tile = vector_shared_tile(32, 16)
        permuted, perm = permute_registers_for_tile(layout, tile)
        assert perm.dst_to_src == tuple(range(4))
        assert permuted == layout

    def test_impossible_permutation(self):
        # No register maps to offset bit 0 at all.
        layout = LinearLayout(
            {REGISTER: [(4,), (8,)], LANE: [(1,), (2,)]},
            {OFFSET: 16},
        )
        tile = vector_shared_tile(32, 16)
        assert permute_registers_for_tile(layout, tile) is None


class TestFixedStaging:
    def setup_method(self):
        self.src = BlockedLayout(
            (1, 8), (8, 4), (2, 2), (1, 0)
        ).to_linear((64, 64))
        self.dst = MmaOperandLayout(
            NvidiaMmaLayout((2, 2)), 0, 2
        ).to_linear((64, 64))
        self.mem = shared_layout_for_mma(16, (64, 64)).to_linear(
            (64, 64)
        )

    def test_ldmatrix_applies_on_hardware_swizzle(self):
        assert ldmatrix_applicable(self.dst, self.mem, ldmatrix_tile(16))

    def test_fixed_staging_plan_correct(self):
        plan = plan_conversion(
            self.src, self.dst, 16, spec=GH200,
            memory_layout=self.mem,
        )
        assert any("fixed staging" in n for n in plan.notes)
        registers = distributed_data(self.src, 4, 32)
        converted, trace = Machine(GH200, 4).run_conversion(
            plan, registers
        )
        assert_matches_layout(converted, self.dst)
        from repro.hardware.instructions import InstructionKind

        assert trace.count(InstructionKind.LDMATRIX) > 0

    def test_fixed_staging_uses_ldmatrix(self):
        plan = plan_conversion(
            self.src, self.dst, 16, spec=GH200,
            memory_layout=self.mem,
        )
        loads = [s for s in plan.steps if isinstance(s, SharedLoad)]
        assert loads and loads[0].use_ldmatrix
