"""Tests for descriptor-level propagation (repro.engine.propagate)."""

import pytest

from repro.core import LANE, REGISTER, WARP
from repro.engine.ir import Op, OpKind
from repro.engine.propagate import (
    collapse_dims_to_one,
    forward_descriptor,
    forward_layout,
)
from repro.layouts import BlockedLayout, NvidiaMmaLayout, SlicedLayout


def op(kind, attrs, inputs=()):
    return Op(kind, list(inputs), None, attrs)


class TestForwardDescriptor:
    def test_blocked_transpose(self):
        desc = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0))
        out = forward_descriptor(
            op(OpKind.TRANS, {"perm": (1, 0)}), desc
        )
        assert isinstance(out, BlockedLayout)
        assert out.size_per_thread == (2, 1)
        assert out.threads_per_warp == (8, 4)
        assert out.order == (0, 1)

    def test_blocked_transpose_round_trip(self):
        desc = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0))
        t = op(OpKind.TRANS, {"perm": (1, 0)})
        assert forward_descriptor(t, forward_descriptor(t, desc)) == desc

    def test_mma_transpose_inexpressible(self):
        out = forward_descriptor(
            op(OpKind.TRANS, {"perm": (1, 0)}), NvidiaMmaLayout((2, 2))
        )
        assert out is None

    def test_elementwise_passthrough(self):
        desc = NvidiaMmaLayout((2, 2))
        assert forward_descriptor(
            op(OpKind.ELEMENTWISE, {"name": "add"}), desc
        ) is desc

    def test_reduce_builds_sliced(self):
        from repro.engine.ir import Value
        from repro.mxfp import F32

        value = Value(0, (16, 32), F32)
        reduce_op = Op(OpKind.REDUCE, [value], None, {"axis": 1})
        desc = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0))
        out = forward_descriptor(reduce_op, desc)
        assert isinstance(out, SlicedLayout)
        assert out.dim == 1
        assert out.parent_dim_size == 32

    def test_reshape_loses_descriptor(self):
        desc = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0))
        assert forward_descriptor(
            op(OpKind.RESHAPE, {"shape": (512,)}), desc
        ) is None


class TestCollapseDims:
    def test_zeroes_axis_coords(self):
        layout = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        small = collapse_dims_to_one(layout, [1])
        assert small.out_dim_sizes() == {"dim0": 16, "dim1": 1}
        assert small.is_surjective()
        # Lanes that indexed dim1 became free (broadcast) bits.
        assert small.free_variable_masks()[LANE] != 0

    def test_broadcast_from_collapsed_is_consistent(self):
        """collapse + forward broadcast lands back on the original
        ownership pattern for the kept dim."""
        layout = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        small = collapse_dims_to_one(layout, [1])
        for lane in (0, 5, 31):
            a = layout.apply({REGISTER: 0, LANE: lane, WARP: 0})
            b = small.apply({REGISTER: 0, LANE: lane, WARP: 0})
            assert a["dim0"] == b["dim0"]


class TestForwardLayoutErrors:
    def test_unknown_kind_raises(self):
        layout = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        with pytest.raises(ValueError):
            forward_layout(op(OpKind.LOAD, {}), layout)
