"""Tests for 4-bit packing utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.mxfp import (
    decode_fp4_e2m1,
    encode_mxfp4,
    pack_nibbles,
    unpack_nibbles,
)


class TestNibblePacking:
    def test_layout(self):
        codes = np.array([[0x1, 0x2, 0x3, 0x4]], dtype=np.uint8)
        packed = pack_nibbles(codes)
        assert packed.tolist() == [[0x21, 0x43]]

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            pack_nibbles(np.zeros((2, 3), dtype=np.uint8))

    def test_high_bits_masked(self):
        codes = np.array([[0xFF, 0xF0]], dtype=np.uint8)
        packed = pack_nibbles(codes)
        assert packed.tolist() == [[0x0F]]

    @given(hnp.arrays(np.uint8, (4, 8),
                      elements=st.integers(0, 15)))
    @settings(max_examples=50)
    def test_round_trip(self, codes):
        assert np.array_equal(
            unpack_nibbles(pack_nibbles(codes)), codes
        )

    def test_mxfp4_storage_pipeline(self):
        """encode -> pack -> unpack -> decode reproduces the grid."""
        rng = np.random.default_rng(6)
        values = rng.standard_normal((4, 64))
        tensor = encode_mxfp4(values)
        packed = pack_nibbles(tensor.codes)
        assert packed.nbytes == tensor.codes.nbytes // 2
        restored = unpack_nibbles(packed)
        assert np.array_equal(
            decode_fp4_e2m1(restored), decode_fp4_e2m1(tensor.codes)
        )
