"""Tests for layout operators: left division, identity prefixes,
component comparison (repro.core.ops)."""

import pytest

from repro.core import (
    LANE,
    LinearLayout,
    NotDivisibleError,
    OFFSET,
    REGISTER,
    divide_left,
    divide_left_or_raise,
    is_divisible_by,
    layouts_equal_on,
    make_identity,
    num_identity_low_bits,
    product_pow2,
)
from repro.hardware.instructions import ldmatrix_tile, vector_shared_tile


class TestDivideLeft:
    def test_exact_tile(self):
        tile = LinearLayout.identity1d(4, REGISTER, OFFSET)
        layout = tile * LinearLayout.identity1d(8, LANE, OFFSET)
        quotient = divide_left(layout, tile)
        assert quotient is not None
        assert quotient.in_dim_size(REGISTER) == 1
        assert quotient.in_dim_size(LANE) == 8

    def test_product_reconstruction(self):
        """tile * (layout / tile) == layout — the defining equation."""
        tile = LinearLayout.identity1d(4, REGISTER, OFFSET)
        rest = LinearLayout.identity1d(4, REGISTER, OFFSET)
        layout = tile * rest * LinearLayout.identity1d(4, LANE, OFFSET)
        quotient = divide_left(layout, tile)
        assert quotient is not None
        assert (tile * quotient) == layout

    def test_not_divisible_wrong_low_bits(self):
        # Register bit 0 maps to offset bit 1 instead of 0.
        layout = LinearLayout(
            {REGISTER: [(2,), (1,)]}, {OFFSET: 4}
        )
        tile = LinearLayout.identity1d(2, REGISTER, OFFSET)
        assert divide_left(layout, tile) is None
        assert not is_divisible_by(layout, tile)

    def test_not_divisible_high_bits_hit_tile_block(self):
        # The second register bit maps INTO the tile's output block
        # (offset bits 0..1), violating the [[T, 0], [0, M2]] shape.
        layout = LinearLayout(
            {REGISTER: [(1,), (2,)], LANE: [(2,), (8,)]},
            {OFFSET: 16},
            require_surjective=False,
        )
        tile = LinearLayout.identity1d(
            2, REGISTER, OFFSET
        ) * LinearLayout.identity1d(2, LANE, OFFSET)
        assert divide_left(layout, tile) is None

    def test_tile_larger_than_layout(self):
        layout = LinearLayout.identity1d(2, REGISTER, OFFSET)
        tile = LinearLayout.identity1d(4, REGISTER, OFFSET)
        assert divide_left(layout, tile) is None

    def test_tile_with_missing_out_dim(self):
        layout = LinearLayout.identity1d(4, REGISTER, "dim0")
        tile = LinearLayout.identity1d(2, REGISTER, OFFSET)
        assert divide_left(layout, tile) is None

    def test_raise_variant(self):
        layout = LinearLayout(
            {REGISTER: [(2,), (1,)]}, {OFFSET: 4}
        )
        tile = LinearLayout.identity1d(2, REGISTER, OFFSET)
        with pytest.raises(NotDivisibleError):
            divide_left_or_raise(layout, tile)

    def test_ldmatrix_tile_division(self):
        """The Section 5.3 usage: an f16 reg<->offset map shaped like
        ldmatrix divides by its tile."""
        tile = ldmatrix_tile(16)
        layout = (
            LinearLayout.identity1d(2, REGISTER, OFFSET)
            * LinearLayout.identity1d(4, LANE, OFFSET)
            * LinearLayout.identity1d(8, LANE, OFFSET)
            * LinearLayout.identity1d(4, REGISTER, OFFSET)
        )
        assert is_divisible_by(layout, tile)

    def test_vector_tile(self):
        tile = vector_shared_tile(128, 16)  # 8 f16 elements
        assert tile.in_dim_size(REGISTER) == 8
        layout = LinearLayout.identity1d(8, REGISTER, OFFSET) * (
            LinearLayout.identity1d(32, LANE, OFFSET)
        )
        assert is_divisible_by(layout, tile)


class TestIdentityPrefix:
    def test_full_identity(self):
        layout = make_identity([(8, REGISTER, "dim0")])
        assert num_identity_low_bits(layout, REGISTER) == 3

    def test_partial(self):
        layout = LinearLayout(
            {REGISTER: [(1,), (2,), (8,)], LANE: [(4,)]},
            {"dim0": 16},
        )
        assert num_identity_low_bits(layout, REGISTER) == 2

    def test_none(self):
        layout = LinearLayout(
            {REGISTER: [(2,)], LANE: [(1,)]}, {"dim0": 4}
        )
        assert num_identity_low_bits(layout, REGISTER) == 0

    def test_missing_dim(self):
        layout = make_identity([(8, LANE, "dim0")])
        assert num_identity_low_bits(layout, REGISTER) == 0


class TestComponentComparison:
    def test_equal_lanes(self):
        a = make_identity([(4, REGISTER, "dim0"), (8, LANE, "dim0")])
        b = make_identity([(4, REGISTER, "dim0"), (8, LANE, "dim0")])
        assert layouts_equal_on(a, b, LANE)

    def test_order_matters(self):
        a = LinearLayout({LANE: [(1,), (2,)]}, {"dim0": 4})
        b = LinearLayout({LANE: [(2,), (1,)]}, {"dim0": 4})
        assert not layouts_equal_on(a, b, LANE)


class TestProductPow2:
    def test_adds_zero_columns(self):
        layout = make_identity([(4, REGISTER, "dim0")])
        grown = product_pow2(layout, REGISTER, 2)
        assert grown.in_dim_size(REGISTER) == 16
        # Registers 4..15 replicate registers 0..3.
        assert grown.apply({REGISTER: 4})["dim0"] == 0
        assert grown.apply({REGISTER: 5})["dim0"] == 1
        assert grown.free_variable_masks()[REGISTER] == 0b1100
