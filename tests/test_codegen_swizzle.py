"""Optimal swizzling tests (Section 5.4 + Appendix 9.2).

The central property: the analytic wavefront count of Lemma 9.4 must
agree with what the banked-memory simulator measures on the plan's
actual addresses — and the optimal layout must never lose to the
padding heuristic on large tiles.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.bank_conflicts import (
    access_wavefronts,
    conversion_wavefronts,
)
from repro.codegen.conversion import plan_conversion
from repro.codegen.plan import SharedLoad, SharedStore
from repro.codegen.swizzle import optimal_swizzled_layout
from repro.core import LANE, REGISTER
from repro.gpusim.memory import SharedMemory
from repro.hardware import GH200, RTX4090
from repro.layouts import BlockedLayout, NvidiaMmaLayout
from repro.core.reshape import transpose_layout
from repro.f2.subspace import is_independent


def measured_wavefronts(step, spec, elem_bytes):
    """Worst-case per-instruction wavefronts of warp 0's accesses."""
    memory = SharedMemory(spec, elem_bytes)
    lanes = step.accesses[: spec.warp_size]
    worst = 0
    max_accesses = max((len(a) for a in lanes), default=0)
    for k in range(max_accesses):
        requests = [
            (a[k][0], len(a[k][1])) for a in lanes if k < len(a)
        ]
        worst = max(worst, memory.wavefronts(requests, False))
    return worst


class TestStructure:
    def test_basis_is_complete(self):
        src = BlockedLayout((1, 4), (8, 4), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        dst = NvidiaMmaLayout((2, 2)).to_linear((32, 64))
        plan = optimal_swizzled_layout(src, dst, 16)
        basis = (
            list(plan.vec_basis) + list(plan.subword_basis)
            + list(plan.bank_basis) + list(plan.seg_basis)
        )
        assert len(basis) == src.total_out_bits()
        assert is_independent(basis)
        assert plan.memory_layout.is_invertible()

    def test_vec_from_shared_registers(self):
        src = BlockedLayout((1, 4), (8, 4), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        dst = NvidiaMmaLayout((2, 2)).to_linear((32, 64))
        plan = optimal_swizzled_layout(src, dst, 16)
        a_regs = set(x for x in src.basis_images_flat(REGISTER) if x)
        b_regs = set(x for x in dst.basis_images_flat(REGISTER) if x)
        assert set(plan.vec_basis) <= (a_regs & b_regs)

    def test_vector_cap(self):
        src = BlockedLayout((1, 8), (8, 4), (2, 2), (1, 0)).to_linear(
            (64, 64)
        )
        dst = BlockedLayout((1, 8), (4, 8), (2, 2), (1, 0)).to_linear(
            (64, 64)
        )
        for bits, max_elems in ((8, 16), (16, 8), (32, 4)):
            plan = optimal_swizzled_layout(src, dst, bits)
            assert plan.vec_elems <= max_elems

    def test_subword_fill_for_f8_scalar(self):
        """With no shared registers and 1-byte elements, sub-word bits
        get filled so threads share words instead of conflicting."""
        src = transpose_layout(
            BlockedLayout((1, 4), (4, 8), (2, 2), (1, 0)).to_linear(
                (32, 32)
            ),
            (1, 0),
        )
        dst = BlockedLayout((1, 4), (4, 8), (2, 2), (1, 0)).to_linear(
            (32, 32)
        )
        plan = optimal_swizzled_layout(src, dst, 8)
        assert len(plan.vec_basis) + len(plan.subword_basis) >= 2


class TestLemmaAgreement:
    PAIRS = [
        (
            BlockedLayout((1, 4), (8, 4), (2, 2), (1, 0)),
            NvidiaMmaLayout((2, 2)),
            16,
        ),
        (
            BlockedLayout((1, 2), (8, 4), (2, 2), (1, 0)),
            BlockedLayout((2, 1), (2, 16), (2, 2), (0, 1)),
            16,
        ),
        (
            BlockedLayout((1, 8), (16, 2), (2, 2), (1, 0)),
            BlockedLayout((1, 8), (2, 16), (2, 2), (1, 0)),
            8,
        ),
    ]

    @pytest.mark.parametrize("src_desc,dst_desc,bits", PAIRS)
    def test_analytic_vs_measured(self, src_desc, dst_desc, bits):
        shape = (64, 64)
        src = src_desc.to_linear(shape)
        dst = dst_desc.to_linear(shape)
        plan = plan_conversion(
            src, dst, bits, spec=GH200, allow_shuffle=False
        )
        if plan.kind != "shared":
            pytest.skip("pair does not take the shared path")
        swizzle = optimal_swizzled_layout(src, dst, bits)
        analytic = conversion_wavefronts(swizzle, src, dst)
        for step in plan.steps:
            if isinstance(step, SharedStore) and not step.use_stmatrix:
                measured = measured_wavefronts(step, GH200, bits // 8)
                assert measured <= analytic["write"] * 2
            if isinstance(step, SharedLoad) and not step.use_ldmatrix:
                measured = measured_wavefronts(step, GH200, bits // 8)
                assert measured <= analytic["read"] * 2

    def test_conflict_free_claim_holds(self):
        """When the algorithm claims conflict-freeness, the simulator
        must measure the minimum wavefronts for the vector width."""
        src = BlockedLayout((1, 4), (8, 4), (2, 2), (1, 0)).to_linear(
            (32, 64)
        )
        dst = NvidiaMmaLayout((2, 2)).to_linear((32, 64))
        swizzle = optimal_swizzled_layout(src, dst, 16)
        if not swizzle.conflict_free:
            pytest.skip("not claimed conflict free")
        plan = plan_conversion(src, dst, 16, spec=RTX4090)
        n = max(1, swizzle.vec_elems * 2 // 4)
        for step in plan.steps:
            if isinstance(step, SharedStore) and not step.use_stmatrix:
                assert measured_wavefronts(step, RTX4090, 2) <= n


class TestOptimalBeatsPadding:
    @pytest.mark.parametrize("size", [64, 128])
    def test_transpose_staging(self, size):
        """Figure 2's claim at the plan level: on large tiles, the
        optimal staging never costs more cycles than padding."""
        from repro.gpusim.opcost import price_plan

        src = transpose_layout(
            BlockedLayout((1, 8), (4, 8), (2, 2), (1, 0)).to_linear(
                (size, size)
            ),
            (1, 0),
        )
        dst = BlockedLayout((1, 8), (4, 8), (2, 2), (1, 0)).to_linear(
            (size, size)
        )
        optimal = plan_conversion(src, dst, 8, spec=GH200)
        padded = plan_conversion(
            src, dst, 8, spec=GH200, swizzle_mode="padded",
            allow_shuffle=False, dedupe_broadcast=False,
        )
        assert (
            price_plan(optimal, GH200).cycles()
            <= price_plan(padded, GH200).cycles()
        )
