"""Tests for CGA-level (block dimension) layouts."""

import pytest

from repro.codegen import classify_conversion, plan_conversion
from repro.core import BLOCK, LANE, REGISTER, WARP
from repro.core.errors import DimensionError, LayoutError
from repro.core.properties import is_distributed_layout
from repro.layouts import BlockedLayout, CtaLayout, same_block_component
from repro.layouts.sliced import slice_linear_layout


def clustered_layout(split=(2, 1), cga=(2, 1)):
    return BlockedLayout(
        (1, 2), (4, 8), (2, 2), (1, 0),
        cta=CtaLayout(cga, split, (1, 0)),
    )


class TestCtaLayout:
    def test_validation(self):
        with pytest.raises(DimensionError):
            CtaLayout((2,), (2, 2), (0, 1))
        with pytest.raises(DimensionError):
            CtaLayout((2, 2), (4, 1), (1, 0))  # split > cga
        with pytest.raises(DimensionError):
            CtaLayout((2, 2), (2, 2), (0, 0))

    def test_single(self):
        cta = CtaLayout.single(2)
        assert cta.is_trivial()
        assert cta.num_ctas() == 1

    def test_split_shape(self):
        cta = CtaLayout((2, 2), (2, 1), (1, 0))
        assert cta.split_shape((32, 64)) == [16, 64]
        with pytest.raises(DimensionError):
            cta.split_shape((3, 64))


class TestLiftedLayouts:
    def test_block_dim_appears(self):
        layout = clustered_layout().to_linear((32, 32))
        assert layout.has_in_dim(BLOCK)
        assert layout.in_dim_size(BLOCK) == 2
        assert is_distributed_layout(layout)

    def test_block_indexes_high_bits(self):
        layout = clustered_layout().to_linear((32, 32))
        base = layout.apply({REGISTER: 0, LANE: 0, WARP: 0, BLOCK: 0})
        other = layout.apply({REGISTER: 0, LANE: 0, WARP: 0, BLOCK: 1})
        assert other["dim0"] == base["dim0"] + 16

    def test_duplicate_ctas_broadcast(self):
        layout = clustered_layout(split=(1, 1), cga=(2, 1)).to_linear(
            (16, 32)
        )
        free = layout.free_variable_masks()
        assert free[BLOCK] == 0b1
        assert is_distributed_layout(layout)

    def test_trivial_cta_is_plain_blocked(self):
        plain = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0))
        with_cta = BlockedLayout(
            (1, 2), (4, 8), (2, 2), (1, 0), cta=CtaLayout.single(2)
        )
        assert plain.to_linear((16, 32)) == with_cta.to_linear((16, 32))

    def test_slice_keeps_block(self):
        layout = clustered_layout().to_linear((32, 32))
        sliced = slice_linear_layout(layout, 1)
        assert sliced.has_in_dim(BLOCK)
        assert sliced.is_surjective()


class TestCrossCtaConversions:
    def test_same_block_component_ok(self):
        a = clustered_layout().to_linear((32, 32))
        b = BlockedLayout(
            (2, 1), (8, 4), (2, 2), (1, 0),
            cta=CtaLayout((2, 1), (2, 1), (1, 0)),
        ).to_linear((32, 32))
        assert same_block_component(a, b)
        plan = plan_conversion(a, b, 16)
        assert plan.kind in ("shuffle", "shared", "register")
        # The plan operates on the per-CTA quotient, which the
        # machine can execute and verify end to end.
        from repro.gpusim import Machine, distributed_data
        from repro.gpusim.registers import assert_matches_layout
        from repro.hardware import RTX4090
        from repro.layouts.cta import strip_block

        src_q, dst_q = strip_block(a), strip_block(b)
        registers = distributed_data(src_q, 4, 32)
        converted, _ = Machine(RTX4090, 4).run_conversion(
            plan, registers
        )
        assert_matches_layout(converted, dst_q)

    def test_strip_block_shapes(self):
        from repro.layouts.cta import strip_block

        layout = clustered_layout().to_linear((32, 32))
        quotient = strip_block(layout)
        assert not quotient.has_in_dim(BLOCK)
        assert quotient.out_dim_sizes() == {"dim0": 16, "dim1": 32}

    def test_strip_block_noop_without_block(self):
        from repro.layouts.cta import strip_block

        layout = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        assert strip_block(layout) is layout

    def test_cross_cta_rejected(self):
        a = BlockedLayout(
            (1, 2), (4, 8), (2, 2), (1, 0),
            cta=CtaLayout((2, 1), (2, 1), (1, 0)),
        ).to_linear((32, 32))
        b = BlockedLayout(
            (1, 2), (4, 8), (2, 2), (1, 0),
            cta=CtaLayout((1, 2), (1, 2), (1, 0)),
        ).to_linear((32, 32))
        assert not same_block_component(a, b)
        with pytest.raises(LayoutError):
            plan_conversion(a, b, 16)

    def test_legacy_layouts_have_empty_block(self):
        a = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        b = BlockedLayout((2, 1), (8, 4), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        assert same_block_component(a, b)
