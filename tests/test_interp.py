"""Tests for the NumPy reference interpreter."""

import numpy as np
import pytest

from repro.engine import KernelBuilder
from repro.interp import execute_graph
from repro.mxfp import F16, F32, F64, I64


class TestBasics:
    def test_load_store(self):
        kb = KernelBuilder()
        x = kb.load((4, 4), F32)
        kb.store(x)
        data = np.arange(16.0).reshape(4, 4)
        result = execute_graph(kb.graph, [data])
        assert np.array_equal(result.stores[0], data)

    def test_shape_validation(self):
        kb = KernelBuilder()
        kb.store(kb.load((4, 4), F32))
        with pytest.raises(ValueError):
            execute_graph(kb.graph, [np.zeros((2, 2))])

    def test_quantization_at_load(self):
        kb = KernelBuilder()
        kb.store(kb.load((1, 4), F16))
        data = np.array([[1.0, 1e-9, 65504.0, 1.0002441]])
        out = execute_graph(kb.graph, [data]).stores[0]
        assert out[0, 0] == 1.0
        assert out[0, 1] != 1e-9 or out[0, 1] == 0.0
        # quantization can be disabled
        raw = execute_graph(
            kb.graph, [data], quantize_inputs=False
        ).stores[0]
        assert np.array_equal(raw, data)


class TestOps:
    def test_elementwise_suite(self):
        kb = KernelBuilder()
        a = kb.load((8,), F64)
        b = kb.load((8,), F64)
        kb.store(kb.elementwise(a, b, name="add"))
        kb.store(kb.elementwise(a, b, name="sub"))
        kb.store(kb.elementwise(a, b, name="mul"))
        kb.store(kb.elementwise(a, name="exp"))
        va = np.arange(8.0)
        vb = np.ones(8) * 2
        res = execute_graph(kb.graph, [va, vb])
        assert np.array_equal(res.stores[0], va + vb)
        assert np.array_equal(res.stores[1], va - vb)
        assert np.array_equal(res.stores[2], va * vb)
        assert np.allclose(res.stores[3], np.exp(va))

    def test_reduce_ops(self):
        kb = KernelBuilder()
        x = kb.load((4, 8), F64)
        kb.store(kb.reduce(x, axis=1, op="sum"))
        kb.store(kb.reduce(x, axis=0, op="max"))
        data = np.arange(32.0).reshape(4, 8)
        res = execute_graph(kb.graph, [data])
        assert np.array_equal(res.stores[0], data.sum(axis=1))
        assert np.array_equal(res.stores[1], data.max(axis=0))

    def test_shape_op_suite(self):
        kb = KernelBuilder()
        x = kb.load((4, 8), F64)
        kb.store(kb.trans(x))
        kb.store(kb.reshape(x, (8, 4)))
        kb.store(kb.broadcast(kb.expand_dims(
            kb.reduce(x, axis=1), 1), (4, 8)))
        data = np.arange(32.0).reshape(4, 8)
        res = execute_graph(kb.graph, [data])
        assert np.array_equal(res.stores[0], data.T)
        assert np.array_equal(res.stores[1], data.reshape(8, 4))
        assert np.array_equal(
            res.stores[2],
            np.broadcast_to(data.sum(1)[:, None], (4, 8)),
        )

    def test_join_split(self):
        kb = KernelBuilder()
        a = kb.load((4,), F64)
        b = kb.load((4,), F64)
        joined = kb.join(a, b)
        x0, x1 = kb.split(joined)
        kb.store(x0)
        kb.store(x1)
        va, vb = np.arange(4.0), np.arange(4.0) * 10
        res = execute_graph(kb.graph, [va, vb])
        assert np.array_equal(res.stores[0], va)
        assert np.array_equal(res.stores[1], vb)

    def test_gather(self):
        kb = KernelBuilder()
        src = kb.load((4, 8), F64)
        idx = kb.load((4, 8), I64)
        kb.store(kb.gather(src, idx, axis=1))
        data = np.arange(32.0).reshape(4, 8)
        indices = (np.arange(32).reshape(4, 8) * 3) % 8
        res = execute_graph(kb.graph, [data, indices])
        expected = np.take_along_axis(data, indices, axis=1)
        assert np.array_equal(res.stores[0], expected)

    def test_dot_uses_emulation(self):
        kb = KernelBuilder()
        a = kb.load((8, 16), F16)
        b = kb.load((16, 4), F16)
        kb.store(kb.dot(a, b))
        rng = np.random.default_rng(0)
        va = rng.standard_normal((8, 16))
        vb = rng.standard_normal((16, 4))
        res = execute_graph(kb.graph, [va, vb])
        assert np.allclose(res.stores[0], va @ vb, atol=0.5)
