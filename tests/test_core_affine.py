"""Tests for affine layouts (the Section 8 extension)."""

import pytest

from repro.core import AffineLayout, DimensionError, LinearLayout, REGISTER
from repro.core.affine import slice_offset_layout


def base_layout():
    return LinearLayout.identity1d(8, REGISTER, "dim0")


class TestAffine:
    def test_zero_offset_is_linear(self):
        affine = AffineLayout.from_linear(base_layout())
        assert affine.is_linear()
        assert affine.apply({REGISTER: 5}) == {"dim0": 5}

    def test_flip_reverses(self):
        flipped = AffineLayout.from_linear(base_layout()).flip("dim0")
        values = [flipped.apply({REGISTER: r})["dim0"] for r in range(8)]
        assert values == [7, 6, 5, 4, 3, 2, 1, 0]

    def test_flip_involution(self):
        affine = AffineLayout.from_linear(base_layout())
        assert affine.flip("dim0").flip("dim0") == affine

    def test_translate(self):
        shifted = AffineLayout.from_linear(base_layout()).translate(
            "dim0", 4
        )
        assert shifted.apply({REGISTER: 0})["dim0"] == 4
        assert shifted.apply({REGISTER: 4})["dim0"] == 0

    def test_translate_range_check(self):
        with pytest.raises(DimensionError):
            AffineLayout.from_linear(base_layout()).translate("dim0", 8)

    def test_offset_validation(self):
        with pytest.raises(DimensionError):
            AffineLayout(base_layout(), {"dim0": 9})
        with pytest.raises(DimensionError):
            AffineLayout(base_layout(), {"nope": 1})

    def test_compose_pushes_offset(self):
        """(A2 o A1)(x) == A2(A1(x)) pointwise."""
        inner = AffineLayout(
            LinearLayout.identity1d(8, REGISTER, "mid"), {"mid": 3}
        )
        outer = AffineLayout(
            LinearLayout.identity1d(8, "mid", "dim0"), {"dim0": 5}
        )
        composed = outer.compose(inner)
        for r in range(8):
            step = outer.apply(inner.apply({REGISTER: r}))
            assert composed.apply({REGISTER: r}) == step

    def test_aligned_slice(self):
        sliced = slice_offset_layout(base_layout(), "dim0", 4, 4)
        assert sliced.apply({REGISTER: 0})["dim0"] == 4

    def test_unaligned_slice_rejected(self):
        with pytest.raises(DimensionError):
            slice_offset_layout(base_layout(), "dim0", 2, 4)
