"""Tests for shared-memory layouts: Definition 4.11 swizzling, its
inverse characterization (Proposition 4.12), and the padded baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import OFFSET
from repro.core.errors import DimensionError
from repro.core.properties import is_memory_layout
from repro.layouts import (
    PaddedSharedLayout,
    SwizzledSharedLayout,
    mma_swizzle_offset,
    shared_layout_for_mma,
)
from repro.layouts.shared import default_padding


class TestSwizzleFormula:
    def test_definition_411_column_part(self):
        """Spot-check the swizzle formula against hand computation."""
        # vec=2, per_phase=1, max_phase=4, row of 8 elements.
        # (i, j) = (1, 3): phase = 1, col = ((1 ^ 1) * 2) ^ 1 = 1.
        assert mma_swizzle_offset(1, 3, 2, 1, 4, 8) == 8 + 1
        # (i, j) = (0, j): phase 0, identity on the row.
        for j in range(8):
            assert mma_swizzle_offset(0, j, 2, 1, 4, 8) == j

    def test_per_phase_groups_rows(self):
        # per_phase=2: rows 0 and 1 share a phase.
        for j in range(8):
            assert mma_swizzle_offset(0, j, 2, 2, 4, 8) % 8 == (
                mma_swizzle_offset(1, j, 2, 2, 4, 8) % 8
            )

    def test_bijective_within_tile(self):
        seen = set()
        for i in range(8):
            for j in range(8):
                seen.add(mma_swizzle_offset(i, j, 2, 1, 4, 8))
        assert seen == set(range(64))


class TestSwizzledLayout:
    def test_unswizzled_is_identity(self):
        layout = SwizzledSharedLayout().to_linear((8, 16))
        for offset in (0, 1, 17, 127):
            coords = layout.apply({OFFSET: offset})
            assert coords["dim0"] * 16 + coords["dim1"] == offset

    def test_memory_layout_predicate(self):
        sw = SwizzledSharedLayout(vec=2, per_phase=1, max_phase=4)
        assert is_memory_layout(sw.to_linear((16, 16)))

    def test_inverse_matches_formula(self):
        """store_map (coords -> offset) agrees with the scalar formula
        everywhere — the Proposition 4.12 construction."""
        sw = SwizzledSharedLayout(vec=2, per_phase=2, max_phase=4)
        store = sw.store_map((16, 16))
        for i in range(16):
            for j in range(16):
                expected = sw.offset_of((i, j), (16, 16))
                got = store.apply({"dim0": i, "dim1": j})[OFFSET]
                assert got == expected, (i, j)

    def test_inverse_structure(self):
        """The [[I_n, C], [0, I_m]] block form: row bits pass through."""
        sw = SwizzledSharedLayout(vec=2, per_phase=1, max_phase=4)
        layout = sw.to_linear((8, 8))
        for offset in range(64):
            coords = layout.apply({OFFSET: offset})
            assert coords["dim0"] == offset // 8

    def test_column_major_order(self):
        sw = SwizzledSharedLayout(order=(0, 1))
        layout = sw.store_map((8, 16))
        # dim0 is now the contiguous direction.
        assert layout.apply({"dim0": 1, "dim1": 0})[OFFSET] == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SwizzledSharedLayout(vec=3)
        with pytest.raises(DimensionError):
            SwizzledSharedLayout(order=(1, 1))

    @given(
        st.sampled_from([1, 2, 4, 8]),
        st.sampled_from([1, 2, 4]),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_invertible(self, vec, per_phase, max_phase):
        """Proposition 4.12: every parameterization is a bijection.

        Definition 4.14's 1-or-2-bit column structure additionally
        requires the phase field to fit the row (vec * max_phase <=
        inner size) — the regime every real parameterization uses.
        """
        sw = SwizzledSharedLayout(vec, per_phase, max_phase)
        layout = sw.to_linear((32, 32))
        assert layout.is_invertible()
        if vec * max_phase <= 32:
            assert is_memory_layout(layout)


class TestHeuristicParameters:
    def test_fp16_row64(self):
        sw = shared_layout_for_mma(16, (64, 64))
        assert sw.vec == 8
        assert sw.per_phase == 1
        assert sw.max_phase == 8

    def test_short_rows_pack_phases(self):
        sw = shared_layout_for_mma(16, (64, 32))
        assert sw.per_phase == 2

    def test_always_valid(self):
        for bits in (8, 16, 32):
            for inner in (16, 32, 64, 128):
                sw = shared_layout_for_mma(bits, (64, inner))
                assert sw.to_linear((64, inner)).is_invertible()


class TestPaddedLayout:
    def test_offsets_skip_padding(self):
        padded = PaddedSharedLayout(pad_elems=4)
        assert padded.offset_of((0, 0), (8, 16)) == 0
        assert padded.offset_of((0, 15), (8, 16)) == 15
        assert padded.offset_of((1, 0), (8, 16)) == 20

    def test_footprint_includes_padding(self):
        padded = PaddedSharedLayout(pad_elems=4)
        assert padded.footprint_elements((8, 16)) == 8 * 20

    def test_injective(self):
        padded = PaddedSharedLayout(pad_elems=4)
        seen = set()
        for i in range(8):
            for j in range(16):
                off = padded.offset_of((i, j), (8, 16))
                assert off not in seen
                seen.add(off)

    def test_default_padding(self):
        assert default_padding(8) == 4
        assert default_padding(16) == 2
        assert default_padding(32) == 1

    def test_negative_pad_rejected(self):
        with pytest.raises(DimensionError):
            PaddedSharedLayout(pad_elems=-1)
