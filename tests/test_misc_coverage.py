"""Edge-path tests across modules: dim utilities, layout plumbing,
plan validation, pricing of matrix instructions, and the
invert-and-compose algebra on random invertible layouts."""

import random

import pytest

from repro.codegen.plan import RegisterPermute
from repro.core import (
    LANE,
    LinearLayout,
    REGISTER,
    WARP,
    canonical_dim_order,
    hardware_dims,
    make_identity,
    out_dim_names,
)
from repro.core.errors import DimensionError


class TestDimUtilities:
    def test_hardware_dims_order(self):
        assert hardware_dims() == ["register", "lane", "warp", "block"]

    def test_canonical_order(self):
        assert canonical_dim_order(["warp", "register"]) == [
            "register", "warp",
        ]
        assert canonical_dim_order(["offset", "lane"]) == [
            "lane", "offset",
        ]

    def test_out_dim_names(self):
        assert out_dim_names(3) == ["dim0", "dim1", "dim2"]
        assert out_dim_names(0) == []
        with pytest.raises(ValueError):
            out_dim_names(-1)


class TestLayoutPlumbing:
    def test_pretty_small(self):
        layout = make_identity([(4, REGISTER, "dim0")])
        text = layout.pretty()
        assert "{'register': 3}" in text

    def test_pretty_large_falls_back(self):
        layout = make_identity([(1 << 13, REGISTER, "dim0")])
        assert layout.pretty() == repr(layout)

    def test_transpose_ins(self):
        layout = make_identity(
            [(4, REGISTER, "dim0"), (2, LANE, "dim0")]
        )
        flipped = layout.transpose_ins([LANE, REGISTER])
        assert flipped.in_dims == [LANE, REGISTER]
        assert flipped.equivalent(layout)

    def test_transpose_ins_bad_order(self):
        layout = make_identity([(4, REGISTER, "dim0")])
        with pytest.raises(DimensionError):
            layout.transpose_ins([LANE])

    def test_trivially_injective(self):
        good = make_identity([(4, REGISTER, "dim0")])
        assert good.is_trivially_injective_in(REGISTER)
        bad = LinearLayout(
            {REGISTER: [(1,), (1,)], LANE: [(2,)]}, {"dim0": 4}
        )
        assert not bad.is_trivially_injective_in(REGISTER)

    def test_in_dim_size_of_missing_dim_is_one(self):
        layout = make_identity([(4, REGISTER, "dim0")])
        assert layout.in_dim_size(WARP) == 1

    def test_out_dim_missing_raises(self):
        layout = make_identity([(4, REGISTER, "dim0")])
        with pytest.raises(DimensionError):
            layout.out_dim_size("dim5")

    def test_concat_ins_conflicts(self):
        a = make_identity([(4, REGISTER, "dim0")])
        with pytest.raises(DimensionError):
            a.concat_ins(a)  # same input dim

    def test_sublayout_missing_dims(self):
        layout = make_identity([(4, REGISTER, "dim0")])
        with pytest.raises(DimensionError):
            layout.sublayout([LANE], ["dim0"])
        with pytest.raises(DimensionError):
            layout.sublayout([REGISTER], ["nope"])


class TestPlanValidation:
    def test_register_permute_rejects_negative(self):
        with pytest.raises(ValueError):
            RegisterPermute((0, -1))


class TestMatrixInstructionPricing:
    def test_price_matches_machine_for_ldmatrix_plan(self):
        from repro.codegen.conversion import plan_conversion
        from repro.gpusim import Machine, distributed_data
        from repro.gpusim.opcost import price_plan
        from repro.hardware import GH200
        from repro.layouts import (
            BlockedLayout, MmaOperandLayout, NvidiaMmaLayout,
            shared_layout_for_mma,
        )

        src = BlockedLayout((1, 8), (8, 4), (2, 2), (1, 0)).to_linear(
            (64, 64)
        )
        dst = MmaOperandLayout(NvidiaMmaLayout((2, 2)), 0, 2).to_linear(
            (64, 64)
        )
        mem = shared_layout_for_mma(16, (64, 64)).to_linear((64, 64))
        plan = plan_conversion(
            src, dst, 16, spec=GH200, memory_layout=mem
        )
        priced = price_plan(plan, GH200).cycles()
        _, trace = Machine(GH200, 4).run_conversion(
            plan, distributed_data(src, 4, 32)
        )
        assert priced == pytest.approx(trace.cycles(), rel=0.3)


class TestInvertAndComposeAlgebra:
    @pytest.mark.parametrize("seed", range(8))
    def test_b_compose_conversion_recovers_a(self, seed):
        """B ∘ (B⁻¹ ∘ A) == A — the conversion's defining equation."""
        rng = random.Random(seed)
        bits = 8
        units = [1 << i for i in range(bits)]

        def random_layout():
            perm = list(units)
            rng.shuffle(perm)
            return LinearLayout(
                {
                    REGISTER: [(x,) for x in perm[:3]],
                    LANE: [(x,) for x in perm[3:7]],
                    WARP: [(x,) for x in perm[7:]],
                },
                {"dim0": 1 << bits},
            )

        a = random_layout()
        b = random_layout()
        conv = a.invert_and_compose(b)  # a -> b index map
        recovered = b.compose(conv)
        for _ in range(32):
            idx = {
                REGISTER: rng.randrange(8),
                LANE: rng.randrange(16),
                WARP: rng.randrange(2),
            }
            assert recovered.apply(idx) == a.apply(idx)
