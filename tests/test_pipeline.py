"""Pass-pipeline invariants: equivalence, idempotence, diagnostics.

The refactor contract (ISSUE 2): the pass-based pipeline must produce
bit-identical simulated cycles and op counts to the pre-refactor
monolithic engine — held by a checked-in golden file generated from
the pre-refactor ``LayoutEngine`` — and the individual passes must
satisfy their documented invariants (remat is idempotent and never
increases priced cycles; diagnostics are recorded for every pass).
"""

import json
import os

import pytest

from repro.engine import (
    CompilationContext,
    KernelBuilder,
    LayoutEngine,
    PassManager,
    compile as compile_graph,
    standard_passes,
)
from repro.engine.ir import OpKind
from repro.engine.passes import AnchorCatalog, balanced_warps
from repro.engine.pipeline import Pass, PassDiagnostics
from repro.hardware.spec import PLATFORMS, RTX4090
from repro.kernels import KERNELS
from repro.mxfp import F16

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__),
    "..",
    "benchmarks",
    "golden",
    "pipeline_equivalence.json",
)

with open(GOLDEN_PATH) as fh:
    GOLDEN = json.load(fh)["records"]

#: A representative slice for the per-pass invariant tests (the full
#: golden sweep below covers every kernel).
INVARIANT_KERNELS = ["gemm", "softmax", "welford", "rope", "flex_attention"]


def _compile_golden_case(rec):
    model = KERNELS[rec["kernel"]]
    case = model.cases[0]
    kb = model.build(**case.kwargs())
    return compile_graph(
        kb.graph, spec=PLATFORMS[rec["platform"]], mode=rec["mode"]
    )


class TestGoldenEquivalence:
    """The pipeline reproduces the pre-refactor engine bit-for-bit."""

    @pytest.mark.parametrize(
        "rec",
        GOLDEN,
        ids=lambda r: f"{r['kernel']}-{r['platform']}-{r['mode']}",
    )
    def test_cycles_and_op_counts_match(self, rec):
        compiled = _compile_golden_case(rec)
        assert compiled.ok == rec["ok"]
        if rec["ok"]:
            assert compiled.cycles() == rec["cycles"]
            assert compiled.op_counts() == rec["op_counts"]

    def test_golden_covers_every_kernel_in_both_modes(self):
        kernels = {rec["kernel"] for rec in GOLDEN}
        assert kernels == set(KERNELS)
        modes = {rec["mode"] for rec in GOLDEN}
        assert modes == {"linear", "legacy"}


class TestFacadeAndPublicApi:
    def test_compile_function_matches_engine_facade(self):
        model = KERNELS["gemm"]
        kb1 = model.build(**model.cases[0].kwargs())
        kb2 = model.build(**model.cases[0].kwargs())
        via_fn = compile_graph(kb1.graph, spec=RTX4090, mode="linear")
        via_engine = LayoutEngine(RTX4090, "linear").compile(kb2.graph)
        assert via_fn.cycles() == via_engine.cycles()
        assert via_fn.op_counts() == via_engine.op_counts()

    def test_custom_pipeline_is_accepted(self):
        kb = KernelBuilder()
        a = kb.load((64, 64), F16)
        b = kb.load((64, 64), F16)
        kb.store(kb.dot(a, b))
        manager = PassManager(standard_passes("linear"))
        compiled = compile_graph(kb.graph, passes=manager)
        assert compiled.ok and compiled.cycles() > 0

    def test_standard_passes_mode_split_is_declarative(self):
        linear = standard_passes("linear")
        legacy = standard_passes("legacy")
        assert [p.name for p in linear] == [p.name for p in legacy]
        # Same shape, different policies: the remat guard flips.
        lin_remat = next(p for p in linear if p.name == "backward-remat")
        leg_remat = next(p for p in legacy if p.name == "backward-remat")
        assert not lin_remat.require_descriptor
        assert leg_remat.require_descriptor
        with pytest.raises(ValueError):
            standard_passes("turbo")


def _run_prefix(mode, graph, upto):
    """Run the standard pipeline through the pass named ``upto``."""
    passes = standard_passes(mode)
    names = [p.name for p in passes]
    prefix = passes[: names.index(upto) + 1]
    ctx = CompilationContext.create(graph, RTX4090, mode)
    PassManager(prefix).run(ctx)
    return ctx


@pytest.mark.parametrize("mode", ["linear", "legacy"])
@pytest.mark.parametrize("kernel", INVARIANT_KERNELS)
class TestRematInvariants:
    def _context_after_remat(self, kernel, mode):
        model = KERNELS[kernel]
        kb = model.build(**model.cases[0].kwargs())
        try:
            return _run_prefix(mode, kb.graph, "backward-remat")
        except Exception:
            pytest.skip(f"{kernel} does not compile in {mode} mode")

    def test_remat_is_idempotent(self, kernel, mode):
        """A second remat run finds nothing to eliminate."""
        ctx = self._context_after_remat(kernel, mode)
        ops_after_first = list(ctx.graph.ops)
        remat = next(
            p for p in standard_passes(mode) if p.name == "backward-remat"
        )
        diag = PassDiagnostics(name="backward-remat-again")
        remat.run(ctx, diag)
        assert len(ctx.graph.ops) == len(ops_after_first)
        assert all(
            a is b for a, b in zip(ctx.graph.ops, ops_after_first)
        )
        assert diag.counters.get("conversions_eliminated", 0) == 0

    def test_remat_never_increases_priced_cycles(self, kernel, mode):
        """The remat pass only takes rewrites the cost model approves."""
        model = KERNELS[kernel]
        with_remat = PassManager(standard_passes(mode))
        without_remat = PassManager(
            [p for p in standard_passes(mode)
             if p.name != "backward-remat"]
        )
        kb1 = model.build(**model.cases[0].kwargs())
        kb2 = model.build(**model.cases[0].kwargs())
        full = LayoutEngine(RTX4090, mode).compile(kb1.graph, with_remat)
        bare = LayoutEngine(RTX4090, mode).compile(kb2.graph, without_remat)
        if not (full.ok and bare.ok):
            pytest.skip(f"{kernel} does not compile in {mode} mode")
        assert full.cycles() <= bare.cycles()
        assert (
            full.graph.count(OpKind.CONVERT_LAYOUT)
            <= bare.graph.count(OpKind.CONVERT_LAYOUT)
        )


class TestDiagnostics:
    def _compiled_gemm(self):
        model = KERNELS["gemm"]
        kb = model.build(**model.cases[0].kwargs())
        return compile_graph(kb.graph)

    def test_every_pass_leaves_a_record(self):
        compiled = self._compiled_gemm()
        names = [diag.name for diag in compiled.diagnostics]
        assert names == [
            "anchor-selection",
            "forward-propagation",
            "backward-remat",
            "lower-to-plans",
            "cost-summary",
        ]
        for diag in compiled.diagnostics:
            assert diag.wall_time_ms >= 0.0

    def test_counters_follow_the_documented_schema(self):
        compiled = self._compiled_gemm()
        by_name = {d.name: d for d in compiled.diagnostics}
        assert by_name["anchor-selection"].counters["anchors_assigned"] > 0
        forward = by_name["forward-propagation"].counters
        assert forward["conversions_inserted"] > 0
        lower = by_name["lower-to-plans"].counters
        assert lower["ops_lowered"] == len(compiled.graph.ops)
        summary = by_name["cost-summary"].counters
        assert summary["cycles"] == compiled.cycles()

    def test_pass_diagnostics_are_json_serializable(self):
        compiled = self._compiled_gemm()
        payload = json.dumps(compiled.pass_diagnostics())
        records = json.loads(payload)
        assert len(records) == len(compiled.diagnostics)
        assert all("wall_time_ms" in rec for rec in records)

    def test_describe_passes_mentions_every_pass(self):
        compiled = self._compiled_gemm()
        text = compiled.describe_passes()
        for diag in compiled.diagnostics:
            assert diag.name in text

    def test_failed_compilation_keeps_partial_diagnostics(self):
        class Boom(Pass):
            name = "boom"

            def run(self, ctx, diag):
                from repro.core.errors import LegacyUnsupportedError

                raise LegacyUnsupportedError("synthetic failure")

        kb = KernelBuilder()
        kb.store(kb.load((32, 32), F16))
        compiled = LayoutEngine(RTX4090, "linear").compile(
            kb.graph, PassManager([Boom()])
        )
        assert not compiled.ok
        assert compiled.diagnostics[0].name == "boom"
        assert any(
            "LegacyUnsupportedError" in note
            for note in compiled.diagnostics[0].notes
        )

    def test_cost_summary_requires_a_trace(self):
        from repro.engine.passes import CostSummary

        kb = KernelBuilder()
        kb.store(kb.load((32, 32), F16))
        ctx = CompilationContext.create(kb.graph, RTX4090, "linear")
        with pytest.raises(ValueError, match="lowered trace"):
            CostSummary().run(ctx, PassDiagnostics(name="cost-summary"))


class TestAnchorSelection:
    def test_balanced_warps_prefers_longer_dimension(self):
        assert balanced_warps(4, 128, 32, 16, 8) == (4, 1)
        wm, wn = balanced_warps(4, 64, 64, 16, 8)
        assert wm * wn == 4

    def test_catalog_memoizes_blocked_anchors(self):
        catalog = AnchorCatalog(RTX4090, 4)
        first = catalog.blocked_anchor((64, 64), F16)
        again = catalog.blocked_anchor((64, 64), F16)
        assert first[1] is again[1]

    def test_anchor_pass_assigns_every_load(self):
        ctx = _run_prefix(
            "linear",
            KERNELS["gemm"]
            .build(**KERNELS["gemm"].cases[0].kwargs())
            .graph,
            "anchor-selection",
        )
        loads = [op for op in ctx.graph.ops if op.kind == OpKind.LOAD]
        assert loads and all(
            op.output.layout is not None for op in loads
        )
