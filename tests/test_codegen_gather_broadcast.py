"""Tests for gather planning (Section 5.5) and broadcast accounting
(Section 5.1)."""

import pytest

from repro.codegen.broadcast import (
    duplicate_groups,
    reduction_load_count,
    reduction_store_count,
    unique_owner_count,
)
from repro.codegen.gather import (
    GatherPlanError,
    axis_component_bits,
    can_gather_with_shuffles,
    plan_gather,
)
from repro.core import LANE, LinearLayout, REGISTER, WARP
from repro.layouts import BlockedLayout, NvidiaMmaLayout
from repro.layouts.sliced import slice_linear_layout


class TestGatherPlanning:
    def warp_local_layout(self):
        # Axis 1 covered by lanes + registers only.
        return BlockedLayout((1, 2), (4, 8), (4, 1), (1, 0)).to_linear(
            (16, 16)
        )

    def cross_warp_layout(self):
        # Axis 1 covered partly by warps.
        return BlockedLayout((1, 1), (8, 4), (1, 4), (1, 0)).to_linear(
            (8, 16)
        )

    def test_axis_component_bits(self):
        layout = self.warp_local_layout()
        assert axis_component_bits(layout, WARP, 1) == 0
        assert axis_component_bits(layout, LANE, 1) == 3
        assert axis_component_bits(layout, WARP, 0) == 2

    def test_shuffle_eligibility(self):
        assert can_gather_with_shuffles(self.warp_local_layout(), 1)
        assert not can_gather_with_shuffles(self.cross_warp_layout(), 1)

    def test_plan_shape(self):
        plan = plan_gather(self.warp_local_layout(), 1)
        assert plan.rounds_per_position == 8
        assert plan.positions_per_thread == (
            self.warp_local_layout().in_dim_size(REGISTER)
        )
        assert plan.total_shuffles == (
            plan.rounds_per_position * plan.positions_per_thread
        )

    def test_cross_warp_raises(self):
        with pytest.raises(GatherPlanError):
            plan_gather(self.cross_warp_layout(), 1)

    def test_axis_out_of_range(self):
        with pytest.raises(GatherPlanError):
            plan_gather(self.warp_local_layout(), 5)

    def test_rounds_grow_with_axis_lanes(self):
        """The Figure 8 collapse mechanism: more axis lanes => more
        shuffle rounds per position."""
        small = BlockedLayout((1, 1), (16, 2), (4, 1), (1, 0)).to_linear(
            (64, 2)
        )
        big = BlockedLayout((1, 1), (2, 16), (4, 1), (1, 0)).to_linear(
            (8, 16)
        )
        assert (
            plan_gather(small, 1).rounds_per_position
            < plan_gather(big, 1).rounds_per_position
        )


class TestBroadcastAccounting:
    def test_duplicate_groups(self):
        layout = LinearLayout(
            {REGISTER: [(1,), (0,)], LANE: [(2,)], WARP: [(0,)]},
            {"dim0": 4},
        )
        groups = duplicate_groups(layout)
        assert groups[REGISTER] == 2
        assert groups[LANE] == 1
        assert groups[WARP] == 2

    def test_unique_owner_count(self):
        layout = LinearLayout(
            {REGISTER: [(1,), (0,)], LANE: [(2,)], WARP: [(0,)]},
            {"dim0": 4},
        )
        # 4 regs x 2 lanes x 2 warps = 16 slots; one free register bit
        # and one free warp bit divide by 4.
        assert unique_owner_count(layout) == 4

    def test_reduction_counts_dedupe(self):
        parent = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        sliced = slice_linear_layout(parent, 1)
        assert reduction_store_count(sliced, dedupe=False) >= (
            reduction_store_count(sliced, dedupe=True)
        )
        assert reduction_load_count(sliced, dedupe=False) >= (
            reduction_load_count(sliced, dedupe=True)
        )

    def test_mma_sliced_counts(self):
        parent = NvidiaMmaLayout((2, 2)).to_linear((32, 32))
        sliced = slice_linear_layout(parent, 1)
        legacy = reduction_store_count(sliced, dedupe=False)
        linear = reduction_store_count(sliced, dedupe=True)
        assert legacy > linear  # duplicates exist and are skipped
