"""Stress tests of the concurrent compile service.

The contract under test (``docs/SERVING.md``): hammering
:class:`repro.serve.CompileService` from many submitter threads with
overlapping kernel suites must produce results **bit-identical** to
serial :func:`repro.engine.compile` — same simulated cycles, same op
counts, same serialized warp programs — while single-flight and the
result cache collapse duplicate work.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import cache
from repro.serve import CompileRequest, CompileService, SingleFlight

# A fast, varied slice of the fig9 suite: GEMM + attention-ish +
# reductions + pointwise, two platforms, both engine modes.
SUITE = [
    CompileRequest("softmax", "r64c64"),
    CompileRequest("softmax", "r64c64", platform="MI250"),
    CompileRequest("vector_add", "n4096"),
    CompileRequest("dropout", "n4096"),
    CompileRequest("sum", "r128c128"),
    CompileRequest("welford", "r128c64"),
    CompileRequest("welford", "r128c64", mode="legacy"),
    CompileRequest("gemm", "t32_i4"),
    CompileRequest("gemm", "t32_i4", mode="legacy"),
    CompileRequest("rms_norm", "r128c64", platform="GH200"),
]


@pytest.fixture(scope="module")
def serial_reference():
    """Serial compilation summaries, keyed by canonical request key."""
    cache.clear()
    return {
        req.canonical_key(): req.build_and_compile().summary()
        for req in SUITE
    }


class TestStress:
    def test_eight_threads_bit_identical_to_serial(
        self, serial_reference
    ):
        """8 submitter threads x overlapping shuffled suites."""
        cache.clear()
        n_threads = 8
        results: dict = {}
        errors: list = []
        with CompileService(workers=4, name="stress") as service:
            barrier = threading.Barrier(n_threads)

            def hammer(seed: int) -> None:
                rng = random.Random(seed)
                suite = list(SUITE)
                rng.shuffle(suite)
                barrier.wait()
                try:
                    futures = [
                        (r.canonical_key(), service.submit(r))
                        for r in suite
                    ]
                    out = [(k, f.result()) for k, f in futures]
                    results[seed] = out
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(seed,))
                for seed in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            report = service.report()

        assert not errors
        # Every result from every thread is bit-identical to serial:
        # cycles, op counts, and serialized warp programs all match.
        for seed, out in results.items():
            assert len(out) == len(SUITE)
            for key, compiled in out:
                assert compiled.summary() == serial_reference[key], (
                    f"thread {seed} diverged from serial on {key}"
                )
        # Dedup fired: 80 requests, only |SUITE| distinct compiles.
        assert report.total_requests == n_threads * len(SUITE)
        assert report.compiles == len(SUITE)
        assert report.dedup_shared + report.result_cache_hits == (
            report.total_requests - report.compiles
        )
        assert report.failures == 0

    def test_single_flight_shares_one_compile(self, monkeypatch):
        """Duplicate in-flight requests share the leader's compile."""
        cache.clear()
        real = CompileRequest.build_and_compile
        started = threading.Event()

        def slow_compile(self):
            started.set()
            time.sleep(0.05)  # hold the flight open for the followers
            return real(self)

        monkeypatch.setattr(
            CompileRequest, "build_and_compile", slow_compile
        )
        req = CompileRequest("softmax", "r64c64")
        with CompileService(
            workers=4, result_cache=0, name="sf"
        ) as service:
            futures = [service.submit(req) for _ in range(8)]
            results = [f.result() for f in futures]
            report = service.report()
        # The three followers that dequeued during the leader's
        # compile shared its flight; every result is equal bit-wise.
        assert report.dedup_shared >= 3
        first = results[0].summary()
        assert all(r.summary() == first for r in results)

    def test_concurrent_distinct_requests_all_succeed(self):
        """No cross-talk between distinct keys compiled concurrently."""
        cache.clear()
        with CompileService(workers=8, name="distinct") as service:
            results = service.compile_batch(SUITE)
            report = service.report()
        assert len(results) == len(SUITE)
        assert report.compiles == len(SUITE)
        for req, compiled in zip(SUITE, results):
            assert compiled.mode == req.mode
            assert compiled.ok or compiled.error


class TestServiceSemantics:
    def test_results_in_request_order(self):
        reqs = [SUITE[3], SUITE[0], SUITE[1]]
        with CompileService(workers=2) as service:
            results = service.compile_batch(reqs)
        for req, compiled in zip(reqs, results):
            assert compiled.summary() == req.build_and_compile().summary()

    def test_invalid_requests_raise_at_submit(self):
        with CompileService(workers=1) as service:
            with pytest.raises(KeyError):
                service.submit(CompileRequest("no_such_kernel"))
            with pytest.raises(KeyError):
                service.submit(CompileRequest("gemm", "no_such_case"))
            with pytest.raises(KeyError):
                service.submit(CompileRequest("gemm", platform="TPU"))
            with pytest.raises(ValueError):
                service.submit(CompileRequest("gemm", mode="quantum"))

    def test_result_cache_serves_repeat_batches(self):
        cache.clear()
        with CompileService(workers=2, name="repeat") as service:
            first = service.compile_batch(SUITE[:4])
            second = service.compile_batch(SUITE[:4])
            report = service.report()
        # The second batch is served entirely without recompiling,
        # and shares the exact result objects.
        assert report.compiles == 4
        assert report.result_cache_hits >= 4
        for a, b in zip(first, second):
            assert a is b

    def test_report_is_json_exportable(self):
        import json

        with CompileService(workers=2, name="json") as service:
            service.compile_batch(SUITE[:3])
            report = service.report()
        doc = json.loads(report.to_json())
        assert doc["service"] == "json"
        assert doc["workers"] == 2
        assert doc["requests"] == 3
        assert len(doc["per_request"]) == 3
        for rec in doc["per_request"]:
            assert rec["queue_wait_ms"] >= 0
            assert rec["total_ms"] >= rec["compile_ms"]
        assert set(doc["cache"]) >= {"layouts", "plans", "engine"}
        assert report.describe()

    def test_process_backend_matches_serial(self, serial_reference):
        """Forked workers return the same bit-comparable digests."""
        reqs = [SUITE[0], SUITE[2], SUITE[0]]
        with CompileService(
            workers=2, backend="process", name="proc"
        ) as service:
            out = service.compile_batch(reqs)
        for req, summary in zip(reqs, out):
            got = dict(summary)
            got.pop("compile_ms")
            assert got == serial_reference[req.canonical_key()]


class TestSingleFlight:
    def test_leader_and_followers_deterministic(self):
        flight = SingleFlight()
        release = threading.Event()
        entered = threading.Event()
        outcomes: list = []

        def leader():
            def work():
                entered.set()
                release.wait()
                return "value"

            outcomes.append(flight.do("k", work))

        def follower():
            entered.wait()
            outcomes.append(flight.do("k", lambda: "other"))

        t_leader = threading.Thread(target=leader)
        followers = [
            threading.Thread(target=follower) for _ in range(3)
        ]
        t_leader.start()
        for t in followers:
            t.start()
        entered.wait()
        while flight.in_flight() == 0:  # pragma: no cover
            time.sleep(0.001)
        # Give followers time to park on the flight, then release.
        time.sleep(0.02)
        release.set()
        t_leader.join()
        for t in followers:
            t.join()
        values = {v for v, _shared in outcomes}
        shared_flags = sorted(s for _v, s in outcomes)
        assert values == {"value"}  # nobody computed "other"
        assert shared_flags == [False, True, True, True]
        assert flight.dedup_hits == 3
        assert flight.in_flight() == 0

    def test_exception_propagates_to_followers(self):
        flight = SingleFlight()
        release = threading.Event()
        entered = threading.Event()
        failures: list = []

        def leader():
            def boom():
                entered.set()
                release.wait()
                raise RuntimeError("leader failed")

            try:
                flight.do("k", boom)
            except RuntimeError as exc:
                failures.append(str(exc))

        def follower():
            entered.wait()
            time.sleep(0.01)
            try:
                flight.do("k", lambda: "ok")
            except RuntimeError as exc:
                failures.append(str(exc))

        ts = [threading.Thread(target=leader)] + [
            threading.Thread(target=follower) for _ in range(2)
        ]
        for t in ts:
            t.start()
        entered.wait()
        time.sleep(0.02)
        release.set()
        for t in ts:
            t.join()
        # Followers that joined the flight see the leader's error;
        # stragglers that arrived after completion recompute fine.
        assert failures.count("leader failed") >= 1
        # The key is forgotten: a fresh call recomputes.
        value, shared = flight.do("k", lambda: "fresh")
        assert (value, shared) == ("fresh", False)
