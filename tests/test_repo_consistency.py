"""Repository self-consistency checks.

Documentation and structure rot silently; these tests pin the claims
the docs make to the code that backs them.
"""

import importlib
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestDocsExist:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md",
         "docs/THEORY.md"],
    )
    def test_present_and_substantial(self, name):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text()) > 1000, name


class TestDesignExperimentIndex:
    def test_every_bench_target_exists(self):
        design = (REPO / "DESIGN.md").read_text()
        targets = re.findall(r"`benchmarks/(bench_\w+\.py)`", design)
        assert targets
        for target in targets:
            assert (REPO / "benchmarks" / target).exists(), target

    def test_every_bench_file_indexed_or_extension(self):
        design = (REPO / "DESIGN.md").read_text()
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            assert path.name in design, path.name


class TestTheoryMapResolves:
    def test_referenced_modules_import(self):
        theory = (REPO / "docs" / "THEORY.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", theory))
        for dotted in sorted(modules):
            parts = dotted.split(".")
            # Walk down until the remaining parts are attributes.
            for cut in range(len(parts), 0, -1):
                try:
                    mod = importlib.import_module(".".join(parts[:cut]))
                except ImportError:
                    continue
                obj = mod
                ok = True
                for attr in parts[cut:]:
                    if not hasattr(obj, attr):
                        ok = False
                        break
                    obj = getattr(obj, attr)
                assert ok, dotted
                break
            else:
                pytest.fail(f"cannot import {dotted}")


class TestExamplesListed:
    def test_readme_lists_every_example(self):
        readme = (REPO / "README.md").read_text()
        for path in (REPO / "examples").glob("*.py"):
            if path.name == "autotune_kernel.py":
                continue  # extension example beyond the README table
            assert path.name.replace(".py", "") in readme, path.name


class TestPackageSurface:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_resolve(self):
        for pkg in ("repro.core", "repro.f2", "repro.layouts",
                    "repro.codegen", "repro.gpusim", "repro.mxfp",
                    "repro.engine", "repro.kernels"):
            mod = importlib.import_module(pkg)
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{pkg}.{name}"
