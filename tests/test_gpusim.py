"""Tests for the simulated GPU: banked memory, register files, traces,
machine execution, and pricing/machine agreement."""

import pytest

from repro.codegen import plan_conversion
from repro.core import LANE, REGISTER, WARP
from repro.gpusim import (
    Machine,
    RegisterFile,
    SharedMemory,
    Trace,
    distributed_data,
)
from repro.gpusim.opcost import price_plan
from repro.gpusim.registers import assert_matches_layout
from repro.hardware import GH200, MI250, RTX4090
from repro.hardware.instructions import InstructionKind
from repro.layouts import BlockedLayout, NvidiaMmaLayout


class TestSharedMemoryBanks:
    def setup_method(self):
        self.mem = SharedMemory(RTX4090, elem_bytes=4)

    def test_conflict_free_row(self):
        """32 lanes hitting 32 consecutive words: one wavefront."""
        requests = [(lane, 1) for lane in range(32)]
        assert self.mem.wavefronts(requests, is_store=False) == 1

    def test_same_bank_stride(self):
        """Stride-32 words all hit bank 0: 32 wavefronts."""
        requests = [(lane * 32, 1) for lane in range(32)]
        assert self.mem.wavefronts(requests, is_store=False) == 32

    def test_two_way_conflict(self):
        requests = [(lane * 2, 1) for lane in range(32)]
        assert self.mem.wavefronts(requests, is_store=False) == 2

    def test_broadcast_is_free(self):
        """All lanes reading the same word: one wavefront."""
        requests = [(0, 1) for _ in range(32)]
        assert self.mem.wavefronts(requests, is_store=False) == 1

    def test_vectorized_access_covers_banks(self):
        """16-byte vectors: each lane covers 4 banks; 32 lanes span
        128 words -> 4 wavefronts (the 128-byte transaction split)."""
        requests = [(lane * 4, 4) for lane in range(32)]
        assert self.mem.wavefronts(requests, is_store=False) == 4

    def test_subword_sharing(self):
        """1-byte elements, 4 lanes per word: free sharing."""
        mem = SharedMemory(RTX4090, elem_bytes=1)
        requests = [(lane, 1) for lane in range(32)]
        assert mem.wavefronts(requests, is_store=False) == 1

    def test_data_plane(self):
        self.mem.write(5, "x")
        assert self.mem.read(5) == "x"
        assert 5 in self.mem
        with pytest.raises(KeyError):
            self.mem.read(6)

    def test_empty_access(self):
        assert self.mem.wavefronts([], is_store=True) == 0


class TestRegisterFile:
    def test_read_write(self):
        rf = RegisterFile(2, 32)
        rf.write(1, 5, 3, 42)
        assert rf.read(1, 5, 3) == 42
        assert rf.has(1, 5, 3)
        assert not rf.has(0, 0, 0)
        with pytest.raises(KeyError):
            rf.read(0, 0, 0)

    def test_copy_is_independent(self):
        rf = RegisterFile(1, 32)
        rf.write(0, 0, 0, 1)
        clone = rf.copy()
        clone.write(0, 0, 0, 2)
        assert rf.read(0, 0, 0) == 1

    def test_distributed_data_matches_layout(self):
        layout = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        rf = distributed_data(layout, 4, 32)
        assert_matches_layout(rf, layout)

    def test_assert_catches_mismatch(self):
        layout = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear(
            (16, 32)
        )
        rf = distributed_data(layout, 4, 32)
        rf.write(0, 0, 0, -1)
        with pytest.raises(AssertionError):
            assert_matches_layout(rf, layout)


class TestTrace:
    def test_histogram_and_counts(self):
        trace = Trace(RTX4090)
        trace.emit(InstructionKind.SHARED_LOAD, count=3)
        trace.emit(InstructionKind.SHUFFLE, count=2)
        trace.emit(InstructionKind.SHARED_LOAD, count=1)
        assert trace.histogram() == {"ld.shared": 4, "shfl.sync": 2}
        assert trace.count(InstructionKind.SHARED_LOAD) == 4
        assert trace.shared_instruction_count() == 4

    def test_zero_count_skipped(self):
        trace = Trace(RTX4090)
        trace.emit(InstructionKind.SHUFFLE, count=0)
        assert not trace.instructions

    def test_merge(self):
        a = Trace(RTX4090)
        a.emit(InstructionKind.BARRIER)
        b = Trace(RTX4090)
        b.emit(InstructionKind.SHUFFLE)
        assert len(a.merge(b).instructions) == 2

    def test_dependent_costs_more(self):
        fast = Trace(RTX4090)
        fast.emit(InstructionKind.SHARED_LOAD, count=4, wavefronts=1)
        slow = Trace(RTX4090)
        slow.emit(
            InstructionKind.SHARED_LOAD, count=4, wavefronts=1,
            dependent=True,
        )
        assert slow.cycles() > fast.cycles()


class TestPricingAgreement:
    @pytest.mark.parametrize(
        "spec", [RTX4090, GH200, MI250], ids=lambda s: s.name
    )
    def test_price_matches_machine(self, spec):
        """price_plan must produce the same cycle count as executing
        the plan with data on the machine."""
        if spec is MI250:
            src = BlockedLayout((1, 2), (8, 8), (2, 2), (1, 0)).to_linear(
                (32, 64)
            )
            dst = BlockedLayout((1, 4), (4, 16), (2, 2), (1, 0)).to_linear(
                (32, 64)
            )
        else:
            src = BlockedLayout((1, 4), (8, 4), (2, 2), (1, 0)).to_linear(
                (32, 64)
            )
            dst = NvidiaMmaLayout((2, 2)).to_linear((32, 64))
        plan = plan_conversion(src, dst, 16, spec=spec)
        priced = price_plan(plan, spec).cycles()
        machine = Machine(spec, num_warps=4)
        registers = distributed_data(src, 4, spec.warp_size)
        _, trace = machine.run_conversion(plan, registers)
        assert priced == pytest.approx(trace.cycles(), rel=0.25)


class TestGatherExecution:
    def test_shuffle_gather_moves_data(self):
        layout = BlockedLayout((1, 2), (4, 8), (4, 1), (1, 0)).to_linear(
            (16, 16)
        )
        machine = Machine(RTX4090, num_warps=4)
        src = distributed_data(layout, 4, 32)
        # index[i, j] = (j + 1) % 16: a rotation along the axis.
        from repro.codegen.views import DistributedView

        view = DistributedView(layout)
        index = RegisterFile(4, 32)
        for w in range(4):
            for l in range(32):
                for r in range(layout.in_dim_size(REGISTER)):
                    p = view.flat_of({REGISTER: r, LANE: l, WARP: w})
                    j = p & 15
                    index.write(w, l, r, (j + 1) % 16)
        out, trace = machine.run_gather_shuffle(layout, 1, src, index)
        for w in range(4):
            for l in range(32):
                for r in range(layout.in_dim_size(REGISTER)):
                    p = view.flat_of({REGISTER: r, LANE: l, WARP: w})
                    i, j = p >> 4, p & 15
                    expected = (i << 4) | ((j + 1) % 16)
                    assert out.read(w, l, r) == expected
        assert trace.count(InstructionKind.SHUFFLE) > 0

    def test_shared_gather_agrees_with_shuffle_gather(self):
        layout = BlockedLayout((1, 2), (4, 8), (4, 1), (1, 0)).to_linear(
            (16, 16)
        )
        machine = Machine(RTX4090, num_warps=4)
        src = distributed_data(layout, 4, 32)
        from repro.codegen.views import DistributedView

        view = DistributedView(layout)
        index = RegisterFile(4, 32)
        for w in range(4):
            for l in range(32):
                for r in range(layout.in_dim_size(REGISTER)):
                    p = view.flat_of({REGISTER: r, LANE: l, WARP: w})
                    index.write(w, l, r, (p * 7 + 3) % 16)
        out1, _ = machine.run_gather_shuffle(layout, 1, src, index)
        out2, _ = machine.run_gather_shared(layout, 1, src, index)
        assert out1.as_dict() == out2.as_dict()
