"""Layout interning, the bounded caches, and the off-switch.

Two properties matter: structurally equal layouts behave as one value
(the eq/hash contract plus interning identity), and caching is purely
an optimization — every compiled kernel and conversion plan must be
bit-identical with the caches bypassed.
"""

import random

import pytest

from repro import cache
from repro.codegen import plan_conversion
from repro.core import BLOCK, LANE, LinearLayout, REGISTER, WARP
from repro.engine import LayoutEngine
from repro.hardware import GH200, RTX4090
from repro.kernels.models import (
    build_flex_attention,
    build_gemm,
    build_softmax,
)

from tests.test_random_layout_conversions import random_distributed_layout


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test starts cold and leaves caching enabled."""
    cache.clear()
    cache.set_enabled(True)
    yield
    cache.clear()
    cache.set_enabled(True)


def _layout(seed: int = 0, **kwargs) -> LinearLayout:
    return random_distributed_layout(random.Random(seed), 9, **kwargs)


# ----------------------------------------------------------------------
# __eq__ / __hash__ consistency
# ----------------------------------------------------------------------
def test_equal_layouts_hash_equal():
    a = _layout(seed=3)
    b = random_distributed_layout(random.Random(3), 9)
    assert a is not b
    assert a == b
    assert hash(a) == hash(b)
    assert a.canonical_key() == b.canonical_key()


def test_unequal_layouts_compare_unequal():
    a = _layout(seed=1)
    b = _layout(seed=2)
    assert a != b
    assert a.canonical_key() != b.canonical_key()


def test_in_dim_order_is_part_of_identity():
    """Same bases registered in a different input-dim order differ.

    ``__eq__`` and ``__hash__`` must agree on this: the regression
    fixed here was hashing a value that ignored what ``__eq__``
    checked.
    """
    bases = {REGISTER: [(1,)], LANE: [(2,)], WARP: [(4,)]}
    swapped = {LANE: [(2,)], REGISTER: [(1,)], WARP: [(4,)]}
    dims = {"dim0": 8}
    a = LinearLayout(dict(bases), dict(dims))
    b = LinearLayout(dict(swapped), dict(dims))
    assert (a == b) == (hash(a) == hash(b) and a.canonical_key() == b.canonical_key())
    assert a != b  # declaration order is semantic (register iteration)


def test_layouts_work_as_dict_keys():
    a = _layout(seed=5)
    b = random_distributed_layout(random.Random(5), 9)
    c = _layout(seed=6)
    table = {a: "first"}
    table[b] = "second"  # structurally equal: overwrites
    table[c] = "third"
    assert len(table) == 2
    assert table[a] == "second"


@pytest.mark.parametrize("seed", range(8))
def test_eq_hash_contract_randomized(seed):
    """For random layout pairs: a == b implies hash(a) == hash(b)."""
    rng = random.Random(seed)
    a = random_distributed_layout(rng, 9, extra_reg_bits=seed % 2)
    rng2 = random.Random(seed)
    b = random_distributed_layout(rng2, 9, extra_reg_bits=seed % 2)
    assert a == b and hash(a) == hash(b)
    other = random_distributed_layout(random.Random(seed + 1000), 9)
    if a == other:
        assert hash(a) == hash(other)


# ----------------------------------------------------------------------
# Interning
# ----------------------------------------------------------------------
def test_intern_returns_same_object_for_equal_layouts():
    a = _layout(seed=7)
    b = random_distributed_layout(random.Random(7), 9)
    assert a is not b
    assert a.intern() is b.intern()
    assert a.intern() in (a, b)


def test_intern_distinguishes_different_layouts():
    assert _layout(seed=8).intern() is not _layout(seed=9).intern()


def test_intern_is_identity_when_disabled():
    a = _layout(seed=10)
    with cache.disabled():
        assert a.intern() is a
    # Nothing was recorded while disabled.
    assert cache.layouts.stats().size == 0


def test_interned_layout_still_equal_to_original():
    a = _layout(seed=11)
    canonical = a.intern()
    fresh = random_distributed_layout(random.Random(11), 9)
    assert fresh == canonical
    assert fresh.intern() is canonical


# ----------------------------------------------------------------------
# BoundedCache mechanics
# ----------------------------------------------------------------------
def test_bounded_cache_hits_misses_and_stats():
    c = cache.BoundedCache("t_stats", maxsize=4)
    assert c.get("a") is None
    c.put("a", 1)
    assert c.get("a") == 1
    s = c.stats()
    assert (s.hits, s.misses, s.size, s.maxsize) == (1, 1, 1, 4)
    assert 0.0 < s.hit_rate < 1.0
    d = s.to_dict()
    assert d["name"] == "t_stats" and d["hit_rate"] == 0.5


def test_bounded_cache_evicts_lru_first():
    c = cache.BoundedCache("t_lru", maxsize=2)
    c.put("a", 1)
    c.put("b", 2)
    c.get("a")  # refresh "a": now "b" is least recently used
    c.put("c", 3)
    assert c.get("a") == 1
    assert c.get("b") is None  # evicted
    assert c.stats().evictions == 1


def test_bounded_cache_first_insert_wins():
    c = cache.BoundedCache("t_race", maxsize=4)
    assert c.put("k", "first") == "first"
    assert c.put("k", "second") == "first"
    assert c.get("k") == "first"


def test_get_or_create_runs_factory_once():
    c = cache.BoundedCache("t_factory", maxsize=4)
    calls = []
    for _ in range(3):
        c.get_or_create("k", lambda: calls.append(1) or len(calls))
    assert calls == [1]


def test_clear_resets_entries_and_statistics():
    c = cache.BoundedCache("t_clear", maxsize=4)
    c.put("a", 1)
    c.get("a")
    c.get("zzz")
    c.clear()
    s = c.stats()
    assert (s.hits, s.misses, s.size) == (0, 0, 0)


def test_global_clear_and_stats_cover_named_caches():
    _layout(seed=12).intern()
    snapshot = cache.stats()
    for name in ("layouts", "derivations", "plans", "engine"):
        assert name in snapshot
    assert snapshot["layouts"].size == 1
    cache.clear()
    assert cache.stats()["layouts"].size == 0


def test_rejects_nonpositive_maxsize():
    with pytest.raises(ValueError):
        cache.BoundedCache("t_bad", maxsize=0)


# ----------------------------------------------------------------------
# Off-switch
# ----------------------------------------------------------------------
def test_set_enabled_returns_previous_value():
    assert cache.set_enabled(False) is True
    assert cache.set_enabled(True) is False
    assert cache.enabled()


def test_disabled_context_restores_state():
    assert cache.enabled()
    with cache.disabled():
        assert not cache.enabled()
        with cache.disabled():
            assert not cache.enabled()
        assert not cache.enabled()
    assert cache.enabled()


def test_cached_bypasses_when_disabled():
    c = cache.BoundedCache("t_gate", maxsize=4)
    calls = []
    with cache.disabled():
        for _ in range(2):
            cache.cached(c, "k", lambda: calls.append(1) or "v")
    assert len(calls) == 2
    assert c.stats().size == 0


@pytest.mark.parametrize(
    "value,expected",
    [
        ("0", False),
        ("off", False),
        ("FALSE", False),
        (" no ", False),
        ("1", True),
        ("", True),
        ("yes", True),
    ],
)
def test_env_off_switch_values(monkeypatch, value, expected):
    monkeypatch.setenv("REPRO_CACHE", value)
    assert cache._env_enabled() is expected
    monkeypatch.delenv("REPRO_CACHE")
    assert cache._env_enabled() is True


# ----------------------------------------------------------------------
# Caching is purely an optimization: identical results on and off
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(10))
def test_plan_conversion_identical_with_and_without_cache(seed):
    rng = random.Random(seed)
    shape = {"dim0": 16, "dim1": 32}
    src = random_distributed_layout(rng, 9, shape=shape)
    dst = random_distributed_layout(rng, 9, shape=shape)
    spec = RTX4090 if seed % 2 == 0 else GH200
    warm = plan_conversion(src, dst, elem_bits=16, spec=spec)
    cached_again = plan_conversion(src, dst, elem_bits=16, spec=spec)
    assert cached_again is warm  # the PlanCache shares the object
    with cache.disabled():
        cold = plan_conversion(src, dst, elem_bits=16, spec=spec)
    assert cold is not warm
    assert cold.kind == warm.kind
    assert cold.steps == warm.steps
    assert cold == warm


@pytest.mark.parametrize(
    "build",
    [build_gemm, build_softmax, build_flex_attention],
    ids=["gemm", "softmax", "flex_attention"],
)
@pytest.mark.parametrize("mode", ["linear", "legacy"])
def test_compile_identical_with_and_without_cache(build, mode):
    engine = LayoutEngine(spec=RTX4090, mode=mode)
    cold_engine = LayoutEngine(spec=RTX4090, mode=mode)
    warm = engine.compile(build().graph)
    rewarm = engine.compile(build().graph)
    with cache.disabled():
        cold = cold_engine.compile(build().graph)
    assert warm.cycles() == rewarm.cycles() == cold.cycles()
    assert warm.op_counts() == rewarm.op_counts() == cold.op_counts()


@pytest.mark.parametrize("seed", range(4))
def test_compile_identical_across_random_engine_configs(seed):
    rng = random.Random(900 + seed)
    m = rng.choice([32, 64, 128])
    n = rng.choice([32, 64, 128])
    num_warps = rng.choice([2, 4, 8])
    spec = rng.choice([RTX4090, GH200])
    build = lambda: build_gemm(m=m, n=n, k=64, k_iters=2)
    warm = LayoutEngine(spec=spec, num_warps=num_warps).compile(
        build().graph
    )
    with cache.disabled():
        cold = LayoutEngine(spec=spec, num_warps=num_warps).compile(
            build().graph
        )
    assert warm.cycles() == cold.cycles()
    assert warm.op_counts() == cold.op_counts()


def test_derivations_identical_with_and_without_cache():
    a = _layout(seed=20)
    warm_inv = a.invert_and_compose(_layout(seed=21))
    warm_rank = a.is_injective()
    warm_masks = a.free_variable_masks()
    with cache.disabled():
        b = random_distributed_layout(random.Random(20), 9)
        cold_inv = b.invert_and_compose(
            random_distributed_layout(random.Random(21), 9)
        )
        assert cold_inv == warm_inv
        assert b.is_injective() == warm_rank
        assert b.free_variable_masks() == warm_masks


def test_free_variable_masks_returns_fresh_dict():
    """Callers may mutate the returned dict without corrupting the memo."""
    layout = _layout(seed=22, extra_reg_bits=1)
    first = layout.free_variable_masks()
    first[BLOCK] = 12345
    assert BLOCK not in layout.free_variable_masks()
