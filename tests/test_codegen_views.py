"""Tests for DistributedView (bit routing for distributed layouts)."""

import pytest

from repro.core import LANE, LinearLayout, REGISTER, WARP
from repro.core.errors import LayoutError
from repro.codegen.views import DistributedView
from repro.layouts import BlockedLayout, NvidiaMmaLayout


def blocked_view():
    desc = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0))
    return DistributedView(desc.to_linear((16, 32)))


class TestRoundTrip:
    def test_flat_owner_inverse(self):
        view = blocked_view()
        layout = view.layout
        for w in range(layout.in_dim_size(WARP)):
            for l in range(layout.in_dim_size(LANE)):
                for r in range(layout.in_dim_size(REGISTER)):
                    idx = {REGISTER: r, LANE: l, WARP: w}
                    assert view.owner_of(view.flat_of(idx)) == idx

    def test_matches_layout_apply(self):
        view = blocked_view()
        layout = view.layout
        for r in range(layout.in_dim_size(REGISTER)):
            for l in (0, 7, 31):
                flat = view.flat_of({REGISTER: r, LANE: l})
                assert flat == layout.apply_flat({REGISTER: r, LANE: l})

    def test_mma_view(self):
        view = DistributedView(NvidiaMmaLayout((2, 2)).to_linear((32, 32)))
        idx = {REGISTER: 3, LANE: 17, WARP: 2}
        assert view.owner_of(view.flat_of(idx)) == idx


class TestBroadcastHandling:
    def layout_with_broadcast(self):
        return LinearLayout(
            {REGISTER: [(1,), (0,)], LANE: [(2,), (4,)], WARP: [(8,)]},
            {"dim0": 16},
        )

    def test_has_broadcasting(self):
        view = DistributedView(self.layout_with_broadcast())
        assert view.has_broadcasting(REGISTER)
        assert not view.has_broadcasting(LANE)
        assert view.has_broadcasting()

    def test_canonical_owner_zeroes_free_bits(self):
        view = DistributedView(self.layout_with_broadcast())
        flat = view.flat_of({REGISTER: 1, LANE: 2, WARP: 1})
        owner = view.owner_of(flat)
        assert owner[REGISTER] == 1  # free bit (bit 1) stays 0

    def test_replicas(self):
        view = DistributedView(self.layout_with_broadcast())
        replicas = view.replicas_of({REGISTER: 1, LANE: 0, WARP: 0})
        assert len(replicas) == 2
        regs = sorted(r[REGISTER] for r in replicas)
        assert regs == [1, 3]

    def test_images_filter(self):
        view = DistributedView(self.layout_with_broadcast())
        assert view.images(REGISTER) == [1, 0]
        assert view.images(REGISTER, include_zeros=False) == [1]


class TestValidation:
    def test_rejects_non_distributed(self):
        layout = LinearLayout(
            {REGISTER: [(3,), (2,)]}, {"dim0": 4},
            require_surjective=False,
        )
        with pytest.raises(LayoutError):
            DistributedView(layout)

    def test_rejects_position_outside_image(self):
        view = blocked_view()
        with pytest.raises(LayoutError):
            view.owner_of(1 << 20)
