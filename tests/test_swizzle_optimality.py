"""Property tests of the optimality claim (Lemma 9.6).

For random pairs of distributed layouts, the optimal swizzled staging
must never produce more measured bank-conflict wavefronts than either
the padding heuristic or raw staging — measured on the actual per-lane
addresses, not the analytic model.
"""

import random

import pytest

from repro.codegen.conversion import plan_conversion
from repro.codegen.plan import SharedLoad, SharedStore
from repro.core import LANE, LinearLayout, REGISTER, WARP
from repro.gpusim.memory import SharedMemory
from repro.gpusim.opcost import price_plan
from repro.hardware import GH200


def random_layout(rng, bits=10, shape=None):
    units = [1 << i for i in range(bits)]
    rng.shuffle(units)
    if shape is None:
        shape = {"dim0": 32, "dim1": 32}

    def coords(flat):
        out = []
        rem = flat
        for size in reversed(list(shape.values())):
            out.append(rem % size)
            rem //= size
        out.reverse()
        return tuple(out)

    return LinearLayout(
        {
            REGISTER: [coords(x) for x in units[:3]],
            LANE: [coords(x) for x in units[3:8]],
            WARP: [coords(x) for x in units[8:]],
        },
        dict(shape),
    )


def total_wavefronts(plan, spec, elem_bytes):
    memory = SharedMemory(spec, elem_bytes)
    total = 0
    for step in plan.steps:
        if not isinstance(step, (SharedStore, SharedLoad)):
            continue
        lanes = step.accesses[: spec.warp_size]
        max_accesses = max((len(a) for a in lanes), default=0)
        for k in range(max_accesses):
            requests = [
                (a[k][0], len(a[k][1])) for a in lanes if k < len(a)
            ]
            if requests:
                total += memory.wavefronts(requests, False)
    return total


@pytest.mark.parametrize("seed", range(10))
def test_optimal_never_loses_on_cycles(seed):
    rng = random.Random(1000 + seed)
    src = random_layout(rng)
    dst = random_layout(rng)
    kwargs = dict(spec=GH200, allow_shuffle=False,
                  dedupe_broadcast=False)
    optimal = plan_conversion(src, dst, 16, swizzle_mode="optimal",
                              **kwargs)
    padded = plan_conversion(src, dst, 16, swizzle_mode="padded",
                             **kwargs)
    raw = plan_conversion(src, dst, 16, swizzle_mode="none", **kwargs)
    opt_cycles = price_plan(optimal, GH200).cycles()
    assert opt_cycles <= price_plan(padded, GH200).cycles() * 1.01
    assert opt_cycles <= price_plan(raw, GH200).cycles() * 1.01


@pytest.mark.parametrize("seed", range(10))
def test_claimed_conflict_freedom_is_real(seed):
    """When the algorithm claims conflict-freeness, warp 0's measured
    wavefronts per access never exceed the 128-byte transaction split
    factor."""
    from repro.codegen.swizzle import optimal_swizzled_layout

    rng = random.Random(2000 + seed)
    src = random_layout(rng)
    dst = random_layout(rng)
    swizzle = optimal_swizzled_layout(src, dst, 16)
    if not swizzle.conflict_free:
        pytest.skip("conflicts declared unavoidable for this pair")
    plan = plan_conversion(
        src, dst, 16, spec=GH200, allow_shuffle=False,
        dedupe_broadcast=False,
    )
    n = max(1, swizzle.vec_elems * 2 // 4)
    memory = SharedMemory(GH200, 2)
    for step in plan.steps:
        if not isinstance(step, (SharedStore, SharedLoad)):
            continue
        if getattr(step, "use_ldmatrix", False) or getattr(
            step, "use_stmatrix", False
        ):
            continue
        lanes = step.accesses[:32]
        max_accesses = max((len(a) for a in lanes), default=0)
        for k in range(max_accesses):
            requests = [
                (a[k][0], len(a[k][1])) for a in lanes if k < len(a)
            ]
            if requests:
                assert memory.wavefronts(requests, False) <= n
