"""Error-path tests for the interpreter and builder."""

import numpy as np
import pytest

from repro.core.errors import DimensionError
from repro.engine import KernelBuilder
from repro.interp import execute_graph
from repro.mxfp import F32, I64


class TestBuilderValidation:
    def test_elementwise_shape_mismatch(self):
        kb = KernelBuilder()
        a = kb.load((4, 4), F32)
        b = kb.load((4, 8), F32)
        with pytest.raises(DimensionError):
            kb.elementwise(a, b)

    def test_dot_shape_mismatch(self):
        kb = KernelBuilder()
        a = kb.load((4, 4), F32)
        b = kb.load((8, 4), F32)
        with pytest.raises(DimensionError):
            kb.dot(a, b)

    def test_reduce_axis_range(self):
        kb = KernelBuilder()
        a = kb.load((4, 4), F32)
        with pytest.raises(DimensionError):
            kb.reduce(a, axis=2)

    def test_scan_axis_range(self):
        kb = KernelBuilder()
        a = kb.load((4, 4), F32)
        with pytest.raises(DimensionError):
            kb.scan(a, axis=5)

    def test_reshape_size_mismatch(self):
        kb = KernelBuilder()
        a = kb.load((4, 4), F32)
        with pytest.raises(DimensionError):
            kb.reshape(a, (4, 8))

    def test_broadcast_incompatible(self):
        kb = KernelBuilder()
        a = kb.load((4, 4), F32)
        with pytest.raises(DimensionError):
            kb.broadcast(a, (4, 8))

    def test_join_shape_mismatch(self):
        kb = KernelBuilder()
        a = kb.load((4, 4), F32)
        b = kb.load((4, 8), F32)
        with pytest.raises(DimensionError):
            kb.join(a, b)

    def test_split_needs_pair_dim(self):
        kb = KernelBuilder()
        a = kb.load((4, 4), F32)
        with pytest.raises(DimensionError):
            kb.split(a)

    def test_gather_shape_mismatch(self):
        kb = KernelBuilder()
        a = kb.load((4, 4), F32)
        idx = kb.load((4, 8), I64)
        with pytest.raises(DimensionError):
            kb.gather(a, idx, axis=1)


class TestInterpreterErrors:
    def test_unknown_scan_op(self):
        kb = KernelBuilder()
        x = kb.load((4, 4), F32)
        kb.store(kb.scan(x, axis=1, op="median"))
        with pytest.raises(ValueError):
            execute_graph(kb.graph, [np.zeros((4, 4))])

    def test_unknown_elementwise_name(self):
        kb = KernelBuilder()
        x = kb.load((4,), F32)
        kb.store(kb.elementwise(x, name="sigmoid"))
        with pytest.raises(KeyError):
            execute_graph(kb.graph, [np.zeros(4)])

    def test_graph_repr(self):
        kb = KernelBuilder()
        x = kb.load((4,), F32)
        kb.store(x)
        text = repr(kb.graph)
        assert "load" in text and "store" in text
