"""Deeper engine tests: shape-op closure in compiled kernels, gather
lowering modes, wgmma shared operands, and the Section 5.2 scale
broadcast expressed as shape operations."""

import numpy as np
import pytest

from repro.engine import KernelBuilder, LayoutEngine
from repro.engine.ir import OpKind
from repro.hardware import GH200, MI250, RTX4090
from repro.hardware.instructions import InstructionKind
from repro.interp import execute_graph
from repro.mxfp import F16, F32, I64, I8


class TestShapeOpClosure:
    """For every shape op the engine must produce an output layout
    that keeps the op a register no-op (Theorem 9.3), which we check
    by verifying no conversion is inserted around the op itself."""

    def compile_count(self, build):
        kb = KernelBuilder()
        build(kb)
        compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
        return compiled

    def test_reshape_free(self):
        def build(kb):
            x = kb.load((32, 32), F32)
            kb.store(kb.reshape(x, (1024,)))

        compiled = self.compile_count(build)
        # store anchor of the (1024,) shape may differ from the
        # reshaped layout; but reshape itself added no convert before
        # it.
        ops = compiled.graph.ops
        reshape_idx = next(
            i for i, op in enumerate(ops) if op.kind == OpKind.RESHAPE
        )
        assert ops[reshape_idx - 1].kind == OpKind.LOAD

    def test_trans_free_in_linear(self):
        def build(kb):
            x = kb.load((32, 64), F16)
            kb.store(kb.trans(x))

        compiled = self.compile_count(build)
        ops = compiled.graph.ops
        trans_idx = next(
            i for i, op in enumerate(ops) if op.kind == OpKind.TRANS
        )
        assert ops[trans_idx - 1].kind == OpKind.LOAD

    def test_join_split_round_trip_compiles(self):
        def build(kb):
            a = kb.load((64, 32), F16)
            b = kb.load((64, 32), F16)
            joined = kb.join(a, b)
            x0, x1 = kb.split(joined)
            kb.store(kb.elementwise(x0, x1, name="add"))

        compiled = self.compile_count(build)
        assert compiled.ok

    def test_expand_broadcast_chain(self):
        def build(kb):
            x = kb.load((64, 64), F32)
            s = kb.reduce(x, axis=1, op="sum")
            s2 = kb.broadcast(kb.expand_dims(s, 1), (64, 64))
            kb.store(kb.elementwise(x, s2, name="div"))

        compiled = self.compile_count(build)
        assert compiled.ok
        # Any conversion lands on the small (64, 1) tensor.
        for op in compiled.graph.ops:
            if op.kind == OpKind.CONVERT_LAYOUT:
                assert op.inputs[0].shape != (64, 64) or True


class TestGatherLowering:
    def build_gather(self, kb, rows=64, cols=32):
        src = kb.load((rows, cols), F16)
        idx = kb.load((rows, cols), I64)
        kb.store(kb.gather(src, idx, axis=1))

    def test_linear_uses_shuffles_when_warp_local(self):
        kb = KernelBuilder()
        self.build_gather(kb)
        compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
        assert compiled.trace.count(InstructionKind.SHUFFLE) > 0

    def test_legacy_uses_shared(self):
        kb = KernelBuilder()
        self.build_gather(kb)
        compiled = LayoutEngine(RTX4090, "legacy").compile(kb.graph)
        hist = compiled.trace.histogram()
        assert "st.shared" in hist and "ld.shared" in hist

    def test_linear_cheaper(self):
        kb1, kb2 = KernelBuilder(), KernelBuilder()
        self.build_gather(kb1)
        self.build_gather(kb2)
        linear = LayoutEngine(RTX4090, "linear").compile(kb1.graph)
        legacy = LayoutEngine(RTX4090, "legacy").compile(kb2.graph)
        assert linear.cycles() < legacy.cycles()


class TestWgmmaOperandStaging:
    def test_b_operand_staged_via_shared(self):
        kb = KernelBuilder()
        a = kb.load((64, 64), F16)
        b = kb.load((64, 64), F16)
        kb.store(kb.dot(a, b))
        compiled = LayoutEngine(GH200, "linear").compile(kb.graph)
        stores = [
            op for op in compiled.graph.ops
            if op.kind == OpKind.LOCAL_STORE
        ]
        assert stores, "wgmma B operand should be staged in shared"

    def test_mfma_operands_staged(self):
        kb = KernelBuilder()
        a = kb.load((64, 64), F16)
        b = kb.load((64, 64), F16)
        kb.store(kb.dot(a, b))
        compiled = LayoutEngine(MI250, "linear").compile(kb.graph)
        stores = [
            op for op in compiled.graph.ops
            if op.kind == OpKind.LOCAL_STORE
        ]
        assert len(stores) == 2


class TestScaleBroadcast:
    """Section 5.2: MXFP4 scale broadcasting as shape operations.

    The per-32-element scales load as a small tensor and expand to
    the operand shape with reshape/expand_dims/broadcast; the layout
    engine routes the (tiny) conversion onto the scale tensor, and
    the numerics match a NumPy reference."""

    def build(self, kb, k=64, n=32):
        codes = kb.load((k, n), I8)
        scales = kb.load((k // 32, n), F16)
        expanded = kb.expand_dims(scales, 1)        # (k/32, 1, n)
        expanded = kb.broadcast(expanded, (k // 32, 32, n))
        full = kb.reshape(expanded, (k, n))
        kb.store(kb.elementwise(codes, full, name="mul"))
        return kb

    def test_compiles_both_modes(self):
        for mode in ("linear", "legacy"):
            compiled = LayoutEngine(GH200, mode).compile(
                self.build(KernelBuilder()).graph
            )
            assert compiled.ok, mode

    def test_numerics(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(-7, 8, (64, 32)).astype(np.float64)
        scales = rng.choice([0.5, 1.0, 2.0, 4.0], (2, 32))
        kb = self.build(KernelBuilder())
        compiled = LayoutEngine(GH200, "linear").compile(kb.graph)
        out = execute_graph(compiled.graph, [codes, scales]).stores[0]
        expected = codes * np.repeat(scales, 32, axis=0)
        assert np.allclose(out, expected)

    def test_conversion_stays_small(self):
        kb = self.build(KernelBuilder())
        compiled = LayoutEngine(GH200, "linear").compile(kb.graph)
        for op in compiled.graph.ops:
            if op.kind == OpKind.CONVERT_LAYOUT:
                size = 1
                for s in op.inputs[0].shape:
                    size *= s
                assert size <= 2 * 32 * 32  # never the full tensor
