"""Layout serialization tests (to_dict / from_dict / JSON)."""

import json

import pytest

from repro.core import LinearLayout, REGISTER
from repro.layouts import (
    AmdMfmaLayout,
    BlockedLayout,
    MmaOperandLayout,
    NvidiaMmaLayout,
    SlicedLayout,
    SwizzledSharedLayout,
    WgmmaLayout,
)


ALL_LAYOUTS = [
    BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear((16, 32)),
    NvidiaMmaLayout((2, 2)).to_linear((32, 64)),
    MmaOperandLayout(NvidiaMmaLayout((2, 2)), 0, 2).to_linear((32, 64)),
    WgmmaLayout((4, 1), instr_n=32).to_linear((64, 64)),
    AmdMfmaLayout((2, 2)).to_linear((64, 64)),
    SlicedLayout(
        BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)), 1, 32
    ).to_linear((16,)),
    SwizzledSharedLayout(2, 1, 4).to_linear((16, 16)),
]


@pytest.mark.parametrize("layout", ALL_LAYOUTS, ids=lambda l: repr(l)[:40])
def test_round_trip(layout):
    rebuilt = LinearLayout.from_dict(layout.to_dict())
    assert rebuilt == layout


@pytest.mark.parametrize("layout", ALL_LAYOUTS[:4], ids=lambda l: repr(l)[:40])
def test_json_round_trip(layout):
    text = json.dumps(layout.to_dict())
    rebuilt = LinearLayout.from_dict(json.loads(text))
    assert rebuilt == layout
    # Behaviour, not just structure, survives.
    assert rebuilt.apply({REGISTER: 1}) == layout.apply({REGISTER: 1})


def test_dict_is_stable_structure():
    layout = ALL_LAYOUTS[0]
    data = layout.to_dict()
    assert set(data) == {"bases", "out_dims"}
    assert all(
        isinstance(img, list)
        for images in data["bases"].values()
        for img in images
    )
