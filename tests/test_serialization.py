"""Serialization tests: layouts, warp programs, traces (JSON)."""

import json

import pytest

from repro.codegen import plan_conversion
from repro.core import LinearLayout, REGISTER
from repro.gpusim import Machine, distributed_data, price_program
from repro.hardware import GH200, RTX4090
from repro.layouts import (
    AmdMfmaLayout,
    BlockedLayout,
    MmaOperandLayout,
    NvidiaMmaLayout,
    SlicedLayout,
    SwizzledSharedLayout,
    WgmmaLayout,
)
from repro.program import (
    lower_gather_shared,
    lower_gather_shuffle,
    program_from_json,
    program_to_json,
)


ALL_LAYOUTS = [
    BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)).to_linear((16, 32)),
    NvidiaMmaLayout((2, 2)).to_linear((32, 64)),
    MmaOperandLayout(NvidiaMmaLayout((2, 2)), 0, 2).to_linear((32, 64)),
    WgmmaLayout((4, 1), instr_n=32).to_linear((64, 64)),
    AmdMfmaLayout((2, 2)).to_linear((64, 64)),
    SlicedLayout(
        BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0)), 1, 32
    ).to_linear((16,)),
    SwizzledSharedLayout(2, 1, 4).to_linear((16, 16)),
]


@pytest.mark.parametrize("layout", ALL_LAYOUTS, ids=lambda l: repr(l)[:40])
def test_round_trip(layout):
    rebuilt = LinearLayout.from_dict(layout.to_dict())
    assert rebuilt == layout


@pytest.mark.parametrize("layout", ALL_LAYOUTS[:4], ids=lambda l: repr(l)[:40])
def test_json_round_trip(layout):
    text = json.dumps(layout.to_dict())
    rebuilt = LinearLayout.from_dict(json.loads(text))
    assert rebuilt == layout
    # Behaviour, not just structure, survives.
    assert rebuilt.apply({REGISTER: 1}) == layout.apply({REGISTER: 1})


def test_dict_is_stable_structure():
    layout = ALL_LAYOUTS[0]
    data = layout.to_dict()
    assert set(data) == {"bases", "out_dims"}
    assert all(
        isinstance(img, list)
        for images in data["bases"].values()
        for img in images
    )


# ----------------------------------------------------------------------
# Warp programs
# ----------------------------------------------------------------------
def _conversion_programs():
    src = BlockedLayout((1, 4), (8, 4), (2, 2), (1, 0)).to_linear(
        (32, 64)
    )
    dst = NvidiaMmaLayout((2, 2)).to_linear((32, 64))
    shared = plan_conversion(src, dst, 16).program()
    register = plan_conversion(
        src, src, elem_bits=16, dedupe_broadcast=False
    ).program()
    gather_layout = BlockedLayout(
        (1, 2), (4, 8), (4, 1), (1, 0)
    ).to_linear((16, 16))
    return [
        shared,
        register,
        lower_gather_shuffle(gather_layout, 1),
        lower_gather_shared(gather_layout, 1),
    ]


@pytest.mark.parametrize(
    "program",
    _conversion_programs(),
    ids=lambda p: p.label or "anonymous",
)
def test_program_json_round_trip(program):
    text = program_to_json(program)
    rebuilt = program_from_json(json.loads(json.dumps(text)))
    assert rebuilt.instrs == program.instrs
    assert rebuilt.result == program.result
    assert rebuilt.label == program.label
    # Behaviour, not just structure: identical static pricing.
    assert (
        price_program(rebuilt, RTX4090).instructions
        == price_program(program, RTX4090).instructions
    )


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
from repro.gpusim import Trace  # noqa: E402


@pytest.mark.parametrize("spec", [RTX4090, GH200], ids=lambda s: s.name)
def test_trace_json_round_trip(spec):
    src = BlockedLayout((1, 4), (8, 4), (2, 2), (1, 0)).to_linear(
        (32, 64)
    )
    dst = NvidiaMmaLayout((2, 2)).to_linear((32, 64))
    plan = plan_conversion(src, dst, 16, spec=spec)
    _, trace = Machine(spec, 4).run_conversion(
        plan, distributed_data(src, 4, spec.warp_size)
    )
    rebuilt = Trace.from_json(trace.to_json())
    assert rebuilt.spec is trace.spec
    assert rebuilt.instructions == trace.instructions
    assert rebuilt.cycles() == trace.cycles()


def test_trace_round_trip_preserves_flags():
    from repro.hardware.instructions import InstructionKind

    trace = Trace(RTX4090)
    trace.emit(
        InstructionKind.SHARED_LOAD,
        vector_bits=64,
        count=3,
        wavefronts=2,
        note="gathered",
        dependent=True,
    )
    rebuilt = Trace.from_json(trace.to_json())
    assert rebuilt.instructions == trace.instructions
    assert rebuilt.instructions[0].dependent is True
    assert rebuilt.instructions[0].note == "gathered"
