"""Figure 6: MXFP4 mixed-precision matmul speedups."""

import pytest

from conftest import run_once
from repro.bench.fig6 import run_fig6


def test_fig6_mxfp4(benchmark):
    table = run_once(benchmark, run_fig6)
    print()
    print(table.format())
    by_dtype = {}
    for row in table.rows:
        by_dtype.setdefault(row[0], []).append(row[4])
    # f16 shows the largest gains (wgmma fix on top of the shuffle);
    # every series gains.
    assert min(by_dtype["f16"]) > max(by_dtype["bf16"])
    for series in by_dtype.values():
        assert all(s >= 1.0 for s in series)
    assert max(by_dtype["f16"]) < 2.5  # same order as the paper's 1.87


if __name__ == "__main__":
    print(run_fig6().format())
