"""Simulator throughput: vectorized vs scalar program interpreter.

Run as a script to print the table and append an aggregate record to
``BENCH_sim.json`` at the repo root (pass ``--json`` to print the
record instead of the table; ``--no-record`` skips the append).
"""

import json
import sys
import time
from pathlib import Path

import pytest

from conftest import run_once
from repro.bench.simthroughput import aggregate_speedup, run_sim_throughput

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


def test_vectorized_speedup(benchmark):
    table = run_once(benchmark, run_sim_throughput)
    print()
    print(table.format())
    # The refactor's bar: the default (vectorized) interpreter at
    # least 3x the scalar oracle's throughput on the fig7 suite.
    assert aggregate_speedup(table) >= 3.0
    assert all(s > 1.0 for s in table.column("speedup"))


def record(table) -> dict:
    """The BENCH_sim.json entry for one run."""
    iters = 3
    runs = iters * len(table.rows)
    scalar_s = sum(table.column("scalar_ms")) * iters / 1e3
    vector_s = sum(table.column("vector_ms")) * iters / 1e3
    return {
        "bench": "sim_throughput",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cases": len(table.rows),
        "scalar_plans_per_s": round(runs / scalar_s, 2),
        "vector_plans_per_s": round(runs / vector_s, 2),
        "speedup": round(aggregate_speedup(table), 2),
        "table": table.to_dict(),
    }


def append_record(entry: dict) -> None:
    history = []
    if BENCH_FILE.exists():
        history = json.loads(BENCH_FILE.read_text())
    history.append(entry)
    BENCH_FILE.write_text(json.dumps(history, indent=2) + "\n")


if __name__ == "__main__":
    result = run_sim_throughput()
    entry = record(result)
    if "--json" in sys.argv:
        print(json.dumps(entry, indent=2))
    else:
        print(result.format())
    if "--no-record" not in sys.argv:
        append_record(entry)
        print(f"appended speedup {entry['speedup']}x to {BENCH_FILE}")
    if entry["speedup"] < 3.0:
        sys.exit("FAIL: vectorized interpreter below 3x scalar throughput")
