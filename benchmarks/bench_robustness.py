"""Robustness: the bug classes linear layouts eliminate."""

import pytest

from conftest import run_once
from repro.bench.robustness import run_robustness


def test_robustness(benchmark):
    table = run_once(benchmark, run_robustness)
    print()
    print(table.format())
    legacy = table.column("legacy")
    linear = table.column("linear")
    assert all(v == "ok" for v in linear)
    assert legacy.count("FAILS") == len(legacy)


if __name__ == "__main__":
    print(run_robustness().format())
