"""Figure 7: layout conversion — warp shuffles vs shared memory."""

import pytest

from conftest import run_once
from repro.bench.fig7 import run_fig7


def test_fig7_conversion(benchmark):
    table = run_once(benchmark, run_fig7)
    print()
    print(table.format())
    speedups = table.column("speedup")
    assert all(s > 1.0 for s in speedups)
    # Same order of magnitude as the paper's 3.93x peak.
    assert 2.0 < max(speedups) < 8.0


if __name__ == "__main__":
    print(run_fig7().format())
