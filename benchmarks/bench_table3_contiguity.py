"""Table 3: load/store contiguity and vector widths."""

import pytest

from conftest import run_once
from repro.bench.table3 import run_table3


def test_table3_contiguity(benchmark):
    table = run_once(benchmark, run_table3)
    print()
    print(table.format())
    legacy = table.column("Triton bits")
    linear = table.column("Triton-Linear bits")
    # Linear never vectorizes less, and fixes the [512,2]xf8 case
    # (row 1: 16 -> 128 bits, the paper's 700% headline).
    assert all(b >= a for a, b in zip(legacy, linear))
    assert legacy[1] == 16 and linear[1] == 128


if __name__ == "__main__":
    print(run_table3().format())
