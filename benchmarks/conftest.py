"""Shared helpers for the benchmark entry points."""

import pytest


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    Experiments are deterministic simulations; repeating them only
    re-measures Python overhead, so a single round suffices.
    """
    return benchmark.pedantic(
        fn, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
