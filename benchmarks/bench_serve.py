"""Compile-service throughput benchmark (records BENCH_serve.json).

Measures batch-compile throughput of :class:`repro.serve.CompileService`
against worker count on the cold Figure 9 suite, the dedup win on
duplicated traffic, and bit-identity of service output against the
``pipeline_equivalence.json`` golden.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py [--json] [--check]

``--check`` exits non-zero when the equivalence golden mismatches,
when dedup fails to eliminate duplicate work, or — on hosts with at
least 4 CPUs, where scaling is physically possible — when the process
backend falls short of 2x throughput at 4 workers vs 1.
"""

import json
import os
import sys
import time
from pathlib import Path

from conftest import run_once
from repro.bench.servebench import (
    run_dedup,
    run_equivalence,
    run_throughput,
    suite_requests,
    throughput_speedups,
)

HERE = Path(__file__).resolve().parent
BENCH_FILE = HERE.parent / "BENCH_serve.json"
GOLDEN = HERE / "golden" / "pipeline_equivalence.json"


def test_serve_equivalence_and_dedup(benchmark):
    """The service is bit-identical to serial and dedups duplicates."""
    equiv = run_once(benchmark, run_equivalence, golden_path=str(GOLDEN))
    assert equiv["bit_identical"], equiv["first_mismatches"]
    dedup = run_dedup(dup=3, workers=4, requests=suite_requests()[:12])
    assert dedup["compiles"] == dedup["unique_keys"]
    assert dedup["duplicate_work_eliminated"] > 0.6


def record(table, dedup, equiv) -> dict:
    """The BENCH_serve.json entry for one run."""
    speedups = throughput_speedups(table)
    return {
        "bench": "serve",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": os.cpu_count(),
        "suite_requests": len(suite_requests()),
        "speedup_thread": speedups.get("thread"),
        "speedup_process": speedups.get("process"),
        "workers_at_speedup": speedups.get("process_workers"),
        "target_speedup_at_4_workers": 2.0,
        "dedup": dedup,
        "equivalence": {
            k: v for k, v in equiv.items() if k != "first_mismatches"
        },
        "table": table.to_dict(),
    }


def append_record(entry: dict) -> None:
    history = []
    if BENCH_FILE.exists():
        history = json.loads(BENCH_FILE.read_text())
    history.append(entry)
    BENCH_FILE.write_text(json.dumps(history, indent=2) + "\n")


def check(entry: dict) -> int:
    """Acceptance gates; returns a process exit code."""
    failures = []
    if not entry["equivalence"]["bit_identical"]:
        failures.append(
            f"{entry['equivalence']['mismatches']} golden mismatches"
        )
    if entry["dedup"]["duplicate_work_eliminated"] < 0.5:
        failures.append("single-flight/result cache failed to dedup")
    cpus = entry["cpu_count"] or 1
    if cpus >= 4 and (entry["speedup_process"] or 0.0) < 2.0:
        failures.append(
            f"process backend {entry['speedup_process']}x at "
            f"{entry['workers_at_speedup']} workers on {cpus} CPUs "
            "(need >= 2x)"
        )
    elif cpus < 4:
        print(
            f"note: {cpus} CPU(s) — the 2x-at-4-workers scaling gate "
            "needs >= 4 cores and was skipped; dedup and equivalence "
            "gates still apply"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    table = run_throughput()
    dedup = run_dedup()
    equiv = run_equivalence(str(GOLDEN))
    entry = record(table, dedup, equiv)
    if "--json" in sys.argv:
        print(json.dumps(entry, indent=2))
    else:
        print(table.format())
        print(f"dedup: {json.dumps(dedup)}")
        print(f"equivalence: {json.dumps({k: v for k, v in equiv.items() if k != 'first_mismatches'})}")
    if "--no-record" not in sys.argv:
        append_record(entry)
        print(
            f"appended thread {entry['speedup_thread']}x / "
            f"process {entry['speedup_process']}x to {BENCH_FILE}"
        )
    if "--check" in sys.argv:
        sys.exit(check(entry))
