"""Figure 9 (+ Table 2): the real-benchmark suite on all platforms.

The full 159-case sweep takes about a minute; the benchmark entry
runs a representative subset and the ``__main__`` path runs
everything.
"""

import pytest

from conftest import run_once
from repro.bench.fig9 import run_fig9, run_table2, summarize_by_platform

SUBSET = [
    "gemm", "int4_gemm", "template_attention", "welford",
    "softmax", "gather_gemv", "rope",
]


def test_fig9_real(benchmark):
    fig, tab6, speedups = run_once(benchmark, run_fig9, kernels=SUBSET)
    print()
    print(run_table2().format())
    print()
    print(summarize_by_platform(fig).format())
    print()
    print(fig.format())
    assert speedups, "no cases compiled"
    # The paper's envelope: small regressions at worst, up to ~1.4x.
    assert min(speedups) > 0.85
    assert 1.0 < max(speedups) < 1.6
    geomean = 1.0
    for s in speedups:
        geomean *= s
    geomean **= 1.0 / len(speedups)
    assert 1.0 <= geomean < 1.25


if __name__ == "__main__":
    fig, tab6, _ = run_fig9()
    print(run_table2().format())
    print()
    print(summarize_by_platform(fig).format())
    print()
    print(fig.format())
    print()
    print(tab6.format())
