"""Table 6: local memory and convert_layout op distribution.

Also the pipeline-equivalence smoke check: ``--check`` diffs the
op counts against the checked-in golden file
(``benchmarks/golden/table6_opcounts.json``, generated from the
pre-refactor engine), so CI catches any pipeline change that shifts
a single op count.  Regenerate with ``--update`` after an
*intentional* change.
"""

import json
import os
import sys

from conftest import run_once
from repro.bench.fig9 import run_fig9

KERNELS_WITH_OPS = [
    "gemm", "bf16xint16_gemm", "int4_gemm", "template_attention",
    "fp8_gemm", "welford", "gather_gemv", "grouped_gemm", "rope",
    "embedding",
]

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "golden",
    "table6_opcounts.json",
)


def run_table6():
    _, tab6, _ = run_fig9(kernels=KERNELS_WITH_OPS, first_case_only=True)
    return tab6


def table_to_opcounts(table):
    """{kernel: {local_load, local_store, convert_layout}} from the
    Table 6 rows."""
    return {
        row[0]: {
            "local_load": row[1],
            "local_store": row[2],
            "convert_layout": row[3],
        }
        for row in table.rows
    }


def check_against_golden(counts, golden):
    """Human-readable diffs between measured and golden op counts."""
    diffs = []
    for kernel in sorted(set(golden) | set(counts)):
        if kernel not in counts:
            diffs.append(f"{kernel}: missing (golden has {golden[kernel]})")
        elif kernel not in golden:
            diffs.append(f"{kernel}: unexpected row {counts[kernel]}")
        elif counts[kernel] != golden[kernel]:
            diffs.append(
                f"{kernel}: got {counts[kernel]}, "
                f"golden {golden[kernel]}"
            )
    return diffs


def test_table6_opcounts(benchmark):
    table = run_once(benchmark, run_table6)
    print()
    print(table.format())
    rows = {row[0]: row for row in table.rows}
    # The paper's qualitative distribution: gemm-family kernels carry
    # most of the local-memory traffic; welford / rope are convert-
    # dominated.  (gather_gemv drops out entirely here: its index
    # conversion is rematerialized away, one step beyond the paper's
    # Table 6 snapshot.)
    assert rows["gemm"][1] > 0 and rows["gemm"][3] > 0
    assert "gather_gemv" not in rows
    assert rows["welford"][3] >= 1
    assert rows["rope"][1] == 0 and rows["rope"][3] >= 1


def test_table6_matches_golden():
    """The checked-in golden file stays in lockstep with the engine."""
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    diffs = check_against_golden(table_to_opcounts(run_table6()), golden)
    assert not diffs, "\n".join(diffs)


if __name__ == "__main__":
    table = run_table6()
    counts = table_to_opcounts(table)
    if "--update" in sys.argv:
        with open(GOLDEN_PATH, "w") as fh:
            json.dump(counts, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {GOLDEN_PATH}")
    elif "--check" in sys.argv:
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        diffs = check_against_golden(counts, golden)
        if diffs:
            print(table.format())
            print("\nOP COUNT MISMATCH vs golden:")
            print("\n".join(diffs))
            raise SystemExit(1)
        print(table.format())
        print(f"\nop counts match {GOLDEN_PATH}")
    else:
        print(table.format())
