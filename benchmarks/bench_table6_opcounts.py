"""Table 6: local memory and convert_layout op distribution."""

import pytest

from conftest import run_once
from repro.bench.fig9 import run_fig9

KERNELS_WITH_OPS = [
    "gemm", "bf16xint16_gemm", "int4_gemm", "template_attention",
    "fp8_gemm", "welford", "gather_gemv", "grouped_gemm", "rope",
    "embedding",
]


def run_table6():
    _, tab6, _ = run_fig9(kernels=KERNELS_WITH_OPS, first_case_only=True)
    return tab6


def test_table6_opcounts(benchmark):
    table = run_once(benchmark, run_table6)
    print()
    print(table.format())
    rows = {row[0]: row for row in table.rows}
    # The paper's qualitative distribution: gemm-family kernels carry
    # most of the local-memory traffic; welford / rope are convert-
    # dominated.  (gather_gemv drops out entirely here: its index
    # conversion is rematerialized away, one step beyond the paper's
    # Table 6 snapshot.)
    assert rows["gemm"][1] > 0 and rows["gemm"][3] > 0
    assert "gather_gemv" not in rows
    assert rows["welford"][3] >= 1
    assert rows["rope"][1] == 0 and rows["rope"][3] >= 1


if __name__ == "__main__":
    print(run_table6().format())
