"""Table 4: reduction support matrix and shared-memory instructions."""

import pytest

from conftest import run_once
from repro.bench.table4 import run_table4


def test_table4_broadcast(benchmark):
    table = run_once(benchmark, run_table4)
    print()
    print(table.format())
    rows = {row[0]: row for row in table.rows}
    # Legacy fails exactly the families the paper lists.
    for family in ("MMA Input", "Sliced<MMA>", "Sliced<MMA Input>",
                   "Custom"):
        assert rows[family][1].startswith("0/")
        assert rows[family][2].split("/")[0] == rows[family][2].split("/")[1]
    # Linear passes everything and stores fewer smem instructions.
    for family in ("Blocked", "MMA", "Sliced<Blocked>"):
        assert rows[family][3] > rows[family][4]


if __name__ == "__main__":
    print(run_table4().format())
