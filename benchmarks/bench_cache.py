"""Compilation caching: cold vs warm ``LayoutEngine.compile()``."""

import json
import sys

import pytest

from conftest import run_once
from repro.bench.cachebench import run_cache_bench


def test_cache_warm_speedup(benchmark):
    table = run_once(benchmark, run_cache_bench)
    print()
    print(table.format())
    speedups = table.column("speedup")
    # The issue's target: warm recompiles of the same graph at least
    # 5x faster than the cold path.  run_cache_bench itself asserts
    # that cold/warm/cache-disabled runs have identical cycles.
    assert max(speedups) >= 5.0
    assert all(s > 1.0 for s in speedups)


if __name__ == "__main__":
    result = run_cache_bench()
    if "--json" in sys.argv:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.format())
