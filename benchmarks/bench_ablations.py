"""Ablation benches for the design choices DESIGN.md calls out."""

import pytest

from conftest import run_once
from repro.bench.ablations import run_ablations


def test_ablations(benchmark):
    table = run_once(benchmark, run_ablations)
    print()
    print(table.format())
    slowdowns = dict(zip(table.column("configuration"),
                         table.column("slowdown vs full")))
    # Every ablated configuration is at least as slow as the full one.
    assert all(s >= 1.0 for s in slowdowns.values())
    # The headline mechanisms carry real weight on their workloads,
    # and padding sits between raw staging and the optimal swizzle.
    assert slowdowns["swizzle: padding heuristic"] > 1.0
    assert (
        slowdowns["swizzle: none (raw rows)"]
        > slowdowns["swizzle: padding heuristic"]
    )
    assert slowdowns["swizzle: none (raw rows)"] > 1.5
    assert slowdowns["shuffle path: off"] > 1.2
    assert slowdowns["broadcast dedupe: off, CTA stores"] > 2.0
    assert slowdowns["ldmatrix: removed"] > 1.1


if __name__ == "__main__":
    print(run_ablations().format())
