"""Observability overhead benchmark (records BENCH_obs.json).

Measures what :mod:`repro.obs` costs when it matters:

* **Disabled** (the default): nanoseconds per no-op span+counter hook
  pair — the price every production compile pays for the
  instrumentation being compiled in at all.
* **Enabled**: serial cold-cache compile time of the Table 6 suite
  with a recorder installed vs. without, plus how many events the
  capture holds and what they cost to export.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs.py [--json] [--check]

``--check`` exits non-zero when recording slows cold compiles by 3%
or more, when the disabled hooks are measurably expensive, or when
the capture misses expected span coverage.  Warm-cache overhead is
reported but not gated: a cache-hit compile takes microseconds, so a
handful of span records is a visible fraction of almost nothing.
"""

import json
import os
import sys
import time
from pathlib import Path

from conftest import run_once
from repro.bench.obsbench import (
    run_noop_latency,
    run_overhead,
)

HERE = Path(__file__).resolve().parent
BENCH_FILE = HERE.parent / "BENCH_obs.json"

#: Cold compiles slower than this fraction with recording on fail CI.
MAX_COLD_OVERHEAD = 0.03
#: A disabled span+counter pair costing more than this is a bug (the
#: pair is two dict reads and a returned singleton; even slow CI boxes
#: clear this by an order of magnitude).
MAX_NOOP_NS = 25_000.0


def test_obs_overhead_and_noop(benchmark):
    """Recording is cheap, and disabled hooks are nearly free."""
    # A two-kernel slice keeps the pytest-benchmark path quick; the
    # standalone run measures the full Table 6 suite.
    overhead = run_once(
        benchmark,
        run_overhead,
        kernels=["welford", "rope"],
        warm_repeats=3,
        cold_repeats=1,
    )
    assert overhead["spans_captured"] > 0
    assert overhead["cold_overhead"] < 0.25  # generous: tiny suite
    noop = run_noop_latency(iterations=50_000)
    assert noop["ns_per_hook_pair"] < MAX_NOOP_NS


def record(overhead: dict, noop: dict) -> dict:
    """The BENCH_obs.json entry for one run."""
    return {
        "bench": "obs",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": os.cpu_count(),
        "max_cold_overhead": MAX_COLD_OVERHEAD,
        "max_noop_ns": MAX_NOOP_NS,
        "overhead": overhead,
        "noop": noop,
    }


def append_record(entry: dict) -> None:
    history = []
    if BENCH_FILE.exists():
        history = json.loads(BENCH_FILE.read_text())
    history.append(entry)
    BENCH_FILE.write_text(json.dumps(history, indent=2) + "\n")


def check(entry: dict) -> int:
    """Acceptance gates; returns a process exit code."""
    failures = []
    overhead = entry["overhead"]
    if overhead["cold_overhead"] >= MAX_COLD_OVERHEAD:
        failures.append(
            f"cold compile overhead {overhead['cold_overhead']:.2%} "
            f"with recording on (gate: < {MAX_COLD_OVERHEAD:.0%})"
        )
    if overhead["spans_captured"] <= 0:
        failures.append("enabled run captured no spans")
    if overhead["chrome_trace_events"] <= overhead["spans_captured"]:
        failures.append(
            "chrome trace smaller than the span count — metadata/"
            "counter tracks missing"
        )
    noop_ns = entry["noop"]["ns_per_hook_pair"]
    if noop_ns >= MAX_NOOP_NS:
        failures.append(
            f"disabled hook pair costs {noop_ns}ns "
            f"(gate: < {MAX_NOOP_NS}ns)"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(
            f"ok: cold overhead {overhead['cold_overhead']:+.2%} "
            f"(warm {overhead['warm_overhead']:+.2%}, ungated), "
            f"noop {noop_ns}ns/pair"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    overhead = run_overhead()
    noop = run_noop_latency()
    entry = record(overhead, noop)
    if "--json" in sys.argv:
        print(json.dumps(entry, indent=2))
    else:
        print(json.dumps(overhead, indent=2))
        print(json.dumps(noop, indent=2))
    if "--no-record" not in sys.argv:
        append_record(entry)
        print(
            f"appended cold {overhead['cold_overhead']:+.2%} / "
            f"noop {noop['ns_per_hook_pair']}ns to {BENCH_FILE}"
        )
    if "--check" in sys.argv:
        sys.exit(check(entry))
