"""Figure 2: f8 transpose — optimal swizzling vs the padding heuristic."""

import pytest

from conftest import run_once
from repro.bench.fig2 import run_fig2


def test_fig2_transpose(benchmark):
    table = run_once(benchmark, run_fig2, sizes=(32, 64, 128, 256))
    print()
    print(table.format())
    speedups = table.column("speedup")
    # Shape assertions: the smallest tile may regress (as in the
    # paper's figure), every large shape wins, and the peak advantage
    # stays in the paper's order of magnitude.
    large = [s for row, s in zip(table.rows, speedups)
             if row[0] >= 128 and row[1] >= 128]
    assert all(s > 1.0 for s in large)
    assert 1.5 < max(speedups) < 6.0
    smallest = speedups[0]
    assert smallest < max(large)


if __name__ == "__main__":
    print(run_fig2().format())
