"""Figure 8: gather — warp shuffles vs shared memory."""

import pytest

from conftest import run_once
from repro.bench.fig8 import run_fig8


def test_fig8_gather(benchmark):
    table = run_once(benchmark, run_fig8)
    print()
    print(table.format())
    f16 = [row for row in table.rows if row[1] == "f16"]
    speedups = [row[4] for row in f16]
    # The paper's shape: big speedup on small gathered axes (14.2x
    # there), monotone decay, crossover around [512, 32].
    assert speedups[0] > 8.0
    assert all(a >= b for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] <= 1.05


if __name__ == "__main__":
    print(run_fig8().format())
