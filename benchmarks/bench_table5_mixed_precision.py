"""Table 5: mixed-precision matmul pass rates."""

import pytest

from conftest import run_once
from repro.bench.table5 import run_table5


def test_table5_mixed_precision(benchmark):
    table = run_once(benchmark, run_table5)
    print()
    print(table.format())
    total = table.rows[-1]
    legacy_pass, legacy_total = map(int, total[1].split("/"))
    linear_pass, linear_total = map(int, total[2].split("/"))
    # The paper's shape: legacy passes roughly half (46.6%), linear
    # passes everything.
    assert linear_pass == linear_total
    assert 0.3 < legacy_pass / legacy_total < 0.7


if __name__ == "__main__":
    print(run_table5().format())
