"""The Figure 2 scenario: a float8 transpose kernel.

A transpose forces a layout conversion through shared memory.  This
example stages it two ways — the legacy padding heuristic and the
optimal swizzled layout of Section 5.4 — executes both on the
simulated GPU with real data, verifies every element lands in the
right register, and compares cycles.

Run:  python examples/transpose_kernel.py
"""

from repro.bench.fig2 import transpose_conversion_cycles
from repro.codegen import plan_conversion
from repro.codegen.vectorize import legacy_default_blocked
from repro.core.reshape import transpose_layout
from repro.gpusim import Machine, distributed_data
from repro.gpusim.registers import assert_matches_layout
from repro.hardware import GH200
from repro.mxfp import F8E5M2


def main() -> None:
    m, n = 128, 128
    print(f"f8 transpose of a {m}x{n} tile on {GH200.name}\n")

    # The kernel: load coalesced -> tt.trans (free on layouts) ->
    # store coalesced.  The conversion bridges the transposed layout
    # and the store anchor.
    src = legacy_default_blocked((m, n), F8E5M2.bits).to_linear((m, n))
    transposed = transpose_layout(src, (1, 0))
    dst = legacy_default_blocked((n, m), F8E5M2.bits).to_linear((n, m))

    machine = Machine(GH200, num_warps=4)
    registers = distributed_data(transposed, 4, GH200.warp_size)

    for mode, kwargs in (
        ("optimal swizzle", dict(swizzle_mode="optimal")),
        ("legacy padding", dict(swizzle_mode="padded",
                                allow_shuffle=False,
                                dedupe_broadcast=False)),
    ):
        plan = plan_conversion(
            transposed, dst, F8E5M2.bits, spec=GH200, **kwargs
        )
        converted, trace = machine.run_conversion(plan, registers)
        assert_matches_layout(converted, dst)
        print(f"{mode:16s} verified | {trace.histogram()} "
              f"| cycles {trace.cycles():.0f}")
        for note in plan.notes:
            print(f"{'':16s} {note}")

    print("\nspeedup sweep (padded / optimal cycles):")
    for size in (32, 64, 128, 256):
        padded = transpose_conversion_cycles(size, size, GH200, "legacy")
        optimal = transpose_conversion_cycles(size, size, GH200, "linear")
        print(f"  {size:4d}x{size:<4d}  {padded / optimal:.2f}x")


if __name__ == "__main__":
    main()
