"""Quickstart: linear layouts in five minutes.

Reconstructs the paper's running example (Figure 1 / Table 1), shows
the operator algebra (product, composition, inversion), and lowers a
layout conversion to warp shuffles executed on the simulated GPU.

Run:  python examples/quickstart.py
"""

from repro.core import LANE, REGISTER, WARP, LinearLayout, make_identity
from repro.core.properties import (
    is_distributed_layout,
    num_contiguous_elements,
)
from repro.codegen import classify_conversion, plan_conversion
from repro.gpusim import Machine, distributed_data
from repro.gpusim.registers import assert_matches_layout
from repro.layouts import BlockedLayout


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Layout A of Figure 1: a 16x16 tensor on 2 warps.
    #    Each thread holds a 2x2 register tile, a warp is 4x8 threads,
    #    and the two warps split the rows.  Factors are listed
    #    fastest-moving first and combined with the product operator
    #    (Definition 4.3).
    # ------------------------------------------------------------------
    layout_a = (
        make_identity([(2, REGISTER, "dim1"), (2, REGISTER, "dim0")])
        * make_identity([(8, LANE, "dim1"), (4, LANE, "dim0")])
        * make_identity([(2, WARP, "dim0")])
    )
    print("Layout A:", layout_a)

    # Where does register 1 of thread 9 in warp 0 live?  (2, 3),
    # exactly the XOR-of-tiles computation in Section 4.1.
    where = layout_a.apply({REGISTER: 1, LANE: 9, WARP: 0})
    print("r1 of t9 in w0 ->", (where["dim0"], where["dim1"]))
    assert (where["dim0"], where["dim1"]) == (2, 3)

    # The layout is a bijection, so hardware indices can be recovered
    # from logical coordinates (Definition 4.5).
    inverse = layout_a.invert()
    back = inverse.apply({"dim0": 2, "dim1": 3})
    print("(2, 3) is held by", back)
    assert back == {REGISTER: 1, LANE: 9, WARP: 0}

    # Definition 4.10's structural check and the Section 5.1 utility.
    print("distributed layout:", is_distributed_layout(layout_a))
    print(
        "contiguous elements per thread:",
        num_contiguous_elements(layout_a.transpose_outs(["dim0", "dim1"])),
    )

    # ------------------------------------------------------------------
    # 2. A layout conversion, planned and executed.
    #    Two blocked layouts with the same warp placement but a
    #    different register/lane split: Section 5.4's warp-shuffle
    #    fast path applies, so no shared memory is touched.
    # ------------------------------------------------------------------
    src = BlockedLayout((1, 2), (8, 4), (2, 2), (1, 0)).to_linear((32, 64))
    dst = BlockedLayout((2, 1), (4, 8), (2, 2), (1, 0)).to_linear((32, 64))
    print("\nconversion class:", classify_conversion(src, dst).value)
    plan = plan_conversion(src, dst, elem_bits=16)
    print("plan kind:", plan.kind, "| shuffle rounds:",
          plan.num_shuffle_rounds())

    machine = Machine(num_warps=4)
    registers = distributed_data(src, num_warps=4, warp_size=32)
    converted, trace = machine.run_conversion(plan, registers)
    assert_matches_layout(converted, dst)  # every element verified
    print("conversion verified on the simulator;",
          "instructions:", trace.histogram(),
          "| cycles:", trace.cycles())


if __name__ == "__main__":
    main()
