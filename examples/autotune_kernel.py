"""Autotuning layouts with the simulator as the performance model.

The paper's conclusion sketches this as future work: couple linear
layouts with a performance model and autotune.  Here the simulated
cost model plays that role: we sweep warp counts for a GEMM and a
softmax and let the engine pick the cheapest configuration.

Run:  python examples/autotune_kernel.py
"""

from repro.engine.autotune import autotune
from repro.hardware import GH200, RTX4090
from repro.kernels.models import build_gemm, build_softmax


def report(name, result):
    print(f"{name}:")
    for config, cycles in result.trials:
        marker = "  <- best" if config == result.best else ""
        shown = f"{cycles:,.0f}" if cycles is not None else "failed"
        print(f"  {config}: {shown}{marker}")
    print(f"  tuning gain over worst: "
          f"{result.speedup_over_worst():.2f}x\n")


def main() -> None:
    report(
        "gemm 128x128x64 on RTX4090",
        autotune(
            build_gemm,
            {"m": 128, "n": 128, "k": 64, "k_iters": 4},
            spec=RTX4090,
        ),
    )
    report(
        "softmax 256x256 on GH200",
        autotune(
            build_softmax,
            {"rows": 256, "cols": 256},
            spec=GH200,
        ),
    )


if __name__ == "__main__":
    main()
