"""A tour of the layout engine (Section 4.4) on a fused-attention tile.

Builds the template-attention kernel model, compiles it in linear and
legacy mode on each platform, and prints what the engine decided:
which layouts anchor where, how many conversions were inserted, how
each was lowered (no-op / register permute / shuffles / shared), and
the simulated cost.

Run:  python examples/layout_engine_tour.py
"""

from repro.engine import KernelBuilder, LayoutEngine
from repro.engine.ir import OpKind
from repro.hardware import GH200, MI250, PLATFORMS, RTX4090
from repro.kernels.models import build_template_attention
from repro.mxfp import F16, F32


def describe(compiled, label: str) -> None:
    counts = compiled.op_counts()
    kinds = {}
    for plan in compiled.conversions:
        kinds[plan.kind] = kinds.get(plan.kind, 0) + 1
    print(f"  {label:8s} cycles={compiled.cycles():>8.0f}  "
          f"converts={counts['convert_layout']:>2d} {dict(kinds)}  "
          f"local_load={counts['local_load']:<4d} "
          f"local_store={counts['local_store']}")


def main() -> None:
    print("template_attention, one (64 x 64) tile, 4 KV iterations\n")
    for name, spec in PLATFORMS.items():
        print(f"{name} ({spec.mma_flavor}, "
              f"ldmatrix={'yes' if spec.has_ldmatrix else 'no'}):")
        results = {}
        for mode in ("linear", "legacy"):
            kb = build_template_attention(seq=64, head=64, kv_iters=4)
            results[mode] = LayoutEngine(spec, mode).compile(kb.graph)
            describe(results[mode], mode)
        speedup = results["legacy"].cycles() / results["linear"].cycles()
        print(f"  -> speedup {speedup:.2f}x\n")

    # Peek at the compiled IR of the linear version on one platform.
    kb = build_template_attention(seq=64, head=64, kv_iters=1)
    compiled = LayoutEngine(RTX4090, "linear").compile(kb.graph)
    print("linear-mode IR (1 KV iteration, RTX4090):")
    for op in compiled.graph.ops:
        layout = op.output.layout if op.output is not None else None
        summary = ""
        if layout is not None:
            summary = " @ " + ", ".join(
                f"{d}:{layout.in_dim_size(d)}" for d in layout.in_dims
            )
        print(f"  {op}{summary}")


if __name__ == "__main__":
    main()
