"""Mixed-precision matmul with MXFP4 weights (Section 5.2).

Encodes a weight matrix in the OCP MXFP4 format (groups of 32 fp4
values sharing one power-of-two scale byte), runs the software-
emulated mixed-precision matmul, verifies the numerics against a
float64 reference, and demonstrates the Machete-style pre-shuffle —
five lines of tensor reshapes that quadruple the low-precision
operand's load vector width.

Run:  python examples/mixed_precision_matmul.py
"""

import numpy as np

from repro.mxfp import (
    BF16,
    MXFP4,
    decode_mxfp4,
    encode_mxfp4,
    upcast_for_mma,
)
from repro.mxfp.emulate import emulated_matmul
from repro.mxfp.shuffle_opt import (
    analyze_pair,
    fragment_positions,
    preshuffle_operand,
    unshuffle_operand,
)
from repro.mxfp.types import mma_kwidth


def main() -> None:
    rng = np.random.default_rng(0)
    m, k, n = 32, 128, 64

    # ------------------------------------------------------------------
    # 1. Quantize weights to MXFP4 and inspect the error.
    # ------------------------------------------------------------------
    w = rng.standard_normal((k, n))
    packed = encode_mxfp4(w.T).codes  # groups run along K
    decoded = decode_mxfp4(encode_mxfp4(w.T)).T
    rel = np.abs(decoded - w).mean() / np.abs(w).mean()
    print(f"MXFP4 round-trip: mean relative error {rel:.3f} "
          f"({packed.size} codes + {packed.size // 32} scale bytes)")

    # ------------------------------------------------------------------
    # 2. The emulated mixed-precision matmul (upcast to bf16, as the
    #    compiler does on pre-Blackwell hardware).
    # ------------------------------------------------------------------
    x = rng.standard_normal((m, k))
    out, precision = emulated_matmul(x, decoded, BF16, MXFP4)
    reference = upcast_for_mma(x, BF16, BF16) @ decoded
    err = np.abs(out - reference).max()
    print(f"emulated bf16 x mxfp4 matmul computes in {precision}; "
          f"max deviation vs bf16 reference {err:.2e}")
    assert err < 1e-6

    # ------------------------------------------------------------------
    # 3. The pre-shuffle.  An mma lane's K fragment comes in two
    #    separated runs, capping vectorization; permuting the
    #    higher-precision operand's K axis makes the runs adjacent.
    # ------------------------------------------------------------------
    kwidth = mma_kwidth(MXFP4)
    print(f"\nmxfp4 kwidth = {kwidth}; one lane's K positions per tile:",
          fragment_positions(kwidth)[: 2 * kwidth])
    gain = analyze_pair(MXFP4)
    print(f"load vector width: {gain.vector_bits_before} -> "
          f"{gain.vector_bits_after} bits "
          f"({gain.speed_ratio:.0f}x fewer load instructions)")

    # The shuffle itself — and the proof it is a pure permutation:
    shuffled = preshuffle_operand(x.T, kwidth=2)  # bf16 side, K-major
    restored = unshuffle_operand(shuffled, kwidth=2)
    assert np.array_equal(restored, x.T)
    print("pre-shuffle round trip verified (pure K permutation)")

    # A matmul against the shuffled operand equals the original once
    # the mxfp4 side walks K in the same permuted order.
    perm = preshuffle_operand(
        np.arange(k, dtype=np.float64)[:, None], kwidth=2
    )[:, 0].astype(np.int64)
    out_shuffled = x[:, perm] @ decoded[perm, :]
    assert np.allclose(out_shuffled, x @ decoded)
    print("matmul invariance under the pre-shuffle verified")


if __name__ == "__main__":
    main()
