"""Concurrent compilation serving (see ``docs/SERVING.md``).

``CompileService`` batches and deduplicates compilation requests over
a worker pool; ``SingleFlight`` is the in-flight dedup primitive;
``RequestStats``/``ServiceReport`` are the observability layer.
Results are bit-identical to serial :func:`repro.engine.compile`.
"""

from repro.serve.service import (
    CompileRequest,
    CompileService,
    compile_suite,
)
from repro.serve.singleflight import SingleFlight
from repro.serve.stats import RequestStats, ServiceReport

__all__ = [
    "CompileRequest",
    "CompileService",
    "RequestStats",
    "ServiceReport",
    "SingleFlight",
    "compile_suite",
]
