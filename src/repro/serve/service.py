"""The concurrent compilation front-end.

:class:`CompileService` is the serving layer the ROADMAP's traffic
story needs: many `(kernel, case, platform, mode)` requests enter, a
worker pool compiles them, and three levels of deduplication keep the
work proportional to the number of *distinct* kernels rather than the
number of requests:

1. **Result cache** — a completed compilation is memoized by its
   canonical request key, so repeat traffic is served without
   touching the compiler at all.
2. **Single-flight** — concurrent requests for the same key share one
   in-flight compile (:mod:`repro.serve.singleflight`); only the
   leader runs the pipeline.
3. **Layout/plan caches** — distinct kernels that share layouts and
   conversions still split the F2 planning work through
   :mod:`repro.cache`, which this PR made safe under the pool.

Results are bit-identical to serial :func:`repro.engine.compile`
(``tests/test_serve_stress.py`` proves it against cycles, op counts,
and serialized warp programs).  Two backends:

``thread``
    Workers are threads sharing the process-wide caches.  Returns
    full :class:`~repro.engine.engine.CompiledKernel` objects.  On a
    free-threaded or I/O-bound deployment this scales with cores; on
    a GIL-bound CPython it degrades gracefully to serial throughput
    while still providing single-flight collapsing of duplicate
    traffic.
``process``
    Workers are forked processes (true parallelism on multicore
    hosts).  Requests must be registry-addressed (picklable), and
    results come back as :meth:`CompiledKernel.summary` digests
    rather than live objects.

See ``docs/SERVING.md`` for the full contract.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro import cache as _cache
from repro.engine import compile as _engine_compile
from repro.engine.engine import CompiledKernel
from repro.hardware.spec import PLATFORMS
from repro.kernels import KERNELS
from repro.obs import core as _obs
from repro.serve.singleflight import SingleFlight
from repro.serve.stats import RequestStats, ServiceReport

__all__ = ["CompileRequest", "CompileService", "compile_suite"]


@dataclass(frozen=True)
class CompileRequest:
    """One compilation request, addressed through the kernel registry.

    Registry-addressed (name + case name) rather than carrying a
    graph: the engine takes ownership of the graph it compiles and
    rewires it in place, so every request must rebuild a fresh graph
    from the model's builder — and names keep the request picklable
    for the process backend.
    """

    kernel: str
    case: Optional[str] = None  # None selects the model's first case
    platform: str = "RTX4090"
    mode: str = "linear"
    num_warps: int = 4

    def resolved_case(self):
        """The model's :class:`KernelCase` this request names."""
        model = KERNELS[self.kernel]
        if self.case is None:
            return model.cases[0]
        for case in model.cases:
            if case.name == self.case:
                return case
        raise KeyError(
            f"kernel {self.kernel!r} has no case {self.case!r} "
            f"(have {[c.name for c in model.cases]})"
        )

    def canonical_key(self) -> str:
        """The dedup key: equal keys must compile bit-identically."""
        case = self.resolved_case()
        return (
            f"{self.kernel}/{case.name}@{self.platform}"
            f"/{self.mode}/w{self.num_warps}"
        )

    def validate(self) -> "CompileRequest":
        """Raise early (at submit, not on a worker) on a bad request."""
        if self.kernel not in KERNELS:
            raise KeyError(f"unknown kernel {self.kernel!r}")
        if self.platform not in PLATFORMS:
            raise KeyError(f"unknown platform {self.platform!r}")
        if self.mode not in ("linear", "legacy"):
            raise ValueError(
                f"mode must be linear or legacy: {self.mode!r}"
            )
        self.resolved_case()  # raises on an unknown case name
        return self

    def build_and_compile(self) -> CompiledKernel:
        """Serial reference semantics: fresh graph, standard pipeline."""
        model = KERNELS[self.kernel]
        case = self.resolved_case()
        kb = model.build(**case.kwargs())
        return _engine_compile(
            kb.graph,
            spec=PLATFORMS[self.platform],
            mode=self.mode,
            num_warps=self.num_warps,
        )


def _process_worker(payload) -> Dict[str, object]:
    """Process-backend entry point: compile and return a digest.

    Module-level so it pickles; reconstructs the request in the child
    and returns ``CompiledKernel.summary()`` plus the child-side
    compile time.
    """
    request = CompileRequest(*payload)
    start = time.perf_counter()
    compiled = request.build_and_compile()
    summary = compiled.summary()
    summary["compile_ms"] = (time.perf_counter() - start) * 1e3
    return summary


class CompileService:
    """A batch/concurrent compilation service over a worker pool.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` is the serial baseline with identical
        semantics.
    backend:
        ``"thread"`` (default; returns :class:`CompiledKernel`) or
        ``"process"`` (returns :meth:`CompiledKernel.summary` dicts;
        true multicore parallelism).
    dedup:
        Enable single-flight sharing of concurrent equal-keyed
        requests.
    result_cache:
        Completed-result memo capacity (0 disables; every request
        then recompiles unless an equal request is concurrently in
        flight).
    """

    def __init__(
        self,
        workers: int = 4,
        backend: str = "thread",
        dedup: bool = True,
        result_cache: int = 1024,
        name: str = "compile-service",
    ):
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be thread or process: {backend!r}"
            )
        self.name = name
        self.workers = workers
        self.backend = backend
        self.dedup = dedup
        self._flight = SingleFlight()
        self._results: Optional[_cache.BoundedCache] = (
            _cache.BoundedCache(
                f"{name}:results", maxsize=result_cache, register=False
            )
            if result_cache
            else None
        )
        self._lock = threading.Lock()
        self._records: List[RequestStats] = []
        self._first_submit: Optional[float] = None
        self._last_done: Optional[float] = None
        self._process_futures: Dict[str, Future] = {}
        if backend == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"{name}-worker",
            )
        else:
            import multiprocessing as mp

            methods = mp.get_all_start_methods()
            ctx = mp.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._executor = ProcessPoolExecutor(
                max_workers=workers, mp_context=ctx
            )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, request: Union[CompileRequest, Sequence]
    ) -> Future:
        """Enqueue one request; the future resolves to its result.

        Thread backend futures resolve to :class:`CompiledKernel`;
        process backend futures resolve to summary dicts.  Invalid
        requests raise here, at submission.
        """
        if not isinstance(request, CompileRequest):
            request = CompileRequest(*request)
        request.validate()
        submitted = time.perf_counter()
        with self._lock:
            if self._first_submit is None:
                self._first_submit = submitted
        if self.backend == "process":
            return self._submit_process(request, submitted)
        return self._executor.submit(self._serve, request, submitted)

    def compile_batch(
        self, requests: Sequence[Union[CompileRequest, Sequence]]
    ) -> List:
        """Compile many requests, results in request order."""
        futures = [self.submit(r) for r in requests]
        return [f.result() for f in futures]

    # ------------------------------------------------------------------
    # Thread backend
    # ------------------------------------------------------------------
    def _serve(
        self, request: CompileRequest, submitted: float
    ) -> CompiledKernel:
        started = time.perf_counter()
        key = request.canonical_key()
        case = request.resolved_case()
        rec = RequestStats(
            key=key,
            kernel=request.kernel,
            case=case.name,
            platform=request.platform,
            mode=request.mode,
            queue_wait_ms=(started - submitted) * 1e3,
        )
        with _obs.span(
            "serve:request",
            key=key,
            kernel=request.kernel,
            platform=request.platform,
            mode=request.mode,
        ) as sp:
            try:
                compiled = self._lookup_or_compile(request, key, rec)
                rec.ok = compiled.ok
                rec.error = compiled.error
                return compiled
            except BaseException as exc:
                rec.ok = False
                rec.error = f"{type(exc).__name__}: {exc}"
                raise
            finally:
                rec.total_ms = (time.perf_counter() - submitted) * 1e3
                # Thin-view contract: the span's attributes are the
                # request's RequestStats record.
                sp.set_attrs(rec.to_dict())
                self._record(rec)

    def _lookup_or_compile(
        self, request: CompileRequest, key: str, rec: RequestStats
    ) -> CompiledKernel:
        if self._results is not None:
            hit = self._results.get(key, None)
            if hit is not None:
                rec.result_cached = True
                return hit
        if self.dedup:
            with _obs.span("serve:singleflight", key=key) as sp:
                compiled, shared = self._flight.do(
                    key, lambda: self._compile_timed(request, rec)
                )
                sp.set("shared", shared)
            rec.shared = shared
        else:
            compiled = self._compile_timed(request, rec)
        if self._results is not None:
            compiled = self._results.put(key, compiled)
        return compiled

    def _compile_timed(
        self, request: CompileRequest, rec: RequestStats
    ) -> CompiledKernel:
        before = _cache.counters()
        start = time.perf_counter()
        compiled = request.build_and_compile()
        rec.compile_ms = (time.perf_counter() - start) * 1e3
        delta = _cache.counters_delta(before)
        rec.cache_hits = delta["hits"]
        rec.cache_misses = delta["misses"]
        return compiled

    # ------------------------------------------------------------------
    # Process backend
    # ------------------------------------------------------------------
    def _submit_process(
        self, request: CompileRequest, submitted: float
    ) -> Future:
        key = request.canonical_key()
        case = request.resolved_case()
        rec = RequestStats(
            key=key,
            kernel=request.kernel,
            case=case.name,
            platform=request.platform,
            mode=request.mode,
        )
        with self._lock:
            hit = (
                self._results.get(key, None)
                if self._results is not None
                else None
            )
            shared_future = (
                self._process_futures.get(key) if self.dedup else None
            )
        if hit is not None:
            rec.result_cached = True
            done: Future = Future()
            done.set_result(hit)
            self._finish_process_record(rec, submitted)
            return done
        if shared_future is not None:
            rec.shared = True
            self._finish_process_record(rec, submitted)
            return shared_future
        payload = (
            request.kernel,
            request.case,
            request.platform,
            request.mode,
            request.num_warps,
        )
        future = self._executor.submit(_process_worker, payload)
        with self._lock:
            if self.dedup:
                self._process_futures[key] = future
        future.add_done_callback(
            lambda f: self._process_done(key, rec, submitted, f)
        )
        return future

    def _process_done(
        self, key: str, rec: RequestStats, submitted: float, future: Future
    ) -> None:
        error = future.exception()
        if error is not None:
            rec.ok = False
            rec.error = f"{type(error).__name__}: {error}"
        else:
            summary = future.result()
            rec.ok = bool(summary.get("ok", True))
            rec.error = summary.get("error")
            rec.compile_ms = float(summary.get("compile_ms", 0.0))
            if self._results is not None:
                self._results.put(key, summary)
        with self._lock:
            self._process_futures.pop(key, None)
        self._finish_process_record(rec, submitted)

    def _finish_process_record(
        self, rec: RequestStats, submitted: float
    ) -> None:
        rec.total_ms = (time.perf_counter() - submitted) * 1e3
        self._record(rec)

    # ------------------------------------------------------------------
    # Reporting / lifecycle
    # ------------------------------------------------------------------
    def _record(self, rec: RequestStats) -> None:
        with self._lock:
            self._records.append(rec)
            self._last_done = time.perf_counter()
        if _obs.is_enabled():
            if not rec.ok:
                outcome = "error"
            elif rec.result_cached:
                outcome = "result_cached"
            elif rec.shared:
                outcome = "shared"
            else:
                outcome = "compiled"
            _obs.count(
                "serve.requests", 1,
                outcome=outcome, mode=rec.mode, backend=self.backend,
            )
            _obs.observe("serve.queue_wait_ms", rec.queue_wait_ms)
            if outcome == "compiled":
                _obs.observe("serve.compile_ms", rec.compile_ms)

    def report(self) -> ServiceReport:
        """The service's statistics so far (see :mod:`repro.serve.stats`)."""
        with self._lock:
            records = list(self._records)
            first = self._first_submit
            last = self._last_done
        wall_ms = (
            (last - first) * 1e3
            if first is not None and last is not None
            else 0.0
        )
        return ServiceReport(
            service=self.name,
            workers=self.workers,
            backend=self.backend,
            requests=records,
            wall_ms=wall_ms,
        )

    def close(self) -> None:
        """Drain the pool and release its workers."""
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "CompileService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def compile_suite(
    requests: Sequence[Union[CompileRequest, Sequence]],
    workers: int = 4,
    backend: str = "thread",
    **service_kwargs,
):
    """One-shot batch compile: ``(results, report)`` for a suite."""
    with CompileService(
        workers=workers, backend=backend, **service_kwargs
    ) as service:
        results = service.compile_batch(requests)
        report = service.report()
    return results, report
