"""Single-flight call deduplication.

The serving pattern behind Go's ``golang.org/x/sync/singleflight``:
when many callers ask for the same expensive computation at once, one
*leader* runs it and every concurrent *follower* blocks on the
leader's result instead of duplicating the work.  For the compile
service this is what turns a thundering herd of identical kernel
requests into one compilation.

Exceptions propagate to every waiter of the flight that raised, and
the key is forgotten as soon as the flight completes — a later call
starts a fresh computation (the service layers a result cache on top
when memoization across batches is wanted).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable, Tuple

__all__ = ["SingleFlight"]

_PENDING = object()


class _Flight:
    """One in-flight computation: a result slot behind an event."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value: Any = _PENDING
        self.error: BaseException | None = None


class SingleFlight:
    """Deduplicates concurrent calls by key.

    :meth:`do` returns ``(value, shared)`` where ``shared`` is True
    iff the caller was a follower served by another thread's leader
    flight.  Thread-safe; keys must be hashable.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: Dict[Hashable, _Flight] = {}
        self._dedup_hits = 0

    def do(
        self, key: Hashable, fn: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """``fn()``, unless an equal-keyed call is already in flight.

        The leader executes ``fn`` with no lock held; followers block
        until the leader finishes and then share its result (or
        re-raise its exception).
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                self._dedup_hits += 1
            else:
                flight = _Flight()
                self._flights[key] = flight
                leader_flight = flight
                flight = None
        if flight is not None:  # follower
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, True
        try:  # leader
            leader_flight.value = fn()
        except BaseException as exc:
            leader_flight.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(key, None)
            leader_flight.event.set()
        return leader_flight.value, False

    def in_flight(self) -> int:
        """How many keys are currently being computed."""
        with self._lock:
            return len(self._flights)

    @property
    def dedup_hits(self) -> int:
        """How many calls were served by another caller's flight."""
        return self._dedup_hits
