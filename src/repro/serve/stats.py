"""Per-request and per-service statistics of the compile service.

Every request the :class:`~repro.serve.service.CompileService`
processes leaves one :class:`RequestStats` record: where its latency
went (queue wait vs. compile time), how the caches behaved for it
(thread-local hit/miss deltas from :func:`repro.cache.counters`), and
whether it was deduplicated (served by another request's in-flight
compile or by the service's result cache).  :class:`ServiceReport`
aggregates those records into the JSON document operators would
scrape — throughput, dedup ratios, latency summary, and the global
cache statistics snapshot.

These records are also the observability layer's view of the
service: when :mod:`repro.obs` is recording, every request's
``serve:request`` span carries :meth:`RequestStats.to_dict` as its
attributes and the service bumps ``serve.requests{outcome=...}`` /
``serve.queue_wait_ms`` / ``serve.compile_ms`` series — one record,
two surfaces (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import cache as _cache

__all__ = ["RequestStats", "ServiceReport"]


@dataclass
class RequestStats:
    """One serviced request: identity, latency split, dedup, caches."""

    key: str
    kernel: str
    case: str
    platform: str
    mode: str
    #: Seconds spent queued before a worker picked the request up.
    queue_wait_ms: float = 0.0
    #: Wall time of the compile itself (zero when deduplicated).
    compile_ms: float = 0.0
    #: Submit-to-result wall time.
    total_ms: float = 0.0
    #: Served by another request's in-flight compile (single-flight).
    shared: bool = False
    #: Served from the service's completed-result cache.
    result_cached: bool = False
    #: repro.cache hits/misses attributed to this request's compile.
    cache_hits: int = 0
    cache_misses: int = 0
    ok: bool = True
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly record."""
        return {
            "key": self.key,
            "kernel": self.kernel,
            "case": self.case,
            "platform": self.platform,
            "mode": self.mode,
            "queue_wait_ms": round(self.queue_wait_ms, 4),
            "compile_ms": round(self.compile_ms, 4),
            "total_ms": round(self.total_ms, 4),
            "shared": self.shared,
            "result_cached": self.result_cached,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "ok": self.ok,
            "error": self.error,
        }


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass
class ServiceReport:
    """The service-level rollup of one service's lifetime (so far)."""

    service: str
    workers: int
    backend: str
    requests: List[RequestStats] = field(default_factory=list)
    #: Wall time covered by the report (first submit to last result).
    wall_ms: float = 0.0

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return len(self.requests)

    @property
    def compiles(self) -> int:
        """Requests that actually ran the compiler."""
        return sum(
            1
            for r in self.requests
            if not r.shared and not r.result_cached
        )

    @property
    def dedup_shared(self) -> int:
        """Requests served by a concurrent request's compile."""
        return sum(1 for r in self.requests if r.shared)

    @property
    def result_cache_hits(self) -> int:
        """Requests served from the completed-result cache."""
        return sum(1 for r in self.requests if r.result_cached)

    @property
    def failures(self) -> int:
        return sum(1 for r in self.requests if not r.ok)

    @property
    def throughput_rps(self) -> float:
        """Requests served per second of report wall time."""
        if self.wall_ms <= 0:
            return 0.0
        return self.total_requests / (self.wall_ms / 1e3)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-exportable service report."""
        queue = [r.queue_wait_ms for r in self.requests]
        compile_times = [
            r.compile_ms
            for r in self.requests
            if not r.shared and not r.result_cached
        ]
        return {
            "service": self.service,
            "workers": self.workers,
            "backend": self.backend,
            "wall_ms": round(self.wall_ms, 3),
            "requests": self.total_requests,
            "compiles": self.compiles,
            "dedup_shared": self.dedup_shared,
            "result_cache_hits": self.result_cache_hits,
            "failures": self.failures,
            "throughput_rps": round(self.throughput_rps, 3),
            "queue_wait_ms": {
                "mean": round(_mean(queue), 4),
                "max": round(max(queue), 4) if queue else 0.0,
            },
            "compile_ms": {
                "mean": round(_mean(compile_times), 4),
                "max": round(max(compile_times), 4)
                if compile_times
                else 0.0,
            },
            "cache": {
                name: snap.to_dict()
                for name, snap in _cache.stats().items()
            },
            "per_request": [r.to_dict() for r in self.requests],
        }

    def to_json(self, indent: int = 1) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def describe(self) -> str:
        """A one-line operator summary."""
        return (
            f"{self.service}[{self.backend} x{self.workers}]: "
            f"{self.total_requests} requests -> {self.compiles} compiles "
            f"({self.dedup_shared} single-flight, "
            f"{self.result_cache_hits} result-cache, "
            f"{self.failures} failed) in {self.wall_ms:.1f}ms "
            f"({self.throughput_rps:.1f} req/s)"
        )
