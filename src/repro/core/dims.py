"""Dimension labels for the labeled vector spaces of linear layouts.

The paper labels input bits Reg/Thr/Wrp for distributed layouts and
Off for memory layouts (Sections 4.1-4.3).  We follow Triton
upstream's naming: ``register``, ``lane`` (thread within a warp),
``warp``, ``block`` (CTA), and ``offset`` for shared memory.  Output
dimensions of the logical tensor are named ``dim0``, ``dim1``, ...
"""

from __future__ import annotations

from typing import List, Sequence

REGISTER = "register"
LANE = "lane"
WARP = "warp"
BLOCK = "block"
OFFSET = "offset"

#: Canonical ordering of hardware input dims, innermost (fastest) first.
_HARDWARE_ORDER = (REGISTER, LANE, WARP, BLOCK)


def hardware_dims() -> List[str]:
    """The hardware input dims of a distributed layout, innermost first."""
    return list(_HARDWARE_ORDER)


def canonical_dim_order(names: Sequence[str]) -> List[str]:
    """Sort dim names into canonical order.

    Hardware dims come in register < lane < warp < block order; any
    other names (e.g. ``offset``) keep their relative order after them.
    """
    ranked = {name: i for i, name in enumerate(_HARDWARE_ORDER)}
    known = [n for n in _HARDWARE_ORDER if n in names]
    unknown = [n for n in names if n not in ranked]
    return known + unknown


def out_dim_names(rank: int) -> List[str]:
    """The logical tensor dim names for a tensor of the given rank."""
    if rank < 0:
        raise ValueError(f"rank must be non-negative, got {rank}")
    return [f"dim{i}" for i in range(rank)]
