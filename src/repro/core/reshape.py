"""Shape operations on layouts (Section 4.4, Theorem 9.3).

For each of Triton's shape operations (``tt.trans``, ``tt.reshape``,
``tt.join``, ``tt.split``, ``tt.expand_dims``, ``tt.broadcast``) these
functions produce, for a given input layout, the output layout that
makes the operation a register-level no-op — the closure property the
paper proves for distributed layouts.  The legacy layout system could
not do this for several of them (e.g. the transpose of an MMA layout),
forcing extra layout conversions.

Logical tensors are row-major: ``dim0`` is outermost (slowest) and the
last dim is fastest, matching "j is the fastest moving dimension".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.dims import REGISTER, out_dim_names
from repro.core.errors import DimensionError
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int


def _shape_of(layout: LinearLayout) -> List[int]:
    return [layout.out_dim_size(d) for d in layout.out_dims]


def transpose_layout(
    layout: LinearLayout, perm: Sequence[int]
) -> LinearLayout:
    """The output layout of ``tt.trans`` with permutation ``perm``.

    ``perm[i]`` is the source dim that becomes output dim ``i``.  The
    same hardware element that held ``(x_0, ..., x_{r-1})`` now holds
    the transposed coordinate, so the op is a pure relabeling.  Legacy
    layouts could not express this for MMA layouts; linear layouts can
    (Section 4.4).
    """
    names = list(layout.out_dims)
    if sorted(perm) != list(range(len(names))):
        raise DimensionError(f"bad permutation {list(perm)}")
    reordered = layout.transpose_outs([names[p] for p in perm])
    result = reordered
    # Renaming must avoid transient collisions; go through unique temps.
    for i, old in enumerate([names[p] for p in perm]):
        result = result.rename_out_dim(old, f"__tmp{i}")
    for i in range(len(names)):
        result = result.rename_out_dim(f"__tmp{i}", f"dim{i}")
    return result


def flatten_outs(
    layout: LinearLayout,
    order: Optional[Sequence[str]] = None,
    out_dim: str = "dim0",
) -> LinearLayout:
    """Collapse all output dims into one, row-major by default.

    ``order`` lists out dims fastest-first (default: reversed declared
    order).  This is the flattening
    :math:`\\mathbb{F}_2^{d_1} \\times \\dots \\cong \\mathbb{F}_2^d`
    used throughout Section 5.4.
    """
    total = layout.total_out_size()
    bases = {
        d: [(layout.basis_image_flat(d, i, order),) for i in range(
            layout.in_dim_size_log2(d))]
        for d in layout.in_dims
    }
    return LinearLayout(
        bases, {out_dim: total}, require_surjective=False
    )


def reshape_layout(
    layout: LinearLayout, new_shape: Sequence[int]
) -> LinearLayout:
    """The output layout of ``tt.reshape`` to ``new_shape``.

    Row-major reshape re-chunks the bits of the flattened index, so
    any linear layout stays linear — the key fact behind Theorem 9.3's
    "reshape any tensor into the form 2 x 2 x ... x 2".
    """
    new_total = 1
    for s in new_shape:
        log2_int(s)
        new_total *= s
    if new_total != layout.total_out_size():
        raise DimensionError(
            f"reshape size mismatch: {new_total} != "
            f"{layout.total_out_size()}"
        )
    flat = flatten_outs(layout)
    names = out_dim_names(len(new_shape))
    logs = [log2_int(s) for s in new_shape]
    # Split flat bits (fastest = last dim) back into per-dim coords.
    bases: Dict[str, list] = {}
    for d in flat.in_dims:
        images = []
        for i in range(flat.in_dim_size_log2(d)):
            packed = flat.basis_image(d, i)[0]
            coords = []
            shift = 0
            for log in reversed(logs):
                coords.append((packed >> shift) & ((1 << log) - 1))
                shift += log
            coords.reverse()
            images.append(tuple(coords))
        bases[d] = images
    return LinearLayout(
        bases,
        dict(zip(names, new_shape)),
        require_surjective=False,
    )


def expand_dims_layout(layout: LinearLayout, axis: int) -> LinearLayout:
    """The output layout of ``tt.expand_dims`` inserting a size-1 dim."""
    rank = len(layout.out_dims)
    if not 0 <= axis <= rank:
        raise DimensionError(f"axis {axis} out of range for rank {rank}")
    old_shape = _shape_of(layout)
    new_shape = old_shape[:axis] + [1] + old_shape[axis:]
    return reshape_layout(layout, new_shape)


def squeeze_layout(layout: LinearLayout, axis: int) -> LinearLayout:
    """Remove a size-1 dim (the inverse of expand_dims)."""
    shape = _shape_of(layout)
    if shape[axis] != 1:
        raise DimensionError(f"dim {axis} has size {shape[axis]}, not 1")
    return reshape_layout(layout, shape[:axis] + shape[axis + 1:])


def broadcast_layout(
    layout: LinearLayout, axis: int, new_size: int
) -> LinearLayout:
    """The output layout of ``tt.broadcast`` along ``axis``.

    The input has size 1 at ``axis``; the output enumerates the new
    positions with fresh register bits, so every thread holds the full
    broadcast extent in registers (all copies of the same value).  The
    op itself is then a register replication with no cross-thread
    traffic.
    """
    shape = _shape_of(layout)
    if shape[axis] != 1:
        raise DimensionError(
            f"broadcast source dim {axis} has size {shape[axis]}, not 1"
        )
    extra = log2_int(new_size)
    names = list(layout.out_dims)
    new_outs = {
        name: (new_size if i == axis else layout.out_dim_size(name))
        for i, name in enumerate(names)
    }
    bases = layout.bases
    reg_images = list(bases.get(REGISTER, []))
    for bit in range(extra):
        img = [0] * len(names)
        img[axis] = 1 << bit
        reg_images.append(tuple(img))
    bases[REGISTER] = reg_images
    return LinearLayout(bases, new_outs, require_surjective=False)


def join_layout(layout: LinearLayout) -> LinearLayout:
    """The output layout of ``tt.join``: append a minor dim of size 2.

    The joined pair lives in adjacent registers of the same thread.
    """
    names = list(layout.out_dims)
    new_name = f"dim{len(names)}"
    new_outs = dict(layout.out_dim_sizes())
    new_outs[new_name] = 2
    bases = {}
    for d in layout.in_dims:
        bases[d] = [tuple(img) + (0,) for img in layout.bases[d]]
    reg = list(bases.get(REGISTER, []))
    reg.insert(0, (0,) * len(names) + (1,))
    bases[REGISTER] = reg
    return LinearLayout(bases, new_outs, require_surjective=False)


def split_layout(layout: LinearLayout) -> LinearLayout:
    """The input layout relation of ``tt.split``: drop a trailing size-2
    dim held in the first register bit.

    Raises :class:`DimensionError` when the last dim is not a size-2
    register-resident dim — in that case the engine must insert a
    conversion first.
    """
    names = list(layout.out_dims)
    last = names[-1]
    if layout.out_dim_size(last) != 2:
        raise DimensionError("split requires a trailing dim of size 2")
    reg_images = layout.bases.get(REGISTER, [])
    axis = len(names) - 1
    if not reg_images or reg_images[0] != (0,) * axis + (1,):
        raise DimensionError(
            "split requires the trailing dim in the first register bit"
        )
    bases = {}
    for d in layout.in_dims:
        images = layout.bases[d]
        if d == REGISTER:
            images = images[1:]
        for img in images:
            if img[axis] != 0:
                raise DimensionError(
                    "split requires the trailing dim isolated in the "
                    "first register bit"
                )
        bases[d] = [tuple(img[:axis]) for img in images]
    new_outs = {n: layout.out_dim_size(n) for n in names[:-1]}
    return LinearLayout(bases, new_outs, require_surjective=False)
