"""Exception taxonomy for the linear-layout core."""

from __future__ import annotations


class LayoutError(ValueError):
    """Base class for all layout-related failures."""


class DimensionError(LayoutError):
    """A dim name or size did not match what the operation requires."""


class NonInvertibleLayoutError(LayoutError):
    """Inversion requested for a layout with no (right) inverse."""


class NotDivisibleError(LayoutError):
    """Left division ``L / T`` requested but L lacks the block structure
    ``[[T, 0], [0, *]]`` of Definition 4.4."""


class LegacyUnsupportedError(LayoutError):
    """Raised by the legacy-Triton baseline when it hits one of the
    documented gaps of the pre-linear-layout system (the failure modes
    measured in Tables 3-5)."""
