"""Structural predicates and derived quantities of layouts.

Implements the characterizations of Definitions 4.10 (distributed
layouts) and 4.14 (memory layouts), and the layout utilities of
Section 5.1: contiguous-element counting for vectorization, and
duplicate detection for broadcasting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.dims import REGISTER
from repro.core.layout import LinearLayout
from repro.core.ops import num_identity_low_bits
from repro.f2.bitvec import popcount


def _flat_columns(
    layout: LinearLayout, order: Optional[Sequence[str]] = None
) -> List[int]:
    cols: List[int] = []
    for d in layout.in_dims:
        cols.extend(layout.basis_images_flat(d, order))
    return cols


def is_distributed_layout(layout: LinearLayout) -> bool:
    """Definition 4.10: surjective, every column has at most one set
    bit, and no two non-zero columns repeat.

    In other words, a permutation matrix possibly interleaved with zero
    columns.
    """
    if not layout.is_surjective():
        return False
    seen = set()
    for col in _flat_columns(layout):
        weight = popcount(col)
        if weight > 1:
            return False
        if weight == 1:
            if col in seen:
                return False
            seen.add(col)
    return True


def is_memory_layout(layout: LinearLayout) -> bool:
    """Definition 4.14: invertible with columns of 1 or 2 set bits."""
    if not layout.is_invertible():
        return False
    return all(popcount(col) in (1, 2) for col in _flat_columns(layout))


def num_contiguous_elements(
    layout: LinearLayout,
    in_dim: str = REGISTER,
    out_order: Optional[Sequence[str]] = None,
) -> int:
    """Contiguous logical elements held per thread (Section 5.1).

    The count is ``2**v`` where ``v`` is the number of leading
    ``in_dim`` bits mapping identically onto the flattened tensor.
    Unlike the legacy heuristic, this looks across dimension
    boundaries, which is exactly what fixes the ``[512, 2] x f8`` rows
    of Table 3.
    """
    return 1 << num_identity_low_bits(layout, in_dim, out_order)


def largest_vectorization(
    layout: LinearLayout,
    element_bits: int,
    max_vector_bits: int = 128,
    in_dim: str = REGISTER,
    out_order: Optional[Sequence[str]] = None,
) -> int:
    """Widest power-of-two vector (in bits) for a global access.

    Bounded by the contiguous-element count and the platform's widest
    vector transaction (128 bits on NVIDIA/AMD).
    """
    contiguous = num_contiguous_elements(layout, in_dim, out_order)
    vector_bits = contiguous * element_bits
    while vector_bits > max_vector_bits:
        vector_bits >>= 1
    # A single element wider than the cap still needs multiple loads;
    # floor at the element width.
    return max(vector_bits, min(element_bits, max_vector_bits))


def registers_per_thread(layout: LinearLayout) -> int:
    """Number of register slots per thread, including broadcast copies."""
    return layout.in_dim_size(REGISTER)


def free_input_bits(layout: LinearLayout) -> Dict[str, int]:
    """Bitmask of free (duplicate-inducing) bits per input dim."""
    return layout.free_variable_masks()


def broadcast_input_bits(layout: LinearLayout) -> Dict[str, int]:
    """Bitmask of exactly-zero columns per input dim (pure broadcast)."""
    return layout.zero_basis_masks()


def unique_data_threads(layout: LinearLayout, lane_dim: str = "lane") -> int:
    """How many lanes hold non-duplicated data.

    Lanes whose free-bit mask covers a bit each halve the set of
    distinct data owners; used to skip redundant shared-memory stores
    during reductions (Table 4's instruction-count reduction).
    """
    free = layout.free_variable_masks().get(lane_dim, 0)
    return layout.in_dim_size(lane_dim) >> popcount(free)
