"""The paper's primary contribution: linear layouts over F2.

A :class:`LinearLayout` is a linear map between *labeled* vector spaces
over F2 (Definition 4.1).  Input dimensions are hardware resources
(``"register"``, ``"lane"``, ``"warp"``, ``"block"``, or ``"offset"``
for memory layouts); output dimensions are the logical tensor's
dimensions (``"dim0"``, ``"dim1"``, ...).

The public surface re-exports the layout type, its operator algebra
(Definitions 4.2-4.5), the structural predicates of Definitions 4.10
and 4.14, and the affine extension sketched in the paper's conclusion.
"""

from repro.core.affine import AffineLayout
from repro.core.dims import (
    BLOCK,
    LANE,
    OFFSET,
    REGISTER,
    WARP,
    canonical_dim_order,
    hardware_dims,
    out_dim_names,
)
from repro.core.errors import (
    DimensionError,
    LayoutError,
    NonInvertibleLayoutError,
    NotDivisibleError,
)
from repro.core.layout import LinearLayout, make_identity
from repro.core.ops import (
    divide_left,
    divide_left_or_raise,
    is_divisible_by,
    layouts_equal_on,
    num_identity_low_bits,
    product_pow2,
)
from repro.core.properties import (
    broadcast_input_bits,
    free_input_bits,
    is_distributed_layout,
    is_memory_layout,
    largest_vectorization,
    num_contiguous_elements,
    registers_per_thread,
)
from repro.core.reshape import (
    broadcast_layout,
    expand_dims_layout,
    flatten_outs,
    join_layout,
    reshape_layout,
    split_layout,
    transpose_layout,
)

__all__ = [
    "AffineLayout",
    "BLOCK",
    "DimensionError",
    "LANE",
    "LayoutError",
    "LinearLayout",
    "NonInvertibleLayoutError",
    "NotDivisibleError",
    "OFFSET",
    "REGISTER",
    "WARP",
    "broadcast_input_bits",
    "broadcast_layout",
    "canonical_dim_order",
    "divide_left",
    "divide_left_or_raise",
    "expand_dims_layout",
    "is_divisible_by",
    "layouts_equal_on",
    "make_identity",
    "num_identity_low_bits",
    "product_pow2",
    "flatten_outs",
    "free_input_bits",
    "hardware_dims",
    "is_distributed_layout",
    "is_memory_layout",
    "join_layout",
    "largest_vectorization",
    "num_contiguous_elements",
    "out_dim_names",
    "registers_per_thread",
    "reshape_layout",
    "split_layout",
    "transpose_layout",
]
