"""The :class:`LinearLayout` type — Definition 4.1 of the paper.

A linear layout is a linear map between labeled vector spaces over F2.
Following Triton upstream, the map is stored as *bases*: for every
input dimension (e.g. ``register``, ``lane``, ``warp``) we keep one
basis vector per input bit, and each basis vector records the image of
that bit in every output dimension.  Applying the layout XORs together
the images of the set input bits — the binary matrix-vector product of
Section 4.1.

Sizes of all dimensions are powers of two; the *log2* of each size is
the number of bits of the corresponding labeled subspace.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro import cache as _cache
from repro.core.errors import (
    DimensionError,
    LayoutError,
    NonInvertibleLayoutError,
)
from repro.f2.bitvec import log2_int
from repro.f2.matrix import F2Matrix
from repro.f2.solve import (
    InconsistentSystemError,
    inverse as f2_inverse,
    rank as f2_rank,
    solve_matrix,
)

Bases = Dict[str, List[Tuple[int, ...]]]


class CanonicalKey:
    """A layout's structural identity with a precomputed hash.

    Canonical keys appear inside every cache key the layout machinery
    builds; Python tuples re-hash their contents on each lookup, which
    for large layouts dominates the cache probe.  Wrapping the tuple
    once makes repeated hashing O(1).
    """

    __slots__ = ("key", "_hash")

    def __init__(self, key: Tuple):
        self.key = key
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, CanonicalKey):
            return NotImplemented
        return self._hash == other._hash and self.key == other.key

    def __repr__(self) -> str:
        return f"CanonicalKey({self.key!r})"


class LinearLayout:
    """A linear map between labeled F2 vector spaces.

    Parameters
    ----------
    bases:
        ``{in_dim: [image_of_bit_0, image_of_bit_1, ...]}`` where each
        image is a sequence of ints, one per output dimension, in the
        order of ``out_dims``.  Input dim sizes are implied:
        ``2 ** len(bases[in_dim])``.
    out_dims:
        ``{out_dim: size}`` with every size a power of two.  Order is
        significant: it fixes the order of coordinates in basis images
        and the flattening order (first dim is the *fastest* moving,
        i.e. holds the least significant bits when flattened).
    require_surjective:
        When True (the default) the constructor asserts the layout is
        surjective onto the full output space, which Definition 4.10
        requires of distributed layouts.
    """

    __slots__ = (
        "_bases",
        "_in_dims",
        "_out_dims",
        "_surjective",
        "_key",
        "_hash",
        "_memo",
    )

    def __init__(
        self,
        bases: Mapping[str, Sequence[Sequence[int]]],
        out_dims: Mapping[str, int],
        require_surjective: bool = True,
    ):
        self._out_dims: Dict[str, int] = {}
        for name, size in out_dims.items():
            log2_int(size)  # validates power of two
            self._out_dims[name] = size
        n_out = len(self._out_dims)
        out_logs = [log2_int(s) for s in self._out_dims.values()]
        clean: Bases = {}
        for in_dim, vecs in bases.items():
            images: List[Tuple[int, ...]] = []
            for vec in vecs:
                tup = tuple(int(x) for x in vec)
                if len(tup) != n_out:
                    raise DimensionError(
                        f"basis image {tup} of {in_dim!r} has "
                        f"{len(tup)} coords, expected {n_out}"
                    )
                for coord, log in zip(tup, out_logs):
                    if not 0 <= coord < (1 << log):
                        raise DimensionError(
                            f"coordinate {coord} of {in_dim!r} exceeds "
                            f"output size 2**{log}"
                        )
                images.append(tup)
            clean[in_dim] = images
        self._bases = clean
        self._in_dims: Dict[str, int] = {
            d: 1 << len(v) for d, v in clean.items()
        }
        self._key = CanonicalKey(
            (
                tuple((d, tuple(v)) for d, v in clean.items()),
                tuple(self._out_dims.items()),
            )
        )
        self._hash = hash(self._key)
        self._memo: Dict[object, object] = {}
        self._surjective = self._compute_surjective()
        if require_surjective and not self._surjective:
            raise LayoutError(
                "layout is not surjective onto its codomain; pass "
                "require_surjective=False if this is intentional"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "LinearLayout":
        """The trivial layout between zero-dimensional spaces."""
        return LinearLayout({}, {})

    @staticmethod
    def identity1d(size: int, in_dim: str, out_dim: str) -> "LinearLayout":
        """The identity map F2^log2(size) -> F2^log2(size).

        This is the paper's ``id_k^{i,j}`` (Appendix, Notation).
        """
        bits = log2_int(size)
        return LinearLayout(
            {in_dim: [(1 << i,) for i in range(bits)]}, {out_dim: size}
        )

    @staticmethod
    def zeros1d(size: int, in_dim: str, out_dim: str, out_size: int = 1) -> "LinearLayout":
        """Map every input of ``in_dim`` to zero (pure broadcasting).

        A zero column in the layout matrix marks replicated data
        (Section 5.1, Broadcasting).
        """
        bits = log2_int(size)
        return LinearLayout(
            {in_dim: [(0,)] * bits},
            {out_dim: out_size},
            require_surjective=(out_size == 1),
        )

    @staticmethod
    def strided1d(
        size: int, stride: int, in_dim: str, out_dim: str
    ) -> "LinearLayout":
        """Map input i to ``i * stride`` for a power-of-two stride."""
        bits = log2_int(size)
        log_stride = log2_int(stride)
        out_size = 1 << (bits + log_stride)
        return LinearLayout(
            {in_dim: [(1 << (i + log_stride),) for i in range(bits)]},
            {out_dim: out_size},
            require_surjective=False,
        )

    @staticmethod
    def from_matrix(
        matrix: F2Matrix,
        in_dims: Mapping[str, int],
        out_dims: Mapping[str, int],
        require_surjective: bool = True,
    ) -> "LinearLayout":
        """Build from an explicit F2 matrix.

        Column ``j`` of the matrix is the image of the ``j``-th input
        bit, where input bits are the concatenation of the in-dims in
        order (first dim in the low columns) and output bits the
        concatenation of out-dims (first dim in the low rows).
        """
        in_logs = {d: log2_int(s) for d, s in in_dims.items()}
        out_logs = [(d, log2_int(s)) for d, s in out_dims.items()]
        total_in = sum(in_logs.values())
        total_out = sum(log for _, log in out_logs)
        if matrix.shape != (total_out, total_in):
            raise DimensionError(
                f"matrix shape {matrix.shape} does not match dims "
                f"({total_out}, {total_in})"
            )
        bases: Bases = {}
        col = 0
        for in_dim, bits in in_logs.items():
            images = []
            for _ in range(bits):
                packed = matrix.column(col)
                col += 1
                coords = []
                shift = 0
                for _, log in out_logs:
                    coords.append((packed >> shift) & ((1 << log) - 1))
                    shift += log
                images.append(tuple(coords))
            bases[in_dim] = images
        return LinearLayout(bases, dict(out_dims), require_surjective)

    # ------------------------------------------------------------------
    # Interning and memoization
    # ------------------------------------------------------------------
    def canonical_key(self) -> CanonicalKey:
        """A hashable key identifying the layout structurally.

        Two layouts are ``==`` iff their canonical keys are equal: the
        key lists the basis images per input dim (in declaration
        order) and the output dims with their sizes (in order).  It is
        the interning key of :meth:`intern` and the cache key every
        memoized derivation hangs off.
        """
        return self._key

    def intern(self) -> "LinearLayout":
        """The canonical representative of this layout.

        Structurally equal layouts intern to the *same object*
        (hash-consing), so repeated anchor construction and plan
        lookups collapse to identity checks.  With caching disabled
        this returns ``self`` unchanged.
        """
        return _cache.intern_layout(self)

    def _memoized(self, name: str, compute):
        """Per-instance memo for derived values, behind the off-switch.

        Layouts are immutable, so derivations are cached forever on
        the instance; :func:`repro.cache.set_enabled` bypasses the
        memo (it never needs invalidation — only bypassing).
        """
        if not _cache.enabled():
            return compute()
        memo = self._memo
        if name not in memo:
            memo[name] = compute()
        return memo[name]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bases(self) -> Bases:
        """The basis images, ``{in_dim: [tuple per input bit]}``."""
        return {d: list(v) for d, v in self._bases.items()}

    @property
    def in_dims(self) -> List[str]:
        """Input dim names, in declaration order."""
        return list(self._in_dims)

    @property
    def out_dims(self) -> List[str]:
        """Output dim names, in declaration order."""
        return list(self._out_dims)

    def has_in_dim(self, dim: str) -> bool:
        """True iff ``dim`` is an input dimension."""
        return dim in self._in_dims

    def has_out_dim(self, dim: str) -> bool:
        """True iff ``dim`` is an output dimension."""
        return dim in self._out_dims

    def in_dim_size(self, dim: str) -> int:
        """Size of an input dim (1 for absent dims, by convention)."""
        if dim not in self._in_dims:
            return 1
        return self._in_dims[dim]

    def out_dim_size(self, dim: str) -> int:
        """Size of an output dim; raises for unknown names."""
        if dim not in self._out_dims:
            raise DimensionError(f"no output dim {dim!r}")
        return self._out_dims[dim]

    def in_dim_size_log2(self, dim: str) -> int:
        """Bits of an input dim."""
        return log2_int(self.in_dim_size(dim))

    def out_dim_size_log2(self, dim: str) -> int:
        """Bits of an output dim."""
        return log2_int(self.out_dim_size(dim))

    def out_dim_sizes(self) -> Dict[str, int]:
        """All output dims and sizes, in order."""
        return dict(self._out_dims)

    def in_dim_sizes(self) -> Dict[str, int]:
        """All input dims and sizes, in order."""
        return dict(self._in_dims)

    def total_in_bits(self) -> int:
        """Total input bits across all dims."""
        return sum(len(v) for v in self._bases.values())

    def total_out_bits(self) -> int:
        """Total output bits across all dims."""
        return sum(log2_int(s) for s in self._out_dims.values())

    def total_in_size(self) -> int:
        """Number of distinct inputs (2^total_in_bits)."""
        return 1 << self.total_in_bits()

    def total_out_size(self) -> int:
        """Number of logical elements (2^total_out_bits)."""
        return 1 << self.total_out_bits()

    def basis_image(self, in_dim: str, bit: int) -> Tuple[int, ...]:
        """The image of basis bit ``bit`` of ``in_dim``."""
        return self._bases[in_dim][bit]

    def basis_image_flat(
        self, in_dim: str, bit: int, order: Optional[Sequence[str]] = None
    ) -> int:
        """Same, flattened over the output dims.

        ``order`` lists out dims fastest-first; the default is the
        reverse of the declared out-dim order, i.e. row-major ("j is
        the fastest moving dimension", Section 4.1).
        """
        return self._flatten_out_coords(self._bases[in_dim][bit], order)

    def basis_images_flat(
        self, in_dim: str, order: Optional[Sequence[str]] = None
    ) -> List[int]:
        """All basis images of an input dim, flattened row-major.

        These are the sets the paper calls ``L_Reg``, ``L_Thr``,
        ``L_Wrp`` in Section 5.4 — the columns of the layout matrix
        acting on each resource, viewed in the flattened logical
        tensor F2^d.
        """
        if in_dim not in self._bases:
            return []
        return [
            self._flatten_out_coords(img, order)
            for img in self._bases[in_dim]
        ]

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Apply the map to per-dim input coordinates.

        Missing input dims default to 0.  Returns per-out-dim
        coordinates.
        """
        acc = [0] * len(self._out_dims)
        for in_dim, images in self._bases.items():
            value = inputs.get(in_dim, 0)
            if not 0 <= value < self._in_dims[in_dim]:
                raise DimensionError(
                    f"input {value} out of range for dim {in_dim!r} "
                    f"of size {self._in_dims[in_dim]}"
                )
            bit = 0
            while value:
                if value & 1:
                    img = images[bit]
                    for k in range(len(acc)):
                        acc[k] ^= img[k]
                value >>= 1
                bit += 1
        extraneous = set(inputs) - set(self._bases)
        if extraneous:
            raise DimensionError(f"unknown input dims: {sorted(extraneous)}")
        return dict(zip(self._out_dims, acc))

    def apply_flat(
        self,
        inputs: Mapping[str, int],
        order: Optional[Sequence[str]] = None,
    ) -> int:
        """Apply and flatten the output (row-major by default)."""
        return self._flatten_out_coords(
            tuple(self.apply(inputs).values()), order
        )

    def _flat_order(self, order: Optional[Sequence[str]]) -> List[str]:
        """Out dims fastest-first; default row-major (last dim fastest)."""
        if order is None:
            return list(reversed(list(self._out_dims)))
        if sorted(order) != sorted(self._out_dims):
            raise DimensionError(f"bad flatten order {list(order)}")
        return list(order)

    def _flatten_out_coords(
        self,
        coords: Sequence[int],
        order: Optional[Sequence[str]] = None,
    ) -> int:
        by_name = dict(zip(self._out_dims, coords))
        out = 0
        shift = 0
        for name in self._flat_order(order):
            out |= by_name[name] << shift
            shift += log2_int(self._out_dims[name])
        return out

    def unflatten_out(
        self, flat: int, order: Optional[Sequence[str]] = None
    ) -> Dict[str, int]:
        """Split a flattened output coordinate back into per-dim coords."""
        coords = {}
        for name in self._flat_order(order):
            log = log2_int(self._out_dims[name])
            coords[name] = flat & ((1 << log) - 1)
            flat >>= log
        return {name: coords[name] for name in self._out_dims}

    # ------------------------------------------------------------------
    # Matrix view
    # ------------------------------------------------------------------
    def to_matrix(
        self,
        in_dim_order: Optional[Sequence[str]] = None,
        out_dim_order: Optional[Sequence[str]] = None,
    ) -> F2Matrix:
        """The matrix of the map, columns = input bits, rows = output bits.

        Input bits are concatenated in ``in_dim_order`` (default: the
        layout's own order, first dim in the low columns); output bits
        likewise in ``out_dim_order``.
        """
        if in_dim_order is None and out_dim_order is None:
            # The default view is the one every F2 derivation uses;
            # F2Matrix is immutable, so sharing the instance is safe.
            return self._memoized(
                "to_matrix",
                lambda: self._build_matrix(
                    list(self._in_dims), list(self._out_dims)
                ),
            )
        ins = list(in_dim_order) if in_dim_order else list(self._in_dims)
        outs = list(out_dim_order) if out_dim_order else list(self._out_dims)
        if set(ins) != set(self._in_dims):
            raise DimensionError(f"in_dim_order {ins} != {self.in_dims}")
        if set(outs) != set(self._out_dims):
            raise DimensionError(f"out_dim_order {outs} != {self.out_dims}")
        return self._build_matrix(ins, outs)

    def _build_matrix(
        self, ins: Sequence[str], outs: Sequence[str]
    ) -> F2Matrix:
        out_shift = {}
        shift = 0
        for name in outs:
            out_shift[name] = shift
            shift += self.out_dim_size_log2(name)
        total_out = shift
        columns: List[int] = []
        for in_dim in ins:
            for img in self._bases[in_dim]:
                packed = 0
                for name, coord in zip(self._out_dims, img):
                    packed |= coord << out_shift[name]
                columns.append(packed)
        return F2Matrix(total_out, columns)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _rank(self) -> int:
        """Rank of the layout matrix, memoized globally by key.

        Gaussian elimination is the construction-time hot spot (every
        layout computes surjectivity); the global key means repeated
        construction of *equal* layouts pays for it once.
        """
        return _cache.cached(
            _cache.derivations,
            ("rank", self._key),
            lambda: f2_rank(self.to_matrix()),
        )

    def _compute_surjective(self) -> bool:
        if self.total_out_bits() == 0:
            return True
        return self._rank() == self.total_out_bits()

    def is_surjective(self) -> bool:
        """True iff the image is the whole output space."""
        return self._surjective

    def is_injective(self) -> bool:
        """True iff no two inputs map to the same output."""
        return self._rank() == self.total_in_bits()

    def is_invertible(self) -> bool:
        """True iff the map is a bijection."""
        return (
            self._surjective
            and self.total_in_bits() == self.total_out_bits()
        )

    def is_trivially_injective_in(self, in_dim: str) -> bool:
        """True iff the bases of ``in_dim`` alone are independent."""
        vecs = self.basis_images_flat(in_dim)
        seen: Dict[int, int] = {}
        for v in vecs:
            while v:
                lead = v.bit_length() - 1
                if lead not in seen:
                    seen[lead] = v
                    break
                v ^= seen[lead]
            if v == 0:
                return False
        return True

    # ------------------------------------------------------------------
    # Operator algebra (Definitions 4.2-4.5)
    # ------------------------------------------------------------------
    def __mul__(self, other: "LinearLayout") -> "LinearLayout":
        """The product of layouts (Definition 4.3).

        For dims shared between the factors, ``self``'s bits occupy the
        low positions and ``other``'s are shifted up — this is how a
        complex layout is built incrementally "from registers to
        threads to warps" (Section 4.2).  The matrix view is the
        label-wise block-diagonal of the two factors.
        """
        if not isinstance(other, LinearLayout):
            return NotImplemented
        out_dims: Dict[str, int] = dict(self._out_dims)
        for name, size in other._out_dims.items():
            out_dims[name] = out_dims.get(name, 1) * size
        out_names = list(out_dims)

        def lift(layout: "LinearLayout", shift_mine: bool) -> Bases:
            shifts = {}
            for name in layout._out_dims:
                shifts[name] = (
                    self.out_dim_size_log2(name)
                    if shift_mine and name in self._out_dims
                    else 0
                )
            lifted: Bases = {}
            for in_dim, images in layout._bases.items():
                new_images = []
                for img in images:
                    coords = dict(zip(layout._out_dims, img))
                    new_images.append(
                        tuple(
                            coords.get(n, 0) << shifts.get(n, 0)
                            for n in out_names
                        )
                    )
                lifted[in_dim] = new_images
            return lifted

        a = lift(self, shift_mine=False)
        b = lift(other, shift_mine=True)
        bases: Bases = {}
        for in_dim in list(a) + [d for d in b if d not in a]:
            bases[in_dim] = a.get(in_dim, []) + b.get(in_dim, [])
        return LinearLayout(
            bases,
            out_dims,
            require_surjective=False,
        )

    def compose(self, inner: "LinearLayout") -> "LinearLayout":
        """``self ∘ inner``: apply ``inner`` first (Definition 4.2).

        ``inner``'s output dims must match ``self``'s input dims in
        name and size.
        """
        if set(inner._out_dims) != set(self._in_dims):
            raise DimensionError(
                f"cannot compose: inner outs {inner.out_dims} != "
                f"outer ins {self.in_dims}"
            )
        for name in inner._out_dims:
            if inner.out_dim_size(name) != self.in_dim_size(name):
                raise DimensionError(
                    f"size mismatch on {name!r}: "
                    f"{inner.out_dim_size(name)} vs {self.in_dim_size(name)}"
                )
        bases: Bases = {}
        for in_dim, images in inner._bases.items():
            new_images = []
            for img in images:
                mids = dict(zip(inner._out_dims, img))
                outs = self.apply(mids)
                new_images.append(tuple(outs.values()))
            bases[in_dim] = new_images
        return LinearLayout(
            bases, dict(self._out_dims), require_surjective=False
        )

    def invert(self) -> "LinearLayout":
        """The two-sided inverse of a bijective layout.

        The result maps the old output dims to the old input dims.
        """
        if not self.is_invertible():
            raise NonInvertibleLayoutError(
                "layout is not invertible (need bijectivity)"
            )

        def compute() -> "LinearLayout":
            inv = f2_inverse(self.to_matrix())
            return LinearLayout.from_matrix(
                inv, dict(self._out_dims), dict(self._in_dims)
            )

        return self._memoized("invert", compute)

    def right_inverse(self) -> "LinearLayout":
        """A right inverse of a surjective layout (Definition 4.5).

        Free variables are zeroed, giving the minimal-Hamming-weight
        representative that promotes broadcasting (Section 5.4).
        """
        if not self._surjective:
            raise NonInvertibleLayoutError(
                "right inverse requires surjectivity"
            )

        def compute() -> "LinearLayout":
            matrix = self.to_matrix()
            try:
                rinv = solve_matrix(matrix, F2Matrix.identity(matrix.rows))
            except InconsistentSystemError as exc:  # pragma: no cover
                raise NonInvertibleLayoutError(str(exc)) from exc
            return LinearLayout.from_matrix(
                rinv,
                dict(self._out_dims),
                dict(self._in_dims),
                require_surjective=False,
            )

        return self._memoized("right_inverse", compute)

    def invert_and_compose(self, other: "LinearLayout") -> "LinearLayout":
        """``other^{-1} ∘ self`` — the conversion map of Section 5.4.

        Both layouts must share output dims (the logical tensor).  The
        result maps ``self``'s inputs (source hardware indices) to
        ``other``'s inputs (destination hardware indices), choosing the
        free-variables-zero solution so broadcast destinations read
        from a single source (Section 5.4, item 2).
        """
        if dict(self._out_dims) != dict(other._out_dims):
            raise DimensionError(
                f"conversion requires equal codomains: "
                f"{self._out_dims} vs {other._out_dims}"
            )
        if not other._surjective:
            raise NonInvertibleLayoutError(
                "destination layout must be surjective"
            )

        def compute() -> "LinearLayout":
            # Solve other @ X = self column-wise over F2.
            a = self.to_matrix()
            b = other.to_matrix()
            x = solve_matrix(b, a)
            return LinearLayout.from_matrix(
                x,
                dict(self._in_dims),
                dict(other._in_dims),
                require_surjective=False,
            )

        return _cache.cached(
            _cache.derivations,
            ("invert_and_compose", self._key, other._key),
            compute,
        )

    # ------------------------------------------------------------------
    # Dim surgery
    # ------------------------------------------------------------------
    def sublayout(
        self, in_dims: Sequence[str], out_dims: Sequence[str]
    ) -> "LinearLayout":
        """Restrict to a subset of in and out dims.

        Keeps the bases of the selected input dims, projected onto the
        selected output dims.  The restriction of a linear map is
        linear (Proposition 4.8's proof idea).
        """
        for d in in_dims:
            if d not in self._in_dims:
                raise DimensionError(f"no input dim {d!r}")
        for d in out_dims:
            if d not in self._out_dims:
                raise DimensionError(f"no output dim {d!r}")
        keep = [i for i, name in enumerate(self._out_dims) if name in out_dims]
        bases: Bases = {}
        for d in in_dims:
            bases[d] = [
                tuple(img[i] for i in keep) for img in self._bases[d]
            ]
        new_outs = {
            name: size
            for name, size in self._out_dims.items()
            if name in out_dims
        }
        return LinearLayout(bases, new_outs, require_surjective=False)

    def rename_in_dim(self, old: str, new: str) -> "LinearLayout":
        """Rename one input dim (pure relabeling)."""
        if old not in self._bases:
            raise DimensionError(f"no input dim {old!r}")
        bases = {
            (new if d == old else d): list(v) for d, v in self._bases.items()
        }
        return LinearLayout(
            bases, dict(self._out_dims), require_surjective=False
        )

    def rename_out_dim(self, old: str, new: str) -> "LinearLayout":
        """Rename one output dim (pure relabeling)."""
        if old not in self._out_dims:
            raise DimensionError(f"no output dim {old!r}")
        outs = {
            (new if d == old else d): s for d, s in self._out_dims.items()
        }
        return LinearLayout(self._bases, outs, require_surjective=False)

    def transpose_ins(self, order: Sequence[str]) -> "LinearLayout":
        """Reorder the input dims (a relabeling, not a new map)."""
        if sorted(order) != sorted(self._in_dims):
            raise DimensionError(f"bad in-dim order {order}")
        bases = {d: list(self._bases[d]) for d in order}
        return LinearLayout(
            bases, dict(self._out_dims), require_surjective=False
        )

    def transpose_outs(self, order: Sequence[str]) -> "LinearLayout":
        """Reorder the output dims.

        Changes which dim is fastest-moving when flattening; this is
        the layout-level realization of ``tt.trans`` (Section 4.4).
        """
        if sorted(order) != sorted(self._out_dims):
            raise DimensionError(f"bad out-dim order {order}")
        positions = {name: i for i, name in enumerate(self._out_dims)}
        perm = [positions[name] for name in order]
        bases: Bases = {
            d: [tuple(img[p] for p in perm) for img in images]
            for d, images in self._bases.items()
        }
        outs = {name: self._out_dims[name] for name in order}
        return LinearLayout(bases, outs, require_surjective=False)

    def resize_in_dim(self, dim: str, new_size: int) -> "LinearLayout":
        """Grow (with zero/broadcast bases) or shrink an input dim."""
        bits = log2_int(new_size)
        images = list(self._bases.get(dim, []))
        zero = tuple(0 for _ in self._out_dims)
        if bits >= len(images):
            images = images + [zero] * (bits - len(images))
        else:
            images = images[:bits]
        bases = {d: list(v) for d, v in self._bases.items()}
        bases[dim] = images
        return LinearLayout(
            bases, dict(self._out_dims), require_surjective=False
        )

    def concat_ins(self, other: "LinearLayout") -> "LinearLayout":
        """Concatenate input dims of two layouts with equal codomains."""
        if dict(self._out_dims) != dict(other._out_dims):
            raise DimensionError("concat_ins requires equal codomains")
        if set(self._in_dims) & set(other._in_dims):
            raise DimensionError("concat_ins requires disjoint input dims")
        bases = {d: list(v) for d, v in self._bases.items()}
        for d, v in other._bases.items():
            bases[d] = list(v)
        return LinearLayout(
            bases, dict(self._out_dims), require_surjective=False
        )

    # ------------------------------------------------------------------
    # Free variables / broadcasting
    # ------------------------------------------------------------------
    def free_variable_masks(self) -> Dict[str, int]:
        """Per input dim, a bitmask of *free* bits.

        A free bit either maps to zero or repeats the image of an
        earlier bit modulo the span of the earlier columns; flipping it
        never changes which logical element the input refers to beyond
        replication.  Zero columns are the broadcast markers of
        Section 5.1.
        """
        return dict(
            self._memoized("free_variable_masks", self._free_variable_masks)
        )

    def _free_variable_masks(self) -> Dict[str, int]:
        masks: Dict[str, int] = {}
        seen: Dict[int, int] = {}

        def in_span(v: int) -> bool:
            while v:
                lead = v.bit_length() - 1
                if lead not in seen:
                    return False
                v ^= seen[lead]
            return True

        def insert(v: int) -> None:
            while v:
                lead = v.bit_length() - 1
                if lead not in seen:
                    seen[lead] = v
                    return
                v ^= seen[lead]

        for in_dim in self._bases:
            mask = 0
            for bit, flat in enumerate(self.basis_images_flat(in_dim)):
                if flat == 0 or in_span(flat):
                    mask |= 1 << bit
                else:
                    insert(flat)
            masks[in_dim] = mask
        return masks

    def zero_basis_masks(self) -> Dict[str, int]:
        """Per input dim, a bitmask of bits whose image is exactly zero."""
        return {
            d: sum(
                1 << i
                for i, img in enumerate(images)
                if all(c == 0 for c in img)
            )
            for d, images in self._bases.items()
        }

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, LinearLayout):
            return NotImplemented
        return self._key == other._key

    def equivalent(self, other: "LinearLayout") -> bool:
        """Equality up to input/output dim *order* (same map).

        Used by the engine to turn conversions between "equivalent"
        layouts into no-ops (the welford case of Section 6.2).
        """
        if not isinstance(other, LinearLayout):
            return False
        if dict(self._in_dims) != dict(other._in_dims):
            return False
        if dict(self._out_dims) != dict(other._out_dims):
            return False
        for d, images in self._bases.items():
            theirs = other._bases[d]
            names_mine = list(self._out_dims)
            for img_mine, img_theirs in zip(images, theirs):
                mine = dict(zip(names_mine, img_mine))
                them = dict(zip(other._out_dims, img_theirs))
                if mine != them:
                    return False
        return True

    def __hash__(self) -> int:
        # Precomputed from the canonical key, so hashing is as cheap
        # as the dict lookups interning and the plan cache perform.
        # ``a == b`` iff ``a.canonical_key() == b.canonical_key()``,
        # which guarantees the eq/hash contract layouts need to serve
        # as dict keys (see tests/test_cache.py).
        return self._hash

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable description of the layout.

        Stable across versions: basis images are stored per input dim
        as lists of per-out-dim coordinates.
        """
        return {
            "bases": {
                d: [list(img) for img in images]
                for d, images in self._bases.items()
            },
            "out_dims": dict(self._out_dims),
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "LinearLayout":
        """Rebuild a layout saved by :meth:`to_dict`."""
        return LinearLayout(
            {
                d: [tuple(img) for img in images]
                for d, images in data["bases"].items()
            },
            dict(data["out_dims"]),
            require_surjective=False,
        )

    def __repr__(self) -> str:
        parts = []
        for d, images in self._bases.items():
            imgs = ", ".join(str(tuple(img)) for img in images)
            parts.append(f"{d}=[{imgs}]")
        outs = ", ".join(f"{d}:{s}" for d, s in self._out_dims.items())
        return f"LinearLayout({'; '.join(parts)} -> {outs})"

    def pretty(self) -> str:
        """A human-readable table of every input -> output mapping.

        Only usable for small layouts (<= 2^12 inputs).
        """
        if self.total_in_bits() > 12:
            return repr(self)
        lines = [repr(self)]
        in_names = list(self._in_dims)
        sizes = [self._in_dims[d] for d in in_names]

        def rec(idx: int, coords: Dict[str, int]) -> None:
            if idx == len(in_names):
                outs = self.apply(coords)
                lines.append(f"  {coords} -> {outs}")
                return
            for v in range(sizes[idx]):
                coords[in_names[idx]] = v
                rec(idx + 1, coords)

        rec(0, {})
        return "\n".join(lines)


def make_identity(
    pairs: Iterable[Tuple[int, str, str]]
) -> LinearLayout:
    """Product of ``identity1d`` factors, a convenience for tiles."""
    result = LinearLayout.empty()
    for size, in_dim, out_dim in pairs:
        result = result * LinearLayout.identity1d(size, in_dim, out_dim)
    return result
