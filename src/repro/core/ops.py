"""Operator algebra on layouts beyond the methods of the class itself.

The centerpiece is *left division* (Definition 4.4): a layout ``L`` is
divisible on the left by a tile ``T`` when ``L`` has the block
structure ``[[T, 0], [0, Q]]`` label-wise, in which case ``L / T = Q``.
Theorem 5.1 uses this to decide whether a SIMD instruction with tile
``T`` can lower ``L``.
"""

from __future__ import annotations

from typing import Optional

from repro import cache as _cache
from repro.core.errors import DimensionError, NotDivisibleError
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int


def divide_left(
    layout: LinearLayout, tile: LinearLayout
) -> Optional[LinearLayout]:
    """Label-wise left division ``layout / tile`` (Definition 4.4).

    Returns the quotient layout ``Q`` such that ``tile * Q == layout``
    (with ``*`` the product of Definition 4.3), or ``None`` when the
    required block structure is absent.

    Every input and output dim of the tile must exist in the layout
    with at least the tile's size.  In the quotient, each shared dim
    keeps the left-over high bits.

    Results (including failures) are memoized on the canonical layout
    keys: Theorem 5.1's divisibility test runs for every candidate
    staging layout of every conversion, over a tiny set of tiles.
    """
    return _cache.cached(
        _cache.derivations,
        ("divide_left", layout.canonical_key(), tile.canonical_key()),
        lambda: _divide_left(layout, tile),
    )


def _divide_left(
    layout: LinearLayout, tile: LinearLayout
) -> Optional[LinearLayout]:
    for d in tile.in_dims:
        if tile.in_dim_size(d) > layout.in_dim_size(d):
            return None
    for d in tile.out_dims:
        if not layout.has_out_dim(d):
            return None
        if tile.out_dim_size(d) > layout.out_dim_size(d):
            return None

    tile_out_log = {
        d: (tile.out_dim_size_log2(d) if tile.has_out_dim(d) else 0)
        for d in layout.out_dims
    }
    out_names = list(layout.out_dims)

    quotient_bases = {}
    for in_dim in layout.in_dims:
        k = (
            tile.in_dim_size_log2(in_dim)
            if tile.has_in_dim(in_dim)
            else 0
        )
        n = layout.in_dim_size_log2(in_dim)
        # Low bits must reproduce the tile exactly, confined to the
        # tile's output block.
        for bit in range(k):
            img = dict(zip(out_names, layout.basis_image(in_dim, bit)))
            tile_img = dict(
                zip(tile.out_dims, tile.basis_image(in_dim, bit))
            )
            for name in out_names:
                want = tile_img.get(name, 0)
                if img[name] != want:
                    return None
        # High bits must avoid the tile's output block entirely.
        quot_images = []
        for bit in range(k, n):
            img = dict(zip(out_names, layout.basis_image(in_dim, bit)))
            coords = []
            for name in out_names:
                low = tile_out_log[name]
                if img[name] & ((1 << low) - 1):
                    return None
                coords.append(img[name] >> low)
            quot_images.append(tuple(coords))
        quotient_bases[in_dim] = quot_images

    quotient_outs = {
        name: layout.out_dim_size(name) >> tile_out_log[name]
        for name in out_names
    }
    # Drop dims fully consumed by the tile (size 1 keeps flattening sane
    # but Definition 4.4 keeps them; we keep them as size-1 dims).
    for name, size in quotient_outs.items():
        if size < 1:  # pragma: no cover - guarded by checks above
            raise DimensionError(f"tile exceeds layout in dim {name!r}")
    return LinearLayout(
        quotient_bases, quotient_outs, require_surjective=False
    )


def divide_left_or_raise(
    layout: LinearLayout, tile: LinearLayout
) -> LinearLayout:
    """Left division that raises :class:`NotDivisibleError` on failure."""
    quotient = divide_left(layout, tile)
    if quotient is None:
        raise NotDivisibleError(
            f"layout is not left-divisible by the tile:\n"
            f"  layout: {layout!r}\n  tile:   {tile!r}"
        )
    return quotient


def is_divisible_by(layout: LinearLayout, tile: LinearLayout) -> bool:
    """Theorem 5.1's predicate: can an instruction with tile T lower L?"""
    return divide_left(layout, tile) is not None


def num_identity_low_bits(
    layout: LinearLayout, in_dim: str, out_order=None
) -> int:
    """Count leading input bits of ``in_dim`` mapping identically.

    Returns the largest ``v`` such that basis bit ``i`` of ``in_dim``
    maps to flattened output ``2**i`` for all ``i < v`` — the
    "largest u with L^-1_Reg(i) = i for i <= u" computation of
    Section 5.1, phrased on the forward map.
    """
    count = 0
    for i, img in enumerate(layout.basis_images_flat(in_dim, out_order)):
        if img != (1 << i):
            break
        count += 1
    return count


def layouts_equal_on(
    a: LinearLayout, b: LinearLayout, in_dim: str
) -> bool:
    """True iff two layouts agree on one input dim (flattened images).

    This is the ``A_i == B_i`` test of Section 5.4, item 1: equal
    components mean the conversion is the identity on that resource and
    no data movement at that level is needed.
    """
    return a.basis_images_flat(in_dim) == b.basis_images_flat(in_dim)


def product_pow2(layout: LinearLayout, in_dim: str, times_log2: int) -> LinearLayout:
    """Replicate a layout ``2**times_log2`` ways along an input dim.

    Adds ``times_log2`` zero bases to ``in_dim`` — the broadcast
    construction of Section 5.1 ("adding a zero column in A_reg means
    registers 4-7 map to the same tensor elements as registers 0-3").
    """
    new_size = layout.in_dim_size(in_dim) << times_log2
    log2_int(new_size)
    return layout.resize_in_dim(in_dim, new_size)
