"""Affine layouts ``y = Ax ⊕ b`` — the extension from Section 8.

The paper's conclusion notes that flipping and slicing are not linear
(they do not fix the origin) but become expressible with a constant
offset XORed onto the output.  We implement that extension so the
flip/slice examples are covered and tested.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.errors import DimensionError
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int


class AffineLayout:
    """An affine map: a :class:`LinearLayout` plus an output offset.

    ``apply(x) = linear.apply(x) XOR offset`` per output dim.
    """

    __slots__ = ("_linear", "_offset")

    def __init__(self, linear: LinearLayout, offset: Mapping[str, int]):
        self._linear = linear
        clean: Dict[str, int] = {}
        for name in linear.out_dims:
            value = offset.get(name, 0)
            if not 0 <= value < linear.out_dim_size(name):
                raise DimensionError(
                    f"offset {value} out of range for {name!r}"
                )
            clean[name] = value
        extraneous = set(offset) - set(linear.out_dims)
        if extraneous:
            raise DimensionError(f"unknown offset dims {sorted(extraneous)}")
        self._offset = clean

    @staticmethod
    def from_linear(linear: LinearLayout) -> "AffineLayout":
        """A linear layout viewed as affine with zero offset."""
        return AffineLayout(linear, {})

    @property
    def linear(self) -> LinearLayout:
        """The linear part ``A``."""
        return self._linear

    @property
    def offset(self) -> Dict[str, int]:
        """The constant offset ``b`` per output dim."""
        return dict(self._offset)

    def is_linear(self) -> bool:
        """True iff the offset is zero (the map fixes the origin)."""
        return all(v == 0 for v in self._offset.values())

    def apply(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Evaluate ``A x XOR b`` on per-dim inputs."""
        out = self._linear.apply(inputs)
        return {d: v ^ self._offset[d] for d, v in out.items()}

    def flip(self, dim: str) -> "AffineLayout":
        """Reverse the order of a power-of-two output dim.

        ``flip(i) = size - 1 - i`` equals ``i XOR (size - 1)`` for a
        power-of-two size, hence an offset update — the conclusion's
        flipping example.
        """
        size = self._linear.out_dim_size(dim)
        new_offset = dict(self._offset)
        new_offset[dim] ^= size - 1
        return AffineLayout(self._linear, new_offset)

    def translate(self, dim: str, delta: int) -> "AffineLayout":
        """XOR-translate along a dim (covers aligned power-of-two
        slicing: selecting the block starting at an aligned offset)."""
        size = self._linear.out_dim_size(dim)
        if not 0 <= delta < size:
            raise DimensionError(f"delta {delta} out of range for {dim!r}")
        new_offset = dict(self._offset)
        new_offset[dim] ^= delta
        return AffineLayout(self._linear, new_offset)

    def compose(self, inner: "AffineLayout") -> "AffineLayout":
        """``self ∘ inner``: (A2(A1 x ⊕ b1)) ⊕ b2 = A2 A1 x ⊕ (A2 b1 ⊕ b2)."""
        new_linear = self._linear.compose(inner._linear)
        pushed = self._linear.apply(inner._offset)
        new_offset = {
            d: pushed[d] ^ self._offset[d] for d in self._linear.out_dims
        }
        return AffineLayout(new_linear, new_offset)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineLayout):
            return NotImplemented
        return (
            self._linear == other._linear and self._offset == other._offset
        )

    def __hash__(self) -> int:
        return hash((self._linear, tuple(sorted(self._offset.items()))))

    def __repr__(self) -> str:
        return f"AffineLayout({self._linear!r}, offset={self._offset})"


def slice_offset_layout(
    linear: LinearLayout, dim: str, start: int, length: int
) -> AffineLayout:
    """An affine layout selecting ``[start, start+length)`` of ``dim``.

    Requires ``start`` to be a multiple of ``length`` (aligned slicing)
    — the case expressible with XOR, per the conclusion's discussion.
    """
    log_len = log2_int(length)
    if start % length != 0:
        raise DimensionError(
            f"slice start {start} must be aligned to length {length}"
        )
    del log_len
    return AffineLayout(linear, {}).translate(dim, start)
