"""Kernel models of the TritonBench suite (Section 6.2).

Each model reproduces the *op structure* of one benchmarked Triton
kernel — which loads feed which dots, where reductions and shape
operations sit, how many K-iterations amortize the operand staging —
so that compiling it in ``linear`` vs ``legacy`` mode reproduces the
layout-conversion/shared-memory cost differences behind Figure 9 and
the op mix of Table 6.
"""

from repro.kernels.models import KERNELS, KernelCase, KernelModel, kernel_names

__all__ = ["KERNELS", "KernelCase", "KernelModel", "kernel_names"]
