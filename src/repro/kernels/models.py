"""The 21 kernel models and their input configurations.

Shapes are per-program tile shapes (what one CTA handles), as in
Triton.  ``k_iters``-style parameters unroll the software-pipelined
loop so per-iteration conversions and mma work scale realistically —
a kernel dominated by tensor-core work dilutes conversion savings,
which is why Figure 9's real-kernel speedups are far smaller than the
Figure 7 conversion microbenchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.engine.builder import KernelBuilder
from repro.mxfp.types import (
    BF16, DType, F16, F32, F8E5M2, I16, I64, I8,
)


@dataclass(frozen=True)
class KernelCase:
    """One input configuration of a benchmark."""

    name: str
    params: Tuple[Tuple[str, object], ...]

    def kwargs(self) -> Dict[str, object]:
        """The case parameters as builder keyword arguments."""
        return dict(self.params)


@dataclass
class KernelModel:
    """A named kernel with its builder and input sweep."""

    name: str
    build: Callable[..., KernelBuilder]
    cases: List[KernelCase]
    platforms: Tuple[str, ...] = ("RTX4090", "GH200", "MI250")
    needs_large_smem: bool = False
    needs_tma: bool = False


def _case(name: str, **params) -> KernelCase:
    return KernelCase(name=name, params=tuple(sorted(params.items())))


# ----------------------------------------------------------------------
# GEMM family
# ----------------------------------------------------------------------
def build_gemm(
    m: int = 64,
    n: int = 64,
    k: int = 64,
    k_iters: int = 4,
    a_dtype: DType = F16,
    b_dtype: DType = F16,
) -> KernelBuilder:
    """A software-pipelined GEMM: per-iteration loads and dot."""
    kb = KernelBuilder("gemm")
    acc = None
    for _ in range(k_iters):
        a = kb.load((m, k), a_dtype)
        b = kb.load((k, n), b_dtype)
        c = kb.dot(a, b)
        acc = c if acc is None else kb.elementwise(acc, c, name="add")
    kb.store(acc)
    return kb


def build_mixed_gemm(a_dtype: DType, b_dtype: DType, **kw) -> KernelBuilder:
    """A GEMM with mixed operand dtypes (bf16xint16 / fp8 suites)."""
    kb = build_gemm(a_dtype=a_dtype, b_dtype=b_dtype, **kw)
    kb.name = f"{a_dtype}x{b_dtype}_gemm"
    return kb


def build_addmm(m=64, n=64, k=64, k_iters=4) -> KernelBuilder:
    """GEMM plus a bias add in the epilogue."""
    kb = KernelBuilder("addmm")
    acc = None
    for _ in range(k_iters):
        a = kb.load((m, k), F16)
        b = kb.load((k, n), F16)
        c = kb.dot(a, b)
        acc = c if acc is None else kb.elementwise(acc, c, name="add")
    bias = kb.load((m, n), F16)
    kb.store(kb.elementwise(acc, bias, name="add"))
    return kb


def build_grouped_gemm(m=64, n=64, k=64, groups=2) -> KernelBuilder:
    """Several independent GEMMs in one kernel."""
    kb = KernelBuilder("grouped_gemm")
    for _ in range(groups):
        a = kb.load((m, k), F16)
        b = kb.load((k, n), F16)
        kb.store(kb.dot(a, b))
    return kb


def build_int4_gemm(m=64, n=64, k=64, k_iters=4) -> KernelBuilder:
    """int4 weights are loaded packed (i8 carriers), upcast, then dot.

    The upcast result needs an operand layout with wide K runs, which
    legacy Triton staged through shared memory with poor
    vectorization.
    """
    kb = KernelBuilder("int4_gemm")
    acc = None
    for _ in range(k_iters):
        a = kb.load((m, k), F16)
        packed = kb.load((k, n // 2), I8)
        w = kb.reshape(packed, (k, n // 2, 1))
        w = kb.broadcast(w, (k, n // 2, 2))
        w = kb.reshape(w, (k, n))
        w = kb.elementwise(w, name="copy")
        c = kb.dot(a, w)
        acc = c if acc is None else kb.elementwise(acc, c, name="add")
    kb.store(acc)
    return kb


# ----------------------------------------------------------------------
# Attention family
# ----------------------------------------------------------------------
def build_template_attention(
    seq=64, head=64, kv_iters=4
) -> KernelBuilder:
    """Q @ K^T -> online softmax -> @ V.

    Q is loaded once outside the loop (the hoisted-ldmatrix case of
    Section 6.2); K and V stream per iteration.
    """
    kb = KernelBuilder("template_attention")
    q = kb.load((seq, head), F16)
    acc = None
    for _ in range(kv_iters):
        k = kb.load((seq, head), F16)
        kt = kb.trans(k)
        s = kb.dot(q, kt)
        mx = kb.reduce(s, axis=1, op="max")
        mx2 = kb.expand_dims(mx, 1)
        mx2 = kb.broadcast(mx2, (seq, seq))
        p = kb.elementwise(s, mx2, name="sub")
        p = kb.elementwise(p, name="exp")
        v = kb.load((seq, head), F16)
        p16 = kb.elementwise(p, name="copy")
        o = kb.dot(p16, v)
        acc = o if acc is None else kb.elementwise(acc, o, name="add")
    kb.store(acc)
    return kb


def build_flex_attention(seq=64, head=64, kv_iters=4) -> KernelBuilder:
    """Same structure as template_attention with a masked score path."""
    kb = build_template_attention(seq, head, kv_iters)
    kb.name = "flex_attention"
    return kb


# ----------------------------------------------------------------------
# Normalization / reduction family
# ----------------------------------------------------------------------
def build_softmax(rows=128, cols=128) -> KernelBuilder:
    """Row softmax: max-shift, exp, normalize."""
    kb = KernelBuilder("softmax")
    x = kb.load((rows, cols), F32)
    mx = kb.reduce(x, axis=1, op="max")
    mx2 = kb.broadcast(kb.expand_dims(mx, 1), (rows, cols))
    e = kb.elementwise(kb.elementwise(x, mx2, name="sub"), name="exp")
    s = kb.reduce(e, axis=1, op="sum")
    s2 = kb.broadcast(kb.expand_dims(s, 1), (rows, cols))
    kb.store(kb.elementwise(e, s2, name="div"))
    return kb


def build_welford(rows=128, cols=64) -> KernelBuilder:
    """Welford mean/variance.

    The second-stage combine works on a ``[rows, 1]`` tile whose
    reduction produces a sliced layout *equal as a map* to the blocked
    layout the store wants — the equivalence only the linear engine
    can detect (Section 6.2).
    """
    kb = KernelBuilder("welford")
    x = kb.load((rows, cols), F32)
    mean = kb.reduce(x, axis=1, op="sum")
    sq = kb.elementwise(x, x, name="mul")
    m2 = kb.reduce(sq, axis=1, op="sum")
    var = kb.elementwise(m2, kb.elementwise(mean, mean, name="mul"),
                         name="sub")
    # Second stage: combine partial stats held as [rows, 1] tiles.
    part = kb.load((rows, 1), F32)
    combined = kb.reduce(part, axis=1, op="sum")
    out = kb.elementwise(var, combined, name="add")
    kb.store(out)
    kb.store(mean)
    return kb


def build_layer_norm(rows=128, cols=64) -> KernelBuilder:
    """Row layer norm: mean/variance then normalize."""
    kb = KernelBuilder("layer_norm")
    x = kb.load((rows, cols), F32)
    mean = kb.reduce(x, axis=1, op="sum")
    mean2 = kb.broadcast(kb.expand_dims(mean, 1), (rows, cols))
    cent = kb.elementwise(x, mean2, name="sub")
    var = kb.reduce(kb.elementwise(cent, cent, name="mul"), axis=1)
    var2 = kb.broadcast(kb.expand_dims(var, 1), (rows, cols))
    kb.store(kb.elementwise(cent, var2, name="div"))
    return kb


def build_rms_norm(rows=128, cols=64) -> KernelBuilder:
    """Row RMS norm."""
    kb = KernelBuilder("rms_norm")
    x = kb.load((rows, cols), F32)
    sq = kb.elementwise(x, x, name="mul")
    ms = kb.reduce(sq, axis=1, op="sum")
    ms2 = kb.broadcast(kb.expand_dims(ms, 1), (rows, cols))
    kb.store(kb.elementwise(x, ms2, name="div"))
    return kb


def build_sum(rows=128, cols=128) -> KernelBuilder:
    """A plain row reduction."""
    kb = KernelBuilder("sum")
    x = kb.load((rows, cols), F32)
    kb.store(kb.reduce(x, axis=1, op="sum"))
    return kb


def build_cross_entropy(rows=128, cols=128) -> KernelBuilder:
    """Row cross-entropy: log-sum-exp minus the target logit."""
    kb = KernelBuilder("cross_entropy")
    logits = kb.load((rows, cols), F32)
    mx = kb.reduce(logits, axis=1, op="max")
    mx2 = kb.broadcast(kb.expand_dims(mx, 1), (rows, cols))
    shifted = kb.elementwise(logits, mx2, name="sub")
    e = kb.elementwise(shifted, name="exp")
    z = kb.reduce(e, axis=1, op="sum")
    target = kb.load((rows, cols), F32)
    picked = kb.reduce(
        kb.elementwise(shifted, target, name="mul"), axis=1, op="sum"
    )
    kb.store(kb.elementwise(z, picked, name="sub"))
    return kb


# ----------------------------------------------------------------------
# Gather / pointwise family
# ----------------------------------------------------------------------
def build_gather_gemv(rows=64, cols=32) -> KernelBuilder:
    """Row gather feeding a mat-vec: the warp-shuffle gather shows up
    here (Section 5.5)."""
    kb = KernelBuilder("gather_gemv")
    x = kb.load((rows, cols), F16)
    idx = kb.load((rows, cols), I64)
    g = kb.gather(x, idx, axis=1)
    v = kb.broadcast(kb.expand_dims(kb.reduce(g, axis=1), 1),
                     (rows, cols))
    kb.store(kb.elementwise(g, v, name="mul"))
    return kb


def build_embedding(rows=128, cols=64) -> KernelBuilder:
    """Row gather from an embedding table (crosses warps)."""
    kb = KernelBuilder("embedding")
    table = kb.load((rows, cols), F16)
    idx = kb.load((rows, cols), I64)
    kb.store(kb.gather(table, idx, axis=0))
    return kb


def build_rope(seq=128, dim=64) -> KernelBuilder:
    """Rotary embeddings: split/join interleaving plus trig math."""
    kb = KernelBuilder("rope")
    x = kb.load((seq, dim), F16)
    cos = kb.load((seq, dim // 2), F16)
    sin = kb.load((seq, dim // 2), F16)
    pairs = kb.reshape(x, (seq, dim // 2, 2))
    x0 = kb.reshape(
        kb.elementwise(pairs, name="copy"), (seq, dim // 2, 2)
    )
    even, odd = kb.split(x0)
    r_even = kb.elementwise(
        kb.elementwise(even, cos, name="mul"),
        kb.elementwise(odd, sin, name="mul"),
        name="sub",
    )
    r_odd = kb.elementwise(
        kb.elementwise(even, sin, name="mul"),
        kb.elementwise(odd, cos, name="mul"),
        name="add",
    )
    joined = kb.join(r_even, r_odd)
    kb.store(kb.reshape(joined, (seq, dim)))
    return kb


def build_vector_add(n=4096) -> KernelBuilder:
    """The trivial memory-bound baseline."""
    kb = KernelBuilder("vector_add")
    a = kb.load((n,), F32)
    b = kb.load((n,), F32)
    kb.store(kb.elementwise(a, b, name="add"))
    return kb


def build_dropout(n=4096) -> KernelBuilder:
    """Elementwise mask multiply."""
    kb = KernelBuilder("dropout")
    x = kb.load((n,), F32)
    mask = kb.load((n,), F32)
    kb.store(kb.elementwise(x, mask, name="mul"))
    return kb


def build_geglu(rows=64, cols=64, k_iters=2) -> KernelBuilder:
    """GEMM followed by a gated activation."""
    kb = KernelBuilder("geglu")
    acc = None
    for _ in range(k_iters):
        x = kb.load((rows, cols), F16)
        w = kb.load((cols, cols), F16)
        h = kb.dot(x, w)
        acc = h if acc is None else kb.elementwise(acc, h, name="add")
    gate = kb.elementwise(acc, name="relu")
    kb.store(kb.elementwise(acc, gate, name="mul"))
    return kb


def build_bmm(m=64, n=64, k=64) -> KernelBuilder:
    """One batch element of a batched matmul."""
    kb = build_gemm(m=m, n=n, k=k, k_iters=2)
    kb.name = "bmm"
    return kb


def build_mxfp4_gemm(m=64, n=64, k=64, k_iters=2) -> KernelBuilder:
    """Software-emulated mxfp4 x bf16 matmul (Section 5.2).

    The 4-bit weights load packed two-per-byte; the shared scales load
    as a small tensor and broadcast to the weight shape with shape
    operations — the layout engine routes the conversion onto the
    scale tensor, and generic shared loads handle the rest.
    """
    from repro.mxfp.types import BF16, I8

    kb = KernelBuilder("mxfp4_gemm")
    acc = None
    for _ in range(k_iters):
        a = kb.load((m, k), BF16)
        packed = kb.load((k, n // 2), I8)
        codes = kb.reshape(packed, (k, n // 2, 1))
        codes = kb.broadcast(codes, (k, n // 2, 2))
        w = kb.reshape(codes, (k, n))
        scales = kb.load((k // 32, n), BF16)
        scales = kb.expand_dims(scales, 1)
        scales = kb.broadcast(scales, (k // 32, 32, n))
        scales = kb.reshape(scales, (k, n))
        w = kb.elementwise(w, scales, name="mul")
        c = kb.dot(a, w)
        acc = c if acc is None else kb.elementwise(acc, c, name="add")
    kb.store(acc)
    return kb


def build_fused_linear_ce(rows=64, cols=64) -> KernelBuilder:
    """A linear layer fused with the cross-entropy reduction."""
    kb = KernelBuilder("fused_linear_cross_entropy")
    x = kb.load((rows, cols), F16)
    w = kb.load((cols, cols), F16)
    logits = kb.dot(x, w)
    mx = kb.reduce(logits, axis=1, op="max")
    mx2 = kb.broadcast(kb.expand_dims(mx, 1), (rows, cols))
    e = kb.elementwise(kb.elementwise(logits, mx2, name="sub"),
                       name="exp")
    kb.store(kb.reduce(e, axis=1, op="sum"))
    return kb


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _gemm_cases(sizes=((32, 4), (64, 4), (64, 8), (128, 8))):
    return [
        _case(f"t{t}_i{i}", m=t, n=t, k=t, k_iters=i) for t, i in sizes
    ]


KERNELS: Dict[str, KernelModel] = {}


def _register(model: KernelModel) -> None:
    KERNELS[model.name] = model


_register(
    KernelModel(
        "gemm",
        build_gemm,
        _gemm_cases()
        + [
            _case("m128n64_i8", m=128, n=64, k=64, k_iters=8),
            _case("m64n128_i8", m=64, n=128, k=64, k_iters=8),
            _case("t64_i16", m=64, n=64, k=64, k_iters=16),
        ],
    )
)
_register(
    KernelModel(
        "bf16xint16_gemm",
        lambda **kw: build_mixed_gemm(BF16, I16, **kw),
        _gemm_cases(((32, 4), (64, 4), (64, 8)))
        + [_case("m128n64_i8", m=128, n=64, k=64, k_iters=8)],
    )
)
_register(
    KernelModel(
        "fp8_gemm",
        lambda **kw: build_mixed_gemm(F8E5M2, F8E5M2, **kw),
        _gemm_cases(((32, 4), (64, 4), (64, 8)))
        + [_case("t128_i8", m=128, n=128, k=64, k_iters=8)],
        platforms=("RTX4090", "GH200"),
    )
)
_register(
    KernelModel(
        "int4_gemm",
        build_int4_gemm,
        [
            _case("t64_i4", m=64, n=64, k=64, k_iters=4),
            _case("t64_i8", m=64, n=64, k=64, k_iters=8),
            _case("t128_i4", m=128, n=128, k=64, k_iters=4),
            _case("t128_i8", m=128, n=128, k=64, k_iters=8),
        ],
        platforms=("RTX4090", "GH200"),
    )
)
_register(
    KernelModel(
        "template_attention",
        build_template_attention,
        [
            _case("s64_i2", seq=64, head=64, kv_iters=2),
            _case("s64_i4", seq=64, head=64, kv_iters=4),
            _case("s128_i4", seq=128, head=64, kv_iters=4),
            _case("s128_i8", seq=128, head=64, kv_iters=8),
        ],
    )
)
_register(
    KernelModel(
        "flex_attention",
        build_flex_attention,
        [
            _case("s64_i4", seq=64, head=64, kv_iters=4),
            _case("s128_i4", seq=128, head=64, kv_iters=4),
            _case("s128_i8", seq=128, head=64, kv_iters=8),
            _case("s64_i8", seq=64, head=64, kv_iters=8),
        ],
        platforms=("GH200",),
        needs_large_smem=True,
    )
)
_register(
    KernelModel(
        "grouped_gemm",
        build_grouped_gemm,
        [
            _case("g2", m=64, n=64, k=64, groups=2),
            _case("g4", m=64, n=64, k=64, groups=4),
            _case("g8", m=64, n=64, k=64, groups=8),
            _case("g4_t128", m=128, n=64, k=64, groups=4),
        ],
        platforms=("RTX4090", "GH200"),
        needs_tma=True,
    )
)
_register(
    KernelModel(
        "addmm",
        build_addmm,
        [
            _case("t64_i4", m=64, n=64, k=64, k_iters=4),
            _case("t128_i4", m=128, n=128, k=64, k_iters=4),
            _case("t64_i8", m=64, n=64, k=64, k_iters=8),
        ],
    )
)
_register(KernelModel("bmm", build_bmm, [
    _case("t32", m=32, n=32, k=32),
    _case("t64", m=64, n=64, k=64),
    _case("t128", m=128, n=64, k=64),
    _case("t128n128", m=128, n=128, k=64),
]))
_register(
    KernelModel(
        "geglu",
        build_geglu,
        [
            _case("r64", rows=64, cols=64, k_iters=2),
            _case("r128", rows=128, cols=64, k_iters=2),
            _case("r128_i4", rows=128, cols=64, k_iters=4),
        ],
    )
)
_register(
    KernelModel(
        "fused_linear_cross_entropy",
        build_fused_linear_ce,
        [
            _case("r64", rows=64, cols=64),
            _case("r128", rows=128, cols=128),
            _case("r128c64", rows=128, cols=64),
        ],
        platforms=("GH200",),
        needs_large_smem=True,
    )
)
_register(KernelModel("softmax", build_softmax, [
    _case("r128c128", rows=128, cols=128),
    _case("r128c256", rows=128, cols=256),
    _case("r256c128", rows=256, cols=128),
    _case("r64c512", rows=64, cols=512),
    _case("r256c256", rows=256, cols=256),
    _case("r64c64", rows=64, cols=64),
]))
_register(KernelModel("welford", build_welford, [
    _case("r128c64", rows=128, cols=64),
    _case("r128c128", rows=128, cols=128),
    _case("r256c64", rows=256, cols=64),
    _case("r64c256", rows=64, cols=256),
]))
_register(KernelModel("layer_norm", build_layer_norm, [
    _case("r128c64", rows=128, cols=64),
    _case("r128c256", rows=128, cols=256),
    _case("r256c128", rows=256, cols=128),
    _case("r64c64", rows=64, cols=64),
]))
_register(KernelModel("rms_norm", build_rms_norm, [
    _case("r128c64", rows=128, cols=64),
    _case("r256c128", rows=256, cols=128),
    _case("r128c128", rows=128, cols=128),
]))
_register(KernelModel("sum", build_sum, [
    _case("r128c128", rows=128, cols=128),
    _case("r128c512", rows=128, cols=512),
    _case("r512c128", rows=512, cols=128),
    _case("r256c256", rows=256, cols=256),
]))
_register(KernelModel("cross_entropy", build_cross_entropy, [
    _case("r128c128", rows=128, cols=128),
    _case("r128c256", rows=128, cols=256),
    _case("r64c128", rows=64, cols=128),
]))
_register(KernelModel("gather_gemv", build_gather_gemv, [
    _case("r64c32", rows=64, cols=32),
    _case("r128c32", rows=128, cols=32),
    _case("r128c64", rows=128, cols=64),
    _case("r64c16", rows=64, cols=16),
]))
_register(KernelModel("embedding", build_embedding, [
    _case("r128c64", rows=128, cols=64),
    _case("r256c64", rows=256, cols=64),
    _case("r128c128", rows=128, cols=128),
]))
_register(KernelModel("rope", build_rope, [
    _case("s128d64", seq=128, dim=64),
    _case("s256d64", seq=256, dim=64),
    _case("s128d128", seq=128, dim=128),
    _case("s256d128", seq=256, dim=128),
]))
_register(
    KernelModel(
        "mxfp4_gemm",
        build_mxfp4_gemm,
        [
            _case("t64_i2", m=64, n=64, k=64, k_iters=2),
            _case("t64_i4", m=64, n=64, k=64, k_iters=4),
            _case("t128_i4", m=128, n=128, k=64, k_iters=4),
        ],
        platforms=("GH200",),
        needs_large_smem=True,
    )
)
_register(KernelModel("vector_add", build_vector_add, [
    _case("n4096", n=4096),
    _case("n16384", n=16384),
    _case("n65536", n=65536),
]))
_register(KernelModel("dropout", build_dropout, [
    _case("n4096", n=4096),
    _case("n16384", n=16384),
]))


def kernel_names() -> List[str]:
    """The registered benchmark names, sorted."""
    return sorted(KERNELS)
