"""NumPy reference execution of kernel graphs.

The interpreter is the correctness oracle: it executes an IR graph on
concrete arrays with the mixed-precision codecs applied at the same
points the GPU emulation would apply them, so an engine transformation
that altered semantics (or a conversion plan that misrouted data)
shows up as a numeric mismatch in tests.
"""

from repro.interp.executor import ExecutionResult, execute_graph

__all__ = ["ExecutionResult", "execute_graph"]
