"""Graph execution over NumPy arrays.

Layout-conversion nodes do not just pass through: when both sides
carry layouts covering the tensor, the conversion executes on the
simulated machine — the same warp-program interpreter that prices and
traces it — so graph semantics and cycle traces come from one source.
Every element is verified to arrive at its destination slot; the
per-conversion traces are collected on the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.dims import WARP
from repro.core.errors import LayoutError
from repro.engine.ir import Graph, OpKind, Value
from repro.mxfp.emulate import emulated_matmul
from repro.mxfp.quantize import quantize_to


_ELEMENTWISE = {
    "add": lambda *xs: sum(xs[1:], xs[0]),
    "sub": lambda a, b: a - b,
    "mul": lambda *xs: np.prod(np.stack(xs), axis=0),
    "div": lambda a, b: a / b,
    "exp": lambda a: np.exp(a),
    "neg": lambda a: -a,
    "max": lambda a, b: np.maximum(a, b),
    "copy": lambda a: a,
    "relu": lambda a: np.maximum(a, 0.0),
}

_REDUCE = {
    "sum": np.sum,
    "max": np.max,
    "min": np.min,
}


@dataclass
class ExecutionResult:
    """Values produced by a graph run."""

    stores: List[np.ndarray] = field(default_factory=list)
    values: Dict[int, np.ndarray] = field(default_factory=dict)
    #: One machine trace per layout conversion executed through the
    #: warp-program interpreter, in graph order.
    conversion_traces: List[object] = field(default_factory=list)


def _layout_shape(layout) -> tuple:
    return tuple(
        layout.out_dim_size(d) for d in layout.out_dims
    )


def _simulate_conversion(op, arr: np.ndarray, result, machines: Dict):
    """Run one CONVERT_LAYOUT node on the simulated machine.

    Distributes the tensor over the source layout's register file,
    executes the lowered warp program, and checks every element landed
    at its destination slot.  Returns False (caller passes the value
    through) when the layouts do not cover the tensor or the pair has
    no plan — partial-tile graph nodes keep their NumPy semantics.
    """
    from repro.codegen.conversion import plan_conversion
    from repro.gpusim.machine import Machine
    from repro.gpusim.registers import (
        assert_matches_layout,
        distributed_data,
    )

    src_l = op.inputs[0].layout
    dst_l = op.output.layout
    if src_l is None or dst_l is None:
        return False
    if (
        _layout_shape(src_l) != tuple(arr.shape)
        or _layout_shape(dst_l) != tuple(arr.shape)
    ):
        return False
    try:
        plan = plan_conversion(
            src_l, dst_l, elem_bits=op.inputs[0].dtype.bits
        )
    except LayoutError:
        return False
    num_warps = max(
        src_l.in_dim_size(WARP), dst_l.in_dim_size(WARP)
    )
    machine = machines.get(num_warps)
    if machine is None:
        machine = Machine(num_warps=num_warps)
        machines[num_warps] = machine
    flat = arr.ravel()
    registers = distributed_data(
        src_l,
        num_warps,
        machine.spec.warp_size,
        value_of=lambda p: flat[p],
    )
    converted, trace = machine.run_conversion(plan, registers)
    assert_matches_layout(converted, dst_l, value_of=lambda p: flat[p])
    result.conversion_traces.append(trace)
    return True


def execute_graph(
    graph: Graph,
    inputs: Sequence[np.ndarray],
    quantize_inputs: bool = True,
    simulate_conversions: bool = True,
) -> ExecutionResult:
    """Run a graph; ``inputs`` feed the LOAD ops in program order.

    With ``quantize_inputs`` each input is rounded through its
    declared dtype first, as loading from a low-precision buffer
    would.  With ``simulate_conversions`` (the default), layout
    conversions whose layouts cover the tensor execute on the
    simulated machine and their traces land in
    :attr:`ExecutionResult.conversion_traces`.
    """
    result = ExecutionResult()
    env: Dict[int, np.ndarray] = {}
    machines: Dict[int, object] = {}
    load_idx = 0

    def get(value: Value) -> np.ndarray:
        """Look up a computed SSA value."""
        return env[value.vid]

    for op in graph.ops:
        kind = op.kind
        if kind == OpKind.LOAD:
            arr = np.asarray(inputs[load_idx], dtype=np.float64)
            load_idx += 1
            if tuple(arr.shape) != tuple(op.output.shape):
                raise ValueError(
                    f"input {load_idx - 1} has shape {arr.shape}, "
                    f"expected {op.output.shape}"
                )
            if quantize_inputs:
                arr = quantize_to(arr, op.output.dtype)
            env[op.output.vid] = arr
        elif kind == OpKind.STORE:
            result.stores.append(get(op.inputs[0]))
        elif kind == OpKind.CONVERT_LAYOUT:
            arr = get(op.inputs[0])
            if simulate_conversions:
                # Values are preserved by construction; the simulated
                # run verifies the routing and records the trace.
                _simulate_conversion(op, arr, result, machines)
            env[op.output.vid] = arr
        elif kind == OpKind.LOCAL_STORE or kind == OpKind.LOCAL_LOAD:
            env[op.output.vid] = get(op.inputs[0])
        elif kind == OpKind.ELEMENTWISE:
            fn = _ELEMENTWISE[op.attrs.get("name", "add")]
            env[op.output.vid] = fn(*[get(v) for v in op.inputs])
        elif kind == OpKind.DOT:
            a, b = op.inputs
            out, _ = emulated_matmul(
                get(a), get(b), a.dtype, b.dtype
            )
            env[op.output.vid] = out
        elif kind == OpKind.REDUCE:
            fn = _REDUCE[op.attrs.get("op", "sum")]
            env[op.output.vid] = fn(
                get(op.inputs[0]), axis=op.attrs["axis"]
            )
        elif kind == OpKind.SCAN:
            axis = op.attrs["axis"]
            data = get(op.inputs[0])
            if op.attrs.get("reverse", False):
                data = np.flip(data, axis=axis)
            scan_op = op.attrs.get("op", "sum")
            if scan_op == "sum":
                scanned = np.cumsum(data, axis=axis)
            elif scan_op == "max":
                scanned = np.maximum.accumulate(data, axis=axis)
            elif scan_op == "mul":
                scanned = np.cumprod(data, axis=axis)
            else:
                raise ValueError(f"unknown scan op {scan_op!r}")
            if op.attrs.get("reverse", False):
                scanned = np.flip(scanned, axis=axis)
            env[op.output.vid] = scanned
        elif kind == OpKind.GATHER:
            src, index = (get(v) for v in op.inputs)
            env[op.output.vid] = np.take_along_axis(
                src, index.astype(np.int64), axis=op.attrs["axis"]
            )
        elif kind == OpKind.TRANS:
            env[op.output.vid] = np.transpose(
                get(op.inputs[0]), op.attrs["perm"]
            )
        elif kind == OpKind.RESHAPE:
            env[op.output.vid] = get(op.inputs[0]).reshape(
                op.attrs["shape"]
            )
        elif kind == OpKind.EXPAND_DIMS:
            env[op.output.vid] = np.expand_dims(
                get(op.inputs[0]), op.attrs["axis"]
            )
        elif kind == OpKind.BROADCAST:
            env[op.output.vid] = np.broadcast_to(
                get(op.inputs[0]), op.attrs["shape"]
            ).copy()
        elif kind == OpKind.JOIN:
            env[op.output.vid] = np.stack(
                [get(v) for v in op.inputs], axis=-1
            )
        elif kind == OpKind.SPLIT:
            env[op.output.vid] = get(op.inputs[0])[
                ..., op.attrs["index"]
            ]
        else:  # pragma: no cover
            raise ValueError(f"cannot interpret {kind}")
        if op.output is not None:
            result.values[op.output.vid] = env[op.output.vid]
    return result
