"""Graph execution over NumPy arrays."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.engine.ir import Graph, OpKind, Value
from repro.mxfp.emulate import emulated_matmul
from repro.mxfp.quantize import quantize_to


_ELEMENTWISE = {
    "add": lambda *xs: sum(xs[1:], xs[0]),
    "sub": lambda a, b: a - b,
    "mul": lambda *xs: np.prod(np.stack(xs), axis=0),
    "div": lambda a, b: a / b,
    "exp": lambda a: np.exp(a),
    "neg": lambda a: -a,
    "max": lambda a, b: np.maximum(a, b),
    "copy": lambda a: a,
    "relu": lambda a: np.maximum(a, 0.0),
}

_REDUCE = {
    "sum": np.sum,
    "max": np.max,
    "min": np.min,
}


@dataclass
class ExecutionResult:
    """Values produced by a graph run."""

    stores: List[np.ndarray] = field(default_factory=list)
    values: Dict[int, np.ndarray] = field(default_factory=dict)


def execute_graph(
    graph: Graph,
    inputs: Sequence[np.ndarray],
    quantize_inputs: bool = True,
) -> ExecutionResult:
    """Run a graph; ``inputs`` feed the LOAD ops in program order.

    With ``quantize_inputs`` each input is rounded through its
    declared dtype first, as loading from a low-precision buffer
    would.
    """
    result = ExecutionResult()
    env: Dict[int, np.ndarray] = {}
    load_idx = 0

    def get(value: Value) -> np.ndarray:
        """Look up a computed SSA value."""
        return env[value.vid]

    for op in graph.ops:
        kind = op.kind
        if kind == OpKind.LOAD:
            arr = np.asarray(inputs[load_idx], dtype=np.float64)
            load_idx += 1
            if tuple(arr.shape) != tuple(op.output.shape):
                raise ValueError(
                    f"input {load_idx - 1} has shape {arr.shape}, "
                    f"expected {op.output.shape}"
                )
            if quantize_inputs:
                arr = quantize_to(arr, op.output.dtype)
            env[op.output.vid] = arr
        elif kind == OpKind.STORE:
            result.stores.append(get(op.inputs[0]))
        elif kind == OpKind.CONVERT_LAYOUT:
            env[op.output.vid] = get(op.inputs[0])
        elif kind == OpKind.LOCAL_STORE or kind == OpKind.LOCAL_LOAD:
            env[op.output.vid] = get(op.inputs[0])
        elif kind == OpKind.ELEMENTWISE:
            fn = _ELEMENTWISE[op.attrs.get("name", "add")]
            env[op.output.vid] = fn(*[get(v) for v in op.inputs])
        elif kind == OpKind.DOT:
            a, b = op.inputs
            out, _ = emulated_matmul(
                get(a), get(b), a.dtype, b.dtype
            )
            env[op.output.vid] = out
        elif kind == OpKind.REDUCE:
            fn = _REDUCE[op.attrs.get("op", "sum")]
            env[op.output.vid] = fn(
                get(op.inputs[0]), axis=op.attrs["axis"]
            )
        elif kind == OpKind.SCAN:
            axis = op.attrs["axis"]
            data = get(op.inputs[0])
            if op.attrs.get("reverse", False):
                data = np.flip(data, axis=axis)
            scan_op = op.attrs.get("op", "sum")
            if scan_op == "sum":
                scanned = np.cumsum(data, axis=axis)
            elif scan_op == "max":
                scanned = np.maximum.accumulate(data, axis=axis)
            elif scan_op == "mul":
                scanned = np.cumprod(data, axis=axis)
            else:
                raise ValueError(f"unknown scan op {scan_op!r}")
            if op.attrs.get("reverse", False):
                scanned = np.flip(scanned, axis=axis)
            env[op.output.vid] = scanned
        elif kind == OpKind.GATHER:
            src, index = (get(v) for v in op.inputs)
            env[op.output.vid] = np.take_along_axis(
                src, index.astype(np.int64), axis=op.attrs["axis"]
            )
        elif kind == OpKind.TRANS:
            env[op.output.vid] = np.transpose(
                get(op.inputs[0]), op.attrs["perm"]
            )
        elif kind == OpKind.RESHAPE:
            env[op.output.vid] = get(op.inputs[0]).reshape(
                op.attrs["shape"]
            )
        elif kind == OpKind.EXPAND_DIMS:
            env[op.output.vid] = np.expand_dims(
                get(op.inputs[0]), op.attrs["axis"]
            )
        elif kind == OpKind.BROADCAST:
            env[op.output.vid] = np.broadcast_to(
                get(op.inputs[0]), op.attrs["shape"]
            ).copy()
        elif kind == OpKind.JOIN:
            env[op.output.vid] = np.stack(
                [get(v) for v in op.inputs], axis=-1
            )
        elif kind == OpKind.SPLIT:
            env[op.output.vid] = get(op.inputs[0])[
                ..., op.attrs["index"]
            ]
        else:  # pragma: no cover
            raise ValueError(f"cannot interpret {kind}")
        if op.output is not None:
            result.values[op.output.vid] = env[op.output.vid]
    return result
