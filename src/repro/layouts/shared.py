"""Shared-memory layouts: unswizzled, mma-swizzled, and padded.

The swizzled family implements Definition 4.11; Proposition 4.12 shows
these maps are linear and invertible, so the *memory layout* — the map
from offsets to logical coordinates the paper uses (Section 4.3) — is
the inverse of the store map built here.

The padded layout is *not* linear (its stride is not a power of two).
It exists to reproduce the legacy Triton baseline: padding avoids bank
conflicts at the price of a larger footprint and no vectorization
guarantee, which is exactly the heuristic Figure 2 beats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.dims import OFFSET
from repro.core.errors import DimensionError
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int


def mma_swizzle_offset(
    i: int,
    j: int,
    vec: int,
    per_phase: int,
    max_phase: int,
    row_elems: int,
) -> int:
    """Scalar reference of Definition 4.11 (full element offset).

    The column part follows the paper's formula; the row index ``i``
    occupies the high bits (row-major storage), which is the implicit
    ``I_m`` block of the inverse-matrix characterization.
    """
    phase = (i // per_phase) % max_phase
    col = ((phase ^ (j // vec)) * vec) ^ (j % vec)
    return i * row_elems + col


@dataclass(frozen=True)
class SwizzledSharedLayout:
    """Parameters of an mma-swizzled shared-memory layout.

    ``vec``, ``per_phase``, ``max_phase`` follow Definition 4.11.
    ``order[0]`` is the contiguous dimension ((1, 0) means row-major).
    With ``vec = per_phase = max_phase = 1`` this is the unswizzled
    layout.
    """

    vec: int = 1
    per_phase: int = 1
    max_phase: int = 1
    order: Tuple[int, int] = (1, 0)

    def __post_init__(self):
        for v in (self.vec, self.per_phase, self.max_phase):
            log2_int(v)
        if sorted(self.order) != [0, 1]:
            raise DimensionError(f"order must permute (0, 1): {self.order}")

    def is_swizzled(self) -> bool:
        """True iff the layout actually permutes columns (max_phase > 1)."""
        return self.max_phase > 1

    def offset_of(self, coords: Sequence[int], shape: Sequence[int]) -> int:
        """Element offset of logical ``coords`` in a ``shape`` tile."""
        if len(coords) != 2 or len(shape) != 2:
            raise DimensionError("swizzled shared layouts are 2D")
        fast, slow = self.order[0], self.order[1]
        i, j = coords[slow], coords[fast]
        return mma_swizzle_offset(
            i, j, self.vec, self.per_phase, self.max_phase, shape[fast]
        )

    def store_map(self, shape: Sequence[int]) -> LinearLayout:
        """The linear map (dim0, dim1) -> offset.

        Built by evaluating the (linear) scalar formula on the unit
        coordinates — the constructive step of Proposition 4.12.
        """
        if len(shape) != 2:
            raise DimensionError("swizzled shared layouts are 2D")
        for s in shape:
            log2_int(s)
        total = shape[0] * shape[1]
        bases = {}
        for dim in (0, 1):
            images = []
            for bit in range(log2_int(shape[dim])):
                coords = [0, 0]
                coords[dim] = 1 << bit
                images.append((self.offset_of(coords, shape),))
            bases[f"dim{dim}"] = images
        layout = LinearLayout(bases, {OFFSET: total}, require_surjective=False)
        if not layout.is_invertible():
            raise DimensionError(
                f"swizzle parameters {self} are not invertible on {shape}"
            )
        return layout

    def to_linear(self, shape: Sequence[int]) -> LinearLayout:
        """The memory layout: offset -> logical coords (Definition 4.14)."""
        return self.store_map(shape).invert()

    def footprint_elements(self, shape: Sequence[int]) -> int:
        """Shared elements the staged tile occupies (no padding)."""
        return shape[0] * shape[1]

    def __str__(self) -> str:
        return (
            f"swizzled_shared(vec={self.vec}, perPhase={self.per_phase}, "
            f"maxPhase={self.max_phase}, order={list(self.order)})"
        )


def shared_layout_for_mma(
    elem_bits: int,
    shape: Sequence[int],
    order: Tuple[int, int] = (1, 0),
) -> SwizzledSharedLayout:
    """Triton's heuristic swizzle parameters for MMA operand staging.

    ``vec`` covers a 128-bit vector, ``per_phase`` packs short rows
    into one 128-byte bank sweep, and ``max_phase`` spreads rows over
    the remaining bank groups.
    """
    inner = shape[order[0]]
    elem_bytes = max(1, elem_bits // 8)
    vec = max(1, min(inner, 128 // elem_bits))
    row_bytes = inner * elem_bytes
    per_phase = max(1, 128 // row_bytes)
    vec_bytes = vec * elem_bytes
    max_phase = max(1, min(shape[order[1]] // per_phase,
                           128 // (per_phase * vec_bytes)))
    return SwizzledSharedLayout(
        vec=vec, per_phase=per_phase, max_phase=max_phase, order=order
    )


@dataclass(frozen=True)
class PaddedSharedLayout:
    """The legacy padding heuristic: pad each row by ``pad_elems``.

    Not a linear layout (the row stride ``N + pad`` is not a power of
    two); kept as the baseline that legacy Triton uses for layout
    conversions through shared memory.
    """

    pad_elems: int
    order: Tuple[int, int] = (1, 0)

    def __post_init__(self):
        if self.pad_elems < 0:
            raise DimensionError("pad_elems must be non-negative")
        if sorted(self.order) != [0, 1]:
            raise DimensionError(f"order must permute (0, 1): {self.order}")

    def offset_of(self, coords: Sequence[int], shape: Sequence[int]) -> int:
        """Element offset with one row of padding per ``shape`` row."""
        fast, slow = self.order[0], self.order[1]
        stride = shape[fast] + self.pad_elems
        return coords[slow] * stride + coords[fast]

    def footprint_elements(self, shape: Sequence[int]) -> int:
        """Shared elements including the per-row padding."""
        fast, slow = self.order[0], self.order[1]
        return shape[slow] * (shape[fast] + self.pad_elems)

    def __str__(self) -> str:
        return (
            f"padded_shared(pad={self.pad_elems}, order={list(self.order)})"
        )


def default_padding(elem_bits: int) -> int:
    """Legacy padding amount: one bank (4 bytes) worth of elements."""
    return max(1, 32 // elem_bits)
