"""Sliced layouts (Proposition 4.8).

A sliced layout is the result of removing one logical dimension from a
parent distributed layout — the layout of a reduction's output or a
broadcast's input.  Removing a dimension is a linear map, so the slice
of a linear layout is linear; it stays surjective but typically stops
being injective (the hardware bits that indexed the removed dimension
become zero columns, i.e. duplicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import DimensionError
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int


def slice_linear_layout(parent: LinearLayout, dim: int) -> LinearLayout:
    """Remove output dim ``dim`` from a layout and renumber the rest.

    This is the matrix-row removal of Proposition 4.8's remark: the
    result may have zero columns but remains surjective.
    """
    names = list(parent.out_dims)
    if not 0 <= dim < len(names):
        raise DimensionError(f"dim {dim} out of range for rank {len(names)}")
    removed = names[dim]
    kept = [n for n in names if n != removed]
    restricted = parent.sublayout(parent.in_dims, kept)
    result = restricted
    for i, old in enumerate(kept):
        result = result.rename_out_dim(old, f"__tmp{i}")
    for i in range(len(kept)):
        result = result.rename_out_dim(f"__tmp{i}", f"dim{i}")
    return LinearLayout(
        result.bases, result.out_dim_sizes(), require_surjective=True
    )


@dataclass(frozen=True)
class SlicedLayout:
    """Descriptor: the slice of ``parent`` along logical dim ``dim``.

    ``parent_dim_size`` records the extent of the removed dimension in
    the parent tensor (needed to rebuild the parent layout from the
    sliced shape).
    """

    parent: object  # any descriptor with .to_linear(shape)
    dim: int
    parent_dim_size: int

    def __post_init__(self):
        log2_int(self.parent_dim_size)
        if self.dim < 0:
            raise DimensionError(f"dim must be non-negative, got {self.dim}")

    @property
    def rank(self) -> int:
        """Rank of the sliced (output) tensor: parent rank minus one."""
        return self.parent.rank - 1

    def parent_shape(self, shape: Sequence[int]) -> list:
        """The parent tensor shape for a sliced tensor of ``shape``."""
        shape = list(shape)
        return shape[: self.dim] + [self.parent_dim_size] + shape[self.dim:]

    def to_linear(self, shape: Sequence[int]) -> LinearLayout:
        """Build the parent layout and remove the sliced dimension."""
        parent_linear = self.parent.to_linear(self.parent_shape(shape))
        return slice_linear_layout(parent_linear, self.dim)

    def __str__(self) -> str:
        return f"sliced(dim={self.dim}, parent={self.parent})"
