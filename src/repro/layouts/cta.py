"""CGA-level layouts: distributing a tensor over the CTAs of a cluster.

Triton layouts carry a third hierarchy level above warps: the
cooperative thread arrays of a CGA (Hopper thread-block clusters).
``CtaLayout`` captures its parameters — how many CTAs the cluster has
per dimension, how many ways each dimension is actually *split*
(CTAs beyond the split hold duplicates), and the split order — and
lifts any per-CTA linear layout to a full-cluster layout with a
``block`` input dimension.

Conversions that move data *across* CTAs need distributed shared
memory or a global-memory round trip, which the intra-CTA simulator
does not model; :func:`same_block_component` is the planner-level
guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.dims import BLOCK
from repro.core.errors import DimensionError
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int


@dataclass(frozen=True)
class CtaLayout:
    """The CGA-level distribution parameters.

    ``ctas_per_cga[d]`` CTAs exist along dim ``d``; only
    ``cta_split_num[d]`` of them hold distinct slices (the rest
    duplicate — zero columns on the ``block`` dim).  ``cta_order[0]``
    is the fastest-moving dimension of the CTA grid.
    """

    ctas_per_cga: Tuple[int, ...]
    cta_split_num: Tuple[int, ...]
    cta_order: Tuple[int, ...]

    def __post_init__(self):
        rank = len(self.ctas_per_cga)
        if len(self.cta_split_num) != rank or len(self.cta_order) != rank:
            raise DimensionError("CtaLayout fields must share a rank")
        if sorted(self.cta_order) != list(range(rank)):
            raise DimensionError(
                f"cta_order {self.cta_order} is not a permutation"
            )
        for cga, split in zip(self.ctas_per_cga, self.cta_split_num):
            log2_int(cga)
            log2_int(split)
            if split > cga:
                raise DimensionError(
                    f"cta_split_num {split} exceeds ctas_per_cga {cga}"
                )

    @staticmethod
    def single(rank: int) -> "CtaLayout":
        """The default: one CTA, no cluster structure."""
        return CtaLayout(
            tuple([1] * rank),
            tuple([1] * rank),
            tuple(range(rank - 1, -1, -1)),
        )

    @property
    def rank(self) -> int:
        """Tensor rank of the CTA grid."""
        return len(self.ctas_per_cga)

    def num_ctas(self) -> int:
        """Total CTAs in the cluster."""
        n = 1
        for c in self.ctas_per_cga:
            n *= c
        return n

    def is_trivial(self) -> bool:
        """True iff the cluster has a single CTA."""
        return all(c == 1 for c in self.ctas_per_cga)

    def split_shape(self, shape: Sequence[int]) -> List[int]:
        """The per-CTA sub-tensor shape."""
        if len(shape) != self.rank:
            raise DimensionError(
                f"shape rank {len(shape)} != cta rank {self.rank}"
            )
        out = []
        for size, split in zip(shape, self.cta_split_num):
            if size % split != 0:
                raise DimensionError(
                    f"dim of size {size} not divisible by split {split}"
                )
            out.append(size // split)
        return out

    def lift(
        self, per_cta: LinearLayout, shape: Sequence[int]
    ) -> LinearLayout:
        """Lift a per-CTA layout to the full tensor of ``shape``.

        Block bits enumerate the CTA grid along ``cta_order``
        (fastest first); split bits index the high bits of their
        dimension, duplicate bits map to zero (broadcast across CTAs).
        """
        sub_shape = self.split_shape(shape)
        names = list(per_cta.out_dims)
        if len(names) != self.rank:
            raise DimensionError("per-CTA layout rank mismatch")
        for name, sub in zip(names, sub_shape):
            if per_cta.out_dim_size(name) != sub:
                raise DimensionError(
                    f"per-CTA layout covers {per_cta.out_dim_size(name)} "
                    f"of {name}, expected {sub}"
                )
        bases = per_cta.bases
        block_images = []
        for dim in self.cta_order:
            split_bits = log2_int(self.cta_split_num[dim])
            dup_bits = log2_int(self.ctas_per_cga[dim]) - split_bits
            base = sub_shape[dim]
            for b in range(split_bits):
                img = [0] * self.rank
                img[dim] = base << b
                block_images.append(tuple(img))
            block_images.extend(
                [tuple([0] * self.rank)] * dup_bits
            )
        if block_images:
            bases[BLOCK] = block_images
        outs = dict(zip(names, shape))
        return LinearLayout(bases, outs, require_surjective=True)


def strip_block(layout: LinearLayout) -> LinearLayout:
    """The per-CTA quotient of a clustered layout.

    Removes the ``block`` input dim and shrinks each logical dim by
    the bits the block component owned.  Valid when block bits are
    the top bits of their dimensions (the :meth:`CtaLayout.lift`
    structure); conversions between layouts with *equal* block
    components then reduce to this quotient, identical in every CTA.
    """
    if not layout.has_in_dim(BLOCK):
        return layout
    names = list(layout.out_dims)
    owned_bits = {name: 0 for name in names}
    for img in layout.bases[BLOCK]:
        for name, coord in zip(names, img):
            if coord:
                owned_bits[name] += 1
    new_sizes = {}
    for name in names:
        size = layout.out_dim_size(name)
        new_size = size >> owned_bits[name]
        # The block bits must be exactly the top bits of the dim.
        for img in layout.bases[BLOCK]:
            coord = dict(zip(names, img)).get(name, 0)
            if coord and coord < new_size:
                raise DimensionError(
                    "block component does not own the top bits of "
                    f"{name}; cannot take a per-CTA quotient"
                )
        new_sizes[name] = new_size
    bases = {
        d: images
        for d, images in layout.bases.items()
        if d != BLOCK
    }
    for d, images in bases.items():
        for img in images:
            for name, coord in zip(names, img):
                if coord >= new_sizes[name]:
                    raise DimensionError(
                        f"{d} bit reaches into the block-owned bits "
                        f"of {name}"
                    )
    return LinearLayout(bases, new_sizes, require_surjective=False)


def same_block_component(a: LinearLayout, b: LinearLayout) -> bool:
    """True iff a conversion between ``a`` and ``b`` stays within CTAs.

    The block components must agree exactly; otherwise data would have
    to cross CTA boundaries (distributed shared memory / global
    round trip), which intra-CTA codegen cannot express.
    """
    return a.basis_images_flat(BLOCK) == b.basis_images_flat(BLOCK)
