"""Blocked layouts (Proposition 4.6).

A blocked layout distributes a tensor over registers, lanes, and warps
with per-dimension counts and an *order* (``order[0]`` is the fastest
running dimension).  It is the workhorse layout for coalesced global
memory access (Figure 1, Layout A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.dims import LANE, REGISTER, WARP
from repro.core.errors import DimensionError
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int
from repro.layouts.common import tile_to_shape
from repro.layouts.cta import CtaLayout


@dataclass(frozen=True)
class BlockedLayout:
    """Parameters of a blocked layout.

    Attributes
    ----------
    size_per_thread:
        Registers per thread in each dimension of the initial tile.
    threads_per_warp:
        Thread arrangement per warp, per dimension (product = warp
        size: 32 on NVIDIA, 64 on AMD).
    warps_per_cta:
        Warp arrangement per CTA, per dimension.
    order:
        ``order[0]`` is the fastest-running (contiguous) dimension.
    """

    size_per_thread: Tuple[int, ...]
    threads_per_warp: Tuple[int, ...]
    warps_per_cta: Tuple[int, ...]
    order: Tuple[int, ...]
    #: Optional CGA-level distribution (Hopper clusters); None means a
    #: single CTA.
    cta: Optional[CtaLayout] = None

    def __post_init__(self):
        rank = len(self.size_per_thread)
        for name in ("threads_per_warp", "warps_per_cta", "order"):
            if len(getattr(self, name)) != rank:
                raise DimensionError(f"{name} must have rank {rank}")
        if self.cta is not None and self.cta.rank != rank:
            raise DimensionError(f"cta layout must have rank {rank}")
        if sorted(self.order) != list(range(rank)):
            raise DimensionError(f"order {self.order} is not a permutation")
        for seq in (
            self.size_per_thread,
            self.threads_per_warp,
            self.warps_per_cta,
        ):
            for v in seq:
                log2_int(v)

    @property
    def rank(self) -> int:
        """Tensor rank the layout applies to."""
        return len(self.size_per_thread)

    def tile_shape(self) -> List[int]:
        """The shape of the initial (unreplicated) tile."""
        return [
            r * t * w
            for r, t, w in zip(
                self.size_per_thread,
                self.threads_per_warp,
                self.warps_per_cta,
            )
        ]

    def num_warps(self) -> int:
        """Total warps per CTA."""
        n = 1
        for w in self.warps_per_cta:
            n *= w
        return n

    def threads_per_warp_total(self) -> int:
        """Total threads per warp (32 on NVIDIA, 64 on AMD)."""
        n = 1
        for t in self.threads_per_warp:
            n *= t
        return n

    def to_linear(self, shape: Sequence[int]) -> LinearLayout:
        """The linear layout for a tensor of ``shape`` (Prop. 9.1).

        Built as the product id_R^o x id_T^o x id_W^o following the
        order, then fitted to the tensor shape with the legacy tiling
        semantics.
        """
        if len(shape) != self.rank:
            raise DimensionError(
                f"shape rank {len(shape)} != layout rank {self.rank}"
            )
        per_cta_shape = (
            self.cta.split_shape(shape) if self.cta is not None
            else list(shape)
        )
        tile = LinearLayout.empty()
        for counts, in_dim in (
            (self.size_per_thread, REGISTER),
            (self.threads_per_warp, LANE),
            (self.warps_per_cta, WARP),
        ):
            for dim in self.order:
                tile = tile * LinearLayout.identity1d(
                    counts[dim], in_dim, f"dim{dim}"
                )
        per_cta = tile_to_shape(tile, per_cta_shape, self.order)
        if self.cta is None or self.cta.is_trivial():
            return per_cta
        return self.cta.lift(per_cta, shape)

    def __str__(self) -> str:
        return (
            f"blocked(sizePerThread={list(self.size_per_thread)}, "
            f"threadsPerWarp={list(self.threads_per_warp)}, "
            f"warpsPerCTA={list(self.warps_per_cta)}, "
            f"order={list(self.order)})"
        )


def default_blocked_layout(
    shape: Sequence[int],
    num_warps: int = 4,
    warp_size: int = 32,
    order: Sequence[int] = None,
) -> BlockedLayout:
    """The blocked layout Triton assigns to anchor ops by default.

    Mirrors the compiler's heuristic: fill the fastest dimension with
    threads first (for coalescing), then spread across the remaining
    dims; a single element per thread unless the fast dim is larger
    than the available threads.
    """
    rank = len(shape)
    if order is None:
        order = list(range(rank - 1, -1, -1))  # row-major: last fastest
    order = tuple(order)
    log_sizes = [log2_int(s) for s in shape]

    size_per_thread = [1] * rank
    threads = [1] * rank
    warps = [1] * rank

    remaining_threads = warp_size
    remaining = list(log_sizes)
    for dim in order:
        take = min(log2_int(remaining_threads), remaining[dim])
        threads[dim] = 1 << take
        remaining_threads >>= take
        remaining[dim] -= take
        if remaining_threads == 1:
            break
    remaining_warps = num_warps
    for dim in order:
        take = min(log2_int(remaining_warps), remaining[dim])
        warps[dim] = 1 << take
        remaining_warps >>= take
        remaining[dim] -= take
        if remaining_warps == 1:
            break
    # Leftover warps must go somewhere: stack them on the slowest dim.
    if remaining_warps > 1:
        warps[order[-1]] *= remaining_warps
    return BlockedLayout(
        size_per_thread=tuple(size_per_thread),
        threads_per_warp=tuple(threads),
        warps_per_cta=tuple(warps),
        order=order,
    )
