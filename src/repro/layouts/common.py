"""Shared machinery for layout constructors.

The two ``ensure_*`` functions implement the legacy tiling semantics
(Section 5.1, Broadcasting): when a layout's initial tile is smaller
than the tensor it is *replicated* to cover it (extra register bits
enumerate the tile grid), and when it is larger the tensor is
replicated to cover the tile (the excess bits become zero columns,
i.e. broadcast).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.dims import REGISTER
from repro.core.errors import DimensionError
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int


def _canonicalize_out_order(layout: LinearLayout, rank: int) -> LinearLayout:
    """Reorder the out dims of a freshly built product to dim0..dimN."""
    want = [f"dim{i}" for i in range(rank)]
    have = list(layout.out_dims)
    if sorted(have) != sorted(want):
        raise DimensionError(f"unexpected out dims {have}, want {want}")
    if have == want:
        return layout
    return layout.transpose_outs(want)


def ensure_layout_not_larger_than(
    layout: LinearLayout, shape: Sequence[int]
) -> LinearLayout:
    """Shrink each out dim to ``shape`` by zeroing overflowing bases.

    A basis image bit at position >= log2(shape[d]) indexes outside the
    tensor; the legacy semantics replicate the tensor under the tile,
    so that bit's image becomes zero (broadcast, a zero column of the
    matrix).
    """
    names = list(layout.out_dims)
    if len(names) != len(shape):
        raise DimensionError(
            f"rank mismatch: layout {names} vs shape {list(shape)}"
        )
    masks = []
    shrink = False
    for name, size in zip(names, shape):
        log2_int(size)
        if layout.out_dim_size(name) < size:
            raise DimensionError(
                f"layout dim {name!r} smaller than target {size}"
            )
        if layout.out_dim_size(name) > size:
            shrink = True
        masks.append(size - 1)
    if not shrink:
        return layout
    bases = {}
    for d in layout.in_dims:
        images = []
        for img in layout.bases[d]:
            # Keep in-range bits; bits beyond the shape broadcast to 0.
            # For distributed layouts images are single-bit so the
            # image either survives whole or becomes zero.
            images.append(tuple(c & m for c, m in zip(img, masks)))
        bases[d] = images
    outs = dict(zip(names, shape))
    return LinearLayout(bases, outs, require_surjective=False)


def ensure_layout_not_smaller_than(
    layout: LinearLayout,
    shape: Sequence[int],
    order: Sequence[int],
    in_dim: str = REGISTER,
) -> LinearLayout:
    """Grow each out dim to ``shape`` with fresh ``in_dim`` bits.

    The tile is replicated across the tensor; the replication index
    lives in new high bits of ``in_dim`` (usually registers),
    enumerating tiles along ``order`` (fastest dim first).
    """
    names = list(layout.out_dims)
    if len(names) != len(shape):
        raise DimensionError(
            f"rank mismatch: layout {names} vs shape {list(shape)}"
        )
    bases = layout.bases
    outs = dict(layout.out_dim_sizes())
    extra: List[tuple] = []
    for dim_idx in order:
        name = names[dim_idx]
        target = shape[dim_idx]
        log2_int(target)
        current = outs[name]
        if current > target:
            raise DimensionError(
                f"layout dim {name!r} larger than target {target}; "
                "call ensure_layout_not_larger_than first"
            )
        while current < target:
            img = [0] * len(names)
            img[dim_idx] = current
            extra.append(tuple(img))
            current <<= 1
        outs[name] = target
    if extra:
        bases[in_dim] = bases.get(in_dim, []) + extra
    return LinearLayout(bases, outs, require_surjective=False)


def tile_to_shape(
    tile: LinearLayout,
    shape: Sequence[int],
    order: Sequence[int],
    in_dim: str = REGISTER,
) -> LinearLayout:
    """Fit a tile layout onto a tensor shape (legacy tiling semantics).

    First the tensor is replicated under an oversized tile (zero
    columns), then an undersized tile is replicated across the tensor
    (new register bits), enumerating tiles fastest-first per ``order``.
    The result is canonicalized to out dims ``dim0..dimN`` and is
    always surjective.
    """
    rank = len(shape)
    layout = _canonicalize_out_order(tile, rank)
    clipped = [
        min(s, layout.out_dim_size(f"dim{i}")) for i, s in enumerate(shape)
    ]
    layout = ensure_layout_not_larger_than(layout, clipped)
    layout = ensure_layout_not_smaller_than(layout, shape, order, in_dim)
    result = LinearLayout(
        layout.bases, layout.out_dim_sizes(), require_surjective=True
    )
    return result
