"""The legacy (pre-linear-layout) Triton baseline.

This module reproduces — behaviourally, not by hard-coding table
entries — the limitations the paper measures against:

* per-kind interface methods with **no cross-kind comparison**, so a
  Blocked and a Sliced layout describing the same map still trigger a
  conversion (the welford case of Section 6.2);
* a hand-written **conversion support matrix** with the documented
  gaps (reductions over MMA-input and sliced-MMA layouts, custom
  layouts — the 0/10 rows of Table 4);
* **always-through-shared-memory** conversions with the padding
  heuristic (no warp shuffles, no optimal swizzling — Figures 2, 7);
* fastest-dimension-only **contiguity analysis** (Table 3);
* the **MMA constraints** on small shapes / low-precision dtypes
  ("Triton does not support any MMA layouts with more than 32-bit
  consecutive elements in the last dimension of the tile", Table 5);
* no duplicate elimination when spilling reduction partials
  (Table 4's instruction counts).
"""

from __future__ import annotations


from repro.core.errors import LegacyUnsupportedError
from repro.layouts.blocked import BlockedLayout
from repro.layouts.mfma import AmdMfmaLayout
from repro.layouts.mma import MmaOperandLayout, NvidiaMmaLayout
from repro.layouts.sliced import SlicedLayout
from repro.layouts.wgmma import WgmmaLayout, WgmmaOperandLayout
from repro.mxfp.types import DType, mma_kwidth


def layout_kind(desc: object) -> str:
    """The legacy system's notion of a layout's kind.

    Descriptors may declare an explicit ``legacy_kind`` attribute;
    anything unrecognized is ``custom`` — precisely the layouts that
    required modifying the legacy compiler to support (Section 1).
    """
    explicit = getattr(desc, "legacy_kind", None)
    if explicit is not None:
        return explicit
    if isinstance(desc, BlockedLayout):
        return "blocked"
    if isinstance(desc, (NvidiaMmaLayout, WgmmaLayout, AmdMfmaLayout)):
        return "mma"
    if isinstance(desc, (MmaOperandLayout, WgmmaOperandLayout)):
        return "mma_input"
    if isinstance(desc, SlicedLayout):
        return f"sliced<{layout_kind(desc.parent)}>"
    return "custom"


class LegacyLayoutSystem:
    """Queries answered the way legacy Triton answered them."""

    #: Conversion pairs the legacy backend implemented.  Everything
    #: else raised or miscompiled (Section 3: "conversions between
    #: layouts must be explicitly implemented for each layout").
    _SUPPORTED_CONVERSIONS = {
        ("blocked", "blocked"),
        ("blocked", "mma"),
        ("mma", "blocked"),
        ("blocked", "mma_input"),
        ("mma", "mma_input"),
        ("sliced<blocked>", "blocked"),
        ("blocked", "sliced<blocked>"),
        ("sliced<blocked>", "sliced<blocked>"),
        ("sliced<mma>", "blocked"),
        ("mma", "mma"),
    }

    #: Layout kinds whose reduction path the legacy backend
    #: implemented (Table 4: MMA-input and sliced-MMA reductions fail).
    _REDUCIBLE_KINDS = {
        "blocked",
        "mma",
        "sliced<blocked>",
    }

    def can_compare(self, a: object, b: object) -> bool:
        """Legacy layouts of different kinds cannot be compared, so an
        equivalent pair still goes through a conversion."""
        return layout_kind(a) == layout_kind(b)

    def supports_conversion(self, src: object, dst: object) -> bool:
        """True iff the legacy backend implemented this conversion pair."""
        pair = (layout_kind(src), layout_kind(dst))
        return pair in self._SUPPORTED_CONVERSIONS

    def check_conversion(self, src: object, dst: object) -> None:
        """Raise LegacyUnsupportedError for unimplemented pairs."""
        if not self.supports_conversion(src, dst):
            raise LegacyUnsupportedError(
                f"legacy Triton has no conversion "
                f"{layout_kind(src)} -> {layout_kind(dst)}"
            )

    def supports_reduction(self, desc: object) -> bool:
        """True iff legacy could lower a reduction over this layout kind."""
        return layout_kind(desc) in self._REDUCIBLE_KINDS

    def check_reduction(self, desc: object) -> None:
        """Raise LegacyUnsupportedError for unreducible layout kinds."""
        if not self.supports_reduction(desc):
            raise LegacyUnsupportedError(
                f"legacy Triton cannot reduce over a "
                f"{layout_kind(desc)} layout"
            )

    def supports_scan(
        self,
        desc: object,
        reverse: bool,
        has_duplicates: bool,
    ) -> bool:
        """The scan gates behind the bugs the paper cites.

        ``reverse=True`` scans returned incorrect results
        (triton-lang/triton#4362), and scans over layouts holding
        duplicated data combined replicas twice when mixed with
        reductions (triton-lang/triton#3017).  We count both
        miscompiles as failures.
        """
        if reverse or has_duplicates:
            return False
        return layout_kind(desc) in self._REDUCIBLE_KINDS

    def check_scan(
        self,
        desc: object,
        reverse: bool,
        has_duplicates: bool,
    ) -> None:
        """Raise LegacyUnsupportedError for miscompiled scan shapes."""
        if not self.supports_scan(desc, reverse, has_duplicates):
            raise LegacyUnsupportedError(
                f"legacy Triton miscompiles this scan "
                f"(layout={layout_kind(desc)}, reverse={reverse}, "
                f"duplicates={has_duplicates})"
            )

    def supports_mma_shape(
        self,
        a_dtype: DType,
        b_dtype: DType,
        shape_m: int,
        shape_n: int,
        shape_k: int,
    ) -> bool:
        """The Table 5 gate.

        Legacy Triton's MMA lowering assumed at most 32 bits of
        consecutive elements in the last tile dimension, and its
        small-shape handling required each operand tile to fill the
        full instruction tile.  Low-precision operands (kwidth > 1)
        on small K/N violate one or the other.
        """
        for dtype in (a_dtype, b_dtype):
            kwidth = mma_kwidth(dtype)
            consecutive_bits = kwidth * dtype.bits * 2
            if consecutive_bits > 32 and shape_k < 8 * kwidth * 2:
                return False
            # Small-shape gap: the operand tile (8 * kwidth along K)
            # must fit the tensor.
            if shape_k < 8 * kwidth:
                return False
        if shape_m < 16 or shape_n < 8:
            return False
        return True

    def check_mma_shape(
        self,
        a_dtype: DType,
        b_dtype: DType,
        shape_m: int,
        shape_n: int,
        shape_k: int,
    ) -> None:
        """Raise LegacyUnsupportedError when the MMA gate fails."""
        if not self.supports_mma_shape(
            a_dtype, b_dtype, shape_m, shape_n, shape_k
        ):
            raise LegacyUnsupportedError(
                f"legacy Triton mma cannot handle "
                f"{a_dtype} x {b_dtype} at M={shape_m} N={shape_n} "
                f"K={shape_k}"
            )
