"""NVIDIA Hopper ``wgmma`` layouts (Proposition 4.7).

``wgmma.mma_async.m64nNk16`` is issued by a *warp group* of four
warps.  The accumulator tile spans M=64 rows — each warp of the group
owns a 16-row slab that internally follows the ``mma`` 16x8 pattern —
and up to N=256 columns covered by registers.  The B operand is read
directly from shared memory (it has no register layout), which is why
template_attention speeds up less on GH200 than on RTX4090
(Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.dims import REGISTER, WARP
from repro.core.errors import DimensionError
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int
from repro.layouts.common import tile_to_shape
from repro.layouts.mma import mma_operand_tile, mma_output_tile


@dataclass(frozen=True)
class WgmmaLayout:
    """Distributed layout of a ``wgmma`` accumulator (version 3).

    ``warps_per_cta`` counts *all* warps; the first four along M form
    the warp group.  ``instr_n`` is the N extent of one instruction
    (8..256, power of two here).
    """

    warps_per_cta: Tuple[int, int]
    instr_n: int = 16

    def __post_init__(self):
        for w in self.warps_per_cta:
            log2_int(w)
        log2_int(self.instr_n)
        if self.warps_per_cta[0] % 4 != 0:
            raise DimensionError(
                "wgmma needs a multiple of 4 warps along M, got "
                f"{self.warps_per_cta}"
            )
        if not 8 <= self.instr_n <= 256:
            raise DimensionError(f"instr_n out of range: {self.instr_n}")

    @property
    def rank(self) -> int:
        """wgmma layouts are two-dimensional."""
        return 2

    def num_warps(self) -> int:
        """Total warps per CTA (the first four form the warp group)."""
        return self.warps_per_cta[0] * self.warps_per_cta[1]

    def instruction_tile(self) -> LinearLayout:
        """The m64 x instr_n tile owned by one warp group."""
        # Registers walk N beyond the base 8 columns.
        tile = mma_output_tile()
        for bit in range(3, log2_int(self.instr_n)):
            tile = tile * LinearLayout.identity1d(2, REGISTER, "dim1")
        # The four warps of the group stack along M (bits 4, 5 of dim0).
        tile = tile * LinearLayout.identity1d(4, WARP, "dim0")
        return tile

    def to_linear(self, shape: Sequence[int]) -> LinearLayout:
        """The full accumulator layout for a tensor of ``shape``."""
        if len(shape) != 2:
            raise DimensionError("wgmma layouts are two-dimensional")
        tile = self.instruction_tile()
        extra_m = self.warps_per_cta[0] // 4
        tile = tile * LinearLayout.identity1d(extra_m, WARP, "dim0")
        tile = tile * LinearLayout.identity1d(
            self.warps_per_cta[1], WARP, "dim1"
        )
        return tile_to_shape(tile, shape, order=(1, 0))

    def __str__(self) -> str:
        return (
            f"wgmma(version=3, warpsPerCTA={list(self.warps_per_cta)}, "
            f"instrN={self.instr_n})"
        )


@dataclass(frozen=True)
class WgmmaOperandLayout:
    """Register layout of the A operand of ``wgmma`` (op_idx 0 only).

    B is consumed straight from shared memory by the instruction, so
    only A has a distributed register layout.  The per-warp fragment
    matches the ``mma`` A fragment; the warp group stacks along M.
    """

    parent: WgmmaLayout
    kwidth: int

    def __post_init__(self):
        log2_int(self.kwidth)

    @property
    def rank(self) -> int:
        """Operand layouts are two-dimensional."""
        return 2

    def to_linear(self, shape: Sequence[int]) -> LinearLayout:
        """The register layout of the A operand for ``shape``."""
        if len(shape) != 2:
            raise DimensionError("wgmma operand layouts are 2D")
        tile = mma_operand_tile(0, self.kwidth)
        tile = tile * LinearLayout.identity1d(4, WARP, "dim0")
        extra_m = self.parent.warps_per_cta[0] // 4
        tile = tile * LinearLayout.identity1d(extra_m, WARP, "dim0")
        wn = self.parent.warps_per_cta[1]
        if wn > 1:
            dead = LinearLayout(
                {WARP: [(0,)] * log2_int(wn)},
                {"dim1": 1},
                require_surjective=False,
            )
            tile = tile * dead
        return tile_to_shape(tile, shape, order=(1, 0))

    def __str__(self) -> str:
        return f"wgmma_operand(kWidth={self.kwidth}, parent={self.parent})"
