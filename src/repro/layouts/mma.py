"""NVIDIA Ampere ``mma`` layouts (Proposition 4.7).

The ``mma.sync.m16n8kK`` family distributes a 16x8 accumulator tile
over the 32 lanes of a warp: lanes are arranged 8x4 (groups of four
lanes own a row pair), each lane holds two adjacent columns per row
group.  Operand fragments follow the PTX ISA: a lane holds ``kwidth =
32 / elem_bits`` consecutive elements along K per group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.dims import LANE, REGISTER, WARP
from repro.core.errors import DimensionError
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int
from repro.layouts.common import tile_to_shape


def mma_output_tile() -> LinearLayout:
    """The 16x8 accumulator tile of ``mma.m16n8``.

    Per PTX: ``c0/c1`` sit at ``(group, 2*tid4 + {0,1})`` and ``c2/c3``
    at ``(group + 8, ...)`` where ``group = lane >> 2`` and ``tid4 =
    lane & 3``.
    """
    return LinearLayout(
        {
            REGISTER: [(0, 1), (8, 0)],
            LANE: [(0, 2), (0, 4), (1, 0), (2, 0), (4, 0)],
        },
        {"dim0": 16, "dim1": 8},
        require_surjective=True,
    )


def mma_operand_tile(op_idx: int, kwidth: int) -> LinearLayout:
    """The register fragment tile of an ``mma`` operand.

    ``op_idx`` 0 is A (shape M x K = 16 x 8*kwidth), 1 is B (shape
    K x N = 8*kwidth x 8).  ``kwidth = 32 / elem_bits`` is the number
    of consecutive K elements one lane holds per fragment group.
    """
    if op_idx not in (0, 1):
        raise DimensionError(f"op_idx must be 0 or 1, got {op_idx}")
    kw = log2_int(kwidth)
    if op_idx == 0:
        # A: dim0 = M (16), dim1 = K (8 * kwidth).
        reg: List[Tuple[int, int]] = [(0, 1 << i) for i in range(kw)]
        lane = [
            (0, kwidth << 0),  # tid4 bit 0 -> K
            (0, kwidth << 1),  # tid4 bit 1 -> K
            (1, 0),
            (2, 0),
            (4, 0),
        ]
        reg.append((8, 0))  # second row group (M bit 3)
        reg.append((0, kwidth << 2))  # second K group
        outs = {"dim0": 16, "dim1": 8 * kwidth}
    else:
        # B: dim0 = K (8 * kwidth), dim1 = N (8).
        reg = [(1 << i, 0) for i in range(kw)]
        lane = [
            (kwidth << 0, 0),
            (kwidth << 1, 0),
            (0, 1),
            (0, 2),
            (0, 4),
        ]
        reg.append((kwidth << 2, 0))  # second K group
        outs = {"dim0": 8 * kwidth, "dim1": 8}
    return LinearLayout(
        {REGISTER: reg, LANE: lane}, outs, require_surjective=True
    )


@dataclass(frozen=True)
class NvidiaMmaLayout:
    """The distributed layout of an ``mma`` result (version 2, Ampere).

    ``warps_per_cta`` arranges warps over (M, N); the 16x8 instruction
    tile is replicated in registers to cover the rest of the tensor.
    """

    warps_per_cta: Tuple[int, int]
    instr_shape: Tuple[int, int] = (16, 8)

    def __post_init__(self):
        for w in self.warps_per_cta:
            log2_int(w)
        if self.instr_shape != (16, 8):
            raise DimensionError(
                f"mma v2 instruction tile is 16x8, got {self.instr_shape}"
            )

    @property
    def rank(self) -> int:
        """mma layouts are two-dimensional."""
        return 2

    def num_warps(self) -> int:
        """Total warps per CTA."""
        return self.warps_per_cta[0] * self.warps_per_cta[1]

    def warp_layout(self) -> LinearLayout:
        """Warps over (M, N), M fastest (matching Triton's convention)."""
        return LinearLayout.identity1d(
            self.warps_per_cta[0], WARP, "dim0"
        ) * LinearLayout.identity1d(self.warps_per_cta[1], WARP, "dim1")

    def to_linear(self, shape: Sequence[int]) -> LinearLayout:
        """The full accumulator layout for a tensor of ``shape``."""
        if len(shape) != 2:
            raise DimensionError("mma layouts are two-dimensional")
        tile = mma_output_tile() * self.warp_layout()
        # Register replication covers the rest, N fastest: accumulators
        # for adjacent N tiles live in consecutive registers.
        return tile_to_shape(tile, shape, order=(1, 0))

    def __str__(self) -> str:
        return f"mma(version=2, warpsPerCTA={list(self.warps_per_cta)})"


@dataclass(frozen=True)
class MmaOperandLayout:
    """The distributed layout of an ``mma`` input (MMA Input family).

    The warp grid is inherited from the parent accumulator layout, but
    warps along the contracted dimension must *broadcast*: every warp
    in the same row (for A) holds the full K extent, so the warp bits
    that index N in the parent become zero columns here.
    """

    parent: NvidiaMmaLayout
    op_idx: int
    kwidth: int

    def __post_init__(self):
        if self.op_idx not in (0, 1):
            raise DimensionError(f"op_idx must be 0 or 1, got {self.op_idx}")
        log2_int(self.kwidth)

    @property
    def rank(self) -> int:
        """Operand layouts are two-dimensional."""
        return 2

    def warp_layout(self) -> LinearLayout:
        """Warp grid with broadcasting along the contracted dim."""
        wm, wn = self.parent.warps_per_cta
        if self.op_idx == 0:
            # A (M x K): M warps index dim0, N warps broadcast.
            keep = LinearLayout.identity1d(wm, WARP, "dim0")
            dead = LinearLayout(
                {WARP: [(0,)] * log2_int(wn)},
                {"dim1": 1},
                require_surjective=False,
            )
            return keep * dead
        # B (K x N): M warps broadcast, N warps index dim1.
        dead = LinearLayout(
            {WARP: [(0,)] * log2_int(wm)},
            {"dim0": 1},
            require_surjective=False,
        )
        keep = LinearLayout.identity1d(wn, WARP, "dim1")
        return dead * keep

    def to_linear(self, shape: Sequence[int]) -> LinearLayout:
        """The full operand layout for a tensor of ``shape``."""
        if len(shape) != 2:
            raise DimensionError("mma operand layouts are two-dimensional")
        tile = mma_operand_tile(self.op_idx, self.kwidth) * self.warp_layout()
        # K is the fastest replication direction: consecutive registers
        # walk the contraction so the dot loop is register-resident.
        order = (1, 0) if self.op_idx == 0 else (0, 1)
        return tile_to_shape(tile, shape, order=order)

    def __str__(self) -> str:
        return (
            f"mma_operand(opIdx={self.op_idx}, kWidth={self.kwidth}, "
            f"parent={self.parent})"
        )
