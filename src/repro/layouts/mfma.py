"""AMD CDNA ``mfma`` layouts (Proposition 4.7, AMD variant).

``mfma_f32_32x32x8`` runs on a 64-lane wavefront: lanes 0..31 index
the 32 accumulator columns, the high lane bit selects a 4-row group,
and each lane carries 16 values in four groups of four consecutive
rows.  AMD lacks an ``ldmatrix`` equivalent, which is why MI250's
speedups in Figure 9 are the smallest (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.dims import LANE, REGISTER, WARP
from repro.core.errors import DimensionError
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int
from repro.layouts.common import tile_to_shape


def mfma_output_tile() -> LinearLayout:
    """The 32x32 accumulator tile of ``mfma_f32_32x32x8``."""
    return LinearLayout(
        {
            REGISTER: [(1, 0), (2, 0), (8, 0), (16, 0)],
            LANE: [(0, 1), (0, 2), (0, 4), (0, 8), (0, 16), (4, 0)],
        },
        {"dim0": 32, "dim1": 32},
        require_surjective=True,
    )


def mfma_operand_tile(op_idx: int) -> LinearLayout:
    """Operand fragments of ``mfma_f32_32x32x8`` (fp16).

    A is 32x8 (M x K): lanes 0..31 pick the row, the high lane bit
    picks the upper half of K, and each lane holds 4 consecutive K
    elements.  B is the K x N transpose.
    """
    if op_idx not in (0, 1):
        raise DimensionError(f"op_idx must be 0 or 1, got {op_idx}")
    if op_idx == 0:
        return LinearLayout(
            {
                REGISTER: [(0, 1), (0, 2)],
                LANE: [(1, 0), (2, 0), (4, 0), (8, 0), (16, 0), (0, 4)],
            },
            {"dim0": 32, "dim1": 8},
            require_surjective=True,
        )
    return LinearLayout(
        {
            REGISTER: [(1, 0), (2, 0)],
            LANE: [(0, 1), (0, 2), (0, 4), (0, 8), (0, 16), (4, 0)],
        },
        {"dim0": 8, "dim1": 32},
        require_surjective=True,
    )


@dataclass(frozen=True)
class AmdMfmaLayout:
    """Distributed layout of an ``mfma`` accumulator on CDNA GPUs."""

    warps_per_cta: Tuple[int, int]
    instr_shape: Tuple[int, int] = (32, 32)

    def __post_init__(self):
        for w in self.warps_per_cta:
            log2_int(w)
        if self.instr_shape != (32, 32):
            raise DimensionError(
                f"only the 32x32 mfma tile is modeled, got {self.instr_shape}"
            )

    @property
    def rank(self) -> int:
        """mfma layouts are two-dimensional."""
        return 2

    @property
    def warp_size(self) -> int:
        """CDNA wavefronts have 64 lanes."""
        return 64

    def num_warps(self) -> int:
        """Total wavefronts per workgroup."""
        return self.warps_per_cta[0] * self.warps_per_cta[1]

    def to_linear(self, shape: Sequence[int]) -> LinearLayout:
        """The full accumulator layout for a tensor of ``shape``."""
        if len(shape) != 2:
            raise DimensionError("mfma layouts are two-dimensional")
        tile = mfma_output_tile()
        tile = tile * LinearLayout.identity1d(
            self.warps_per_cta[0], WARP, "dim0"
        )
        tile = tile * LinearLayout.identity1d(
            self.warps_per_cta[1], WARP, "dim1"
        )
        return tile_to_shape(tile, shape, order=(1, 0))

    def __str__(self) -> str:
        return f"mfma(warpsPerCTA={list(self.warps_per_cta)})"
