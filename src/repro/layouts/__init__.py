"""Constructors for every layout family in Triton (Figure 3).

Each descriptor class captures the *parameters* of a legacy layout
(e.g. a blocked layout's ``size_per_thread`` / ``threads_per_warp`` /
``warps_per_cta`` / ``order``) and exposes ``to_linear(shape)``, the
constructive proof of Propositions 4.6-4.13 that every such layout is
a linear layout.
"""

from repro.layouts.blocked import BlockedLayout, default_blocked_layout
from repro.layouts.cta import CtaLayout, same_block_component
from repro.layouts.common import (
    ensure_layout_not_larger_than,
    ensure_layout_not_smaller_than,
    tile_to_shape,
)
from repro.layouts.mfma import AmdMfmaLayout
from repro.layouts.mma import (
    MmaOperandLayout,
    NvidiaMmaLayout,
    mma_output_tile,
    mma_operand_tile,
)
from repro.layouts.shared import (
    PaddedSharedLayout,
    SwizzledSharedLayout,
    mma_swizzle_offset,
    shared_layout_for_mma,
)
from repro.layouts.sliced import SlicedLayout, slice_linear_layout
from repro.layouts.wgmma import WgmmaLayout, WgmmaOperandLayout

__all__ = [
    "AmdMfmaLayout",
    "BlockedLayout",
    "CtaLayout",
    "MmaOperandLayout",
    "same_block_component",
    "NvidiaMmaLayout",
    "PaddedSharedLayout",
    "SlicedLayout",
    "SwizzledSharedLayout",
    "WgmmaLayout",
    "WgmmaOperandLayout",
    "default_blocked_layout",
    "ensure_layout_not_larger_than",
    "ensure_layout_not_smaller_than",
    "mma_operand_tile",
    "mma_output_tile",
    "mma_swizzle_offset",
    "shared_layout_for_mma",
    "slice_linear_layout",
    "tile_to_shape",
]
