"""Intra-warp layout conversion via warp shuffles (Section 5.4).

Implements the V / I / E / F / G / R construction: pick the vectorized
register subspace ``V`` shared by source and destination, pair up the
differing thread bits into ``G`` (so each affine coset crosses every
source lane and every destination lane exactly once), extend to a
basis with ``R``, and emit one shuffle round per coset representative
``R(i)`` — exactly the Figure 4 procedure.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro import cache as _cache
from repro.core.dims import LANE, REGISTER, WARP
from repro.core.layout import LinearLayout
from repro.codegen.plan import ShuffleRound
from repro.codegen.views import DistributedView
from repro.f2.bitvec import iter_set_bits


class ShufflePlanError(ValueError):
    """The pair of layouts is outside the warp-shuffle fast path."""


def _span_elements(basis: List[int]) -> List[int]:
    out = []
    for mask in range(1 << len(basis)):
        v = 0
        for idx in iter_set_bits(mask):
            v ^= basis[idx]
        out.append(v)
    return out


def _extend(
    rank_target: int, partial: List[int], candidates: List[int]
) -> List[int]:
    """Extend ``partial`` to rank ``rank_target`` using ``candidates``."""
    by_lead: Dict[int, int] = {}

    def add(v: int) -> bool:
        while v:
            lead = v.bit_length() - 1
            if lead not in by_lead:
                by_lead[lead] = v
                return True
            v ^= by_lead[lead]
        return False

    for v in partial:
        if not add(v):
            raise ShufflePlanError("V/I/G vectors are not independent")
    added = []
    for v in candidates:
        if len(by_lead) >= rank_target:
            break
        if add(v):
            added.append(v)
    if len(by_lead) < rank_target:
        raise ShufflePlanError("could not extend shuffle basis")
    return added


def shuffle_preconditions(
    src: DistributedView, dst: DistributedView
) -> Tuple[bool, str]:
    """Check whether the warp-shuffle path applies.

    Requires matching warp components (so no inter-warp movement,
    Section 5.4: "(B^{-1}A)_Wrp is the identity") and no *lane*
    broadcasting.  Register broadcasting is handled by converting the
    deduplicated quotient and replicating locally afterwards — an
    extension beyond the paper's simplifying assumption.
    """
    if src.images(WARP) != dst.images(WARP):
        return False, "warp components differ (inter-warp movement)"
    for view, name in ((src, "src"), (dst, "dst")):
        if view.has_broadcasting(LANE):
            return False, f"{name} layout broadcasts across lanes"
    if src.images(LANE, include_zeros=False) and not dst.images(
        LANE, include_zeros=False
    ):
        return False, "lane rank mismatch"
    return True, ""


def _dedupe_registers(layout: LinearLayout) -> Tuple[
    LinearLayout, List[int]
]:
    """Strip free register bits; returns (quotient layout, keep bits).

    ``keep`` lists the register-bit indices whose images are genuinely
    distinct — the quotient register index is formed from those bits.
    """
    free = layout.free_variable_masks().get(REGISTER, 0)
    n_bits = layout.in_dim_size_log2(REGISTER)
    keep = [i for i in range(n_bits) if not (free >> i) & 1]
    if len(keep) == n_bits:
        return layout, keep
    bases = layout.bases
    bases[REGISTER] = [bases[REGISTER][i] for i in keep]
    quotient = LinearLayout(
        bases, layout.out_dim_sizes(), require_surjective=False
    )
    return quotient, keep


def _real_reg(keep: List[int], quotient: int) -> int:
    """Map a quotient register index back to a canonical real index."""
    real = 0
    for j, bit in enumerate(keep):
        if (quotient >> j) & 1:
            real |= 1 << bit
    return real


def plan_warp_shuffle(
    src_layout: LinearLayout,
    dst_layout: LinearLayout,
    elem_bits: int,
    shuffle_bits: int = 32,
) -> List[object]:
    """Build the shuffle plan converting ``src`` to ``dst``.

    Returns a list of :class:`ShuffleRound` steps, optionally followed
    by a :class:`RegisterPermute` that fans received values out to the
    destination's broadcast register replicas.  Raises
    :class:`ShufflePlanError` when the preconditions of Section 5.4 do
    not hold; the caller then falls back to the shared memory path.

    Both outcomes — the step list and the planner rejection — are
    memoized on the canonical layout keys, so a hot conversion pays
    the coset enumeration once.
    """
    key = (
        "warp_shuffle",
        src_layout.canonical_key(),
        dst_layout.canonical_key(),
        elem_bits,
        shuffle_bits,
    )

    def compute() -> Tuple[str, object]:
        try:
            return "ok", tuple(
                _plan_warp_shuffle(
                    src_layout, dst_layout, elem_bits, shuffle_bits
                )
            )
        except ShufflePlanError as exc:
            return "err", str(exc)

    status, payload = _cache.cached(_cache.derivations, key, compute)
    if status == "err":
        raise ShufflePlanError(payload)
    return list(payload)


def _plan_warp_shuffle(
    src_layout: LinearLayout,
    dst_layout: LinearLayout,
    elem_bits: int,
    shuffle_bits: int,
) -> List[object]:
    from repro.codegen.plan import RegisterPermute

    full_src, full_dst = src_layout, dst_layout
    pre_ok, why = shuffle_preconditions(
        DistributedView(full_src), DistributedView(full_dst)
    )
    if not pre_ok:
        raise ShufflePlanError(why)
    src_layout, keep_src = _dedupe_registers(src_layout)
    dst_layout, keep_dst = _dedupe_registers(dst_layout)
    src = DistributedView(src_layout)
    dst = DistributedView(dst_layout)

    a_reg = src.images(REGISTER, include_zeros=False)
    b_reg = dst.images(REGISTER, include_zeros=False)
    a_thr = src.images(LANE, include_zeros=False)
    b_thr = dst.images(LANE, include_zeros=False)
    if len(a_reg) != len(b_reg) or len(a_thr) != len(b_thr):
        raise ShufflePlanError("register/lane rank mismatch")

    # V: the vectorized subspace, capped at the shuffle payload width.
    shared_regs = sorted(set(a_reg) & set(b_reg))
    max_v = 0
    while (1 << (max_v + 1)) * elem_bits <= shuffle_bits:
        max_v += 1
    v_basis = shared_regs[:max_v]

    # I / E / F / G: thread-bit bookkeeping.
    i_set = sorted(set(a_thr) & set(b_thr))
    e_set = sorted(set(a_thr) - set(i_set))
    f_set = sorted(set(b_thr) - set(i_set))
    if len(e_set) != len(f_set):  # pragma: no cover - ranks equal above
        raise ShufflePlanError("|E| != |F| without broadcasting")
    g_set = [e ^ f for e, f in zip(e_set, f_set)]

    # R: extend V u I u G to a basis of the per-warp subspace.
    warp_rank = len(a_reg) + len(a_thr)
    candidates = sorted(set(a_reg) - set(v_basis)) + sorted(a_thr)
    r_basis = _extend(warp_rank, v_basis + i_set + g_set, candidates)

    vec = 1 << len(v_basis)
    v_span = _span_elements(v_basis)
    ig_span = _span_elements(i_set + g_set)
    num_lanes = 1 << len(a_thr)
    insts = max(1, (vec * elem_bits + shuffle_bits - 1) // shuffle_bits)

    rounds: List[ShuffleRound] = []
    for rnd in range(1 << len(r_basis)):
        base = 0
        for idx in iter_set_bits(rnd):
            base ^= r_basis[idx]
        src_lane_of = [-1] * num_lanes
        send_regs: List[Tuple[int, ...]] = [()] * num_lanes
        recv_regs: List[Tuple[int, ...]] = [()] * num_lanes
        for s in ig_span:
            p0 = base ^ s
            s_lane = src.lane_of(p0)
            d_lane = dst.lane_of(p0)
            s_regs = tuple(
                _real_reg(keep_src, src.reg_of(p0 ^ v)) for v in v_span
            )
            d_regs = tuple(
                _real_reg(keep_dst, dst.reg_of(p0 ^ v)) for v in v_span
            )
            if src_lane_of[d_lane] != -1:
                raise ShufflePlanError(
                    "coset visits a destination lane twice"
                )
            if send_regs[s_lane]:
                raise ShufflePlanError("coset visits a source lane twice")
            src_lane_of[d_lane] = s_lane
            send_regs[s_lane] = s_regs
            recv_regs[d_lane] = d_regs
        if -1 in src_lane_of:
            raise ShufflePlanError("coset misses a lane")
        rounds.append(
            ShuffleRound(
                src_lane=tuple(src_lane_of),
                send_regs=tuple(send_regs),
                recv_regs=tuple(recv_regs),
                insts_per_round=insts,
            )
        )
    steps: List[object] = list(rounds)
    n_dst_bits = full_dst.in_dim_size_log2(REGISTER)
    if len(keep_dst) < n_dst_bits:
        # Fan the canonical values out to every broadcast replica.
        free_mask = sum(
            1 << i for i in range(n_dst_bits) if i not in keep_dst
        )
        table = tuple(
            r & ~free_mask for r in range(1 << n_dst_bits)
        )
        steps.append(RegisterPermute(table))
    return steps
