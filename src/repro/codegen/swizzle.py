"""Optimal swizzling (Section 5.4 + Appendix 9.2).

Given source and destination distributed layouts, compute a shared
memory layout that (provably, Lemma 9.6) maximizes read/write
vectorization and minimizes bank conflicts for *both* the stores from
the source layout and the loads into the destination layout.

The shared memory offset space is structured as
``Vec (low bits) x Bank x Seg (high bits)``: Vec is the vectorized
subspace shared by both register files, Bank spans the 128-byte bank
sweep, and Seg indexes bank segments.  Bank conflicts happen exactly
when two threads touch the same bank in different segments — i.e. when
``span(S_Vec u S_Seg)`` meets ``span(L_Thr)`` non-trivially
(Lemma 9.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import cache as _cache
from repro.core.dims import LANE, OFFSET, REGISTER
from repro.core.errors import LayoutError
from repro.core.layout import LinearLayout
from repro.codegen.views import DistributedView
from repro.f2.bitvec import log2_int
from repro.f2.subspace import Subspace, reduce_to_basis


@dataclass(frozen=True)
class SwizzlePlan:
    """The output of the optimal-swizzling algorithm.

    ``memory_layout`` maps ``offset -> logical dims`` (Definition
    4.14-style); offset bit ``i`` has the basis image recorded in
    ``vec_basis + subword_basis + bank_basis + seg_basis`` (flattened
    logical positions).  ``vec_elems`` is the store/load vector width
    in elements; ``subword_basis`` fills the offset bits below 4-byte
    (bank-word) granularity when the element type is narrower than a
    bank — the "not enough vectorization" case of Lemma 9.4, where
    word sharing between threads replaces vectorization.
    """

    memory_layout: LinearLayout
    vec_basis: Tuple[int, ...]
    bank_basis: Tuple[int, ...]
    seg_basis: Tuple[int, ...]
    elem_bits: int
    conflict_free: bool
    subword_basis: Tuple[int, ...] = ()

    @property
    def vec_elems(self) -> int:
        """Store/load vector width in elements (2^|V|)."""
        return 1 << len(self.vec_basis)

    @property
    def vec_bits(self) -> int:
        """Store/load vector width in bits."""
        return self.vec_elems * self.elem_bits


def _flat_to_coords(
    flat: int, out_sizes: Dict[str, int]
) -> Tuple[int, ...]:
    """Split a row-major flat position into per-dim coords."""
    names = list(out_sizes)
    coords = {}
    for name in reversed(names):
        log = log2_int(out_sizes[name])
        coords[name] = flat & ((1 << log) - 1)
        flat >>= log
    return tuple(coords[name] for name in names)


def memory_layout_from_bases(
    offset_bases: Sequence[int], out_sizes: Dict[str, int]
) -> LinearLayout:
    """Build an offset->dims LinearLayout from flat basis images."""
    images = [_flat_to_coords(b, out_sizes) for b in offset_bases]
    return LinearLayout(
        {OFFSET: images}, dict(out_sizes), require_surjective=True
    )


def optimal_swizzled_layout(
    src_layout: LinearLayout,
    dst_layout: LinearLayout,
    elem_bits: int,
    bank_row_bytes: int = 128,
    max_vector_bits: int = 128,
    vec_override: Optional[Sequence[int]] = None,
    bank_prefix: Optional[Sequence[int]] = None,
) -> SwizzlePlan:
    """Compute the conflict-minimizing shared layout for src -> dst.

    Follows the appendix algorithm exactly:

    1. ``V``: a basis of ``A_Reg n B_Reg`` capped at the platform's
       widest vector — the subspace both sides can vectorize over.
    2. ``A_Bank``/``B_Bank``: the thread bases minus the trailing
       bits already absorbed into 128-byte transactions.
    3. ``H``: pairs ``e_i ^ f_i`` of the differing thread bases — in
       the complement of both access patterns, hence conflict-free
       for reads *and* writes.
    4. ``C``: a complement basis of everything either side touches.
    5. ``Seg`` draws from ``H u C``; if short, conflicts are
       unavoidable and the remainder comes from ``A_Bank``.
    6. ``Bank`` completes the basis.

    ``vec_override``/``bank_prefix`` pin the low offset bits to given
    flat basis vectors — used to shape the staging layout around an
    ``ldmatrix``/``stmatrix`` tile (Section 5.3) so the tile division
    of Theorem 5.1 succeeds; the rest of the algorithm still minimizes
    conflicts around the pinned bits.

    The returned :class:`SwizzlePlan` is frozen and memoized on the
    canonical layout keys plus every parameter.
    """
    key = (
        "optimal_swizzle",
        src_layout.canonical_key(),
        dst_layout.canonical_key(),
        elem_bits,
        bank_row_bytes,
        max_vector_bits,
        None if vec_override is None else tuple(vec_override),
        None if bank_prefix is None else tuple(bank_prefix),
    )
    return _cache.cached(
        _cache.derivations,
        key,
        lambda: _optimal_swizzled_layout(
            src_layout,
            dst_layout,
            elem_bits,
            bank_row_bytes,
            max_vector_bits,
            vec_override,
            bank_prefix,
        ),
    )


def _optimal_swizzled_layout(
    src_layout: LinearLayout,
    dst_layout: LinearLayout,
    elem_bits: int,
    bank_row_bytes: int,
    max_vector_bits: int,
    vec_override: Optional[Sequence[int]],
    bank_prefix: Optional[Sequence[int]],
) -> SwizzlePlan:
    src = DistributedView(src_layout)
    dst = DistributedView(dst_layout)
    if dict(src_layout.out_dim_sizes()) != dict(dst_layout.out_dim_sizes()):
        raise LayoutError("src and dst must share a logical tensor")
    out_sizes = src_layout.out_dim_sizes()
    d = src_layout.total_out_bits()
    elem_bytes = max(1, elem_bits // 8)

    a_reg = src.images(REGISTER, include_zeros=False)
    b_reg = dst.images(REGISTER, include_zeros=False)
    a_thr = src.images(LANE, include_zeros=False)
    b_thr = dst.images(LANE, include_zeros=False)

    # 1. Vectorization subspace V.
    if vec_override is not None:
        vec = list(vec_override)
    else:
        shared_regs = sorted(set(a_reg) & set(b_reg))
        v_max = 0
        while (1 << (v_max + 1)) * elem_bits <= max_vector_bits:
            v_max += 1
        vec = list(shared_regs[:v_max])
    v = len(vec)

    # Sub-word bits: when the vectorized element is narrower than a
    # 4-byte bank word, the offset bits below word granularity do not
    # select a bank.  Filling them with H-pairs lets threads of *both*
    # layouts share words (free broadcast/merge) instead of
    # conflicting — the generalization of the algorithm to Lemma
    # 9.4's "not enough vectorization" case.
    vec_bytes = (1 << v) * elem_bytes
    n_sub = 0
    while (vec_bytes << n_sub) < 4:
        n_sub += 1

    # Bank bits: vectorized elements needed to sweep all banks.
    b_bits = max(
        0,
        log2_int(bank_row_bytes) - log2_int(max(4, vec_bytes)),
    )
    s_bits = d - v - n_sub - b_bits
    if s_bits < 0:
        b_bits = max(0, d - v - n_sub)
        s_bits = 0

    # 2. Thread bases relevant to bank selection.  Vectors beyond the
    # 128-byte transaction split do not influence conflicts.
    drop = log2_int(max(1, vec_bytes // 4))
    a_bank = a_thr[: max(0, len(a_thr) - drop)] if drop else list(a_thr)
    b_bank = b_thr[: max(0, len(b_thr) - drop)] if drop else list(b_thr)

    # 3. H: pair the differing thread bases.
    e_set = sorted(set(a_bank) - set(b_bank))
    f_set = sorted(set(b_bank) - set(a_bank))
    if len(e_set) > len(f_set):
        e_set, f_set = f_set, e_set
    h_set = [e ^ f for e, f in zip(e_set, f_set)]

    # Fill sub-word bits, preferring H-pairs (word sharing on both
    # sides), then shared registers, then whatever completes.
    subword: List[int] = []
    if n_sub:
        pool = reduce_to_basis(
            vec + h_set + sorted(set(a_reg) & set(b_reg))
            + [1 << i for i in range(d)]
        )[v:]
        subword = list(pool[:n_sub])
        h_set = [h for h in h_set if h not in subword]

    # 4. C: complement of span(V u A_Bank u B_Bank).
    touched = Subspace(d, vec + a_bank + b_bank)
    c_set = list(touched.complement().basis)

    # 5. Segment bits from H u C (conflict-free), padding from A_Bank.
    low = vec + subword
    pinned = list(bank_prefix) if bank_prefix else []
    if pinned:
        if len(pinned) > b_bits:
            raise LayoutError(
                f"bank prefix of {len(pinned)} exceeds {b_bits} bank bits"
            )
        if len(reduce_to_basis(low + pinned)) != len(low) + len(pinned):
            raise LayoutError("bank prefix overlaps the Vec subspace")
    seg_pool = reduce_to_basis(low + pinned + h_set + c_set)[
        len(low) + len(pinned):
    ]
    conflict_free = len(seg_pool) >= s_bits
    seg: List[int] = list(seg_pool[:s_bits])
    if len(seg) < s_bits:
        filler = reduce_to_basis(
            low + pinned + seg + a_bank + b_bank + c_set
            + [1 << i for i in range(d)]
        )[len(low) + len(pinned) + len(seg):]
        seg.extend(filler[: s_bits - len(seg)])
    if len(seg) < s_bits:  # pragma: no cover - basis always completes
        raise LayoutError("failed to fill segment bits")

    # 6. Bank bits complete the basis of F2^d.  Preferring the
    # destination's thread bases makes the load map divide the
    # ldmatrix tile when one exists (Section 5.3): offset bank bits
    # then coincide with the loading lanes' low bits.
    bank_pool = reduce_to_basis(
        low + pinned + seg + b_bank + a_bank + c_set
        + [1 << i for i in range(d)]
    )[len(low) + len(pinned) + len(seg):]
    bank = pinned + list(bank_pool[: b_bits - len(pinned)])
    if len(bank) < b_bits:  # pragma: no cover
        raise LayoutError("failed to complete bank bits")

    offset_bases = vec + subword + bank + seg
    layout = memory_layout_from_bases(offset_bases, out_sizes)
    if not layout.is_invertible():  # pragma: no cover - by construction
        raise LayoutError("swizzled layout is not invertible")
    return SwizzlePlan(
        memory_layout=layout,
        vec_basis=tuple(vec),
        subword_basis=tuple(subword),
        bank_basis=tuple(bank),
        seg_basis=tuple(seg),
        elem_bits=elem_bits,
        conflict_free=conflict_free,
    )
