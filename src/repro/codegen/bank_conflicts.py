"""Analytic bank-conflict accounting (Lemma 9.4).

Given a shared layout structured as ``Vec x Bank x Seg`` and a
distributed layout accessing it, the number of wavefronts per warp
access is ``n * c`` where ``c = |span(S_Vec u S_Seg) n span(L_Thr)|``
and ``n`` is the number of banks each vectorized element covers.  The
simulator (:mod:`repro.gpusim.memory`) measures the same quantity
empirically; tests assert they agree.
"""

from __future__ import annotations


from repro.core.dims import LANE
from repro.core.layout import LinearLayout
from repro.codegen.swizzle import SwizzlePlan
from repro.f2.subspace import Subspace


def access_wavefronts(
    plan: SwizzlePlan,
    dist_layout: LinearLayout,
    warp_size: int = 32,
) -> int:
    """Wavefronts per warp-wide vectorized access (Lemma 9.4).

    ``c`` counts the coset collisions between the segment structure
    and the accessing threads; each vectorized element spanning ``n``
    banks multiplies the cost (128-byte transaction splitting).
    """
    d = dist_layout.total_out_bits()
    elem_bytes = max(1, plan.elem_bits // 8)
    low = list(plan.vec_basis) + list(plan.subword_basis)
    thr = Subspace(
        d, [x for x in dist_layout.basis_images_flat(LANE) if x]
    )
    # Threads whose offsets differ only below word granularity share a
    # word (broadcast/merge) — subtract those from the collision count.
    c_all = Subspace(d, low + list(plan.seg_basis)).intersect(thr).rank
    c_free = Subspace(d, low).intersect(thr).rank
    c = 1 << (c_all - c_free)
    n = max(1, (plan.vec_elems * elem_bytes) // 4)
    return n * c


def conversion_wavefronts(
    plan: SwizzlePlan,
    src_layout: LinearLayout,
    dst_layout: LinearLayout,
    warp_size: int = 32,
) -> dict:
    """Read and write wavefront counts for a conversion through shared
    memory staged with ``plan``."""
    return {
        "write": access_wavefronts(plan, src_layout, warp_size),
        "read": access_wavefronts(plan, dst_layout, warp_size),
    }
