"""Warp-shuffle lowering of ``tl.gather`` (Section 5.5).

When every element along the gather axis lives within one warp
(``L_Wrp^axis`` all zero), the gather can be served by warp shuffles
instead of a shared-memory round trip.  Each output position costs
``n = 2^{|L_Thr^axis|}`` shuffle rounds: in round ``i`` every lane
broadcasts its ``i``-th slice along the axis and keeps the incoming
value only if the (data-dependent) source register matches.

The plan is static; the simulator resolves the data-dependent register
and lane choices when it executes with concrete index values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dims import LANE, REGISTER, WARP
from repro.core.layout import LinearLayout


class GatherPlanError(ValueError):
    """The gather cannot use the warp-shuffle fast path."""


@dataclass(frozen=True)
class GatherPlan:
    """Static shape of a warp-shuffle gather.

    ``axis_lane_bits``/``axis_reg_bits`` count how the gather axis is
    spread over lanes and registers; the number of shuffle rounds per
    output register slot is ``2^{axis_lane_bits}``, and the total
    shuffle instruction count is ``rounds_per_position *
    positions_per_thread``.
    """

    axis: int
    axis_lane_bits: int
    axis_reg_bits: int
    positions_per_thread: int

    @property
    def rounds_per_position(self) -> int:
        """Shuffle rounds per output position: 2^|L_Thr^axis|."""
        return 1 << self.axis_lane_bits

    @property
    def total_shuffles(self) -> int:
        """Total shuffle instructions for the whole gather."""
        return self.rounds_per_position * self.positions_per_thread

    def to_program(self, layout: LinearLayout):
        """The gather as a warp program (unified instruction IR).

        The plan holds only the static shape; the program carries the
        layout so the interpreter can resolve the data-dependent
        lane/register routing at execution time.
        """
        from repro.program.lower import lower_gather_shuffle

        return lower_gather_shuffle(layout, self.axis)


def axis_component_bits(layout: LinearLayout, in_dim: str, axis: int) -> int:
    """How many ``in_dim`` basis vectors hit output dim ``axis``."""
    count = 0
    for img in layout.bases.get(in_dim, []):
        if img[axis] != 0:
            count += 1
    return count


def can_gather_with_shuffles(layout: LinearLayout, axis: int) -> bool:
    """The Section 5.5 test: all of ``L_Wrp^axis`` are zero."""
    return axis_component_bits(layout, WARP, axis) == 0


def plan_gather(layout: LinearLayout, axis: int) -> GatherPlan:
    """Plan a warp-shuffle gather; raises if the axis crosses warps."""
    names = list(layout.out_dims)
    if not 0 <= axis < len(names):
        raise GatherPlanError(f"axis {axis} out of range")
    if not can_gather_with_shuffles(layout, axis):
        raise GatherPlanError(
            "gather axis is distributed across warps; shared memory "
            "is required"
        )
    lane_bits = axis_component_bits(layout, LANE, axis)
    reg_bits = axis_component_bits(layout, REGISTER, axis)
    positions = layout.in_dim_size(REGISTER)
    return GatherPlan(
        axis=axis,
        axis_lane_bits=lane_bits,
        axis_reg_bits=reg_bits,
        positions_per_thread=positions,
    )
