"""Broadcast/duplicate detection for reductions (Section 5.1).

Once a layout is linear, "identifying threads and warps with
duplicated data reduces to detecting zero columns in the layout
matrix".  These helpers drive the Table 4 benchmark: the number of
shared-memory stores a cross-warp reduction needs with and without
duplicate elimination.
"""

from __future__ import annotations

from typing import Dict

from repro.core.dims import LANE, REGISTER, WARP
from repro.core.layout import LinearLayout
from repro.f2.bitvec import popcount


def duplicate_groups(layout: LinearLayout) -> Dict[str, int]:
    """Per input dim, the replication factor due to free bits.

    A replication factor of ``2**k`` in ``lane`` means each logical
    element is held by ``2**k`` lanes.
    """
    masks = layout.free_variable_masks()
    return {d: 1 << popcount(m) for d, m in masks.items()}


def unique_owner_count(layout: LinearLayout) -> int:
    """Hardware slots holding distinct roles after deduplication."""
    total = (
        layout.in_dim_size(REGISTER)
        * layout.in_dim_size(LANE)
        * layout.in_dim_size(WARP)
    )
    dup = 1
    for factor in duplicate_groups(layout).values():
        dup *= factor
    return total // dup


def _unique_registers(layout: LinearLayout) -> int:
    """Registers per thread after removing duplicate-data registers."""
    free_reg = layout.free_variable_masks().get(REGISTER, 0)
    return layout.in_dim_size(REGISTER) >> popcount(free_reg)


def _combining_warps(layout: LinearLayout) -> int:
    """Warps holding duplicates of each partial (the cross-warp combine
    fan-in): the free warp bits of the post-reduction layout."""
    free_warp = layout.free_variable_masks().get(WARP, 0)
    return 1 << popcount(free_warp)


def reduction_store_count(
    partial_layout: LinearLayout, dedupe: bool
) -> int:
    """Static per-thread shared stores when a reduction spills partials.

    Cross-warp reductions stage per-warp partial results in shared
    memory.  Legacy Triton (``dedupe=False``) emits a store for every
    register slot; the linear engine skips registers identified as
    duplicates by the zero columns of the layout matrix (Section 5.1)
    — the source of Table 4's instruction reduction.
    """
    if not dedupe:
        return partial_layout.in_dim_size(REGISTER)
    return _unique_registers(partial_layout)


def reduction_load_count(
    partial_layout: LinearLayout, dedupe: bool
) -> int:
    """Static per-thread shared loads for the cross-warp combine.

    Each surviving partial is re-read once per combining warp; without
    deduplication every duplicate register slot re-reads its own
    copies too.
    """
    fan_in = _combining_warps(partial_layout)
    if not dedupe:
        return partial_layout.in_dim_size(REGISTER) * fan_in
    return _unique_registers(partial_layout) * fan_in
