"""The layout-conversion planner (Section 5.4).

``plan_conversion`` is the compiler's decision procedure: given source
and destination distributed layouts it picks, in order of preference,

1. **no-op** — the layouts are equivalent (e.g. a Blocked and a Sliced
   layout describing the same map; legacy Triton could not compare
   across kinds, missing the welford no-op of Section 6.2);
2. **register permutation** — only ``(B^{-1}A)_Reg`` differs;
3. **warp shuffles** — warp components match and nothing broadcasts
   (Section 5.4's fast path, bypassing shared memory entirely);
4. **shared memory** — the general path, staged through either the
   optimal swizzled layout (linear mode) or the legacy padded layout.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from repro import cache as _cache
from repro.core.dims import LANE, REGISTER, WARP
from repro.core.errors import LayoutError
from repro.core.layout import LinearLayout
from repro.codegen.plan import (
    Barrier,
    ConversionPlan,
    RegisterPermute,
    SharedLoad,
    SharedStore,
)
from repro.codegen.shuffles import ShufflePlanError, plan_warp_shuffle
from repro.codegen.swizzle import SwizzlePlan, optimal_swizzled_layout
from repro.codegen.views import DistributedView
from repro.hardware.spec import GpuSpec, RTX4090


class ConversionKind(enum.Enum):
    """The four lowering strategies, cheapest first."""
    NOOP = "noop"
    REGISTER = "register"
    SHUFFLE = "shuffle"
    SHARED = "shared"


def classify_conversion(
    src: LinearLayout, dst: LinearLayout
) -> ConversionKind:
    """Which lowering the planner will choose for ``src -> dst``."""
    if dict(src.out_dim_sizes()) != dict(dst.out_dim_sizes()):
        raise LayoutError("conversion endpoints differ in logical shape")
    if src.equivalent(dst):
        return ConversionKind.NOOP
    same_lanes = src.basis_images_flat(LANE) == dst.basis_images_flat(LANE)
    same_warps = src.basis_images_flat(WARP) == dst.basis_images_flat(WARP)
    if same_lanes and same_warps:
        return ConversionKind.REGISTER
    if same_warps:
        sv, dv = DistributedView(src), DistributedView(dst)
        # Register broadcasting is deduplicated inside the shuffle
        # planner; only lane broadcasting forces shared memory.
        broadcasts = any(
            v.has_broadcasting(LANE) for v in (sv, dv)
        )
        if not broadcasts:
            return ConversionKind.SHUFFLE
    return ConversionKind.SHARED


def _register_permutation(
    src: LinearLayout, dst: LinearLayout
) -> RegisterPermute:
    """The table ``dst_reg <- src_reg``, uniform across lanes/warps."""
    sv, dv = DistributedView(src), DistributedView(dst)
    table = []
    for r in range(dst.in_dim_size(REGISTER)):
        p = dv.flat_of({REGISTER: r})
        table.append(sv.reg_of(p))
    return RegisterPermute(tuple(table))


def _group_contiguous(
    pairs: List[Tuple[int, int]], max_vec: int
) -> List[Tuple[int, Tuple[int, ...]]]:
    """Group (offset, reg) pairs into aligned power-of-two vectors.

    Pairs are consumed in *register* order so every lane of the warp
    groups the same registers into the same instruction — instructions
    then align with the affine cosets the swizzle algorithm reasons
    about (Lemma 9.4 counts conflicts per coset; mixing cosets in one
    instruction would reintroduce conflicts the analysis excluded).
    Within a run the offsets must be contiguous and aligned.
    """
    out: List[Tuple[int, Tuple[int, ...]]] = []
    i = 0
    while i < len(pairs):
        run = 1
        while (
            i + run < len(pairs)
            and pairs[i + run][0] == pairs[i][0] + run
        ):
            run += 1
        vec = max_vec
        base = pairs[i][0]
        while vec > 1 and (run < vec or base % vec != 0):
            vec >>= 1
        out.append((base, tuple(reg for _, reg in pairs[i: i + vec])))
        i += vec
    return out


def _vec_bit_positions(
    layout: LinearLayout, vec_basis: Sequence[int]
) -> Optional[List[int]]:
    """Register-bit indices whose flat images form the Vec subspace."""
    images = layout.basis_images_flat(REGISTER)
    positions = []
    for v in vec_basis:
        try:
            positions.append(images.index(v))
        except ValueError:
            return None
    return positions


def _shared_accesses(
    layout: LinearLayout,
    view: DistributedView,
    offset_of_flat,
    num_warps: int,
    warp_size: int,
    max_vec_elems: int,
    dedupe_broadcast: bool,
    vec_basis: Optional[Sequence[int]] = None,
    sort_by_offset: bool = False,
) -> Tuple[Tuple[Tuple[int, Tuple[int, ...]], ...], ...]:
    """Per-CTA-thread vectorized access lists for a layout.

    ``offset_of_flat`` maps a flattened logical position to a shared
    element offset.  With ``dedupe_broadcast`` (linear mode), replicas
    — hardware indices whose free bits are non-zero — are skipped,
    which is the Table 4 instruction saving.

    When ``vec_basis`` is given (the optimal-swizzle path), registers
    are enumerated so the Vec-subspace register bits run fastest —
    every instruction then covers exactly one vectorized coset, as the
    swizzle analysis assumes.
    """
    free = layout.free_variable_masks()
    free_reg = free.get(REGISTER, 0)
    free_lane = free.get(LANE, 0)
    free_warp = free.get(WARP, 0)
    regs = layout.in_dim_size(REGISTER)
    reg_order = list(range(regs))
    if vec_basis:
        positions = _vec_bit_positions(layout, vec_basis)
        if positions is not None:
            n_bits = layout.in_dim_size_log2(REGISTER)
            others = [i for i in range(n_bits) if i not in positions]
            bit_order = positions + others  # vec bits run fastest
            reg_order = []
            for counter in range(regs):
                r = 0
                for j, bit in enumerate(bit_order):
                    if (counter >> j) & 1:
                        r |= 1 << bit
                reg_order.append(r)
    accesses = []
    for w in range(num_warps):
        for l in range(warp_size):
            if l >= layout.in_dim_size(LANE) or w >= layout.in_dim_size(WARP):
                accesses.append(())
                continue
            if dedupe_broadcast and ((l & free_lane) or (w & free_warp)):
                accesses.append(())
                continue
            pairs = []
            for r in reg_order:
                if dedupe_broadcast and (r & free_reg):
                    continue
                p = view.flat_of({REGISTER: r, LANE: l, WARP: w})
                pairs.append((offset_of_flat(p), r))
            if sort_by_offset:
                # Legacy staging groups by raw memory contiguity; the
                # optimal path keeps register (coset) order instead.
                pairs.sort()
            accesses.append(tuple(_group_contiguous(pairs, max_vec_elems)))
    return tuple(accesses)


def plan_conversion(
    src: LinearLayout,
    dst: LinearLayout,
    elem_bits: int,
    spec: GpuSpec = RTX4090,
    allow_shuffle: bool = True,
    swizzle_mode: str = "optimal",
    pad_elems: Optional[int] = None,
    dedupe_broadcast: bool = True,
    memory_layout: Optional[LinearLayout] = None,
) -> ConversionPlan:
    """Lower a layout conversion to an executable plan.

    ``swizzle_mode`` selects the shared staging strategy: ``optimal``
    (the Section 5.4 algorithm), ``padded`` (the legacy heuristic —
    pad each bank row to spread conflicts, at the price of footprint
    and vectorization), or ``none`` (raw rows, the ablation baseline).
    ``allow_shuffle=False`` reproduces the legacy always-through-shared
    behaviour benchmarked in Figure 7.

    ``memory_layout`` pins the staging layout (offset -> logical dims)
    instead of letting the planner choose — the situation where
    hardware dictates the shared layout, e.g. a tile another consumer
    (wgmma) must read with a specific swizzle.

    Plans are memoized in :data:`repro.cache.plans` keyed on the
    canonical layout keys, the hardware spec, and every planner
    option; callers must treat the returned plan as immutable (its
    steps already are).  ``repro.cache.clear()`` invalidates;
    ``REPRO_CACHE=0`` bypasses.
    """
    key = (
        "plan_conversion",
        src.canonical_key(),
        dst.canonical_key(),
        elem_bits,
        spec,
        allow_shuffle,
        swizzle_mode,
        pad_elems,
        dedupe_broadcast,
        None if memory_layout is None else memory_layout.canonical_key(),
    )
    return _cache.cached(
        _cache.plans,
        key,
        lambda: _plan_conversion_uncached(
            src,
            dst,
            elem_bits,
            spec,
            allow_shuffle,
            swizzle_mode,
            pad_elems,
            dedupe_broadcast,
            memory_layout,
        ),
    )


def _plan_conversion_uncached(
    src: LinearLayout,
    dst: LinearLayout,
    elem_bits: int,
    spec: GpuSpec,
    allow_shuffle: bool,
    swizzle_mode: str,
    pad_elems: Optional[int],
    dedupe_broadcast: bool,
    memory_layout: Optional[LinearLayout],
) -> ConversionPlan:
    from repro.layouts.cta import same_block_component, strip_block

    if not same_block_component(src, dst):
        raise LayoutError(
            "conversion moves data across CTAs; distributed shared "
            "memory / global round trips are outside intra-CTA codegen"
        )
    # Equal block components: the conversion is identical within each
    # CTA, so plan on the per-CTA quotient.
    src = strip_block(src)
    dst = strip_block(dst)
    kind = classify_conversion(src, dst)
    if kind == ConversionKind.NOOP:
        return ConversionPlan(kind="noop", src=src, dst=dst)
    if kind == ConversionKind.REGISTER:
        return ConversionPlan(
            kind="register",
            src=src,
            dst=dst,
            steps=[_register_permutation(src, dst)],
        )
    if kind == ConversionKind.SHUFFLE and allow_shuffle:
        try:
            rounds = plan_warp_shuffle(
                src, dst, elem_bits, shuffle_bits=spec.shuffle_bytes * 8
            )
            return ConversionPlan(
                kind="shuffle", src=src, dst=dst, steps=list(rounds)
            )
        except ShufflePlanError as exc:
            note = f"shuffle fallback: {exc}"
        else:  # pragma: no cover
            note = ""
    else:
        note = ""

    # Shared-memory path.
    elem_bytes = max(1, elem_bits // 8)
    num_warps = max(src.in_dim_size(WARP), dst.in_dim_size(WARP))
    sv, dv = DistributedView(src), DistributedView(dst)
    d = src.total_out_bits()
    notes = [note] if note else []

    if memory_layout is not None:
        fixed = _plan_from_memory_layout(
            memory_layout, src, dst, elem_bits
        )
        steps, extra_notes = _shared_steps_for_swizzle(
            fixed, src, dst, sv, dv, elem_bits, spec,
            num_warps, dedupe_broadcast,
        )
        return ConversionPlan(
            kind="shared",
            src=src,
            dst=dst,
            steps=steps,
            shared_bytes=(1 << d) * elem_bytes,
            notes=notes + ["fixed staging layout"] + extra_notes,
        )
    if swizzle_mode == "optimal":
        candidates = []
        if (spec.has_ldmatrix or spec.has_stmatrix) and 8 <= elem_bits <= 32:
            staged = _try_matrix_staging(src, dst, dv, elem_bits, spec)
            if staged is not None:
                candidates.append(staged)
        candidates.append(
            optimal_swizzled_layout(
                src,
                dst,
                elem_bits,
                bank_row_bytes=spec.bank_row_bytes,
                max_vector_bits=spec.max_vector_bits,
            )
        )
        best = None
        for swplan in candidates:
            steps, extra_notes = _shared_steps_for_swizzle(
                swplan, src, dst, sv, dv, elem_bits, spec,
                num_warps, dedupe_broadcast,
            )
            candidate = ConversionPlan(
                kind="shared",
                src=src,
                dst=dst,
                steps=steps,
                shared_bytes=(1 << d) * elem_bytes,
                notes=notes + extra_notes,
            )
            cost = _plan_cost(candidate, spec)
            if best is None or cost < best[0]:
                best = (cost, candidate)
        return best[1]
    elif swizzle_mode == "none":
        # Ablation baseline: raw row-major staging, no swizzle, no
        # padding.  Strided access patterns conflict maximally here —
        # this is what the optimal-swizzling algorithm is up against.
        def offset_of_flat(p: int) -> int:
            return p

        max_vec = max(1, spec.max_vector_bits // elem_bits)
        shared_bytes = (1 << d) * elem_bytes
        notes.append("unswizzled staging (ablation)")
    elif swizzle_mode == "padded":
        if pad_elems is None:
            # One full vector of padding per bank row: preserves
            # vector alignment across padded rows — the legacy
            # "shared memory padding" heuristic.
            pad_elems = max(1, 128 // elem_bits)
        # Row-major flat storage with one pad per bank row worth of
        # elements (the legacy heuristic applied to the flattened
        # tensor).
        row_elems = spec.bank_row_bytes // elem_bytes

        def offset_of_flat(p: int) -> int:
            return p + (p // row_elems) * pad_elems

        # Each side vectorizes by whatever contiguity survives the
        # padding; the grouping below discovers it per lane.
        max_vec = max(1, spec.max_vector_bits // elem_bits)
        total_rows = (1 << d) // row_elems + 1
        shared_bytes = ((1 << d) + total_rows * pad_elems) * elem_bytes
        notes.append(f"padded staging: pad={pad_elems} elems")
    else:
        raise ValueError(f"unknown swizzle_mode {swizzle_mode!r}")

    stores = _shared_accesses(
        src, sv, offset_of_flat, num_warps, spec.warp_size,
        max_vec, dedupe_broadcast, sort_by_offset=True,
    )
    loads = _shared_accesses(
        dst, dv, offset_of_flat, num_warps, spec.warp_size,
        max_vec, dedupe_broadcast=False, sort_by_offset=True,
    )
    steps = [
        SharedStore(accesses=stores, elem_bytes=elem_bytes),
        Barrier(),
        SharedLoad(accesses=loads, elem_bytes=elem_bytes),
    ]
    return ConversionPlan(
        kind="shared",
        src=src,
        dst=dst,
        steps=steps,
        shared_bytes=shared_bytes,
        notes=notes,
    )


def _plan_from_memory_layout(
    memory_layout: LinearLayout,
    src: LinearLayout,
    dst: LinearLayout,
    elem_bits: int,
):
    """Wrap a pinned staging layout as a SwizzlePlan.

    The Vec subspace is whatever prefix of the layout's low offset
    bits both register files can vectorize over; segments are the high
    bits (for the conflict lemma's bookkeeping).
    """
    from repro.codegen.swizzle import SwizzlePlan

    flat_bases = [
        memory_layout.basis_image_flat("offset", i)
        for i in range(memory_layout.in_dim_size_log2("offset"))
    ]
    a_regs = set(x for x in src.basis_images_flat(REGISTER) if x)
    b_regs = set(x for x in dst.basis_images_flat(REGISTER) if x)
    vec = []
    for base in flat_bases:
        if base in a_regs and base in b_regs and (
            (1 << (len(vec) + 1)) * elem_bits <= 128
        ):
            vec.append(base)
        else:
            break
    v = len(vec)
    elem_bytes = max(1, elem_bits // 8)
    b_bits = max(0, 7 - (max(4, (1 << v) * elem_bytes) - 1).bit_length() + 1)
    b_bits = min(b_bits, len(flat_bases) - v)
    return SwizzlePlan(
        memory_layout=memory_layout,
        vec_basis=tuple(vec),
        bank_basis=tuple(flat_bases[v: v + b_bits]),
        seg_basis=tuple(flat_bases[v + b_bits:]),
        elem_bits=elem_bits,
        conflict_free=False,
    )


def _plan_cost(plan: ConversionPlan, spec: GpuSpec) -> float:
    """Price a candidate plan (deferred import: gpusim uses codegen)."""
    from repro.gpusim.opcost import price_plan

    return price_plan(plan, spec).cycles()


def _shared_steps_for_swizzle(
    swplan,
    src: LinearLayout,
    dst: LinearLayout,
    sv: DistributedView,
    dv: DistributedView,
    elem_bits: int,
    spec: GpuSpec,
    num_warps: int,
    dedupe_broadcast: bool,
):
    """Build store/barrier/load steps for one candidate staging layout."""
    from repro.codegen.division import ldmatrix_applicable
    from repro.hardware.instructions import ldmatrix_tile

    elem_bytes = max(1, elem_bits // 8)
    store_map = swplan.memory_layout.invert()

    def offset_of_flat(p: int) -> int:
        coords = swplan.memory_layout.unflatten_out(p)
        return store_map.apply(coords)["offset"]

    stores = _shared_accesses(
        src, sv, offset_of_flat, num_warps, spec.warp_size,
        swplan.vec_elems, dedupe_broadcast, vec_basis=swplan.vec_basis,
    )
    loads = _shared_accesses(
        dst, dv, offset_of_flat, num_warps, spec.warp_size,
        swplan.vec_elems, dedupe_broadcast=False,
        vec_basis=swplan.vec_basis,
    )
    use_ldmatrix = use_stmatrix = False
    if 8 <= elem_bits <= 32:
        tile = ldmatrix_tile(elem_bits)
        if spec.has_ldmatrix:
            use_ldmatrix = ldmatrix_applicable(
                dst, swplan.memory_layout, tile
            )
        if spec.has_stmatrix:
            use_stmatrix = ldmatrix_applicable(
                src, swplan.memory_layout, tile
            )
    extra_notes = [
        f"optimal swizzle: vec={swplan.vec_elems} elems, "
        f"conflict_free={swplan.conflict_free}"
    ]
    if use_ldmatrix or use_stmatrix:
        extra_notes.append(
            f"matrix insts: ldmatrix={use_ldmatrix}, "
            f"stmatrix={use_stmatrix}"
        )
    steps = [
        SharedStore(
            accesses=stores,
            elem_bytes=elem_bytes,
            use_stmatrix=use_stmatrix,
        ),
        Barrier(),
        SharedLoad(
            accesses=loads,
            elem_bytes=elem_bytes,
            use_ldmatrix=use_ldmatrix,
        ),
    ]
    return steps, extra_notes


def _try_matrix_staging(
    src: LinearLayout,
    dst: LinearLayout,
    dv: DistributedView,
    elem_bits: int,
    spec: GpuSpec,
):
    """A staging layout shaped so ldmatrix's tile divides the load map.

    Pins the Vec bits to the destination's low register bases and the
    first bank bits to its low lane bases (the ldmatrix row-segment
    structure), then lets the optimal-swizzle algorithm pick the rest.
    Returns ``None`` when the shape does not work out — the caller
    falls back to the unconstrained swizzle.
    """
    from repro.codegen.division import ldmatrix_applicable
    from repro.codegen.swizzle import SwizzlePlan, memory_layout_from_bases
    from repro.f2.subspace import Subspace
    from repro.hardware.instructions import ldmatrix_tile

    tile = ldmatrix_tile(elem_bits)
    k = tile.in_dim_size_log2(REGISTER)
    b_reg = dv.images(REGISTER, include_zeros=False)
    b_thr = dv.images(LANE, include_zeros=False)
    if len(b_reg) < k or len(b_thr) < 2 or not dst.is_injective():
        return None
    # "Destination-natural" staging: the offset basis is the
    # destination's own basis images, tile bits first.  The load map
    # M^{-1} o D is then block-structured by construction, so the
    # ldmatrix tile divides it (Theorem 5.1).  Among the remaining
    # basis vectors, those outside the source's thread span fill the
    # bank bits to keep the *stores* conflict-free too.
    head = list(b_reg[:k]) + list(b_thr[:2])
    d = dst.total_out_bits()
    elem_bytes = max(1, elem_bits // 8)
    all_images = []
    for dim in (REGISTER, LANE, WARP):
        all_images.extend(dv.images(dim, include_zeros=False))
    rest = [p for p in all_images if p not in head]
    if len(head) + len(rest) != d:
        return None
    a_thr = set(
        x for x in src.basis_images_flat(LANE) if x
    )
    rest.sort(key=lambda p: (p in a_thr, p))
    vec_bytes = (1 << k) * elem_bytes
    b_bits = max(0, 7 - (vec_bytes - 1).bit_length())  # log2(128/vec_bytes)
    offset_bases = head + rest
    layout = memory_layout_from_bases(offset_bases, dst.out_dim_sizes())
    if not layout.is_invertible():
        return None
    seg_basis = tuple(offset_bases[k + b_bits:]) if k + b_bits <= d else ()
    plan = SwizzlePlan(
        memory_layout=layout,
        vec_basis=tuple(offset_bases[:k]),
        bank_basis=tuple(offset_bases[k: k + b_bits]),
        seg_basis=seg_basis,
        elem_bits=elem_bits,
        conflict_free=Subspace(
            d, list(offset_bases[:k]) + list(seg_basis)
        ).trivial_intersection(Subspace(d, sorted(a_thr))),
    )
    if spec.has_ldmatrix and ldmatrix_applicable(
        dst, plan.memory_layout, tile
    ):
        return plan
    if spec.has_stmatrix and ldmatrix_applicable(
        src, plan.memory_layout, tile
    ):
        return plan
    return None


def _legacy_store_contiguity(view: DistributedView) -> int:
    """Contiguous registers (flat) the legacy padded store can vectorize."""
    cols = view.images(REGISTER)
    run = 0
    for i, c in enumerate(cols):
        if c == (1 << i):
            run += 1
        else:
            break
    return 1 << run
