"""Code generation algorithms of Section 5.

Given source/destination distributed layouts and a platform spec,
these modules decide *how* to move data — no-op, register permutation,
warp shuffles, or shared memory with an optimal swizzle — and emit an
executable :class:`~repro.codegen.plan.ConversionPlan` plus the
instruction stream the cost model prices.
"""

from repro.codegen.bank_conflicts import (
    access_wavefronts,
    conversion_wavefronts,
)
from repro.codegen.broadcast import (
    duplicate_groups,
    reduction_store_count,
)
from repro.codegen.conversion import (
    ConversionKind,
    classify_conversion,
    plan_conversion,
)
from repro.codegen.division import (
    match_instruction_tile,
    permute_registers_for_tile,
)
from repro.codegen.gather import GatherPlan, plan_gather
from repro.codegen.plan import (
    Barrier,
    ConversionPlan,
    RegisterPermute,
    SharedLoad,
    SharedStore,
    ShuffleRound,
)
from repro.codegen.shuffles import ShufflePlanError, plan_warp_shuffle
from repro.codegen.swizzle import optimal_swizzled_layout
from repro.codegen.vectorize import (
    global_access_plan,
    vector_width_bits,
)
from repro.codegen.views import DistributedView

__all__ = [
    "Barrier",
    "ConversionKind",
    "ConversionPlan",
    "DistributedView",
    "GatherPlan",
    "RegisterPermute",
    "SharedLoad",
    "SharedStore",
    "ShufflePlanError",
    "ShuffleRound",
    "access_wavefronts",
    "classify_conversion",
    "conversion_wavefronts",
    "duplicate_groups",
    "global_access_plan",
    "match_instruction_tile",
    "optimal_swizzled_layout",
    "permute_registers_for_tile",
    "plan_conversion",
    "plan_gather",
    "plan_warp_shuffle",
    "reduction_store_count",
    "vector_width_bits",
]
