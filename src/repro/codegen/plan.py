"""Executable conversion plans.

A :class:`ConversionPlan` is a list of steps the simulated GPU
(:mod:`repro.gpusim`) can execute and the cost model can price.  Every
step carries explicit per-lane routing tables — nothing is symbolic at
this point, mirroring how the real compiler has fully lowered the
conversion to PTX by this stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.layout import LinearLayout
from repro.obs import core as _obs


@dataclass(frozen=True)
class RegisterPermute:
    """Intra-thread data movement: ``dst_reg <- src_reg``.

    ``dst_to_src[r]`` names the source register whose value ends up in
    destination register ``r`` (the register permutation
    ``(B^{-1}A)_Reg`` of Section 5.4, possibly non-injective when the
    destination broadcasts).
    """

    dst_to_src: Tuple[int, ...]

    def __post_init__(self):
        for r in self.dst_to_src:
            if r < 0:
                raise ValueError(f"negative source register {r}")

    def describe(self) -> str:
        """Readable summary: register count and how many actually move."""
        moved = sum(1 for dst, src in enumerate(self.dst_to_src) if dst != src)
        return (
            f"register_permute: {len(self.dst_to_src)} regs, "
            f"{moved} moved"
        )

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


@dataclass(frozen=True)
class ShuffleRound:
    """One ``shfl.sync`` round (Section 5.4, Figure 4).

    Per destination lane ``l``: read lanes[l] is the source lane,
    ``send_regs[l]`` the registers the *source* lane contributes (a
    vectorized group of ``2^|V|``), and ``recv_regs[l]`` where lane
    ``l`` stores the received values.  Real shuffles move 32 bits per
    instruction; ``insts_per_round`` reflects how many instructions the
    vector width requires.
    """

    src_lane: Tuple[int, ...]
    send_regs: Tuple[Tuple[int, ...], ...]
    recv_regs: Tuple[Tuple[int, ...], ...]
    insts_per_round: int = 1

    def describe(self) -> str:
        """Readable summary: lane fan-in and instruction count."""
        crossing = sum(
            1 for lane, src in enumerate(self.src_lane) if lane != src
        )
        return (
            f"shuffle_round: {len(self.src_lane)} lanes "
            f"({crossing} crossing), {self.insts_per_round} inst/round"
        )

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


@dataclass(frozen=True)
class SharedStore:
    """Per-lane vectorized stores to shared memory.

    ``accesses[lane]`` is a list of ``(base_offset, regs)`` pairs: the
    lane stores the values of ``regs`` contiguously starting at element
    offset ``base_offset``.  All lanes issue in lockstep, so entry
    ``k`` across lanes forms one warp instruction.
    """

    accesses: Tuple[Tuple[Tuple[int, Tuple[int, ...]], ...], ...]
    elem_bytes: int
    use_stmatrix: bool = False

    def describe(self) -> str:
        """Readable summary: lanes, accesses/lane, vector width."""
        return _describe_shared(
            "shared_store", self, "stmatrix" if self.use_stmatrix else ""
        )

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


@dataclass(frozen=True)
class SharedLoad:
    """Per-lane vectorized loads from shared memory (same encoding)."""

    accesses: Tuple[Tuple[Tuple[int, Tuple[int, ...]], ...], ...]
    elem_bytes: int
    use_ldmatrix: bool = False

    def describe(self) -> str:
        """Readable summary: lanes, accesses/lane, vector width."""
        return _describe_shared(
            "shared_load", self, "ldmatrix" if self.use_ldmatrix else ""
        )

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


@dataclass(frozen=True)
class Barrier:
    """A CTA-wide ``bar.sync``."""

    def describe(self) -> str:
        """Readable summary."""
        return "barrier"

    def __repr__(self) -> str:
        return "<barrier>"


def _describe_shared(label: str, step, matrix_note: str) -> str:
    """Shared-memory step summary: lanes, per-lane accesses, widths."""
    lanes = len(step.accesses)
    per_lane = max((len(a) for a in step.accesses), default=0)
    widest = max(
        (len(regs) for lane in step.accesses for _, regs in lane),
        default=0,
    )
    vec_bits = widest * step.elem_bytes * 8
    note = f", {matrix_note}" if matrix_note else ""
    return (
        f"{label}: {lanes} lanes x {per_lane} accesses, "
        f"vec {vec_bits}b{note}"
    )


Step = object  # union of the five step types above


@dataclass
class ConversionPlan:
    """A fully lowered layout conversion.

    ``kind`` records the decision the planner made ("noop",
    "register", "shuffle", "shared"); ``src``/``dst`` keep the layouts
    for verification; ``steps`` is what executes.
    """

    kind: str
    src: LinearLayout
    dst: LinearLayout
    steps: List[Step] = field(default_factory=list)
    shared_bytes: int = 0
    notes: List[str] = field(default_factory=list)
    #: Lazily lowered warp program (see :meth:`program`); derived
    #: state, never part of plan identity.
    _program: object = field(default=None, repr=False, compare=False)

    def program(self):
        """The plan lowered to the unified warp-program IR.

        The plan stays the planner-facing object; everything that
        executes, prices, or traces consumes this
        :class:`~repro.program.ir.WarpProgram` instead.  Lowered once
        and cached on the plan (plans themselves are cached and shared,
        so the program — and the interpreter scratch it carries — is
        amortized across compilations).

        Cached plans are shared across service worker threads, so the
        lazy lowering publishes exactly once: racing threads each
        lower (deterministically identical programs) but the first
        publication wins, keeping one scratch side-table per plan.
        """
        if self._program is None:
            from repro.program.lower import lower_plan

            with _obs.span(
                "codegen:lower_plan",
                kind=self.kind,
                steps=len(self.steps),
            ) as sp:
                lowered = lower_plan(self)
                sp.set("instructions", len(lowered))
            _obs.count("codegen.programs_lowered", 1, kind=self.kind)
            if self._program is None:
                self._program = lowered
        return self._program

    def num_shuffle_rounds(self) -> int:
        """How many shuffle rounds the plan contains."""
        return sum(1 for s in self.steps if isinstance(s, ShuffleRound))

    def uses_shared_memory(self) -> bool:
        """True iff the plan stages data through shared memory."""
        return any(
            isinstance(s, (SharedStore, SharedLoad)) for s in self.steps
        )

    def describe(self) -> str:
        """A multi-line, human-readable rendering of the plan.

        Pass diagnostics and test failures print this instead of the
        raw dataclass dump (whose routing tables run to thousands of
        characters for real conversions).
        """
        src_dims = "x".join(
            str(self.src.out_dim_size(d)) for d in self.src.out_dims
        )
        dst_dims = "x".join(
            str(self.dst.out_dim_size(d)) for d in self.dst.out_dims
        )
        header = f"ConversionPlan[{self.kind}] {src_dims} -> {dst_dims}"
        details = []
        if self.shared_bytes:
            details.append(f"{self.shared_bytes} shared bytes")
        if self.notes:
            details.append("; ".join(self.notes))
        if details:
            header += f" ({', '.join(details)})"
        lines = [header]
        for i, step in enumerate(self.steps):
            text = (
                step.describe()
                if hasattr(step, "describe")
                else repr(step)
            )
            lines.append(f"  {i}: {text}")
        if not self.steps:
            lines.append("  (no steps)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        shared = (
            f", {self.shared_bytes}B shared" if self.shared_bytes else ""
        )
        return (
            f"<ConversionPlan {self.kind}: {len(self.steps)} steps, "
            f"{self.num_shuffle_rounds()} shuffle rounds{shared}>"
        )
