"""Global load/store vectorization (Section 5.1, Table 3).

Two analyses live here:

* the **linear** analysis — the largest identity-prefix of the
  register map in the flattened tensor, which sees contiguity across
  dimension boundaries; and
* the **legacy** analysis — the pre-linear-layout heuristic that only
  looks at runs inside the fastest non-unit dimension, reproducing the
  Table 3 failures (e.g. ``[512, 2] x f8`` stuck at 16-bit accesses).

Plus the anchor-layout choices of the two compilers: the legacy
default blocked encoding and the vectorization-maximizing layout the
linear engine can pick because it can convert out of it cheaply.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.dims import LANE, REGISTER, WARP
from repro.core.layout import LinearLayout
from repro.core.properties import largest_vectorization
from repro.core.reshape import reshape_layout
from repro.hardware.instructions import Instruction, InstructionKind
from repro.hardware.spec import GpuSpec, RTX4090
from repro.layouts.blocked import BlockedLayout
from repro.f2.bitvec import log2_int


def vector_width_bits(
    layout: LinearLayout,
    elem_bits: int,
    max_vector_bits: int = 128,
) -> int:
    """Per-lane access width (bits) with the linear-layout analysis."""
    return largest_vectorization(
        layout, elem_bits, max_vector_bits=max_vector_bits
    )


def legacy_vector_width_bits(
    blocked: BlockedLayout,
    shape: Sequence[int],
    elem_bits: int,
    max_vector_bits: int = 128,
) -> int:
    """The legacy heuristic's access width.

    Contiguity is measured only along the fastest *non-unit* dimension
    (the axis-info analysis walked strides one dimension at a time),
    so elements contiguous across a dimension boundary are invisible.
    """
    for dim in blocked.order:
        if shape[dim] > 1:
            run = min(blocked.size_per_thread[dim], shape[dim])
            break
    else:
        run = 1
    bits = run * elem_bits
    while bits > max_vector_bits:
        bits >>= 1
    return max(bits, min(elem_bits, max_vector_bits))


def legacy_default_blocked(
    shape: Sequence[int],
    elem_bits: int,
    num_warps: int = 4,
    warp_size: int = 32,
) -> BlockedLayout:
    """Legacy Triton's default blocked encoding for a load/store.

    Vector elements are confined to the last dimension; remaining
    elements per thread stack along the outer dims (the wrap-around
    replication).  For ``[512, 1]`` this yields 4 rows per thread with
    unit width — which the legacy analysis then vectorizes along dim0,
    the Table 3 ``v1.b32`` row.
    """
    rank = len(shape)
    order = tuple(range(rank - 1, -1, -1))
    total = 1
    for s in shape:
        total *= s
    threads = num_warps * warp_size
    per_thread = max(1, total // threads)
    vec = min(shape[order[0]], 128 // elem_bits, per_thread)
    size_per_thread = [1] * rank
    size_per_thread[order[0]] = vec
    remaining = per_thread // vec
    for dim in order[1:]:
        take = min(remaining, shape[dim])
        size_per_thread[dim] = take
        remaining //= take
        if remaining <= 1:
            break
    tpw = [1] * rank
    remaining_threads = warp_size
    for dim in order:
        avail = shape[dim] // size_per_thread[dim]
        take = min(remaining_threads, avail)
        take = 1 << log2_int(take) if take & (take - 1) == 0 else 1 << (
            take.bit_length() - 1
        )
        tpw[dim] = take
        remaining_threads //= take
        if remaining_threads <= 1:
            break
    if remaining_threads > 1:
        tpw[order[-1]] *= remaining_threads
    wpc = [1] * rank
    remaining_warps = num_warps
    for dim in order:
        avail = max(1, shape[dim] // (size_per_thread[dim] * tpw[dim]))
        take = min(remaining_warps, avail)
        take = 1 << (take.bit_length() - 1)
        wpc[dim] = take
        remaining_warps //= take
        if remaining_warps <= 1:
            break
    if remaining_warps > 1:
        wpc[order[-1]] *= remaining_warps
    return BlockedLayout(
        size_per_thread=tuple(size_per_thread),
        threads_per_warp=tuple(tpw),
        warps_per_cta=tuple(wpc),
        order=order,
    )


def best_coalesced_layout(
    shape: Sequence[int],
    elem_bits: int,
    num_warps: int = 4,
    warp_size: int = 32,
    max_vector_bits: int = 128,
) -> LinearLayout:
    """The vectorization-maximizing anchor layout (linear mode).

    Registers take the lowest bits of the flattened tensor (a full
    vector per thread), lanes the next bits (perfect coalescing),
    warps after that, and any remainder wraps into high registers.
    Because linear layouts make conversions cheap and generic, the
    engine is free to anchor loads on this layout (Section 5.1).
    """
    total = 1
    for s in shape:
        log2_int(s)
        total *= s
    total_bits = log2_int(total)
    vec_bits_count = 0
    while (
        (1 << (vec_bits_count + 1)) * elem_bits <= max_vector_bits
        and vec_bits_count + 1 <= total_bits
    ):
        vec_bits_count += 1
    flat = LinearLayout.identity1d(1 << vec_bits_count, REGISTER, "dim0")
    lane_bits = min(log2_int(warp_size), total_bits - vec_bits_count)
    flat = flat * LinearLayout.identity1d(1 << lane_bits, LANE, "dim0")
    warp_bits = min(log2_int(num_warps), total_bits - vec_bits_count - lane_bits)
    flat = flat * LinearLayout.identity1d(1 << warp_bits, WARP, "dim0")
    used = vec_bits_count + lane_bits + warp_bits
    if used < total_bits:
        flat = flat * LinearLayout.identity1d(
            1 << (total_bits - used), REGISTER, "dim0"
        )
    # Pad out missing hardware dims so every layout has all three.
    if lane_bits < log2_int(warp_size):
        flat = flat * LinearLayout(
            {LANE: [(0,)] * (log2_int(warp_size) - lane_bits)},
            {"dim0": 1},
            require_surjective=False,
        )
    if warp_bits < log2_int(num_warps) and num_warps > 1:
        flat = flat * LinearLayout(
            {WARP: [(0,)] * (log2_int(num_warps) - warp_bits)},
            {"dim0": 1},
            require_surjective=False,
        )
    # reshape_layout flattens row-major; the flat dim0 here *is* the
    # row-major flattened index, so reshape recovers the true shape.
    return reshape_layout(flat, list(shape))


def global_access_plan(
    layout: LinearLayout,
    elem_bits: int,
    spec: GpuSpec = RTX4090,
    kind: InstructionKind = InstructionKind.GLOBAL_LOAD,
    vector_bits: int = None,
) -> Tuple[Instruction, int]:
    """The instruction record and per-thread count for a global access."""
    if vector_bits is None:
        vector_bits = vector_width_bits(
            layout, elem_bits, spec.max_vector_bits
        )
    regs = layout.in_dim_size(REGISTER)
    total_bits = regs * elem_bits
    count = max(1, total_bits // vector_bits)
    return Instruction(kind=kind, vector_bits=vector_bits, count=count), count


def ptx_vector_name(vector_bits: int) -> str:
    """Table 3's instruction naming, e.g. 128 -> ``v4.b32``."""
    if vector_bits >= 32:
        return f"v{vector_bits // 32}.b32"
    return f"v1.b{vector_bits}"
