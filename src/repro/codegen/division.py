"""SIMD hardware-primitive matching (Section 5.3, Theorem 5.1).

To use ``ldmatrix``/``stmatrix``/vectorized shared instructions, the
register<->offset map ``L = M^{-1} o D`` (memory layout inverse
composed with the distributed layout) must be left-divisible by the
instruction's tile.  When it is not, *generalized vectorization*
permutes the registers (``L' = P_Reg L``) to expose the structure —
division and permutation are computed together, column by column.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import cache as _cache
from repro.core.dims import REGISTER
from repro.core.layout import LinearLayout
from repro.core.ops import divide_left
from repro.codegen.plan import RegisterPermute


def register_offset_map(
    dist_layout: LinearLayout, memory_layout: LinearLayout
) -> LinearLayout:
    """``M^{-1} o D``: hardware indices -> shared offsets.

    ``memory_layout`` maps offsets to logical coords (Definition 4.14)
    and ``dist_layout`` maps registers/lanes/warps to the same coords,
    so the composition routes each register slot to its offset.
    """
    return memory_layout.invert().compose(dist_layout)


def match_instruction_tile(
    reg_off: LinearLayout, tile: LinearLayout
) -> bool:
    """Theorem 5.1: the instruction applies iff ``L / T`` exists."""
    return divide_left(reg_off, tile) is not None


def permute_registers_for_tile(
    reg_off: LinearLayout, tile: LinearLayout
) -> Optional[Tuple[LinearLayout, RegisterPermute]]:
    """Generalized vectorization (Section 5.3).

    Search for a register permutation ``P`` such that the permuted map
    is left-divisible by ``tile``; returns the permuted map and the
    permutation step, or ``None``.  The search is greedy: for each low
    register bit the tile requires, find a register basis with exactly
    the required image; the remaining registers keep their relative
    order.
    """
    if match_instruction_tile(reg_off, tile):
        identity = tuple(range(reg_off.in_dim_size(REGISTER)))
        return reg_off, RegisterPermute(identity)
    if not tile.has_in_dim(REGISTER):
        return None
    k = tile.in_dim_size_log2(REGISTER)
    n = reg_off.in_dim_size_log2(REGISTER)
    if k > n:
        return None
    tile_images = [
        tile.basis_image_flat(REGISTER, i) for i in range(k)
    ]
    have = reg_off.basis_images_flat(REGISTER)
    chosen: List[int] = []
    for want in tile_images:
        match = next(
            (
                i
                for i, img in enumerate(have)
                if img == want and i not in chosen
            ),
            None,
        )
        if match is None:
            return None
        chosen.append(match)
    rest = [i for i in range(n) if i not in chosen]
    new_order = chosen + rest  # new bit j <- old bit new_order[j]
    old_bases = reg_off.bases[REGISTER]
    new_bases = [old_bases[i] for i in new_order]
    bases = reg_off.bases
    bases[REGISTER] = new_bases
    permuted = LinearLayout(
        bases, reg_off.out_dim_sizes(), require_surjective=False
    )
    if divide_left(permuted, tile) is None:
        return None
    # Bit reordering corresponds to the register permutation
    # new_reg = permute(old_reg) where each old bit i moves to the new
    # position holding it.
    pos_of_old = {old: new for new, old in enumerate(new_order)}
    size = 1 << n
    dst_to_src = []
    for new_reg in range(size):
        old_reg = 0
        for new_bit in range(n):
            if (new_reg >> new_bit) & 1:
                old_reg |= 1 << new_order[new_bit]
        dst_to_src.append(old_reg)
    del pos_of_old
    return permuted, RegisterPermute(tuple(dst_to_src))


def ldmatrix_applicable(
    dist_layout: LinearLayout,
    memory_layout: LinearLayout,
    tile: LinearLayout,
) -> bool:
    """Whether ldmatrix/stmatrix can service this register<->memory map,
    directly or after a register permutation.

    Memoized on the canonical keys of all three layouts: the planner
    probes this for every candidate staging layout of every
    conversion, and the composition + division behind it are the
    expensive F2 steps.
    """

    def compute() -> bool:
        reg_off = register_offset_map(dist_layout, memory_layout)
        if match_instruction_tile(reg_off, tile):
            return True
        return permute_registers_for_tile(reg_off, tile) is not None

    return _cache.cached(
        _cache.derivations,
        (
            "ldmatrix_applicable",
            dist_layout.canonical_key(),
            memory_layout.canonical_key(),
            tile.canonical_key(),
        ),
        compute,
    )
