"""Fast index views of distributed layouts.

Definition 4.10 guarantees that a distributed layout's matrix is a
permutation matrix interleaved with zero columns, so mapping between
hardware indices and flattened logical positions is pure bit routing.
:class:`DistributedView` precomputes that routing in both directions —
the ``A^{-1}(p)_Reg`` / ``A^{-1}(p)_Thr`` lookups the shuffle and
gather planners of Sections 5.4-5.5 perform per element.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.dims import LANE, REGISTER, WARP
from repro.core.errors import LayoutError
from repro.core.layout import LinearLayout
from repro.core.properties import is_distributed_layout


class DistributedView:
    """Bit-level routing for a distributed layout.

    ``flat_of(reg, lane, warp)`` gives the flattened (row-major)
    logical position; ``owner_of(p)`` gives the canonical owner — the
    hardware index whose *free* (broadcast) bits are zero.
    """

    def __init__(self, layout: LinearLayout):
        if not is_distributed_layout(layout):
            raise LayoutError(
                "DistributedView requires a distributed layout "
                "(Definition 4.10)"
            )
        self.layout = layout
        self.dims = [d for d in (REGISTER, LANE, WARP) if layout.has_in_dim(d)]
        # columns[dim][bit] = flat image (a power of two or zero).
        self.columns: Dict[str, List[int]] = {
            d: layout.basis_images_flat(d) for d in self.dims
        }
        # Reverse routing: flat bit position -> (dim, bit index).
        self.bit_owner: Dict[int, Tuple[str, int]] = {}
        for d in self.dims:
            for i, col in enumerate(self.columns[d]):
                if col:
                    self.bit_owner[col.bit_length() - 1] = (d, i)

    @property
    def total_bits(self) -> int:
        """Bits of the flattened logical tensor."""
        return self.layout.total_out_bits()

    def flat_of(self, indices: Dict[str, int]) -> int:
        """Flattened logical position of a hardware index."""
        out = 0
        for d in self.dims:
            v = indices.get(d, 0)
            cols = self.columns[d]
            bit = 0
            while v:
                if v & 1:
                    out ^= cols[bit]
                v >>= 1
                bit += 1
        return out

    def owner_of(self, flat: int) -> Dict[str, int]:
        """Canonical hardware owner of a flattened position."""
        indices = {d: 0 for d in self.dims}
        while flat:
            low = flat & -flat
            pos = low.bit_length() - 1
            if pos not in self.bit_owner:
                raise LayoutError(
                    f"flat position bit {pos} is outside the layout image"
                )
            d, i = self.bit_owner[pos]
            indices[d] |= 1 << i
            flat ^= low
        return indices

    def reg_of(self, flat: int) -> int:
        """Canonical register index owning a flattened position."""
        return self.owner_of(flat).get(REGISTER, 0)

    def lane_of(self, flat: int) -> int:
        """Canonical lane index owning a flattened position."""
        return self.owner_of(flat).get(LANE, 0)

    def warp_of(self, flat: int) -> int:
        """Canonical warp index owning a flattened position."""
        return self.owner_of(flat).get(WARP, 0)

    def images(self, dim: str, include_zeros: bool = True) -> List[int]:
        """The paper's ``L_Reg`` / ``L_Thr`` / ``L_Wrp`` column sets."""
        cols = self.columns.get(dim, [])
        if include_zeros:
            return list(cols)
        return [c for c in cols if c]

    def has_broadcasting(self, dim: Optional[str] = None) -> bool:
        """True iff any (or the given) input dim has a zero column."""
        dims = [dim] if dim else self.dims
        return any(0 in self.columns.get(d, []) for d in dims)

    def replicas_of(self, indices: Dict[str, int]) -> List[Dict[str, int]]:
        """All hardware indices holding the same element.

        Enumerates the free (zero-column) bits; used when a conversion
        must fan a value out to every broadcast copy.
        """
        free_bits: List[Tuple[str, int]] = []
        for d in self.dims:
            for i, col in enumerate(self.columns[d]):
                if col == 0:
                    free_bits.append((d, i))
        base = {
            d: indices.get(d, 0)
            & ~sum(
                (1 << i)
                for dd, i in free_bits
                if dd == d
            )
            for d in self.dims
        }
        out = []
        for mask in range(1 << len(free_bits)):
            idx = dict(base)
            for k, (d, i) in enumerate(free_bits):
                if (mask >> k) & 1:
                    idx[d] |= 1 << i
            out.append(idx)
        return out
