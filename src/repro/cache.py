"""Layout interning and compilation caching.

A production deployment of the layout engine (the ROADMAP's serving
scenario) issues the same small set of layouts and conversions over
and over; Triton's C++ implementation and CuTe's layout algebra both
hash-cons layouts so composition, division, and conversion planning
are amortized.  This module is the Python equivalent: a handful of
named, bounded, LRU caches with shared statistics, plus the interning
registry that makes structurally equal :class:`LinearLayout` objects
the same object.

Caches
------
``layouts``
    The interning registry: canonical-bases key -> representative
    layout instance (see :meth:`LinearLayout.intern`).
``derivations``
    Expensive F2 derivations keyed on canonical layout keys:
    surjectivity rank, matrix views, inverses, left division, free
    variable masks.
``plans``
    Fully lowered :class:`ConversionPlan` objects keyed on
    ``(src, dst, hardware spec, planner options)`` — the PlanCache of
    the serving hot path.
``engine``
    :class:`LayoutEngine` anchors and priced conversions keyed on the
    engine configuration ``(spec, mode, num_warps)``.

Every cached value is immutable or treated as immutable by all
callers; plans and layouts are shared across compilations.

Thread safety
-------------
The caches are shared by every compilation in the process, including
the worker pool of :class:`repro.serve.CompileService`, so the whole
module is safe under concurrent use (``docs/SERVING.md`` states the
contract; ``tests/test_cache_concurrency.py`` stresses it):

* Every :class:`BoundedCache` guards its map, its LRU eviction loop,
  and its statistics with one re-entrant lock.  Factories passed to
  :meth:`BoundedCache.get_or_create` run *outside* the lock (cached
  computations recurse into other caches), so two racing threads may
  compute the same value — the first insertion wins and every caller
  observes the same object afterwards.
* :meth:`BoundedCache.clear` bumps a generation counter; an insertion
  completing a lookup that started before the clear is dropped, so an
  explicit invalidation cannot be resurrected by in-flight factories.
* :func:`counters` reads *thread-local* hit/miss totals without
  taking any lock, which is what lets the pass manager attribute
  cache traffic to the pass that caused it even while other threads
  compile concurrently.
* The off-switch is **thread-local**: :func:`set_enabled` and
  :func:`disabled` affect only the calling thread (a service worker
  debugging with the cache off must not disable it for the whole
  process); :func:`set_enabled_default` changes the process-wide
  default that threads without an override inherit.

Observability
-------------
When :mod:`repro.obs` is recording (``REPRO_OBS=1``), every lookup
additionally bumps the labeled counters ``cache.hits{cache=<name>}``
/ ``cache.misses{...}`` and evictions bump
``cache.evictions{...}``, so a capture attributes cache traffic per
cache while :func:`counters` keeps attributing it per thread/pass —
same events, two views.  :func:`publish_obs_gauges` exports the
:func:`stats` snapshot as gauges at capture time.  Disabled, the
mirror is a single ``None`` check per lookup.

Off-switch
----------
Set the environment variable ``REPRO_CACHE=0`` (or call
:func:`set_enabled` / use the :func:`disabled` context manager) to
bypass every cache for debugging.  Results must be bit-identical
either way; ``tests/test_cache.py`` holds that line.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterator, List

from repro.obs import core as _obs

__all__ = [
    "BoundedCache",
    "CacheStats",
    "cached",
    "clear",
    "counters",
    "counters_delta",
    "disabled",
    "enabled",
    "intern_layout",
    "publish_obs_gauges",
    "set_enabled",
    "set_enabled_default",
    "stats",
]

_MISSING = object()


class _ThreadCounters(threading.local):
    """Per-thread hit/miss totals, summed across every cache.

    Monotonic for the lifetime of the thread — :func:`clear` resets
    per-cache statistics but never these, so :func:`counters_delta`
    attribution cannot go backwards mid-pass.
    """

    def __init__(self):  # called once per thread by threading.local
        self.hits = 0
        self.misses = 0


_LOCAL = _ThreadCounters()


@dataclass
class CacheStats:
    """Hit/miss accounting of one named cache."""

    name: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (the ``hits + misses`` invariant)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot."""
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": round(self.hit_rate, 4),
        }


class BoundedCache:
    """A bounded LRU mapping with statistics, safe under threads.

    Entries are evicted least-recently-used first once ``maxsize`` is
    exceeded, so a long-running service cannot grow without bound.
    Lookups, insertions, and the eviction loop all run under one
    re-entrant lock; factory callables run *outside* the lock (cached
    computations recurse into other caches), so two racing threads may
    compute the same value — the first insertion wins and both see a
    consistent object thereafter.  An insertion whose lookup predates
    a :meth:`clear` is dropped rather than resurrecting invalidated
    state.
    """

    def __init__(self, name: str, maxsize: int = 4096, register: bool = True):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self._data: Dict[Hashable, Any] = {}
        # Re-entrant: an evicted value's __del__ (or a logging hook)
        # observing the cache must not deadlock against its own lock.
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._generation = 0
        if register:
            _REGISTRY.append(self)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, recording a hit or miss."""
        with self._lock:
            value = self._data.pop(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                _LOCAL.misses += 1
            else:
                self._data[key] = value  # re-insert: most recently used
                self._hits += 1
                _LOCAL.hits += 1
        # Observability mirror, outside the lock: one ``None`` check
        # when disabled, a labeled counter bump when recording.
        if _obs.is_enabled():
            if value is _MISSING:
                _obs.count("cache.misses", 1, cache=self.name)
            else:
                _obs.count("cache.hits", 1, cache=self.name)
        return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert a value; an earlier racing insertion wins."""
        return self._put(key, value, generation=None)

    def _put(self, key: Hashable, value: Any, generation: int | None) -> Any:
        """Insert under the lock, evicting LRU entries past capacity.

        ``generation`` is the cache generation observed when the
        caller's lookup missed; if a :meth:`clear` ran in between, the
        stale value is returned to the caller but *not* inserted.
        """
        evicted = 0
        try:
            with self._lock:
                if generation is not None and generation != self._generation:
                    return value
                existing = self._data.get(key, _MISSING)
                if existing is not _MISSING:
                    return existing
                self._data[key] = value
                # The eviction loop shares the insertion's critical
                # section: capacity can never be observed exceeded, and a
                # concurrent clear() cannot empty the dict mid-iteration
                # (maxsize >= 1 keeps next(iter(...)) well-defined here).
                while len(self._data) > self.maxsize:
                    self._data.pop(next(iter(self._data)))
                    self._evictions += 1
                    evicted += 1
                return value
        finally:
            if evicted and _obs.is_enabled():
                _obs.count("cache.evictions", evicted, cache=self.name)

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """The cached value, computing and inserting it on a miss.

        Atomic in the sense that matters: every thread asking for the
        same key receives the same object once any insertion has
        landed, and the factory never runs while holding the cache
        lock.
        """
        generation = self._generation
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        return self._put(key, factory(), generation=generation)

    def clear(self) -> None:
        """Drop every entry (statistics are reset too)."""
        with self._lock:
            self._generation += 1
            self._data.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> CacheStats:
        """A point-in-time statistics snapshot.

        Lock-free: plain int reads are atomic under the GIL, so a
        snapshot never blocks compilations; a snapshot taken mid-put
        may tear across fields by one count, which monitoring
        tolerates.
        """
        return CacheStats(
            name=self.name,
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._data),
            maxsize=self.maxsize,
        )


# ----------------------------------------------------------------------
# Global cache instances
# ----------------------------------------------------------------------
_REGISTRY: List[BoundedCache] = []

#: Interning registry: canonical layout key -> representative object.
layouts = BoundedCache("layouts", maxsize=8192)
#: Memoized F2 derivations (rank, matrix, inverse, division, masks).
derivations = BoundedCache("derivations", maxsize=16384)
#: The PlanCache: (src, dst, spec, options) -> ConversionPlan.
plans = BoundedCache("plans", maxsize=2048)
#: LayoutEngine anchors and priced conversions.
engine = BoundedCache("engine", maxsize=4096)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


#: Process-wide default; threads without a local override inherit it.
_enabled_default = _env_enabled()


class _ThreadEnabled(threading.local):
    """Per-thread cache toggle (None = inherit the process default)."""

    def __init__(self):
        self.value: Any = None


_ENABLED_LOCAL = _ThreadEnabled()


def enabled() -> bool:
    """Whether caching is currently active *for this thread*."""
    local = _ENABLED_LOCAL.value
    return _enabled_default if local is None else local


def set_enabled(flag: bool) -> bool:
    """Turn every cache on or off **for the calling thread only**;
    returns the previous effective setting.

    Thread-local on purpose: a :class:`repro.serve.CompileService`
    worker debugging with the cache bypassed must not disable caching
    for every other in-flight compilation.  Use
    :func:`set_enabled_default` for the process-wide switch.

    Disabling does not drop existing entries — call :func:`clear` for
    that — it only bypasses lookups and insertions.
    """
    previous = enabled()
    _ENABLED_LOCAL.value = bool(flag)
    return previous


def set_enabled_default(flag: bool) -> bool:
    """Set the process-wide default toggle; returns the previous one.

    Threads that called :func:`set_enabled` keep their local override.
    """
    global _enabled_default
    previous = _enabled_default
    _enabled_default = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """A context in which every cache is bypassed (this thread only)."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def cached(
    cache: BoundedCache, key: Hashable, factory: Callable[[], Any]
) -> Any:
    """``factory()`` memoized in ``cache`` under ``key``.

    The single gate every caching call site goes through: when the
    off-switch is thrown this degrades to a plain call.
    """
    if not enabled():
        return factory()
    return cache.get_or_create(key, factory)


def intern_layout(layout: Any) -> Any:
    """The canonical representative of a structurally equal layout.

    Keyed on :meth:`LinearLayout.canonical_key`, so two layouts with
    identical bases and output dims intern to the *same object* and
    downstream identity checks (``is``, dict keys) collapse.  Under
    concurrency the registry's first insertion wins, so racing threads
    interning equal layouts still agree on one representative.
    """
    if not enabled():
        return layout
    return layouts.get_or_create(layout.canonical_key(), lambda: layout)


def clear() -> None:
    """Empty every registered cache (the explicit invalidation hook)."""
    for cache in _REGISTRY:
        cache.clear()


def stats() -> Dict[str, CacheStats]:
    """Statistics for every registered cache, by name."""
    return {cache.name: cache.stats() for cache in _REGISTRY}


def publish_obs_gauges() -> None:
    """Export every cache's statistics as :mod:`repro.obs` gauges.

    The same numbers :func:`stats` returns, published as
    ``cache.size{cache=...}`` / ``cache.hit_rate{...}`` /
    ``cache.evictions_total{...}`` series.  Call at capture-export
    time (``python -m repro.obs capture`` does); no-op when
    observability is off, so it is always safe to call.
    """
    if not _obs.is_enabled():
        return
    for name, snap in stats().items():
        _obs.gauge("cache.size", snap.size, cache=name)
        _obs.gauge("cache.maxsize", snap.maxsize, cache=name)
        _obs.gauge("cache.hit_rate", snap.hit_rate, cache=name)
        _obs.gauge("cache.evictions_total", snap.evictions, cache=name)


def counters() -> Dict[str, int]:
    """Hit/miss totals of the **calling thread** across every cache.

    A cheap, lock-free, monotonic snapshot — the pass manager takes
    one before and after each pass and attributes the delta to that
    pass.  Because the totals are thread-local, the attribution stays
    correct while other threads (a :class:`repro.serve.CompileService`
    pool) hammer the same caches concurrently, and no lock is taken on
    the read.
    """
    return {"hits": _LOCAL.hits, "misses": _LOCAL.misses}


def counters_delta(before: Dict[str, int]) -> Dict[str, int]:
    """Hits/misses accumulated *by this thread* since a
    :func:`counters` snapshot.

    Thread-local totals are monotonic (not reset by :func:`clear`),
    but the deltas stay clamped at zero as defense in depth — a
    snapshot carried across threads would otherwise produce nonsense.
    """
    now = counters()
    return {
        "hits": max(0, now["hits"] - before["hits"]),
        "misses": max(0, now["misses"] - before["misses"]),
    }
