"""Layout interning and compilation caching.

A production deployment of the layout engine (the ROADMAP's serving
scenario) issues the same small set of layouts and conversions over
and over; Triton's C++ implementation and CuTe's layout algebra both
hash-cons layouts so composition, division, and conversion planning
are amortized.  This module is the Python equivalent: a handful of
named, bounded, LRU caches with shared statistics, plus the interning
registry that makes structurally equal :class:`LinearLayout` objects
the same object.

Caches
------
``layouts``
    The interning registry: canonical-bases key -> representative
    layout instance (see :meth:`LinearLayout.intern`).
``derivations``
    Expensive F2 derivations keyed on canonical layout keys:
    surjectivity rank, matrix views, inverses, left division, free
    variable masks.
``plans``
    Fully lowered :class:`ConversionPlan` objects keyed on
    ``(src, dst, hardware spec, planner options)`` — the PlanCache of
    the serving hot path.
``engine``
    :class:`LayoutEngine` anchors and priced conversions keyed on the
    engine configuration ``(spec, mode, num_warps)``.

Every cached value is immutable or treated as immutable by all
callers; plans and layouts are shared across compilations.

Off-switch
----------
Set the environment variable ``REPRO_CACHE=0`` (or call
:func:`set_enabled` / use the :func:`disabled` context manager) to
bypass every cache for debugging.  Results must be bit-identical
either way; ``tests/test_cache.py`` holds that line.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterator, List

__all__ = [
    "BoundedCache",
    "CacheStats",
    "cached",
    "clear",
    "counters",
    "counters_delta",
    "disabled",
    "enabled",
    "intern_layout",
    "set_enabled",
    "stats",
]

_MISSING = object()


@dataclass
class CacheStats:
    """Hit/miss accounting of one named cache."""

    name: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot."""
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": round(self.hit_rate, 4),
        }


class BoundedCache:
    """A bounded LRU mapping with statistics.

    Entries are evicted least-recently-used first once ``maxsize`` is
    exceeded, so a long-running service cannot grow without bound.
    Lookups and insertions take the cache lock; factory callables run
    *outside* the lock (cached computations recurse into other
    caches), so two racing threads may compute the same value — the
    first insertion wins and both see a consistent object thereafter.
    """

    def __init__(self, name: str, maxsize: int = 4096):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self._data: Dict[Hashable, Any] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        _REGISTRY.append(self)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, recording a hit or miss."""
        with self._lock:
            value = self._data.pop(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._data[key] = value  # re-insert: most recently used
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert a value; an earlier racing insertion wins."""
        with self._lock:
            existing = self._data.get(key, _MISSING)
            if existing is not _MISSING:
                return existing
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.pop(next(iter(self._data)))
                self._evictions += 1
            return value

    def get_or_create(
        self, key: Hashable, factory: Callable[[], Any]
    ) -> Any:
        """The cached value, computing and inserting it on a miss."""
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value
        return self.put(key, factory())

    def clear(self) -> None:
        """Drop every entry (statistics are reset too)."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> CacheStats:
        """A point-in-time statistics snapshot."""
        with self._lock:
            return CacheStats(
                name=self.name,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self.maxsize,
            )


# ----------------------------------------------------------------------
# Global cache instances
# ----------------------------------------------------------------------
_REGISTRY: List[BoundedCache] = []

#: Interning registry: canonical layout key -> representative object.
layouts = BoundedCache("layouts", maxsize=8192)
#: Memoized F2 derivations (rank, matrix, inverse, division, masks).
derivations = BoundedCache("derivations", maxsize=16384)
#: The PlanCache: (src, dst, spec, options) -> ConversionPlan.
plans = BoundedCache("plans", maxsize=2048)
#: LayoutEngine anchors and priced conversions.
engine = BoundedCache("engine", maxsize=4096)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


_enabled = _env_enabled()


def enabled() -> bool:
    """Whether caching is currently active."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Turn every cache on or off; returns the previous setting.

    Disabling does not drop existing entries — call :func:`clear` for
    that — it only bypasses lookups and insertions.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """A context in which every cache is bypassed."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def cached(
    cache: BoundedCache, key: Hashable, factory: Callable[[], Any]
) -> Any:
    """``factory()`` memoized in ``cache`` under ``key``.

    The single gate every caching call site goes through: when the
    off-switch is thrown this degrades to a plain call.
    """
    if not _enabled:
        return factory()
    return cache.get_or_create(key, factory)


def intern_layout(layout: Any) -> Any:
    """The canonical representative of a structurally equal layout.

    Keyed on :meth:`LinearLayout.canonical_key`, so two layouts with
    identical bases and output dims intern to the *same object* and
    downstream identity checks (``is``, dict keys) collapse.
    """
    if not _enabled:
        return layout
    return layouts.get_or_create(layout.canonical_key(), lambda: layout)


def clear() -> None:
    """Empty every registered cache (the explicit invalidation hook)."""
    for cache in _REGISTRY:
        cache.clear()


def stats() -> Dict[str, CacheStats]:
    """Statistics for every registered cache, by name."""
    return {cache.name: cache.stats() for cache in _REGISTRY}


def counters() -> Dict[str, int]:
    """Aggregate hit/miss totals across every registered cache.

    A cheap monotonic snapshot — the pass manager takes one before and
    after each pass and attributes the delta to that pass, which is
    how per-pass ``cache_hits`` diagnostics are produced without
    threading counters through every call site.
    """
    hits = misses = 0
    for cache in _REGISTRY:
        snap = cache.stats()
        hits += snap.hits
        misses += snap.misses
    return {"hits": hits, "misses": misses}


def counters_delta(before: Dict[str, int]) -> Dict[str, int]:
    """Hits/misses accumulated since a :func:`counters` snapshot.

    Deltas are clamped at zero: a concurrent :func:`clear` (or another
    thread's :meth:`BoundedCache.clear`) resets the underlying
    counters, and a negative attribution would be nonsense.
    """
    now = counters()
    return {
        "hits": max(0, now["hits"] - before["hits"]),
        "misses": max(0, now["misses"] - before["misses"]),
    }
