"""Dense matrices over :math:`\\mathbb{F}_2` with column-major bit packing.

An ``F2Matrix`` with ``rows`` rows and ``cols`` columns stores each
column as an integer bitmask: bit ``i`` of column ``j`` is the matrix
entry ``(i, j)``.  This makes the matrix-vector product ``M @ v`` the
XOR of the columns selected by the set bits of ``v`` — exactly the
computation the paper performs when mapping hardware indices to logical
tensor coordinates (Section 4.1).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.f2.bitvec import bits_of, iter_set_bits


class F2Matrix:
    """An immutable ``rows x cols`` matrix over F2.

    Columns are integers (bit ``i`` = row ``i``).  The class supports
    the operator algebra the paper relies on: multiplication
    (composition), direct sum (the categorical product of layouts,
    Definition 4.3), transpose, stacking, and slicing.
    """

    __slots__ = ("_rows", "_cols", "_columns")

    def __init__(self, rows: int, columns: Sequence[int]):
        if rows < 0:
            raise ValueError(f"rows must be non-negative, got {rows}")
        cols = list(columns)
        limit = 1 << rows
        for j, c in enumerate(cols):
            if not 0 <= c < limit:
                raise ValueError(
                    f"column {j} value {c:#x} does not fit in {rows} rows"
                )
        self._rows = rows
        self._cols = len(cols)
        self._columns = tuple(cols)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(rows: int, cols: int) -> "F2Matrix":
        """The all-zeros matrix."""
        return F2Matrix(rows, [0] * cols)

    @staticmethod
    def identity(n: int) -> "F2Matrix":
        """The n x n identity."""
        return F2Matrix(n, [1 << i for i in range(n)])

    @staticmethod
    def from_rows(rows: Sequence[Sequence[int]]) -> "F2Matrix":
        """Build from a list of rows of 0/1 entries."""
        nrows = len(rows)
        ncols = len(rows[0]) if nrows else 0
        cols = [0] * ncols
        for i, row in enumerate(rows):
            if len(row) != ncols:
                raise ValueError("ragged rows")
            for j, entry in enumerate(row):
                if entry not in (0, 1):
                    raise ValueError(f"entries must be 0/1, got {entry}")
                if entry:
                    cols[j] |= 1 << i
        return F2Matrix(nrows, cols)

    @staticmethod
    def from_cols(rows: int, cols: Iterable[int]) -> "F2Matrix":
        """Build from column bitmasks (alias of the constructor)."""
        return F2Matrix(rows, list(cols))

    # ------------------------------------------------------------------
    # Shape and access
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Number of rows."""
        return self._rows

    @property
    def cols(self) -> int:
        """Number of columns."""
        return self._cols

    @property
    def shape(self) -> Tuple[int, int]:
        """(rows, cols)."""
        return (self._rows, self._cols)

    @property
    def columns(self) -> Tuple[int, ...]:
        """The columns as bitmasks (bit i = row i)."""
        return self._columns

    def column(self, j: int) -> int:
        """Column ``j`` as a bitmask (bit i = row i)."""
        return self._columns[j]

    def entry(self, i: int, j: int) -> int:
        """The (i, j) entry as 0 or 1."""
        if not 0 <= i < self._rows:
            raise IndexError(f"row {i} out of range")
        return (self._columns[j] >> i) & 1

    def row(self, i: int) -> int:
        """Row ``i`` as a bitmask (bit j = column j)."""
        if not 0 <= i < self._rows:
            raise IndexError(f"row {i} out of range")
        out = 0
        for j, c in enumerate(self._columns):
            out |= ((c >> i) & 1) << j
        return out

    def to_rows(self) -> List[List[int]]:
        """Dense row-major list-of-lists of 0/1 entries."""
        return [bits_of(self.row(i), self._cols) for i in range(self._rows)]

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def matvec(self, v: int) -> int:
        """Matrix-vector product over F2: XOR of selected columns."""
        if not 0 <= v < (1 << self._cols):
            raise ValueError(f"vector {v:#x} does not fit in {self._cols} bits")
        out = 0
        for j in iter_set_bits(v):
            out ^= self._columns[j]
        return out

    def __matmul__(self, other: "F2Matrix") -> "F2Matrix":
        """Matrix multiplication ``self @ other`` over F2."""
        if self._cols != other._rows:
            raise ValueError(
                f"shape mismatch: {self.shape} @ {other.shape}"
            )
        return F2Matrix(self._rows, [self.matvec(c) for c in other._columns])

    def __add__(self, other: "F2Matrix") -> "F2Matrix":
        """Entry-wise XOR."""
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} + {other.shape}")
        return F2Matrix(
            self._rows,
            [a ^ b for a, b in zip(self._columns, other._columns)],
        )

    def transpose(self) -> "F2Matrix":
        """The transposed matrix."""
        return F2Matrix(self._cols, [self.row(i) for i in range(self._rows)])

    def direct_sum(self, other: "F2Matrix") -> "F2Matrix":
        """Block diagonal [[self, 0], [0, other]] (Definition 4.3)."""
        cols = list(self._columns)
        cols.extend(c << self._rows for c in other._columns)
        return F2Matrix(self._rows + other._rows, cols)

    def hstack(self, other: "F2Matrix") -> "F2Matrix":
        """Concatenate columns: [self | other]."""
        if self._rows != other._rows:
            raise ValueError("row mismatch in hstack")
        return F2Matrix(self._rows, self._columns + other._columns)

    def vstack(self, other: "F2Matrix") -> "F2Matrix":
        """Concatenate rows: [self ; other]."""
        if self._cols != other._cols:
            raise ValueError("column mismatch in vstack")
        cols = [
            a | (b << self._rows)
            for a, b in zip(self._columns, other._columns)
        ]
        return F2Matrix(self._rows + other._rows, cols)

    def submatrix(
        self, row_range: Tuple[int, int], col_range: Tuple[int, int]
    ) -> "F2Matrix":
        """The block with rows ``[r0, r1)`` and columns ``[c0, c1)``."""
        r0, r1 = row_range
        c0, c1 = col_range
        if not (0 <= r0 <= r1 <= self._rows and 0 <= c0 <= c1 <= self._cols):
            raise IndexError("submatrix range out of bounds")
        mask = (1 << (r1 - r0)) - 1
        cols = [(self._columns[j] >> r0) & mask for j in range(c0, c1)]
        return F2Matrix(r1 - r0, cols)

    def select_columns(self, indices: Sequence[int]) -> "F2Matrix":
        """A matrix with columns reordered / selected by ``indices``."""
        return F2Matrix(self._rows, [self._columns[j] for j in indices])

    def is_zero(self) -> bool:
        """True iff every entry is zero."""
        return all(c == 0 for c in self._columns)

    def is_identity(self) -> bool:
        """True iff the matrix is the square identity."""
        if self._rows != self._cols:
            return False
        return all(c == (1 << j) for j, c in enumerate(self._columns))

    def is_permutation(self) -> bool:
        """True iff the matrix is a permutation matrix."""
        if self._rows != self._cols:
            return False
        seen = 0
        for c in self._columns:
            if c == 0 or (c & (c - 1)) != 0 or (seen & c):
                return False
            seen |= c
        return True

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, F2Matrix):
            return NotImplemented
        return self.shape == other.shape and self._columns == other._columns

    def __hash__(self) -> int:
        return hash((self._rows, self._columns))

    def __repr__(self) -> str:
        body = "\n".join(
            " ".join(str(b) for b in bits_of(self.row(i), self._cols))
            for i in range(self._rows)
        )
        return f"F2Matrix({self._rows}x{self._cols})\n{body}"
