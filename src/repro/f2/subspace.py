"""Subspace algebra over F2: span, intersection, complement, extension.

These are the set-theoretic tools of Sections 5.4 and the Appendix:
the warp-shuffle planner intersects register sets, the optimal
swizzling algorithm finds the largest subspace with trivial
intersection against a union of subspaces (Lemma 9.5), and both need
basis extension / complement construction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.f2.bitvec import iter_set_bits
from repro.f2.matrix import F2Matrix
from repro.f2.solve import kernel_basis


class _XorBasis:
    """Mutable reduced basis keyed by leading bit."""

    def __init__(self, vectors: Iterable[int] = ()):
        self._by_lead: dict = {}
        for v in vectors:
            self.add(v)

    def reduce(self, v: int) -> int:
        """Reduce ``v`` against the basis; 0 means v is in the span."""
        while v:
            lead = v.bit_length() - 1
            if lead not in self._by_lead:
                return v
            v ^= self._by_lead[lead]
        return 0

    def add(self, v: int) -> bool:
        """Insert ``v``; returns True if it enlarged the span."""
        v = self.reduce(v)
        if v == 0:
            return False
        self._by_lead[v.bit_length() - 1] = v
        return True

    def contains(self, v: int) -> bool:
        return self.reduce(v) == 0

    def vectors(self) -> List[int]:
        """The reduced basis vectors, sorted by leading bit."""
        return [self._by_lead[k] for k in sorted(self._by_lead)]

    def __len__(self) -> int:
        return len(self._by_lead)


def reduce_to_basis(vectors: Sequence[int]) -> List[int]:
    """A subset-equivalent reduced basis of ``span(vectors)``.

    The returned vectors are the *original* vectors that were found
    independent, in input order (not the reduced forms), so callers
    that care about which generators survive — e.g. picking shuffle
    bases in input order — get stable results.
    """
    basis = _XorBasis()
    kept: List[int] = []
    for v in vectors:
        if basis.add(v):
            kept.append(v)
    return kept


def is_independent(vectors: Sequence[int]) -> bool:
    """True iff the vectors are linearly independent (none zero)."""
    basis = _XorBasis()
    return all(basis.add(v) for v in vectors)


class Subspace:
    """An immutable subspace of F2^dim, stored as a reduced basis."""

    __slots__ = ("_dim", "_basis")

    def __init__(self, dim: int, generators: Iterable[int] = ()):
        self._dim = dim
        xb = _XorBasis()
        for v in generators:
            if v >= (1 << dim):
                raise ValueError(f"vector {v:#x} not in F2^{dim}")
            xb.add(v)
        self._basis = tuple(xb.vectors())

    @staticmethod
    def full(dim: int) -> "Subspace":
        """The whole ambient space F2^dim."""
        return Subspace(dim, (1 << i for i in range(dim)))

    @staticmethod
    def trivial(dim: int) -> "Subspace":
        """The zero subspace of F2^dim."""
        return Subspace(dim)

    @property
    def dim(self) -> int:
        """Dimension of the ambient space."""
        return self._dim

    @property
    def rank(self) -> int:
        """Dimension of the subspace itself."""
        return len(self._basis)

    @property
    def basis(self) -> tuple:
        """The reduced basis vectors of the subspace."""
        return self._basis

    def contains(self, v: int) -> bool:
        """Membership test: is ``v`` in the subspace?"""
        return _XorBasis(self._basis).contains(v)

    def contains_subspace(self, other: "Subspace") -> bool:
        """True iff ``other`` is contained in this subspace."""
        return all(self.contains(v) for v in other._basis)

    def enumerate(self) -> List[int]:
        """All 2^rank elements of the subspace (rank must be small)."""
        if self.rank > 20:
            raise ValueError(f"subspace too large to enumerate: 2^{self.rank}")
        out = []
        basis = self._basis
        for mask in range(1 << len(basis)):
            v = 0
            for idx in iter_set_bits(mask):
                v ^= basis[idx]
            out.append(v)
        return out

    def sum(self, other: "Subspace") -> "Subspace":
        """The subspace spanned by both (their sum)."""
        self._check_ambient(other)
        return Subspace(self._dim, self._basis + other._basis)

    def intersect(self, other: "Subspace") -> "Subspace":
        """Intersection via the kernel of the stacked generator matrix.

        If U = span(u_i) and V = span(v_j), solutions of
        ``sum a_i u_i = sum b_j v_j`` are the kernel of ``[U | V]``;
        the U-part of each kernel vector spans the intersection.
        """
        self._check_ambient(other)
        if not self._basis or not other._basis:
            return Subspace.trivial(self._dim)
        combined = F2Matrix(self._dim, list(self._basis) + list(other._basis))
        gens = []
        for k in kernel_basis(combined):
            v = 0
            for idx in iter_set_bits(k):
                if idx < len(self._basis):
                    v ^= self._basis[idx]
            gens.append(v)
        return Subspace(self._dim, gens)

    def complement(self) -> "Subspace":
        """A complement: C with self + C = F2^dim and trivial overlap."""
        xb = _XorBasis(self._basis)
        gens = []
        for i in range(self._dim):
            if xb.add(1 << i):
                gens.append(1 << i)
        return Subspace(self._dim, gens)

    def trivial_intersection(self, other: "Subspace") -> bool:
        """True iff the subspaces meet only at zero."""
        return self.intersect(other).rank == 0

    def _check_ambient(self, other: "Subspace") -> None:
        if self._dim != other._dim:
            raise ValueError(
                f"ambient dimension mismatch: {self._dim} vs {other._dim}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Subspace):
            return NotImplemented
        return self._dim == other._dim and self._basis == other._basis

    def __hash__(self) -> int:
        return hash((self._dim, self._basis))

    def __len__(self) -> int:
        return 1 << self.rank

    def __repr__(self) -> str:
        vecs = ", ".join(f"{v:#x}" for v in self._basis)
        return f"Subspace(dim={self._dim}, basis=[{vecs}])"


def intersect(dim: int, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Basis of span(a) ∩ span(b) inside F2^dim."""
    return list(Subspace(dim, a).intersect(Subspace(dim, b)).basis)


def extend_to_basis(
    dim: int,
    partial: Sequence[int],
    candidates: Optional[Sequence[int]] = None,
) -> List[int]:
    """Extend an independent set to a basis of F2^dim.

    New vectors are drawn from ``candidates`` (default: the canonical
    unit vectors), in order.  This is the "extension R" step of the
    warp-shuffle algorithm and the SBank completion of the swizzling
    algorithm (Section 5.4).
    """
    xb = _XorBasis()
    for v in partial:
        if not xb.add(v):
            raise ValueError(f"partial set is dependent at {v:#x}")
    added: List[int] = []
    pool = candidates if candidates is not None else [1 << i for i in range(dim)]
    for v in pool:
        if len(xb) == dim:
            break
        if xb.add(v):
            added.append(v)
    if len(xb) != dim:
        raise ValueError("candidates do not complete the basis")
    return added


def complement_basis(dim: int, vectors: Sequence[int]) -> List[int]:
    """Basis of a complement of span(vectors) in F2^dim."""
    return extend_to_basis(dim, reduce_to_basis(vectors))
