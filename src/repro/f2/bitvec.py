"""Bit-vector primitives for :math:`\\mathbb{F}_2` arithmetic.

A vector in :math:`\\mathbb{F}_2^n` is represented as a non-negative
Python integer whose bit ``i`` holds coordinate ``i``.  The least
significant bit is coordinate 0, matching the paper's convention that
"the least significant bits come first in the vector" (Section 4.1).
"""

from __future__ import annotations

from typing import Iterator, List


def popcount(x: int) -> int:
    """Number of set bits (the Hamming weight of the vector)."""
    if x < 0:
        raise ValueError(f"bit-vectors must be non-negative, got {x}")
    return bin(x).count("1")


def parity(x: int) -> int:
    """Parity of the set bits: the sum of coordinates in F2."""
    return popcount(x) & 1


def dot(a: int, b: int) -> int:
    """Inner product of two F2 vectors: parity of the AND."""
    return parity(a & b)


def bits_of(x: int, width: int) -> List[int]:
    """Expand ``x`` into a list of ``width`` bits, LSB first."""
    if x >= (1 << width):
        raise ValueError(f"value {x} does not fit in {width} bits")
    return [(x >> i) & 1 for i in range(width)]


def bit_length(x: int) -> int:
    """Number of bits needed to represent ``x`` (0 needs 0 bits)."""
    return x.bit_length()


def iter_set_bits(x: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``x``, ascending."""
    while x:
        low = x & -x
        yield low.bit_length() - 1
        x ^= low


def is_power_of_two(x: int) -> bool:
    """True iff ``x`` is a positive power of two (including 2**0)."""
    return x > 0 and (x & (x - 1)) == 0


def log2_int(x: int) -> int:
    """Exact integer base-2 logarithm; raises for non-powers of two.

    Layout dimensions in Triton are restricted to powers of two
    (Section 4.1); this helper enforces that invariant at every
    construction site.
    """
    if not is_power_of_two(x):
        raise ValueError(f"expected a power of two, got {x}")
    return x.bit_length() - 1


def lowest_set_bit(x: int) -> int:
    """Index of the least significant set bit; -1 for zero."""
    if x == 0:
        return -1
    return (x & -x).bit_length() - 1


def highest_set_bit(x: int) -> int:
    """Index of the most significant set bit; -1 for zero."""
    return x.bit_length() - 1
