"""Linear algebra over the two-element field :math:`\\mathbb{F}_2`.

This package is the mathematical substrate of the reproduction: every
layout in :mod:`repro.core` is ultimately a matrix over
:math:`\\mathbb{F}_2`, and every codegen algorithm in :mod:`repro.codegen`
is phrased in terms of the subspace operations implemented here.

Vectors are plain Python integers interpreted as bit-vectors (bit ``i``
is coordinate ``i``), matrices are column-major tuples of such integers
(:class:`F2Matrix`).  Addition is XOR, multiplication is AND, so a
matrix-vector product is the XOR of the columns selected by the set bits
of the input vector.
"""

from repro.f2.bitvec import (
    bit_length,
    bits_of,
    dot,
    is_power_of_two,
    log2_int,
    parity,
    popcount,
)
from repro.f2.matrix import F2Matrix
from repro.f2.solve import (
    InconsistentSystemError,
    column_echelon,
    image_basis,
    inverse,
    is_injective,
    is_surjective,
    kernel_basis,
    min_weight_solution,
    pivot_columns,
    rank,
    right_inverse,
    row_echelon,
    solve,
    solve_matrix,
)
from repro.f2.subspace import (
    Subspace,
    complement_basis,
    extend_to_basis,
    intersect,
    is_independent,
    reduce_to_basis,
)

__all__ = [
    "F2Matrix",
    "InconsistentSystemError",
    "Subspace",
    "bit_length",
    "bits_of",
    "column_echelon",
    "complement_basis",
    "dot",
    "extend_to_basis",
    "image_basis",
    "intersect",
    "inverse",
    "is_independent",
    "is_injective",
    "is_power_of_two",
    "is_surjective",
    "kernel_basis",
    "log2_int",
    "min_weight_solution",
    "pivot_columns",
    "parity",
    "popcount",
    "rank",
    "reduce_to_basis",
    "right_inverse",
    "row_echelon",
    "solve",
    "solve_matrix",
]
