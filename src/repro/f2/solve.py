"""Gaussian elimination and linear-system solving over F2.

These routines back the layout operators of Section 4: the right
inverse (Definition 4.5) is a least-squares solve with slack variables
pinned to zero — the paper's recipe for promoting broadcasting during
layout conversion (Section 5.4, item 2) — and the kernel basis exposes
the "zero columns" that identify broadcast replication (Section 5.1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.f2.bitvec import iter_set_bits
from repro.f2.matrix import F2Matrix


class InconsistentSystemError(ValueError):
    """Raised when ``Mx = b`` has no solution over F2."""


def _rows_of(matrix: F2Matrix) -> List[int]:
    return [matrix.row(i) for i in range(matrix.rows)]


def row_echelon(matrix: F2Matrix) -> Tuple[F2Matrix, List[int], F2Matrix]:
    """Reduced row echelon form.

    Returns ``(R, pivots, T)`` where ``R = T @ matrix`` is in reduced
    row echelon form, ``pivots`` lists the pivot column of each nonzero
    row of ``R`` (ascending), and ``T`` is the invertible row-operation
    transform.
    """
    nrows, ncols = matrix.rows, matrix.cols
    rows = _rows_of(matrix)
    # Augment each row with the corresponding row of the identity to
    # track the transform: low ncols bits = row of M, high bits = row
    # of T.
    aug = [rows[i] | (1 << (ncols + i)) for i in range(nrows)]
    pivots: List[int] = []
    pivot_row = 0
    for col in range(ncols):
        # Find a row at or below pivot_row with this column set.
        sel = None
        for r in range(pivot_row, nrows):
            if (aug[r] >> col) & 1:
                sel = r
                break
        if sel is None:
            continue
        aug[pivot_row], aug[sel] = aug[sel], aug[pivot_row]
        for r in range(nrows):
            if r != pivot_row and (aug[r] >> col) & 1:
                aug[r] ^= aug[pivot_row]
        pivots.append(col)
        pivot_row += 1
        if pivot_row == nrows:
            break
    col_mask = (1 << ncols) - 1
    reduced_rows = [a & col_mask for a in aug]
    transform_rows = [a >> ncols for a in aug]
    reduced = F2Matrix.from_rows(
        [[(r >> j) & 1 for j in range(ncols)] for r in reduced_rows]
    )
    transform = F2Matrix.from_rows(
        [[(r >> j) & 1 for j in range(nrows)] for r in transform_rows]
    )
    return reduced, pivots, transform


def column_echelon(matrix: F2Matrix) -> Tuple[F2Matrix, List[int]]:
    """Column echelon form: ``(C, pivots)`` with ``C`` column-reduced.

    ``pivots`` holds the pivot *row* of each nonzero column.
    """
    reduced_t, pivots, _ = row_echelon(matrix.transpose())
    return reduced_t.transpose(), pivots


def rank(matrix: F2Matrix) -> int:
    """The rank of the matrix over F2."""
    _, pivots, _ = row_echelon(matrix)
    return len(pivots)


def image_basis(matrix: F2Matrix) -> List[int]:
    """A basis (as bit-vectors of length ``rows``) of the column space."""
    _, pivots, _ = row_echelon(matrix)
    return [matrix.column(j) for j in pivots]


def kernel_basis(matrix: F2Matrix) -> List[int]:
    """A basis of the null space ``{v : Mv = 0}``.

    Vectors are bitmasks of length ``cols``.  For a distributed layout,
    nonzero kernel vectors identify hardware indices holding duplicated
    data (broadcasting, Section 5.1).
    """
    reduced, pivots, _ = row_echelon(matrix)
    pivot_set = set(pivots)
    free_cols = [j for j in range(matrix.cols) if j not in pivot_set]
    basis: List[int] = []
    for free in free_cols:
        v = 1 << free
        # Back-substitute: each pivot row determines the pivot column's
        # value from the free columns.
        for row_idx, pivot_col in enumerate(pivots):
            if reduced.entry(row_idx, free):
                v |= 1 << pivot_col
        basis.append(v)
    return basis


def solve(matrix: F2Matrix, b: int) -> int:
    """One solution of ``Mx = b`` with all free variables set to zero.

    Raises :class:`InconsistentSystemError` if no solution exists.
    Setting the slack variables to zero yields the minimal-Hamming-
    weight representative the paper uses to promote broadcasting
    (Section 5.4).
    """
    reduced, pivots, transform = row_echelon(matrix)
    tb = transform.matvec(b)
    x = 0
    for row_idx, pivot_col in enumerate(pivots):
        if (tb >> row_idx) & 1:
            x |= 1 << pivot_col
    # Rows beyond the pivot rows must be zero for consistency.
    if tb >> len(pivots):
        raise InconsistentSystemError(
            f"Mx = b has no solution for b = {b:#x}"
        )
    return x


def solve_matrix(matrix: F2Matrix, rhs: F2Matrix) -> F2Matrix:
    """Solve ``M X = B`` column-wise with free variables zeroed."""
    if matrix.rows != rhs.rows:
        raise ValueError(f"shape mismatch: {matrix.shape} X = {rhs.shape}")
    reduced, pivots, transform = row_echelon(matrix)
    del reduced
    cols: List[int] = []
    for j in range(rhs.cols):
        tb = transform.matvec(rhs.column(j))
        if tb >> len(pivots):
            raise InconsistentSystemError(
                f"M X = B has no solution at column {j}"
            )
        x = 0
        for row_idx, pivot_col in enumerate(pivots):
            if (tb >> row_idx) & 1:
                x |= 1 << pivot_col
        cols.append(x)
    return F2Matrix(matrix.cols, cols)


def right_inverse(matrix: F2Matrix) -> F2Matrix:
    """The least-squares right inverse of a surjective matrix.

    Computes the ``cols x rows`` matrix ``X`` with ``M @ X = I`` and
    all slack variables zero (Definition 4.5).  Raises
    :class:`InconsistentSystemError` if ``M`` is not surjective.
    """
    return solve_matrix(matrix, F2Matrix.identity(matrix.rows))


def inverse(matrix: F2Matrix) -> F2Matrix:
    """The two-sided inverse of a square invertible matrix."""
    if matrix.rows != matrix.cols:
        raise ValueError(f"matrix is not square: {matrix.shape}")
    inv = right_inverse(matrix)
    if not (inv @ matrix).is_identity():
        raise InconsistentSystemError("matrix is singular")
    return inv


def is_surjective(matrix: F2Matrix) -> bool:
    """True iff the column space is all of F2^rows."""
    return rank(matrix) == matrix.rows


def is_injective(matrix: F2Matrix) -> bool:
    """True iff the kernel is trivial."""
    return rank(matrix) == matrix.cols


def min_weight_solution(matrix: F2Matrix, b: int) -> Optional[int]:
    """A minimum-Hamming-weight solution of ``Mx = b``.

    Exhausts the coset ``x0 + ker(M)`` when the kernel is small
    (<= 2^16 elements); otherwise falls back to the free-variables-zero
    solution.  Returns ``None`` when the system is inconsistent.
    """
    try:
        x0 = solve(matrix, b)
    except InconsistentSystemError:
        return None
    kernel = kernel_basis(matrix)
    if len(kernel) > 16:
        return x0
    best = x0
    best_weight = bin(x0).count("1")
    for mask in range(1, 1 << len(kernel)):
        candidate = x0
        for idx in iter_set_bits(mask):
            candidate ^= kernel[idx]
        weight = bin(candidate).count("1")
        if weight < best_weight:
            best, best_weight = candidate, weight
    return best


def pivot_columns(matrix: F2Matrix) -> List[int]:
    """Indices of a maximal independent set of columns (greedy).

    Uses the classical XOR-basis keyed by leading bit, so earlier
    columns are preferred — matching how the swizzling algorithm picks
    basis vectors "following a chosen order" (Section 5.4).
    """
    basis: dict = {}
    out: List[int] = []
    for j in range(matrix.cols):
        v = matrix.column(j)
        while v:
            lead = v.bit_length() - 1
            if lead not in basis:
                basis[lead] = v
                out.append(j)
                break
            v ^= basis[lead]
    return out
