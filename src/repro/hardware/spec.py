"""GPU platform descriptions (Table 2 of the paper).

Only layout-relevant characteristics are modeled; clock rates and SM
counts are irrelevant because every comparison in the evaluation is a
ratio of data-movement costs on the *same* platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class GpuSpec:
    """Layout-relevant traits of a GPU platform.

    Attributes
    ----------
    warp_size:
        Threads per warp: 32 on NVIDIA, 64 on AMD wavefronts.
    num_banks / bank_bytes:
        Shared-memory geometry: 32 banks x 4 bytes on every platform
        modeled, so a full bank sweep is 128 bytes.
    max_vector_bits:
        Widest per-thread vector memory transaction (128 on all three).
    shuffle_bytes:
        Bytes exchanged per lane per shuffle instruction (4).
    has_ldmatrix / has_stmatrix:
        Availability of the warp-cooperative shared<->register tile
        instructions; their absence on MI250 explains the small AMD
        speedups in Figure 9 (Section 6.2).
    mma_flavor:
        "mma" (Ampere-class), "wgmma" (Hopper), or "mfma" (CDNA).
    """

    name: str
    warp_size: int
    num_banks: int
    bank_bytes: int
    max_vector_bits: int
    shuffle_bytes: int
    has_ldmatrix: bool
    has_stmatrix: bool
    mma_flavor: str
    shared_mem_bytes: int
    memory_desc: str

    # Cost-model constants (cycles).  Values follow published
    # microbenchmarks of instruction issue/latency ratios; only ratios
    # matter for the reproduced speedups.
    smem_access_cycles: int = 30
    gmem_transaction_cycles: int = 8
    shuffle_cycles: int = 2
    barrier_cycles: int = 30
    issue_cycles: int = 1
    alu_cycles: int = 4

    @property
    def bank_row_bytes(self) -> int:
        """Bytes covered by one conflict-free sweep over all banks."""
        return self.num_banks * self.bank_bytes

    def __str__(self) -> str:
        return (
            f"{self.name}: warp={self.warp_size}, "
            f"{self.num_banks}x{self.bank_bytes}B banks, "
            f"mma={self.mma_flavor}, ldmatrix={self.has_ldmatrix}, "
            f"stmatrix={self.has_stmatrix}, {self.memory_desc}"
        )


RTX4090 = GpuSpec(
    name="RTX4090",
    warp_size=32,
    num_banks=32,
    bank_bytes=4,
    max_vector_bits=128,
    shuffle_bytes=4,
    has_ldmatrix=True,
    has_stmatrix=False,
    mma_flavor="mma",
    shared_mem_bytes=100 * 1024,
    memory_desc="24GB GDDR6X (consumer GPU)",
)

GH200 = GpuSpec(
    name="GH200",
    warp_size=32,
    num_banks=32,
    bank_bytes=4,
    max_vector_bits=128,
    shuffle_bytes=4,
    has_ldmatrix=True,
    has_stmatrix=True,
    mma_flavor="wgmma",
    shared_mem_bytes=228 * 1024,
    memory_desc="80GB HBM2e (data center GPU)",
)

MI250 = GpuSpec(
    name="MI250",
    warp_size=64,
    num_banks=32,
    bank_bytes=4,
    max_vector_bits=128,
    shuffle_bytes=4,
    has_ldmatrix=False,
    has_stmatrix=False,
    mma_flavor="mfma",
    shared_mem_bytes=64 * 1024,
    memory_desc="64GB HBM2 (data center GPU)",
)

PLATFORMS: Dict[str, GpuSpec] = {
    spec.name: spec for spec in (RTX4090, GH200, MI250)
}


def get_platform(name: str) -> GpuSpec:
    """Look up a platform by its Table 2 name."""
    try:
        return PLATFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; choose from {sorted(PLATFORMS)}"
        ) from None
