"""The simulator's cost model: instruction stream -> cycles.

Absolute numbers are synthetic; what the model preserves — and what
the paper's speedup figures depend on — are the *ratios* between
instruction classes: a shared-memory round trip (store + barrier +
load) costs far more than a few shuffle rounds, bank conflicts
multiply shared wavefronts, and vectorization divides instruction
counts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable

from repro.hardware.instructions import Instruction, InstructionKind
from repro.hardware.spec import GpuSpec


@dataclass
class CostModel:
    """Prices instruction streams on a given platform."""

    spec: GpuSpec

    def instruction_cycles(self, inst: Instruction) -> float:
        """Cycles attributed to one :class:`Instruction` record."""
        spec = self.spec
        kind = inst.kind
        if kind in (
            InstructionKind.SHARED_LOAD,
            InstructionKind.SHARED_STORE,
            InstructionKind.LDMATRIX,
            InstructionKind.STMATRIX,
        ):
            if inst.dependent:
                # Address depends on a just-produced value: pay the
                # full access latency per wavefront, unpipelined.
                per = (
                    spec.issue_cycles
                    + spec.smem_access_cycles * inst.wavefronts
                )
            else:
                # Independent accesses pipeline: issue plus the bank
                # service time of each wavefront.
                per = spec.issue_cycles + 2 * inst.wavefronts
        elif kind in (InstructionKind.GLOBAL_LOAD, InstructionKind.GLOBAL_STORE):
            lanes_bytes = self.spec.warp_size * inst.vector_bits // 8
            transactions = max(1, lanes_bytes // 128)
            per = spec.issue_cycles + spec.gmem_transaction_cycles * transactions
        elif kind == InstructionKind.SHUFFLE:
            per = spec.shuffle_cycles
        elif kind == InstructionKind.BARRIER:
            per = spec.barrier_cycles
        elif kind == InstructionKind.MMA:
            # ``wavefronts`` scales for wide tiles (wgmma/mfma) so the
            # per-MAC throughput stays comparable across flavors.
            per = 16 * inst.wavefronts
        elif kind == InstructionKind.BYTE_PERM:
            per = spec.alu_cycles
        else:
            per = spec.alu_cycles
        return per * inst.count

    def total_cycles(self, instructions: Iterable[Instruction]) -> float:
        """Sum of instruction cycles over a stream."""
        return sum(self.instruction_cycles(i) for i in instructions)

    def histogram(
        self, instructions: Iterable[Instruction]
    ) -> Dict[str, int]:
        """Instruction counts by kind (the Table 4 / Table 6 columns)."""
        out: Dict[str, int] = {}
        for inst in instructions:
            out[inst.kind.value] = out.get(inst.kind.value, 0) + inst.count
        return out

    def breakdown(
        self, instructions: Iterable[Instruction]
    ) -> Dict[str, float]:
        """Cycles attributed to each instruction kind.

        The observability face of the model: per-kind totals feed the
        pipeline's cost-summary diagnostics, so a regression shows up
        as "shared_load cycles doubled" rather than a bare number.
        """
        out: Dict[str, float] = {}
        for inst in instructions:
            cycles = self.instruction_cycles(inst)
            out[inst.kind.value] = out.get(inst.kind.value, 0.0) + cycles
        return out


# ----------------------------------------------------------------------
# Memoized models
# ----------------------------------------------------------------------
_MODELS: Dict[GpuSpec, CostModel] = {}
_MODELS_LOCK = threading.Lock()


def cost_model(spec: GpuSpec) -> CostModel:
    """The process-wide :class:`CostModel` of one platform.

    The model is stateless (a pure pricing function over a frozen
    spec), so every trace on the same :class:`GpuSpec` shares one
    instance instead of constructing a fresh model per
    ``Trace.cycles()`` call.  First insertion wins under races.
    """
    model = _MODELS.get(spec)
    if model is None:
        with _MODELS_LOCK:
            model = _MODELS.setdefault(spec, CostModel(spec))
    return model
