"""Hardware substrate: platform specs, instruction tiles, cost model.

The paper evaluates on RTX4090, GH200, and MI250 (Table 2).  We model
each platform's layout-relevant traits: warp width, shared-memory bank
geometry, transaction width, which SIMD data-movement intrinsics exist
(``ldmatrix``/``stmatrix``/``wgmma``/``mfma``), and per-instruction
costs for the simulator.
"""

from repro.hardware.spec import (
    GH200,
    GpuSpec,
    MI250,
    PLATFORMS,
    RTX4090,
    get_platform,
)
from repro.hardware.instructions import (
    Instruction,
    InstructionKind,
    ldmatrix_tile,
    stmatrix_tile,
    vector_shared_tile,
)
from repro.hardware.cost import CostModel

__all__ = [
    "CostModel",
    "GH200",
    "GpuSpec",
    "Instruction",
    "InstructionKind",
    "MI250",
    "PLATFORMS",
    "RTX4090",
    "get_platform",
    "ldmatrix_tile",
    "stmatrix_tile",
    "vector_shared_tile",
]
