"""Instruction records and the SIMD tiles of Section 5.3.

A codegen plan is a sequence of :class:`Instruction` records; the
simulator executes them and the cost model prices them.  The *tiles*
below are the linear layouts that characterize when a SIMD
data-movement instruction applies (Theorem 5.1): an instruction with
tile ``T`` can lower a register<->memory map ``L`` iff ``L / T``
exists.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.dims import LANE, OFFSET, REGISTER
from repro.core.layout import LinearLayout
from repro.f2.bitvec import log2_int


class InstructionKind(enum.Enum):
    """The instruction classes the cost model distinguishes."""

    GLOBAL_LOAD = "ld.global"
    GLOBAL_STORE = "st.global"
    SHARED_LOAD = "ld.shared"
    SHARED_STORE = "st.shared"
    LDMATRIX = "ldmatrix"
    STMATRIX = "stmatrix"
    SHUFFLE = "shfl.sync"
    BARRIER = "bar.sync"
    MMA = "mma"
    ALU = "alu"
    BYTE_PERM = "prmt"


@dataclass(frozen=True)
class Instruction:
    """One issued warp instruction.

    ``vector_bits`` is the per-lane access width for memory ops (the
    Table 3 "bitwidth" column); ``wavefronts`` is filled in by the
    shared-memory simulator when bank behaviour is known; ``count``
    batches identical instructions.
    """

    kind: InstructionKind
    vector_bits: int = 32
    count: int = 1
    wavefronts: int = 1
    note: str = ""
    #: Dependent accesses (e.g. gather loads whose address comes from
    #: a just-computed value) pay full latency; independent accesses
    #: pipeline and pay only issue + bank service.
    dependent: bool = False

    def ptx_name(self) -> str:
        """A PTX-like mnemonic, e.g. ``v4.b32`` for a 128-bit vector."""
        if self.kind in (
            InstructionKind.GLOBAL_LOAD,
            InstructionKind.GLOBAL_STORE,
            InstructionKind.SHARED_LOAD,
            InstructionKind.SHARED_STORE,
        ):
            if self.vector_bits >= 32:
                return f"{self.kind.value}.v{self.vector_bits // 32}.b32"
            return f"{self.kind.value}.v1.b{self.vector_bits}"
        return self.kind.value


def vector_shared_tile(vector_bits: int, elem_bits: int) -> LinearLayout:
    """The tile of a vectorized ``ld.shared``/``st.shared`` access.

    "The tile for vectorized shared memory instructions of size 2^n
    bits is given by the identity mapping from registers to memory
    offsets of size n x n" (Section 5.3) — n counted in elements.
    """
    elems = vector_bits // elem_bits
    if elems < 1:
        raise ValueError(
            f"vector of {vector_bits} bits cannot hold {elem_bits}-bit "
            "elements"
        )
    return LinearLayout.identity1d(elems, REGISTER, OFFSET)


def ldmatrix_tile(elem_bits: int) -> LinearLayout:
    """The ``ldmatrix`` tile (Section 5.3).

    Each thread handles 4 contiguous bytes and groups of 4 threads
    cover a 16-byte row segment: ``id_k^{Reg,Off} x id_2^{Thr,Off}``
    with ``k = log2(4 / w)`` for element byte-width ``w``.
    """
    elem_bytes = elem_bits // 8
    if elem_bytes < 1 or elem_bytes > 4:
        raise ValueError(
            f"ldmatrix supports 1..4 byte elements, got {elem_bits} bits"
        )
    k = log2_int(4 // elem_bytes) if elem_bytes < 4 else 0
    tile = LinearLayout.identity1d(1 << k, REGISTER, OFFSET)
    tile = tile * LinearLayout.identity1d(4, LANE, OFFSET)
    return tile


def stmatrix_tile(elem_bits: int) -> LinearLayout:
    """The ``stmatrix`` tile — same geometry as ``ldmatrix``."""
    return ldmatrix_tile(elem_bits)
