"""``python -m repro.obs`` — capture, summarize, convert, check.

Subcommands
-----------
``capture``
    Compile a kernel suite (Table 6 by default) through
    :class:`repro.serve.CompileService` with observability recording,
    execute a sample of the lowered conversions on the simulated
    machine, and export the capture as a Chrome trace (and optionally
    JSONL).  This is the CI entry point behind the ``REPRO_OBS=1``
    acceptance run.
``summary FILE``
    Digest a capture (JSONL or Chrome trace JSON): span counts and
    totals per name, counter values, histogram summaries.
``convert IN.jsonl OUT.json``
    JSONL capture -> Chrome trace-event JSON (same builder as direct
    export, so the result is identical).
``check FILE`` (also spelled ``--check FILE``)
    Validate a Chrome trace against the event schema; for traces our
    own ``capture`` produced (``otherData.suite`` set), additionally
    require that every pipeline pass, the cache counters, the
    single-flight resolution, and the simulator execution appear.
    Exit code 0 iff valid.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

from repro.obs.export import (
    chrome_trace_from_events,
    read_jsonl,
    summarize_events,
    validate_chrome_trace,
)

#: Span names / metric families a self-produced suite capture must
#: contain — the acceptance surface of the observability layer.
REQUIRED_SPANS = [
    "serve:request",
    "serve:singleflight",
    "compile:kernel",
    "pass:anchor-selection",
    "pass:forward-propagation",
    "pass:backward-remat",
    "pass:lower-to-plans",
    "pass:cost-summary",
    "sim:run_program",
]
REQUIRED_METRICS = [
    "cache.hits",
    "cache.misses",
    "serve.requests",
    "sim.instructions",
]


def _load(path: str) -> Any:
    """A Chrome trace (one JSON object) or a JSONL event list."""
    with open(path) as fh:
        try:
            return json.load(fh)
        except json.JSONDecodeError:
            pass
    return read_jsonl(path)


def _coverage_problems(trace: Dict[str, Any]) -> List[str]:
    """Missing required spans/metrics of a suite capture."""
    events = trace.get("traceEvents", [])
    span_names = {e.get("name") for e in events if e.get("ph") == "X"}
    metric_names = set()
    for row in (
        trace.get("otherData", {}).get("metrics", {}).get("counters", [])
    ):
        metric_names.add(row.get("name"))
    problems = []
    for name in REQUIRED_SPANS:
        if name not in span_names:
            problems.append(f"coverage: no {name!r} span in the trace")
    for name in REQUIRED_METRICS:
        if name not in metric_names:
            problems.append(f"coverage: no {name!r} counter in the trace")
    return problems


def cmd_capture(args: argparse.Namespace) -> int:
    from repro.bench.obsbench import capture_suite
    from repro.obs.export import write_chrome_trace, write_jsonl

    recorder, info = capture_suite(
        suite_name=args.suite,
        workers=args.workers,
        dup=args.dup,
        simulate=args.simulate,
    )
    trace_bytes = write_chrome_trace(recorder, args.output, suite=args.suite)
    print(json.dumps(info, indent=1))
    print(f"wrote {args.output} ({trace_bytes} bytes)")
    if args.jsonl:
        jsonl_bytes = write_jsonl(recorder, args.jsonl)
        print(f"wrote {args.jsonl} ({jsonl_bytes} bytes)")
    return 1 if info["failures"] else 0


def cmd_summary(args: argparse.Namespace) -> int:
    data = _load(args.file)
    if isinstance(data, dict):  # Chrome trace: rebuild event records
        events = [
            {
                "type": "span",
                "name": e["name"],
                "dur_us": e.get("dur", 0.0),
            }
            for e in data.get("traceEvents", [])
            if e.get("ph") == "X"
        ]
        events.append(
            {
                "type": "metrics",
                **data.get("otherData", {}).get("metrics", {}),
            }
        )
    else:
        events = data
    print(summarize_events(events))
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    events = read_jsonl(args.input)
    trace = chrome_trace_from_events(events, suite=args.suite)
    with open(args.output, "w") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    print(f"wrote {args.output} ({len(trace['traceEvents'])} events)")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    trace = _load(args.file)
    if not isinstance(trace, dict):
        print(f"FAIL: {args.file} is not a Chrome trace JSON object")
        return 1
    problems = validate_chrome_trace(trace)
    if not problems and trace.get("otherData", {}).get("suite"):
        problems = _coverage_problems(trace)
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        return 1
    spans = trace.get("otherData", {}).get("spans", "?")
    print(
        f"ok: {args.file} valid "
        f"({len(trace['traceEvents'])} events, {spans} spans)"
    )
    return 0


def main(argv: List[str]) -> int:
    # ``--check FILE`` is the documented spelling in CI; rewrite it to
    # the subcommand form.
    if argv and argv[0] == "--check":
        argv = ["check", *argv[1:]]
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Capture, summarize, convert, and check "
        "observability traces (see docs/OBSERVABILITY.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_capture = sub.add_parser(
        "capture", help="compile a suite with recording and export"
    )
    p_capture.add_argument(
        "--suite", default="table6", choices=["table6", "fig9"]
    )
    p_capture.add_argument("-o", "--output", default="obs_trace.json")
    p_capture.add_argument(
        "--jsonl", default=None, help="also write the JSONL event stream"
    )
    p_capture.add_argument("--workers", type=int, default=4)
    p_capture.add_argument(
        "--dup",
        type=int,
        default=2,
        help="suite repetitions (shows dedup in the trace)",
    )
    p_capture.add_argument(
        "--simulate",
        type=int,
        default=12,
        help="conversions to execute on the simulated machine",
    )
    p_capture.set_defaults(func=cmd_capture)

    p_summary = sub.add_parser(
        "summary", help="digest a JSONL or Chrome trace capture"
    )
    p_summary.add_argument("file")
    p_summary.set_defaults(func=cmd_summary)

    p_convert = sub.add_parser(
        "convert", help="JSONL capture -> Chrome trace JSON"
    )
    p_convert.add_argument("input")
    p_convert.add_argument("output")
    p_convert.add_argument("--suite", default=None)
    p_convert.set_defaults(func=cmd_convert)

    p_check = sub.add_parser(
        "check", help="validate a Chrome trace (schema + coverage)"
    )
    p_check.add_argument("file")
    p_check.set_defaults(func=cmd_check)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
