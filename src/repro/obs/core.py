"""Spans and the capture recorder — the heart of :mod:`repro.obs`.

One process-wide :class:`Recorder` (installed by :func:`enable`, the
``REPRO_OBS`` environment variable, or the :func:`capture` context
manager) receives every finished :class:`Span` and owns the
:class:`~repro.obs.metrics.MetricsRegistry`.  When no recorder is
installed — the default — :func:`span` returns one shared no-op
context manager and the metric helpers return immediately, so the
instrumentation hooks threaded through the engine, the serve layer,
the caches, and the simulator cost nothing measurable
(``benchmarks/bench_obs.py`` gates that line).

Span hierarchy is *per thread*: each thread keeps a stack of open
spans; a new span's parent is the top of the calling thread's stack
and its trace id is inherited from that parent (a root span starts a
fresh trace).  That matches how the stack actually executes — a
:class:`repro.serve.CompileService` worker thread opens
``serve:request`` and every pipeline pass underneath nests inside it
— without any cross-thread context plumbing.

Timing uses one ``perf_counter`` origin per recorder, so span
timestamps across threads share a clock and export directly as
Chrome trace-event microseconds.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "Recorder",
    "Span",
    "capture",
    "count",
    "current_recorder",
    "disable",
    "enable",
    "gauge",
    "is_enabled",
    "observe",
    "span",
]

#: Monotonic span/trace id source (``next`` is atomic under the GIL).
_IDS = itertools.count(1)


class Span:
    """One finished (or open) operation: name, ids, timing, attributes.

    ``attrs`` carries typed key/value details (pass counters, request
    stats, simulator totals); values must be JSON-serializable.
    Instances are created by :func:`span` — not directly — and become
    immutable-by-convention once recorded.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "thread_id",
        "thread_name",
        "start_us",
        "end_us",
        "attrs",
        "status",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        thread_id: int,
        thread_name: str,
        start_us: float,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self.thread_name = thread_name
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.status = "ok"

    @property
    def duration_us(self) -> float:
        """Span duration in microseconds (0 while still open)."""
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds (0 while still open)."""
        return self.duration_us / 1e3

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute."""
        self.attrs[key] = value

    def set_attrs(self, attrs: Dict[str, Any]) -> None:
        """Attach many attributes at once."""
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL event record of this span."""
        return {
            "type": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "ts_us": round(self.start_us, 3),
            "dur_us": round(self.duration_us, 3),
            "status": self.status,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} trace={self.trace_id} "
            f"id={self.span_id} parent={self.parent_id} "
            f"{self.duration_ms:.3f}ms>"
        )


class _SpanStack(threading.local):
    """Per-thread stack of open spans (hierarchy without plumbing)."""

    def __init__(self):
        self.stack: List[Span] = []


_STACK = _SpanStack()


class Recorder:
    """Collects finished spans and owns the metrics registry.

    Bounded: past ``max_spans`` finished spans, new ones are counted
    in ``dropped_spans`` instead of stored, so a long-running service
    with observability left on cannot grow without bound.
    """

    def __init__(self, max_spans: int = 200_000):
        if max_spans <= 0:
            raise ValueError(f"max_spans must be positive, got {max_spans}")
        self.max_spans = max_spans
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self.dropped_spans = 0
        #: perf_counter origin shared by every span of this capture.
        self.origin = time.perf_counter()
        #: Wall-clock epoch of the origin (for human-readable export).
        self.epoch = time.time()

    def now_us(self) -> float:
        """Microseconds since this recorder's origin."""
        return (time.perf_counter() - self.origin) * 1e6

    def record(self, span: Span) -> None:
        """Store one finished span (or count it as dropped)."""
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped_spans += 1
                return
            self._spans.append(span)

    def spans(self) -> List[Span]:
        """A snapshot of the finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop every recorded span and metric."""
        with self._lock:
            self._spans.clear()
            self.dropped_spans = 0
        self.metrics.clear()

    def __len__(self) -> int:
        return len(self._spans)


#: The installed recorder; ``None`` means observability is off.
_recorder: Optional[Recorder] = None


def is_enabled() -> bool:
    """Whether a recorder is installed (the hot-path gate)."""
    return _recorder is not None


def current_recorder() -> Optional[Recorder]:
    """The installed recorder, if any."""
    return _recorder


def enable(max_spans: int = 200_000) -> Recorder:
    """Install (and return) a fresh process-wide recorder."""
    global _recorder
    _recorder = Recorder(max_spans=max_spans)
    return _recorder


def disable() -> Optional[Recorder]:
    """Uninstall the recorder; returns it so callers can export."""
    global _recorder
    previous = _recorder
    _recorder = None
    return previous


class capture:
    """``with obs.capture() as rec:`` — record for the block's duration.

    Installs a fresh recorder on entry and restores the previous
    state (usually: disabled) on exit; the recorder stays readable
    afterwards for assertions and export.  Re-entrant in the sense
    that nesting replaces the recorder for the inner block only.
    """

    def __init__(self, max_spans: int = 200_000):
        self.max_spans = max_spans
        self.recorder: Optional[Recorder] = None
        self._previous: Optional[Recorder] = None

    def __enter__(self) -> Recorder:
        global _recorder
        self._previous = _recorder
        self.recorder = Recorder(max_spans=self.max_spans)
        _recorder = self.recorder
        return self.recorder

    def __exit__(self, *_exc) -> None:
        global _recorder
        _recorder = self._previous


# ----------------------------------------------------------------------
# Span context managers
# ----------------------------------------------------------------------
class _NoopSpan:
    """The shared disabled-path span: every method is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def set_attrs(self, attrs: Dict[str, Any]) -> None:
        pass

    @property
    def duration_ms(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "<noop span>"


NOOP_SPAN = _NoopSpan()


class _SpanHandle:
    """Context manager that opens a :class:`Span` on the thread stack.

    Binds the recorder at construction: a span that outlives a
    :func:`capture` block still lands in the recorder that was active
    when it started, never in a later capture it doesn't belong to.
    """

    __slots__ = ("_recorder", "_name", "_attrs", "span")

    def __init__(self, recorder: Recorder, name: str, attrs: Dict[str, Any]):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        stack = _STACK.stack
        parent = stack[-1] if stack else None
        thread = threading.current_thread()
        sp = Span(
            name=self._name,
            trace_id=parent.trace_id if parent is not None else next(_IDS),
            span_id=next(_IDS),
            parent_id=parent.span_id if parent is not None else None,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            start_us=self._recorder.now_us(),
        )
        if self._attrs:
            sp.attrs.update(self._attrs)
        stack.append(sp)
        self.span = sp
        return sp

    def __exit__(self, exc_type, exc, _tb) -> bool:
        sp = self.span
        stack = _STACK.stack
        # Pop exactly this span; tolerate a corrupted stack rather
        # than masking the caller's exception.
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:  # pragma: no cover - defensive
            stack.remove(sp)
        sp.end_us = self._recorder.now_us()
        if exc_type is not None:
            sp.status = "error"
            sp.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._recorder.record(sp)
        return False


def span(name: str, **attrs: Any):
    """A context manager recording one hierarchical span.

    Usage::

        with obs.span("pass:forward-propagation", mode="linear") as sp:
            ...
            sp.set("conversions_inserted", n)

    Disabled path: returns the shared no-op singleton without
    allocating anything.
    """
    rec = _recorder
    if rec is None:
        return NOOP_SPAN
    return _SpanHandle(rec, name, attrs)


# ----------------------------------------------------------------------
# Metric helpers (module-level convenience over the registry)
# ----------------------------------------------------------------------
def count(name: str, value: float = 1, **labels: Any) -> None:
    """Increment a counter (no-op when disabled)."""
    rec = _recorder
    if rec is not None:
        rec.metrics.count(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge to its latest value (no-op when disabled)."""
    rec = _recorder
    if rec is not None:
        rec.metrics.gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record one histogram observation (no-op when disabled)."""
    rec = _recorder
    if rec is not None:
        rec.metrics.observe(name, value, **labels)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "0").strip().lower() in (
        "1",
        "on",
        "true",
        "yes",
    )


# ``REPRO_OBS=1`` follows the REPRO_CACHE / REPRO_SIM convention:
# observability starts recording at import, no code changes needed.
if _env_enabled():  # pragma: no cover - exercised via subprocess in CI
    enable()
