"""One observability layer: spans, metrics, Chrome-trace export.

The paper's robustness claim is that layout decisions and conversion
costs are *explainable*; this package is where the reproduction makes
them observable.  Every layer of the stack — pipeline passes
(:mod:`repro.engine.pipeline`), the serve request lifecycle
(:mod:`repro.serve.service`), the bounded caches
(:mod:`repro.cache`), plan lowering (:mod:`repro.codegen.plan`), and
both simulator backends (:mod:`repro.gpusim.machine`) — emits
hierarchical spans and labeled metrics through this one
zero-dependency API:

>>> from repro import obs
>>> with obs.capture() as rec:
...     with obs.span("compile", mode="linear"):
...         obs.count("cache.hits", 3, cache="plans")
>>> len(rec.spans())
1

Disabled (the default — set ``REPRO_OBS=1`` to record, following the
``REPRO_CACHE``/``REPRO_SIM`` convention), every hook degrades to one
``None`` check, so production compiles pay nothing and results are
bit-identical either way (``tests/test_obs.py`` holds both lines).

Export a capture with :func:`write_jsonl` (greppable event stream)
or :func:`write_chrome_trace` (load in Perfetto /
``chrome://tracing``); ``python -m repro.obs`` captures, summarizes,
converts, and schema-checks those files.  See
``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from repro.obs.core import (
    NOOP_SPAN,
    Recorder,
    Span,
    capture,
    count,
    current_recorder,
    disable,
    enable,
    gauge,
    is_enabled,
    observe,
    span,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_from_events,
    jsonl_events,
    read_jsonl,
    summarize_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "NOOP_SPAN",
    "Histogram",
    "MetricsRegistry",
    "Recorder",
    "Span",
    "capture",
    "chrome_trace",
    "chrome_trace_from_events",
    "count",
    "current_recorder",
    "disable",
    "enable",
    "gauge",
    "is_enabled",
    "jsonl_events",
    "observe",
    "read_jsonl",
    "span",
    "summarize_events",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
