"""The metrics registry: counters, gauges, histograms with labels.

Metric identity is ``(name, sorted labels)`` — e.g.
``cache.hits{cache="plans"}`` and ``cache.hits{cache="layouts"}`` are
separate series of one metric family, exactly the Prometheus data
model the serving ROADMAP wants to scrape.  Aggregation happens at
record time (one dict update under a lock), so a capture's memory is
proportional to the number of *series*, not the number of events —
a million cache lookups cost one counter cell.

Histograms keep count/sum/min/max plus power-of-two buckets
(``le_1, le_2, le_4 …``), enough to summarize latency distributions
without configurable bucket boundaries.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Tuple

__all__ = ["Histogram", "MetricsRegistry", "label_key"]

LabelKey = Tuple[Tuple[str, Any], ...]


def label_key(labels: Dict[str, Any]) -> LabelKey:
    """The canonical (sorted) identity of one label set."""
    return tuple(sorted(labels.items()))


class Histogram:
    """Count/sum/min/max plus power-of-two buckets of one series."""

    __slots__ = ("n", "total", "min", "max", "buckets")

    def __init__(self):
        self.n = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: ``buckets[i]`` counts observations <= 2**i (i capped at 63).
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.n += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        exp = 0
        # Smallest power of two >= value (0 and negatives fall in le_1).
        v = value
        while v > 1 and exp < 63:
            v /= 2
            exp += 1
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.n,
            "sum": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": round(self.min, 6) if self.n else 0.0,
            "max": round(self.max, 6) if self.n else 0.0,
            "buckets": {
                f"le_{1 << exp}": n
                for exp, n in sorted(self.buckets.items())
            },
        }


class MetricsRegistry:
    """Thread-safe aggregation of counter/gauge/histogram series."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, LabelKey], float] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1, **labels: Any) -> None:
        """Add ``value`` to a counter series."""
        key = (name, label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge series to its latest value."""
        key = (name, label_key(labels))
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into a histogram series."""
        key = (name, label_key(labels))
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        """One counter series' current value (0 when never bumped).

        With no labels given and no exactly-unlabeled series, sums
        every series of the family — ``counter_value("cache.hits")``
        is total hits across caches.
        """
        key = (name, label_key(labels))
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            if not labels:
                return sum(
                    v
                    for (n, _), v in self._counters.items()
                    if n == name
                )
            return 0.0

    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """A JSON-friendly dump of every series."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                key: hist.to_dict()
                for key, hist in self._histograms.items()
            }

        def rows(data, render):
            out = []
            for (name, labels), value in sorted(
                data.items(), key=lambda item: (item[0][0], item[0][1])
            ):
                out.append(
                    {
                        "name": name,
                        "labels": {k: v for k, v in labels},
                        "value": render(value),
                    }
                )
            return out

        return {
            "counters": rows(counters, lambda v: v),
            "gauges": rows(gauges, lambda v: v),
            "histograms": rows(histograms, lambda v: v),
        }

    def clear(self) -> None:
        """Drop every series."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
