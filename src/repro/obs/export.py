"""Exporters: JSONL event streams and Chrome trace-event JSON.

Two interchangeable on-disk forms of one capture:

``JSONL``
    One JSON object per line — every finished span (``type: span``)
    followed by one ``type: metrics`` record holding the registry
    snapshot and one ``type: meta`` record.  Greppable, streamable,
    and the input format of ``python -m repro.obs summary/convert``.

``Chrome trace-event JSON``
    The object form (``{"traceEvents": [...], "otherData": {...}}``)
    loadable in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``: spans are complete (``"ph": "X"``) events
    with microsecond timestamps, threads get ``thread_name`` metadata
    events, and counter metrics become ``"ph": "C"`` tracks.  The
    full metrics snapshot rides in ``otherData.metrics`` (ignored by
    viewers, read by ``python -m repro.obs summary``).

:func:`validate_chrome_trace` is the schema check behind
``python -m repro.obs --check``; it returns a list of human-readable
problems (empty = valid) so CI can gate on exported captures.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.core import Recorder

__all__ = [
    "chrome_trace",
    "chrome_trace_from_events",
    "jsonl_events",
    "read_jsonl",
    "summarize_events",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]

#: Span names are ``category:detail``; the category becomes the
#: Chrome-trace ``cat`` field so Perfetto can filter by subsystem.
def _category(name: str) -> str:
    return name.split(":", 1)[0] if ":" in name else "span"


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def jsonl_events(recorder: Recorder) -> List[Dict[str, Any]]:
    """Every event record of a capture, spans first, then metrics."""
    events: List[Dict[str, Any]] = [
        span.to_dict() for span in recorder.spans()
    ]
    events.append(
        {"type": "metrics", **recorder.metrics.snapshot()}
    )
    events.append(
        {
            "type": "meta",
            "epoch": recorder.epoch,
            "spans": len(recorder),
            "dropped_spans": recorder.dropped_spans,
        }
    )
    return events


def write_jsonl(recorder: Recorder, path: str) -> int:
    """Write the capture as JSONL; returns bytes written."""
    text = "\n".join(
        json.dumps(event, sort_keys=True)
        for event in jsonl_events(recorder)
    )
    data = text + "\n"
    with open(path, "w") as fh:
        fh.write(data)
    return len(data.encode())


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL capture back into event records."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace_from_events(
    events: List[Dict[str, Any]],
    pid: int = 1,
    suite: Optional[str] = None,
) -> Dict[str, Any]:
    """JSONL event records -> one Chrome trace-event JSON object.

    The shared code path of direct export (:func:`chrome_trace`) and
    ``python -m repro.obs convert``, so both produce byte-identical
    traces from the same capture.
    """
    spans = [e for e in events if e.get("type") == "span"]
    metrics = next(
        (e for e in events if e.get("type") == "metrics"),
        {"counters": [], "gauges": [], "histograms": []},
    )
    meta = next((e for e in events if e.get("type") == "meta"), {})
    trace_events: List[Dict[str, Any]] = []
    named_threads: Dict[int, str] = {}
    end_ts = 0.0
    for rec in spans:
        tid = rec.get("thread_id", 0)
        named_threads.setdefault(tid, rec.get("thread_name", f"thread-{tid}"))
        ts = float(rec.get("ts_us", 0.0))
        dur = max(float(rec.get("dur_us", 0.0)), 0.0)
        end_ts = max(end_ts, ts + dur)
        trace_events.append(
            {
                "name": rec["name"],
                "cat": _category(rec["name"]),
                "ph": "X",
                "ts": round(ts, 3),
                "dur": round(dur, 3),
                "pid": pid,
                "tid": tid,
                "args": {
                    "trace_id": rec.get("trace_id"),
                    "span_id": rec.get("span_id"),
                    "parent_id": rec.get("parent_id"),
                    "status": rec.get("status", "ok"),
                    **rec.get("attrs", {}),
                },
            }
        )
    for tid, name in named_threads.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": name},
            }
        )
    for row in metrics.get("counters", []):
        labels = row.get("labels", {})
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        name = row["name"] + (f"{{{label_text}}}" if label_text else "")
        # A start-and-end pair renders a visible counter track.
        for ts, value in ((0.0, 0), (round(end_ts, 3), row["value"])):
            trace_events.append(
                {
                    "name": name,
                    "cat": "metric",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": value},
                }
            )
    metrics_snapshot = {
        key: metrics.get(key, [])
        for key in ("counters", "gauges", "histograms")
    }
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "epoch": meta.get("epoch"),
            "spans": len(spans),
            "dropped_spans": meta.get("dropped_spans", 0),
            "suite": suite,
            "metrics": metrics_snapshot,
        },
    }


def chrome_trace(
    recorder: Recorder, pid: int = 1, suite: Optional[str] = None
) -> Dict[str, Any]:
    """The capture as a Chrome trace-event JSON object."""
    trace = chrome_trace_from_events(
        jsonl_events(recorder), pid=pid, suite=suite
    )
    trace["otherData"]["epoch"] = recorder.epoch
    return trace


def write_chrome_trace(
    recorder: Recorder, path: str, suite: Optional[str] = None
) -> int:
    """Write the Chrome trace JSON; returns bytes written."""
    data = json.dumps(chrome_trace(recorder, suite=suite), indent=1)
    with open(path, "w") as fh:
        fh.write(data + "\n")
    return len(data.encode()) + 1


_VALID_PHASES = {"X", "B", "E", "M", "C", "I", "i"}


def validate_chrome_trace(obj: Any) -> List[str]:
    """Schema problems of one Chrome trace object (empty = valid)."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        for field, types in (
            ("name", str),
            ("pid", (int,)),
            ("tid", (int,)),
            ("ts", (int, float)),
        ):
            if not isinstance(event.get(field), types):
                problems.append(
                    f"{where}: missing/invalid {field!r} "
                    f"({event.get(field)!r})"
                )
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0, got {dur!r}")
        if len(problems) > 25:
            problems.append("... (truncated)")
            break
    return problems


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def summarize_events(events: List[Dict[str, Any]]) -> str:
    """A human-readable digest of a JSONL capture's events."""
    spans = [e for e in events if e.get("type") == "span"]
    metrics = next(
        (e for e in events if e.get("type") == "metrics"), None
    )
    meta = next((e for e in events if e.get("type") == "meta"), None)
    by_name: Dict[str, List[float]] = {}
    for event in spans:
        by_name.setdefault(event["name"], []).append(
            event.get("dur_us", 0.0)
        )
    lines = [f"spans: {len(spans)}"]
    if meta:
        lines[0] += f" (dropped {meta.get('dropped_spans', 0)})"
    for name in sorted(by_name):
        durs = by_name[name]
        total_ms = sum(durs) / 1e3
        lines.append(
            f"  {name}: n={len(durs)} total={total_ms:.3f}ms "
            f"mean={total_ms / len(durs):.3f}ms"
        )
    if metrics:
        counters = metrics.get("counters", [])
        lines.append(f"counters: {len(counters)}")
        for row in counters:
            labels = row.get("labels", {})
            label_text = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items())
            )
            suffix = f"{{{label_text}}}" if label_text else ""
            lines.append(f"  {row['name']}{suffix} = {row['value']:g}")
        hists = metrics.get("histograms", [])
        if hists:
            lines.append(f"histograms: {len(hists)}")
            for row in hists:
                value = row["value"]
                lines.append(
                    f"  {row['name']}: n={value['count']} "
                    f"mean={value['mean']:.4g} max={value['max']:.4g}"
                )
    return "\n".join(lines)
