"""Kernel construction API — the Triton-language surface of the IR.

A kernel model is a Python function over a :class:`KernelBuilder`,
mirroring the structure of the Triton kernel it models: loads, shape
operations, dots, reductions, stores.  Shapes are the *tile* shapes
one program instance (CTA) handles, exactly as in Triton.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.errors import DimensionError
from repro.engine.ir import Graph, Op, OpKind, Value
from repro.mxfp.types import DType, F32


class KernelBuilder:
    """Builds the op graph of one kernel."""

    def __init__(self, name: str = "kernel"):
        self.name = name
        self.graph = Graph()

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def load(
        self,
        shape: Sequence[int],
        dtype: DType,
        order: Optional[Sequence[int]] = None,
    ) -> Value:
        """A global load of a tile (an anchor op)."""
        out = self.graph.new_value(tuple(shape), dtype)
        self.graph.add(
            Op(OpKind.LOAD, [], out, {"order": tuple(order) if order else None})
        )
        return out

    def store(self, value: Value) -> None:
        """A global store (an anchor op)."""
        self.graph.add(Op(OpKind.STORE, [value], None, {}))

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def elementwise(self, *inputs: Value, name: str = "add") -> Value:
        """An elementwise op over same-shape operands."""
        shape = inputs[0].shape
        for v in inputs[1:]:
            if v.shape != shape:
                raise DimensionError(
                    f"elementwise shape mismatch: {v.shape} vs {shape}"
                )
        out = self.graph.new_value(shape, inputs[0].dtype)
        self.graph.add(Op(OpKind.ELEMENTWISE, list(inputs), out,
                          {"name": name}))
        return out

    def dot(
        self,
        a: Value,
        b: Value,
        acc_dtype: DType = F32,
        b_from_shared: bool = False,
    ) -> Value:
        """``tt.dot``: (M, K) x (K, N) -> (M, N) — an anchor op.

        ``b_from_shared`` marks the wgmma pattern where the right
        operand never lives in registers.
        """
        if len(a.shape) != 2 or len(b.shape) != 2 or a.shape[1] != b.shape[0]:
            raise DimensionError(
                f"dot shape mismatch: {a.shape} x {b.shape}"
            )
        out = self.graph.new_value((a.shape[0], b.shape[1]), acc_dtype)
        self.graph.add(
            Op(
                OpKind.DOT,
                [a, b],
                out,
                {"b_from_shared": b_from_shared},
            )
        )
        return out

    def reduce(self, value: Value, axis: int, op: str = "sum") -> Value:
        """``tt.reduce``: collapse one axis with sum/max/min."""
        if not 0 <= axis < len(value.shape):
            raise DimensionError(f"reduce axis {axis} out of range")
        shape = tuple(
            s for i, s in enumerate(value.shape) if i != axis
        )
        out = self.graph.new_value(shape, value.dtype)
        self.graph.add(
            Op(OpKind.REDUCE, [value], out, {"axis": axis, "op": op})
        )
        return out

    def scan(
        self,
        value: Value,
        axis: int,
        op: str = "sum",
        reverse: bool = False,
    ) -> Value:
        """``tl.associative_scan`` / ``tl.cumsum`` along an axis.

        The paper cites two legacy miscompiles here (duplicated data
        in sliced layouts, and ``reverse=True``); the linear engine
        handles both (Section 5.1's duplicate detection makes the scan
        combine only distinct elements).
        """
        if not 0 <= axis < len(value.shape):
            raise DimensionError(f"scan axis {axis} out of range")
        out = self.graph.new_value(value.shape, value.dtype)
        self.graph.add(
            Op(
                OpKind.SCAN,
                [value],
                out,
                {"axis": axis, "op": op, "reverse": reverse},
            )
        )
        return out

    def gather(self, src: Value, index: Value, axis: int) -> Value:
        """``tl.gather``: pick elements along ``axis`` by index."""
        if src.shape != index.shape:
            raise DimensionError("gather src/index shapes must match")
        out = self.graph.new_value(src.shape, src.dtype)
        self.graph.add(
            Op(OpKind.GATHER, [src, index], out, {"axis": axis})
        )
        return out

    # ------------------------------------------------------------------
    # Shape operations (Section 4.4)
    # ------------------------------------------------------------------
    def trans(self, value: Value, perm: Optional[Sequence[int]] = None) -> Value:
        """``tt.trans``: permute dims (default: reverse)."""
        rank = len(value.shape)
        if perm is None:
            perm = list(range(rank - 1, -1, -1))
        shape = tuple(value.shape[p] for p in perm)
        out = self.graph.new_value(shape, value.dtype)
        self.graph.add(
            Op(OpKind.TRANS, [value], out, {"perm": tuple(perm)})
        )
        return out

    def reshape(self, value: Value, shape: Sequence[int]) -> Value:
        """``tt.reshape``: row-major reshape to a new shape."""
        total_old = 1
        for s in value.shape:
            total_old *= s
        total_new = 1
        for s in shape:
            total_new *= s
        if total_old != total_new:
            raise DimensionError(
                f"reshape {value.shape} -> {list(shape)} changes size"
            )
        out = self.graph.new_value(tuple(shape), value.dtype)
        self.graph.add(
            Op(OpKind.RESHAPE, [value], out, {"shape": tuple(shape)})
        )
        return out

    def expand_dims(self, value: Value, axis: int) -> Value:
        """``tt.expand_dims``: insert a size-1 dim at ``axis``."""
        shape = list(value.shape)
        shape.insert(axis, 1)
        out = self.graph.new_value(tuple(shape), value.dtype)
        self.graph.add(
            Op(OpKind.EXPAND_DIMS, [value], out, {"axis": axis})
        )
        return out

    def broadcast(self, value: Value, shape: Sequence[int]) -> Value:
        """``tt.broadcast``: grow size-1 dims to ``shape``."""
        for old, new in zip(value.shape, shape):
            if old != new and old != 1:
                raise DimensionError(
                    f"cannot broadcast {value.shape} -> {list(shape)}"
                )
        out = self.graph.new_value(tuple(shape), value.dtype)
        self.graph.add(
            Op(OpKind.BROADCAST, [value], out, {"shape": tuple(shape)})
        )
        return out

    def join(self, a: Value, b: Value) -> Value:
        """``tt.join``: stack two tensors into a trailing pair dim."""
        if a.shape != b.shape:
            raise DimensionError("join operands must share a shape")
        out = self.graph.new_value(tuple(a.shape) + (2,), a.dtype)
        self.graph.add(Op(OpKind.JOIN, [a, b], out, {}))
        return out

    def split(self, value: Value) -> Tuple[Value, Value]:
        """``tt.split``: the inverse of join (trailing dim of 2)."""
        if value.shape[-1] != 2:
            raise DimensionError("split needs a trailing dim of size 2")
        shape = value.shape[:-1]
        out0 = self.graph.new_value(shape, value.dtype)
        out1 = self.graph.new_value(shape, value.dtype)
        # Model split as two ops sharing the input (one per output) so
        # the single-output IR stays simple.
        self.graph.add(Op(OpKind.SPLIT, [value], out0, {"index": 0}))
        self.graph.add(Op(OpKind.SPLIT, [value], out1, {"index": 1}))
        return out0, out1
