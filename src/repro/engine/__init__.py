"""Triton's layout engine, reproduced over a mini tensor IR.

``KernelBuilder`` writes the op graph a Triton kernel lowers to;
``LayoutEngine`` assigns anchor layouts (loads/stores get blocked
layouts, ``dot`` gets the platform's MMA layout), propagates layouts
forward through shape operations, inserts ``convert_layout`` ops at
conflicts, removes conversions between equivalent layouts (linear mode
only — legacy cannot compare layouts across kinds), and lowers every
remaining conversion to an executable plan with a cost trace.
"""

from repro.engine.ir import Graph, Op, OpKind, Value
from repro.engine.builder import KernelBuilder
from repro.engine.engine import CompiledKernel, LayoutEngine

__all__ = [
    "CompiledKernel",
    "Graph",
    "KernelBuilder",
    "LayoutEngine",
    "Op",
    "OpKind",
    "Value",
]
