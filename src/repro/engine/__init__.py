"""Triton's layout engine, reproduced over a mini tensor IR.

``KernelBuilder`` writes the op graph a Triton kernel lowers to; the
pass pipeline (:mod:`repro.engine.pipeline`) compiles it: anchor
selection assigns hardware-preferred layouts (loads/stores get blocked
layouts, ``dot`` gets the platform's MMA layout), forward propagation
flows layouts through shape operations and inserts ``convert_layout``
ops at conflicts (removing conversions between equivalent layouts —
linear mode only; legacy cannot compare layouts across kinds),
backward rematerialization re-anchors cheap producer chains, and
lowering prices every op under the unified cost model.

:func:`compile` is the one-call entry point; ``LayoutEngine`` is the
configurable façade; ``PassManager``/``CompilationContext`` expose the
pipeline for custom pass sequences.  See ``docs/ARCHITECTURE.md``.
"""

from repro.engine.ir import Graph, Op, OpKind, Value
from repro.engine.builder import KernelBuilder
from repro.engine.engine import CompiledKernel, LayoutEngine
from repro.engine.pipeline import (
    CompilationContext,
    Pass,
    PassDiagnostics,
    PassManager,
    standard_passes,
)
from repro.hardware.spec import GpuSpec, RTX4090


def compile(
    graph: Graph,
    spec: GpuSpec = RTX4090,
    mode: str = "linear",
    num_warps: int = 4,
    passes: "PassManager | None" = None,
) -> CompiledKernel:
    """Compile a kernel graph with the standard pipeline.

    The functional face of :meth:`LayoutEngine.compile` — equivalent
    to ``LayoutEngine(spec, mode, num_warps).compile(graph)``.  Pass
    ``passes`` to run a custom pipeline instead of the mode's
    standard one.
    """
    engine = LayoutEngine(spec, mode, num_warps=num_warps)
    return engine.compile(graph, passes=passes)


__all__ = [
    "CompilationContext",
    "CompiledKernel",
    "Graph",
    "KernelBuilder",
    "LayoutEngine",
    "Op",
    "OpKind",
    "Pass",
    "PassDiagnostics",
    "PassManager",
    "Value",
    "compile",
    "standard_passes",
]
