"""The layout engine façade over the pass pipeline.

``LayoutEngine.compile`` turns a kernel graph into a
:class:`CompiledKernel` by running the standard pass pipeline of
:mod:`repro.engine.pipeline`:

1. **Anchor selection** — loads, stores, and dots receive their
   preferred layouts from the
   :class:`~repro.engine.passes.anchor_selection.AnchorCatalog`.
2. **Forward propagation** — layouts flow forward through
   shape/compute ops, and ``convert_layout`` ops appear wherever an
   operand arrives in the wrong layout.  Conversions between
   equivalent layouts are skipped — only the linear mode can compare
   layouts across kinds (Section 6.2's welford no-op).
3. **Backward rematerialization** — the backward pass of Section 4.4:
   a conversion whose producer chain is inexpensive (loads and
   elementwise ops with single uses) is eliminated by re-anchoring
   the chain in the destination layout, when the priced alternative
   is no worse.
4. **Lowering & cost** — every op is priced under the platform's
   unified cost model (:mod:`repro.gpusim.opcost`); conversions lower
   through :func:`~repro.codegen.conversion.plan_conversion` (legacy
   mode: padded staging, no warp shuffles, no ldmatrix, no duplicate
   elimination).

A :class:`LegacyUnsupportedError` during compilation marks the kernel
as *failed* — that is how the pass-rate columns of Tables 4 and 5 are
measured rather than hard-coded.

Each pass leaves a :class:`~repro.engine.pipeline.PassDiagnostics`
record on the compiled kernel (``CompiledKernel.diagnostics``); see
``docs/ARCHITECTURE.md`` for the pipeline contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.codegen.plan import ConversionPlan
from repro.core.errors import LegacyUnsupportedError
from repro.engine.ir import Graph, OpKind
from repro.engine.pipeline import (
    CompilationContext,
    PassDiagnostics,
    PassManager,
)
from repro.gpusim.trace import Trace
from repro.hardware.instructions import InstructionKind
from repro.hardware.spec import GpuSpec, RTX4090
from repro.layouts.legacy import LegacyLayoutSystem
from repro.obs import core as _obs


@dataclass
class CompiledKernel:
    """The engine's output: the final graph plus cost accounting."""

    graph: Graph
    trace: Trace
    mode: str
    error: Optional[str] = None
    conversions: List[ConversionPlan] = field(default_factory=list)
    #: The conversions' lowered warp programs (unified instruction
    #: IR), parallel to ``conversions``.
    programs: List[object] = field(default_factory=list)
    #: Per-pass instrumentation, in pipeline order (empty when the
    #: kernel was built by hand rather than compiled).
    diagnostics: List[PassDiagnostics] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff compilation succeeded (no legacy failure)."""
        return self.error is None

    def cycles(self) -> float:
        """Simulated cycles of the compiled kernel."""
        return self.trace.cycles()

    def op_counts(self) -> Dict[str, int]:
        """The Table 6 columns: convert / local_load / local_store."""
        return {
            "convert_layout": self.graph.count(OpKind.CONVERT_LAYOUT),
            "local_load": self.trace.count(InstructionKind.SHARED_LOAD)
            + self.trace.count(InstructionKind.LDMATRIX),
            "local_store": self.trace.count(InstructionKind.SHARED_STORE)
            + self.trace.count(InstructionKind.STMATRIX),
        }

    def pass_diagnostics(self) -> List[Dict[str, object]]:
        """JSON-friendly per-pass records (timing, counters, cache)."""
        return [diag.to_dict() for diag in self.diagnostics]

    def summary(self) -> Dict[str, object]:
        """A picklable, bit-comparable digest of the compilation.

        Everything two compilations must agree on to be considered
        identical: success, simulated cycles, the Table 6 op counts,
        and every conversion's serialized warp program.  This is what
        the process backend of :class:`repro.serve.CompileService`
        ships across the process boundary, and what the stress tests
        compare against serial compilation.
        """
        from repro.program.serialize import program_to_dict

        return {
            "mode": self.mode,
            "ok": self.ok,
            "error": self.error,
            "cycles": self.cycles() if self.ok else None,
            "op_counts": self.op_counts() if self.ok else None,
            "num_conversions": len(self.conversions),
            "programs": [program_to_dict(p) for p in self.programs],
        }

    def describe_passes(self) -> str:
        """A one-line-per-pass compilation profile."""
        if not self.diagnostics:
            return "(no pass diagnostics recorded)"
        return "\n".join(diag.describe() for diag in self.diagnostics)


class LayoutEngine:
    """Compiles kernel graphs in ``linear`` or ``legacy`` mode.

    A thin façade: configuration lives here, the work happens in the
    pass pipeline (:mod:`repro.engine.pipeline`).  Construct a
    :class:`~repro.engine.pipeline.PassManager` directly to run a
    custom pipeline (fewer passes, extra passes, swapped policies).

    Thread safety: the engine holds no per-compilation state (each
    ``compile`` builds a fresh :class:`CompilationContext`, and
    :class:`~repro.layouts.legacy.LegacyLayoutSystem` is stateless),
    so one engine may compile on many threads concurrently — each
    call must still own its ``graph`` exclusively.  The shared
    :mod:`repro.cache` layer is lock-protected; see
    ``docs/SERVING.md`` for the full contract.
    """

    def __init__(
        self,
        spec: GpuSpec = RTX4090,
        mode: str = "linear",
        num_warps: int = 4,
    ):
        if mode not in ("linear", "legacy"):
            raise ValueError(f"mode must be linear or legacy: {mode!r}")
        self.spec = spec
        self.mode = mode
        self.num_warps = num_warps
        self.legacy = LegacyLayoutSystem()

    def compile(
        self, graph: Graph, passes: Optional[PassManager] = None
    ) -> CompiledKernel:
        """Compile a kernel graph.

        Takes ownership of ``graph``: ops are rewired in place as
        conversions are inserted.  Rebuild the graph (or keep the
        builder function) to compile again in another mode.

        Anchor layouts, conversion plans, and their priced instruction
        streams are memoized in :mod:`repro.cache`, so recompiling the
        same graph shape is dominated by graph traversal rather than
        F2 planning (see ``docs/CACHING.md``); results are identical
        with caching disabled.

        ``passes`` overrides the standard pipeline of the engine's
        mode (e.g. a pipeline without rematerialization).
        """
        ctx = CompilationContext.create(
            graph, self.spec, self.mode, self.num_warps
        )
        ctx.legacy = self.legacy
        manager = passes if passes is not None else PassManager.standard(
            self.mode
        )
        with _obs.span(
            "compile:kernel",
            mode=self.mode,
            platform=self.spec.name,
            num_warps=self.num_warps,
        ) as sp:
            try:
                manager.run(ctx)
                sp.set_attrs(
                    {"ok": True, "cycles": ctx.cycles,
                     "conversions": len(ctx.conversions)}
                )
                _obs.count(
                    "engine.compiles", 1,
                    mode=self.mode, platform=self.spec.name, ok=True,
                )
                return CompiledKernel(
                    graph=ctx.graph,
                    trace=ctx.trace,
                    mode=self.mode,
                    conversions=ctx.conversions,
                    programs=ctx.programs,
                    diagnostics=ctx.diagnostics,
                )
            except LegacyUnsupportedError as exc:
                sp.set_attrs({"ok": False, "error": str(exc)})
                _obs.count(
                    "engine.compiles", 1,
                    mode=self.mode, platform=self.spec.name, ok=False,
                )
                return CompiledKernel(
                    graph=graph,
                    trace=Trace(self.spec),
                    mode=self.mode,
                    error=str(exc),
                    diagnostics=ctx.diagnostics,
                )
