"""The layout engine: anchors, propagation, remat, lowering, cost.

``LayoutEngine.compile`` turns a kernel graph into a
:class:`CompiledKernel` the same way Triton's backend does:

1. **Propagation** — anchor ops (loads, stores, dots) receive their
   preferred layouts; layouts flow forward through shape/compute ops,
   and ``convert_layout`` ops appear wherever an operand arrives in
   the wrong layout.  Conversions between equivalent layouts are
   skipped — only the linear mode can compare layouts across kinds
   (Section 6.2's welford no-op).
2. **Rematerialization** — the backward pass of Section 4.4: a
   conversion whose producer chain is inexpensive (loads and
   elementwise ops with single uses) is eliminated by re-anchoring
   the chain in the destination layout, when the priced alternative
   is no worse.
3. **Lowering** — every op is priced under the platform's cost model;
   conversions lower through :func:`plan_conversion` (legacy mode:
   padded staging, no warp shuffles, no ldmatrix, no duplicate
   elimination).

A :class:`LegacyUnsupportedError` during compilation marks the kernel
as *failed* — that is how the pass-rate columns of Tables 4 and 5 are
measured rather than hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import cache as _cache
from repro.codegen.conversion import plan_conversion
from repro.codegen.gather import can_gather_with_shuffles, plan_gather
from repro.codegen.plan import ConversionPlan
from repro.codegen.vectorize import (
    legacy_default_blocked,
    legacy_vector_width_bits,
    vector_width_bits,
)
from repro.core.dims import LANE, REGISTER, WARP
from repro.core.errors import LegacyUnsupportedError
from repro.core.layout import LinearLayout
from repro.engine.ir import Graph, Op, OpKind, Value
from repro.engine.propagate import forward_descriptor, forward_layout
from repro.gpusim.pricing import price_plan
from repro.gpusim.trace import Trace
from repro.hardware.instructions import InstructionKind
from repro.hardware.spec import GpuSpec, RTX4090
from repro.layouts.blocked import BlockedLayout
from repro.layouts.legacy import LegacyLayoutSystem
from repro.layouts.mfma import AmdMfmaLayout
from repro.layouts.mma import MmaOperandLayout, NvidiaMmaLayout
from repro.layouts.wgmma import WgmmaLayout, WgmmaOperandLayout
from repro.mxfp.types import DType, mma_kwidth


@dataclass
class CompiledKernel:
    """The engine's output: the final graph plus cost accounting."""

    graph: Graph
    trace: Trace
    mode: str
    error: Optional[str] = None
    conversions: List[ConversionPlan] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff compilation succeeded (no legacy failure)."""
        return self.error is None

    def cycles(self) -> float:
        """Simulated cycles of the compiled kernel."""
        return self.trace.cycles()

    def op_counts(self) -> Dict[str, int]:
        """The Table 6 columns: convert / local_load / local_store."""
        return {
            "convert_layout": self.graph.count(OpKind.CONVERT_LAYOUT),
            "local_load": self.trace.count(InstructionKind.SHARED_LOAD)
            + self.trace.count(InstructionKind.LDMATRIX),
            "local_store": self.trace.count(InstructionKind.SHARED_STORE)
            + self.trace.count(InstructionKind.STMATRIX),
        }


def _balanced_warps(
    num_warps: int, m: int, n: int, tile_m: int, tile_n: int
) -> Tuple[int, int]:
    """Split warps over (M, N), greedily along the dimension with more
    instruction tiles left — the standard warpsPerTile heuristic."""
    wm = wn = 1
    while wm * wn < num_warps:
        tiles_m = max(1, m // (tile_m * wm))
        tiles_n = max(1, n // (tile_n * wn))
        if tiles_m >= tiles_n and tiles_m > 1:
            wm *= 2
        elif tiles_n > 1:
            wn *= 2
        else:
            wm *= 2
    return wm, wn


class LayoutEngine:
    """Compiles kernel graphs in ``linear`` or ``legacy`` mode."""

    def __init__(
        self,
        spec: GpuSpec = RTX4090,
        mode: str = "linear",
        num_warps: int = 4,
    ):
        if mode not in ("linear", "legacy"):
            raise ValueError(f"mode must be linear or legacy: {mode!r}")
        self.spec = spec
        self.mode = mode
        self.num_warps = num_warps
        self.legacy = LegacyLayoutSystem()

    # ------------------------------------------------------------------
    # Anchors
    # ------------------------------------------------------------------
    def _blocked_anchor(
        self, shape: Tuple[int, ...], dtype: DType
    ) -> Tuple[BlockedLayout, LinearLayout]:
        """The default blocked anchor, shared across compilations.

        Keyed on everything the construction reads: the tile shape,
        the element width, and the engine's warp configuration.  The
        returned descriptor and layout are treated as immutable by
        every consumer.
        """

        def make() -> Tuple[BlockedLayout, LinearLayout]:
            desc = legacy_default_blocked(
                shape, dtype.bits, self.num_warps, self.spec.warp_size
            )
            return desc, desc.to_linear(shape).intern()

        return _cache.cached(
            _cache.engine,
            (
                "blocked_anchor",
                tuple(shape),
                dtype.bits,
                self.num_warps,
                self.spec.warp_size,
            ),
            make,
        )

    def _mma_parent(self, m: int, n: int):
        """The accumulator layout for a dot of output shape (m, n)."""

        def make():
            flavor = self.spec.mma_flavor
            if flavor == "mfma":
                wm, wn = _balanced_warps(self.num_warps, m, n, 32, 32)
                return AmdMfmaLayout((wm, wn))
            if flavor == "wgmma" and m >= 64 and self.num_warps % 4 == 0:
                wm = 4
                wn = max(1, self.num_warps // 4)
                instr_n = min(max(8, n), 256)
                return WgmmaLayout((wm, wn), instr_n=instr_n)
            wm, wn = _balanced_warps(self.num_warps, m, n, 16, 8)
            return NvidiaMmaLayout((wm, wn))

        return _cache.cached(
            _cache.engine,
            ("mma_parent", self.spec.mma_flavor, self.num_warps, m, n),
            make,
        )

    def _operand_descriptor(self, parent, op_idx: int, dtype: DType):
        kwidth = mma_kwidth(dtype)
        if isinstance(parent, WgmmaLayout):
            if op_idx == 1:
                return None  # B comes straight from shared memory
            return WgmmaOperandLayout(parent, kwidth)
        if isinstance(parent, AmdMfmaLayout):
            # Modeled with the generic mma fragment on 64-lane warps
            # is out of scope; stage via shared like wgmma's B.
            return None
        return MmaOperandLayout(parent, op_idx, kwidth)

    # ------------------------------------------------------------------
    # Compilation driver
    # ------------------------------------------------------------------
    def compile(self, graph: Graph) -> CompiledKernel:
        """Compile a kernel graph.

        Takes ownership of ``graph``: ops are rewired in place as
        conversions are inserted.  Rebuild the graph (or keep the
        builder function) to compile again in another mode.

        Anchor layouts, conversion plans, and their priced instruction
        streams are memoized in :mod:`repro.cache`, so recompiling the
        same graph shape is dominated by graph traversal rather than
        F2 planning (see ``docs/CACHING.md``); results are identical
        with caching disabled.
        """
        try:
            propagated = self._propagate(graph)
            self._rematerialize(propagated)
            trace, conversions = self._lower(propagated)
            return CompiledKernel(
                graph=propagated,
                trace=trace,
                mode=self.mode,
                conversions=conversions,
            )
        except LegacyUnsupportedError as exc:
            return CompiledKernel(
                graph=graph,
                trace=Trace(self.spec),
                mode=self.mode,
                error=str(exc),
            )

    # ------------------------------------------------------------------
    # Pass 1: layout propagation
    # ------------------------------------------------------------------
    def _propagate(self, graph: Graph) -> Graph:
        out = Graph()
        out.values = graph.values

        def convert_to(
            value: Value, layout: LinearLayout, desc
        ) -> Value:
            """Insert a convert_layout if the layouts truly differ."""
            if value.layout is None:
                value.layout = layout
                value.descriptor = desc
                return value
            if self.mode == "linear":
                if value.layout.equivalent(layout):
                    return value
            else:
                if (
                    value.descriptor is not None
                    and desc is not None
                    and self.legacy.can_compare(value.descriptor, desc)
                    and value.layout == layout
                ):
                    return value
                self.legacy.check_conversion(
                    value.descriptor
                    if value.descriptor is not None
                    else self._blocked_anchor(value.shape, value.dtype)[0],
                    desc
                    if desc is not None
                    else self._blocked_anchor(value.shape, value.dtype)[0],
                )
            new_val = out.new_value(value.shape, value.dtype)
            new_val.layout = layout
            new_val.descriptor = desc
            out.add(Op(OpKind.CONVERT_LAYOUT, [value], new_val, {}))
            return new_val

        for op in graph.ops:
            kind = op.kind
            if kind == OpKind.LOAD:
                desc, layout = self._blocked_anchor(
                    op.output.shape, op.output.dtype
                )
                op.output.layout = layout
                op.output.descriptor = desc
                out.add(op)
            elif kind == OpKind.STORE:
                value = op.inputs[0]
                desc, layout = self._blocked_anchor(
                    value.shape, value.dtype
                )
                value = convert_to(value, layout, desc)
                out.add(Op(OpKind.STORE, [value], None, op.attrs))
            elif kind == OpKind.ELEMENTWISE:
                first = op.inputs[0]
                new_inputs = [first]
                for other in op.inputs[1:]:
                    new_inputs.append(
                        convert_to(other, first.layout, first.descriptor)
                    )
                op.inputs = new_inputs
                op.output.layout = first.layout
                op.output.descriptor = first.descriptor
                out.add(op)
            elif kind == OpKind.DOT:
                self._propagate_dot(op, out, convert_to)
            elif kind == OpKind.REDUCE:
                value = op.inputs[0]
                if self.mode == "legacy":
                    self.legacy.check_reduction(
                        value.descriptor
                        if value.descriptor is not None
                        else self._blocked_anchor(
                            value.shape, value.dtype
                        )[0]
                    )
                op.output.layout = forward_layout(op, value.layout)
                op.output.descriptor = forward_descriptor(
                    op, value.descriptor
                )
                out.add(op)
            elif kind == OpKind.SCAN:
                value = op.inputs[0]
                if self.mode == "legacy":
                    free = value.layout.free_variable_masks()
                    has_dup = any(free.values())
                    self.legacy.check_scan(
                        value.descriptor
                        if value.descriptor is not None
                        else self._blocked_anchor(
                            value.shape, value.dtype
                        )[0],
                        op.attrs.get("reverse", False),
                        has_dup,
                    )
                op.output.layout = value.layout
                op.output.descriptor = value.descriptor
                out.add(op)
            elif kind == OpKind.GATHER:
                src, index = op.inputs
                index = convert_to(index, src.layout, src.descriptor)
                op.inputs = [src, index]
                op.output.layout = src.layout
                op.output.descriptor = src.descriptor
                out.add(op)
            elif kind == OpKind.BROADCAST:
                # Broadcast into the consumer's layout and convert the
                # *small* input tensor instead (forward half of the
                # remat story; both compilers do this).
                value = op.inputs[0]
                target = self._consumer_layout(graph, op)
                if target is not None:
                    axes = [
                        i
                        for i, (old, new) in enumerate(
                            zip(value.shape, op.attrs["shape"])
                        )
                        if old == 1 and new > 1
                    ]
                    from repro.engine.propagate import collapse_dims_to_one

                    small = collapse_dims_to_one(target, axes)
                    value = convert_to(value, small, None)
                    op.inputs = [value]
                    op.output.layout = target
                    op.output.descriptor = None
                    out.add(op)
                else:
                    op.output.layout = forward_layout(op, value.layout)
                    op.output.descriptor = forward_descriptor(
                        op, value.descriptor
                    )
                    out.add(op)
            elif kind in (
                OpKind.TRANS,
                OpKind.RESHAPE,
                OpKind.EXPAND_DIMS,
                OpKind.JOIN,
                OpKind.SPLIT,
            ):
                value = op.inputs[0]
                desc = value.descriptor
                if self.mode == "legacy" and kind == OpKind.TRANS:
                    new_desc = forward_descriptor(op, desc)
                    if new_desc is None:
                        # Legacy cannot transpose MMA-family layouts:
                        # bounce through a blocked layout first.
                        bdesc, blayout = self._blocked_anchor(
                            value.shape, value.dtype
                        )
                        value = convert_to(value, blayout, bdesc)
                        op.inputs = [value]
                        desc = bdesc
                op.output.layout = forward_layout(op, value.layout)
                op.output.descriptor = forward_descriptor(op, desc)
                out.add(op)
            elif kind == OpKind.CONVERT_LAYOUT:
                out.add(op)  # pre-inserted by a kernel model
            else:  # pragma: no cover
                raise ValueError(f"unhandled op {kind}")
        return out

    def _propagate_dot(self, op: Op, out: Graph, convert_to) -> None:
        a, b = op.inputs
        m, k = a.shape
        _, n = b.shape
        del k
        parent = self._mma_parent(m, n)
        op.output.layout = _cache.cached(
            _cache.engine,
            ("dot_acc", self.spec.mma_flavor, self.num_warps, m, n),
            lambda: parent.to_linear((m, n)).intern(),
        )
        op.output.descriptor = parent
        new_inputs = []
        for idx, operand in enumerate((a, b)):
            desc, layout = _cache.cached(
                _cache.engine,
                (
                    "dot_operand",
                    self.spec.mma_flavor,
                    self.num_warps,
                    m,
                    n,
                    idx,
                    operand.dtype.name,
                    tuple(operand.shape),
                ),
                lambda: self._dot_operand(parent, idx, operand),
            )
            if desc is None:
                # Operand consumed from shared memory: stage it.
                staged = out.new_value(operand.shape, operand.dtype)
                staged.layout = operand.layout
                staged.descriptor = operand.descriptor
                out.add(Op(OpKind.LOCAL_STORE, [operand], staged, {}))
                new_inputs.append(staged)
            else:
                new_inputs.append(convert_to(operand, layout, desc))
        op.inputs = new_inputs
        out.add(op)

    def _dot_operand(self, parent, idx: int, operand: Value):
        """(descriptor, layout) of one dot operand; (None, None) when
        the operand is consumed straight from shared memory."""
        desc = self._operand_descriptor(parent, idx, operand.dtype)
        if desc is None:
            return None, None
        return desc, desc.to_linear(operand.shape).intern()

    def _consumer_layout(
        self, graph: Graph, op: Op
    ) -> Optional[LinearLayout]:
        """The layout a broadcast's consumer already fixed for peers.

        Scans users of the broadcast result for an operand of the same
        shape whose layout is known (typically the tensor the
        broadcast value is combined with).
        """
        for user in graph.users_of(op.output):
            for other in user.inputs:
                if other is op.output:
                    continue
                if (
                    other.layout is not None
                    and tuple(other.shape) == tuple(op.attrs["shape"])
                ):
                    return other.layout
        return None

    # ------------------------------------------------------------------
    # Pass 2: backward rematerialization (Section 4.4)
    # ------------------------------------------------------------------
    def _rematerialize(self, graph: Graph) -> None:
        """Eliminate conversions whose producer chain can be cheaply
        re-anchored in the destination layout.

        "In the backward pass, layout conversions are rematerialized
        in reverse through the definition chain.  If the instructions
        along the chain are inexpensive, the entire operation chain
        may be rematerialized to eliminate layout conversions."  The
        chains handled are single-use loads, optionally followed by
        single-use single-input elementwise ops; the rewrite is taken
        only when the priced alternative is no worse.
        """
        changed = True
        while changed:
            changed = False
            for convert in list(graph.ops):
                if convert.kind != OpKind.CONVERT_LAYOUT:
                    continue
                if convert.output is None or convert.output.layout is None:
                    continue
                chain = self._remat_chain(graph, convert)
                if chain is None:
                    continue
                load, middles = chain
                dst_layout = convert.output.layout
                dst_desc = convert.output.descriptor
                if self.mode == "legacy" and dst_desc is None:
                    continue  # legacy can only anchor layouts it names
                old_cost = self._global_cycles(
                    load.output.layout, load.output.descriptor,
                    load.output.shape, load.output.dtype,
                ) + self._conversion_cycles(
                    convert.inputs[0].layout, dst_layout,
                    convert.inputs[0].dtype,
                )
                new_cost = self._global_cycles(
                    dst_layout, dst_desc, load.output.shape,
                    load.output.dtype,
                )
                if new_cost > old_cost:
                    continue
                # Re-anchor the chain and delete the conversion.
                load.output.layout = dst_layout
                load.output.descriptor = dst_desc
                for mid in middles:
                    mid.output.layout = dst_layout
                    mid.output.descriptor = dst_desc
                replaced = convert.output
                for op in graph.ops:
                    op.inputs = [
                        convert.inputs[0] if v is replaced else v
                        for v in op.inputs
                    ]
                graph.ops.remove(convert)
                changed = True

    def _remat_chain(
        self, graph: Graph, convert: Op
    ) -> Optional[Tuple[Op, List[Op]]]:
        """(load, intermediate elementwise ops) feeding a conversion,
        or None when the chain is not rematerializable."""
        middles: List[Op] = []
        current = convert.inputs[0]
        while True:
            if len(graph.users_of(current)) != 1:
                return None
            producer = current.producer
            if producer is None:
                return None
            if producer.kind == OpKind.LOAD:
                return producer, middles
            if (
                producer.kind == OpKind.ELEMENTWISE
                and len(producer.inputs) == 1
            ):
                middles.append(producer)
                current = producer.inputs[0]
                continue
            return None

    # ------------------------------------------------------------------
    # Pass 3: lowering & cost
    # ------------------------------------------------------------------
    def _lower(
        self, graph: Graph
    ) -> Tuple[Trace, List[ConversionPlan]]:
        trace = Trace(self.spec)
        conversions: List[ConversionPlan] = []
        for op in graph.ops:
            kind = op.kind
            if kind == OpKind.LOAD:
                self._cost_global(
                    op.output, trace, InstructionKind.GLOBAL_LOAD
                )
            elif kind == OpKind.STORE:
                self._cost_global(
                    op.inputs[0], trace, InstructionKind.GLOBAL_STORE
                )
            elif kind == OpKind.CONVERT_LAYOUT:
                src = op.inputs[0]
                if src.layout is None or op.output.layout is None:
                    continue
                plan, instructions, _ = self._priced_conversion(
                    src.layout, op.output.layout, src.dtype
                )
                conversions.append(plan)
                trace.instructions.extend(instructions)
            elif kind == OpKind.ELEMENTWISE:
                layout = op.output.layout
                trace.emit(
                    InstructionKind.ALU,
                    count=max(1, layout.in_dim_size(REGISTER)),
                )
            elif kind == OpKind.LOCAL_STORE:
                operand = op.inputs[0]
                elems = (
                    operand.layout.in_dim_size(REGISTER)
                    if operand.layout
                    else 1
                )
                trace.emit(
                    InstructionKind.SHARED_STORE,
                    vector_bits=128,
                    count=max(1, elems * operand.dtype.bits // 128),
                )
            elif kind == OpKind.DOT:
                self._cost_dot(op, trace)
            elif kind == OpKind.REDUCE:
                self._cost_reduce(op, trace)
            elif kind == OpKind.SCAN:
                self._cost_scan(op, trace)
            elif kind == OpKind.GATHER:
                self._cost_gather(op, trace)
            # Shape ops are register no-ops by construction.
        return trace, conversions

    def _cost_scan(self, op: Op, trace: Trace) -> None:
        """Hillis-Steele within the warp, shared combine across warps."""
        layout = op.inputs[0].layout
        axis = op.attrs["axis"]
        regs = layout.in_dim_size(REGISTER)
        lane_bits = sum(
            1 for img in layout.bases.get(LANE, []) if img[axis] != 0
        )
        warp_bits = sum(
            1 for img in layout.bases.get(WARP, []) if img[axis] != 0
        )
        trace.emit(InstructionKind.ALU, count=max(1, regs))
        trace.emit(InstructionKind.SHUFFLE, count=lane_bits * max(1, regs))
        if warp_bits:
            trace.emit(
                InstructionKind.SHARED_STORE, vector_bits=32, count=1
            )
            trace.emit(InstructionKind.BARRIER)
            trace.emit(
                InstructionKind.SHARED_LOAD,
                vector_bits=32,
                count=1 << warp_bits,
            )
            trace.emit(InstructionKind.ALU, count=max(1, regs))

    def _lower_conversion(
        self, src: LinearLayout, dst: LinearLayout, dtype: DType
    ) -> ConversionPlan:
        if self.mode == "linear":
            return plan_conversion(
                src,
                dst,
                elem_bits=dtype.bits,
                spec=self.spec,
                allow_shuffle=True,
                swizzle_mode="optimal",
                dedupe_broadcast=True,
            )
        return plan_conversion(
            src,
            dst,
            elem_bits=dtype.bits,
            spec=self.spec,
            allow_shuffle=False,
            swizzle_mode="padded",
            dedupe_broadcast=False,
        )

    def _priced_conversion(
        self, src: LinearLayout, dst: LinearLayout, dtype: DType
    ) -> Tuple[ConversionPlan, Tuple, float]:
        """(plan, priced instructions, cycles) of one conversion.

        The warm-path workhorse: repeated compilations of the same
        graph hit this cache and skip planning *and* pricing.  The
        instruction tuple is extended into each compilation's trace;
        instructions are frozen, so sharing is safe.
        """

        def make() -> Tuple[ConversionPlan, Tuple, float]:
            plan = self._lower_conversion(src, dst, dtype)
            priced = price_plan(plan, self.spec)
            return plan, tuple(priced.instructions), priced.cycles()

        return _cache.cached(
            _cache.engine,
            (
                "priced_conversion",
                src.canonical_key(),
                dst.canonical_key(),
                dtype.bits,
                self.mode,
                self.spec,
            ),
            make,
        )

    def _conversion_cycles(
        self, src: LinearLayout, dst: LinearLayout, dtype: DType
    ) -> float:
        return self._priced_conversion(src, dst, dtype)[2]

    def _vector_bits(self, layout, desc, shape, bits) -> int:
        if self.mode == "legacy" and isinstance(desc, BlockedLayout):
            return legacy_vector_width_bits(
                desc, shape, bits, self.spec.max_vector_bits
            )
        return vector_width_bits(layout, bits, self.spec.max_vector_bits)

    def _global_cycles(self, layout, desc, shape, dtype) -> float:
        def compute() -> float:
            vec = self._vector_bits(layout, desc, shape, dtype.bits)
            regs = layout.in_dim_size(REGISTER)
            count = max(1, regs * dtype.bits // vec)
            from repro.hardware.cost import CostModel
            from repro.hardware.instructions import Instruction

            inst = Instruction(
                InstructionKind.GLOBAL_LOAD, vector_bits=vec, count=count
            )
            return CostModel(self.spec).instruction_cycles(inst)

        return _cache.cached(
            _cache.engine,
            (
                "global_cycles",
                self.mode,
                layout.canonical_key(),
                None if desc is None else repr(desc),
                tuple(shape),
                dtype.bits,
                self.spec,
            ),
            compute,
        )

    def _cost_global(
        self, value: Value, trace: Trace, kind: InstructionKind
    ) -> None:
        vec = self._vector_bits(
            value.layout, value.descriptor, value.shape, value.dtype.bits
        )
        regs = value.layout.in_dim_size(REGISTER)
        count = max(1, regs * value.dtype.bits // vec)
        trace.emit(kind, vector_bits=vec, count=count)

    def _cost_dot(self, op: Op, trace: Trace) -> None:
        parent = op.output.descriptor
        m, n = op.output.shape
        k = op.inputs[0].shape[1]
        if isinstance(parent, WgmmaLayout):
            tile = (64, parent.instr_n, 16)
            weight = max(1, int(parent.instr_n / 2 / 1.3))
        elif isinstance(parent, AmdMfmaLayout):
            tile = (32, 32, 8)
            weight = 3
        else:
            tile = (16, 8, 16)
            weight = 1
        per_warp = (
            max(1, m // (tile[0] * parent.warps_per_cta[0]))
            * max(1, n // (tile[1] * parent.warps_per_cta[1]))
            * max(1, k // tile[2])
        )
        trace.emit(InstructionKind.MMA, count=per_warp, wavefronts=weight)

    def _cost_reduce(self, op: Op, trace: Trace) -> None:
        value = op.inputs[0]
        axis = op.attrs["axis"]
        layout = value.layout
        lane_bits = sum(
            1 for img in layout.bases.get(LANE, []) if img[axis] != 0
        )
        warp_bits = sum(
            1 for img in layout.bases.get(WARP, []) if img[axis] != 0
        )
        reg_bits = sum(
            1 for img in layout.bases.get(REGISTER, []) if img[axis] != 0
        )
        # In-register tree plus butterfly shuffles within the warp.
        trace.emit(InstructionKind.ALU, count=max(1, 1 << reg_bits))
        trace.emit(InstructionKind.SHUFFLE, count=lane_bits)
        if warp_bits:
            # Cross-warp combine through shared memory.
            out_layout = op.output.layout
            from repro.codegen.broadcast import reduction_store_count

            dedupe = self.mode == "linear"
            stores = reduction_store_count(out_layout, dedupe)
            lanes = max(1, out_layout.in_dim_size(LANE))
            warps = max(1, out_layout.in_dim_size(WARP))
            per_thread = max(1, stores // (lanes * warps))
            trace.emit(
                InstructionKind.SHARED_STORE,
                vector_bits=32,
                count=per_thread,
            )
            trace.emit(InstructionKind.BARRIER)
            trace.emit(
                InstructionKind.SHARED_LOAD,
                vector_bits=32,
                count=per_thread * (1 << warp_bits),
            )
            trace.emit(InstructionKind.ALU, count=1 << warp_bits)

    def _cost_gather(self, op: Op, trace: Trace) -> None:
        src = op.inputs[0]
        axis = op.attrs["axis"]
        layout = src.layout
        regs = layout.in_dim_size(REGISTER)
        if self.mode == "linear" and can_gather_with_shuffles(layout, axis):
            plan = plan_gather(layout, axis)
            shuffle_cycles = plan.total_shuffles * self.spec.shuffle_cycles
            shared_cycles = (
                regs * (self.spec.issue_cycles + 2)
                + self.spec.barrier_cycles
                + regs * (self.spec.issue_cycles + 4)
            )
            # Past the Figure 8 crossover the rounds outgrow the
            # shared round trip; the compiler keeps the cheaper path.
            if shuffle_cycles <= shared_cycles:
                trace.emit(
                    InstructionKind.SHUFFLE, count=plan.total_shuffles
                )
                return
        trace.emit(
            InstructionKind.SHARED_STORE, vector_bits=32, count=regs
        )
        trace.emit(InstructionKind.BARRIER)
        # Inside a full kernel the indices are loaded well before the
        # gather, so the addresses are ready and the loads pipeline
        # (unlike the standalone microbenchmark of Figure 8); only the
        # ~2-way random bank conflicts remain.
        trace.emit(
            InstructionKind.SHARED_LOAD,
            vector_bits=32,
            count=regs,
            wavefronts=2,
        )
