"""Lowering: every op becomes priced instructions (Section 4.4's end).

Walks the propagated graph and asks the context's
:class:`~repro.gpusim.opcost.OpCostModel` — the single pricing
authority — what instructions each op turns into.  Conversions lower
through :func:`~repro.codegen.conversion.plan_conversion` under the
policy's planner options (legacy: padded staging, no warp shuffles,
no ldmatrix, no duplicate elimination) and their plans are kept on
the context for inspection.

Shape ops are register no-ops by construction and emit nothing.
"""

from __future__ import annotations

from repro.engine.ir import OpKind
from repro.engine.pipeline import CompilationContext, Pass, PassDiagnostics
from repro.gpusim.trace import Trace
from repro.hardware.instructions import InstructionKind
from repro.obs import core as _obs


class LowerToPlans(Pass):
    """Emit the instruction trace and conversion plans."""

    name = "lower-to-plans"

    def run(self, ctx: CompilationContext, diag: PassDiagnostics) -> None:
        cost = ctx.cost
        trace = Trace(ctx.spec)
        for op in ctx.graph.ops:
            kind = op.kind
            if kind == OpKind.LOAD:
                cost.price_global(op.output, trace, InstructionKind.GLOBAL_LOAD)
            elif kind == OpKind.STORE:
                cost.price_global(op.inputs[0], trace, InstructionKind.GLOBAL_STORE)
            elif kind == OpKind.CONVERT_LAYOUT:
                src = op.inputs[0]
                if src.layout is None or op.output.layout is None:
                    continue
                plan, instructions, _ = cost.priced_conversion(
                    src.layout, op.output.layout, src.dtype
                )
                ctx.conversions.append(plan)
                ctx.programs.append(plan.program())
                trace.instructions.extend(instructions)
                diag.bump("conversions_lowered")
                diag.bump(
                    "program_instructions", len(plan.program())
                )
                if _obs.is_enabled():
                    _obs.count(
                        "engine.conversions", 1,
                        kind=plan.kind, mode=ctx.mode,
                    )
            elif kind == OpKind.ELEMENTWISE:
                cost.price_elementwise(op, trace)
            elif kind == OpKind.LOCAL_STORE:
                cost.price_local_store(op, trace)
            elif kind == OpKind.DOT:
                cost.price_dot(op, trace)
            elif kind == OpKind.REDUCE:
                cost.price_reduce(op, trace)
            elif kind == OpKind.SCAN:
                cost.price_scan(op, trace)
            elif kind == OpKind.GATHER:
                cost.price_gather(op, trace)
            # Shape ops are register no-ops by construction.
            diag.bump("ops_lowered")
        ctx.trace = trace
        diag.bump("instructions_emitted", len(trace.instructions))


__all__ = ["LowerToPlans"]
