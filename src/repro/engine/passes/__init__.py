"""The discrete passes of the layout-engine pipeline.

Each module holds one pass; :func:`repro.engine.pipeline.standard_passes`
assembles the stock pipelines.  See ``docs/ARCHITECTURE.md`` for the
pass contract and diagnostics schema.
"""

from repro.engine.passes.anchor_selection import (
    AnchorCatalog,
    AnchorSelection,
    balanced_warps,
)
from repro.engine.passes.cost_summary import CostSummary
from repro.engine.passes.forward_propagation import (
    ForwardPropagation,
    LegacyPropagationPolicy,
    LinearPropagationPolicy,
)
from repro.engine.passes.lower import LowerToPlans
from repro.engine.passes.remat import BackwardRematerialization

__all__ = [
    "AnchorCatalog",
    "AnchorSelection",
    "BackwardRematerialization",
    "CostSummary",
    "ForwardPropagation",
    "LegacyPropagationPolicy",
    "LinearPropagationPolicy",
    "LowerToPlans",
    "balanced_warps",
]
