"""Backward rematerialization (the backward pass of Section 4.4).

"In the backward pass, layout conversions are rematerialized in
reverse through the definition chain.  If the instructions along the
chain are inexpensive, the entire operation chain may be
rematerialized to eliminate layout conversions."  The chains handled
are single-use loads, optionally followed by single-use single-input
elementwise ops; the rewrite is taken only when the priced
alternative is no worse — priced by the same
:class:`~repro.gpusim.opcost.OpCostModel` the lowering pass charges
with, so the decision and the bill can never disagree.

The pass is idempotent: it runs to a fixed point, so a second run
finds no eliminable conversions (``tests/test_pipeline.py`` holds
that line).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.engine.ir import Graph, Op, OpKind
from repro.engine.pipeline import CompilationContext, Pass, PassDiagnostics


class BackwardRematerialization(Pass):
    """Eliminate conversions whose producer chain can be cheaply
    re-anchored in the destination layout."""

    name = "backward-remat"

    def __init__(self, require_descriptor: bool = False):
        #: Legacy can only re-anchor layouts it can name, so its
        #: pipeline constructs this pass with ``require_descriptor``.
        self.require_descriptor = require_descriptor

    def run(self, ctx: CompilationContext, diag: PassDiagnostics) -> None:
        graph = ctx.graph
        cost = ctx.cost
        changed = True
        while changed:
            changed = False
            diag.bump("rounds")
            for convert in list(graph.ops):
                if convert.kind != OpKind.CONVERT_LAYOUT:
                    continue
                if convert.output is None or convert.output.layout is None:
                    continue
                chain = self._remat_chain(graph, convert)
                if chain is None:
                    continue
                load, middles = chain
                dst_layout = convert.output.layout
                dst_desc = convert.output.descriptor
                if self.require_descriptor and dst_desc is None:
                    continue  # legacy can only anchor layouts it names
                old_cost = cost.global_cycles(
                    load.output.layout,
                    load.output.descriptor,
                    load.output.shape,
                    load.output.dtype,
                ) + cost.conversion_cycles(
                    convert.inputs[0].layout,
                    dst_layout,
                    convert.inputs[0].dtype,
                )
                new_cost = cost.global_cycles(
                    dst_layout,
                    dst_desc,
                    load.output.shape,
                    load.output.dtype,
                )
                if new_cost > old_cost:
                    diag.bump("chains_rejected_by_cost")
                    continue
                # Re-anchor the chain and delete the conversion.
                load.output.layout = dst_layout
                load.output.descriptor = dst_desc
                for mid in middles:
                    mid.output.layout = dst_layout
                    mid.output.descriptor = dst_desc
                replaced = convert.output
                for op in graph.ops:
                    op.inputs = [convert.inputs[0] if v is replaced else v for v in op.inputs]
                graph.ops.remove(convert)
                diag.bump("conversions_eliminated")
                changed = True

    @staticmethod
    def _remat_chain(graph: Graph, convert: Op) -> Optional[Tuple[Op, List[Op]]]:
        """(load, intermediate elementwise ops) feeding a conversion,
        or None when the chain is not rematerializable."""
        middles: List[Op] = []
        current = convert.inputs[0]
        while True:
            if len(graph.users_of(current)) != 1:
                return None
            producer = current.producer
            if producer is None:
                return None
            if producer.kind == OpKind.LOAD:
                return producer, middles
            if producer.kind == OpKind.ELEMENTWISE and len(producer.inputs) == 1:
                middles.append(producer)
                current = producer.inputs[0]
                continue
            return None


__all__ = ["BackwardRematerialization"]
