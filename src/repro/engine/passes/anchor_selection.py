"""Anchor selection: which ops get to dictate layouts (Section 4.4).

Anchors are the ops whose layouts are fixed by hardware reality —
global loads and stores want coalesced blocked layouts, ``dot`` wants
the platform's MMA accumulator and operand fragments.  Everything
else receives a layout by propagation.  This module owns the anchor
heuristics (warp balancing, default blocked construction, MMA parent
and operand selection) and the :class:`AnchorSelection` pass that
stamps load anchors onto the graph and publishes an
:class:`AnchorCatalog` for the forward-propagation pass to query.

All catalog constructions are memoized in :mod:`repro.cache` under
``("anchors", ...)`` keys — anchor choice depends only on the engine
configuration and op shapes, never on the surrounding graph.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro import cache as _cache
from repro.codegen.vectorize import legacy_default_blocked
from repro.core.layout import LinearLayout
from repro.engine.ir import OpKind, Value
from repro.engine.pipeline import CompilationContext, Pass, PassDiagnostics
from repro.hardware.spec import GpuSpec
from repro.layouts.blocked import BlockedLayout
from repro.layouts.mfma import AmdMfmaLayout
from repro.layouts.mma import MmaOperandLayout, NvidiaMmaLayout
from repro.layouts.wgmma import WgmmaLayout, WgmmaOperandLayout
from repro.mxfp.types import DType, mma_kwidth


def balanced_warps(num_warps: int, m: int, n: int, tile_m: int, tile_n: int) -> Tuple[int, int]:
    """Split warps over (M, N), greedily along the dimension with more
    instruction tiles left — the standard warpsPerTile heuristic."""
    wm = wn = 1
    while wm * wn < num_warps:
        tiles_m = max(1, m // (tile_m * wm))
        tiles_n = max(1, n // (tile_n * wn))
        if tiles_m >= tiles_n and tiles_m > 1:
            wm *= 2
        elif tiles_n > 1:
            wn *= 2
        else:
            wm *= 2
    return wm, wn


class AnchorCatalog:
    """Anchor layout construction for one engine configuration.

    Stateless beyond ``(spec, num_warps)``; every result is memoized
    and treated as immutable by all consumers, so one catalog can be
    shared across compilations (and is, through :mod:`repro.cache`).
    """

    def __init__(self, spec: GpuSpec, num_warps: int):
        self.spec = spec
        self.num_warps = num_warps

    # ------------------------------------------------------------------
    # Blocked anchors (loads, stores)
    # ------------------------------------------------------------------
    def blocked_anchor(
        self, shape: Tuple[int, ...], dtype: DType
    ) -> Tuple[BlockedLayout, LinearLayout]:
        """The default blocked anchor, shared across compilations.

        Keyed on everything the construction reads: the tile shape,
        the element width, and the warp configuration.
        """

        def make() -> Tuple[BlockedLayout, LinearLayout]:
            desc = legacy_default_blocked(shape, dtype.bits, self.num_warps, self.spec.warp_size)
            return desc, desc.to_linear(shape).intern()

        return _cache.cached(
            _cache.engine,
            (
                "anchors",
                "blocked_anchor",
                tuple(shape),
                dtype.bits,
                self.num_warps,
                self.spec.warp_size,
            ),
            make,
        )

    # ------------------------------------------------------------------
    # MMA anchors (dot)
    # ------------------------------------------------------------------
    def mma_parent(self, m: int, n: int):
        """The accumulator layout for a dot of output shape (m, n)."""

        def make():
            flavor = self.spec.mma_flavor
            if flavor == "mfma":
                wm, wn = balanced_warps(self.num_warps, m, n, 32, 32)
                return AmdMfmaLayout((wm, wn))
            if flavor == "wgmma" and m >= 64 and self.num_warps % 4 == 0:
                wm = 4
                wn = max(1, self.num_warps // 4)
                instr_n = min(max(8, n), 256)
                return WgmmaLayout((wm, wn), instr_n=instr_n)
            wm, wn = balanced_warps(self.num_warps, m, n, 16, 8)
            return NvidiaMmaLayout((wm, wn))

        return _cache.cached(
            _cache.engine,
            (
                "anchors",
                "mma_parent",
                self.spec.mma_flavor,
                self.num_warps,
                m,
                n,
            ),
            make,
        )

    def dot_accumulator(self, m: int, n: int) -> LinearLayout:
        """The linear layout of a dot's accumulator."""
        parent = self.mma_parent(m, n)
        return _cache.cached(
            _cache.engine,
            (
                "anchors",
                "dot_acc",
                self.spec.mma_flavor,
                self.num_warps,
                m,
                n,
            ),
            lambda: parent.to_linear((m, n)).intern(),
        )

    def operand_descriptor(self, parent, op_idx: int, dtype: DType):
        """The fragment descriptor of one dot operand, or None when
        the operand is consumed straight from shared memory."""
        kwidth = mma_kwidth(dtype)
        if isinstance(parent, WgmmaLayout):
            if op_idx == 1:
                return None  # B comes straight from shared memory
            return WgmmaOperandLayout(parent, kwidth)
        if isinstance(parent, AmdMfmaLayout):
            # Modeled with the generic mma fragment on 64-lane warps
            # is out of scope; stage via shared like wgmma's B.
            return None
        return MmaOperandLayout(parent, op_idx, kwidth)

    def dot_operand(
        self, parent, m: int, n: int, idx: int, operand: Value
    ) -> Tuple[Optional[object], Optional[LinearLayout]]:
        """(descriptor, layout) of one dot operand; (None, None) when
        the operand is consumed straight from shared memory."""

        def make():
            desc = self.operand_descriptor(parent, idx, operand.dtype)
            if desc is None:
                return None, None
            return desc, desc.to_linear(operand.shape).intern()

        return _cache.cached(
            _cache.engine,
            (
                "anchors",
                "dot_operand",
                self.spec.mma_flavor,
                self.num_warps,
                m,
                n,
                idx,
                operand.dtype.name,
                tuple(operand.shape),
            ),
            make,
        )


class AnchorSelection(Pass):
    """Publish the anchor catalog and stamp load anchors.

    Loads are the only anchors whose layout can be assigned before
    propagation (their outputs exist in the input graph); dot anchors
    are queried from the catalog during forward propagation because
    operand staging rewrites the graph as it goes.
    """

    name = "anchor-selection"

    def run(self, ctx: CompilationContext, diag: PassDiagnostics) -> None:
        catalog = AnchorCatalog(ctx.spec, ctx.num_warps)
        ctx.anchors = catalog
        for op in ctx.graph.ops:
            if op.kind != OpKind.LOAD:
                continue
            desc, layout = catalog.blocked_anchor(op.output.shape, op.output.dtype)
            op.output.layout = layout
            op.output.descriptor = desc
            diag.bump("anchors_assigned")


__all__ = ["AnchorCatalog", "AnchorSelection", "balanced_warps"]
