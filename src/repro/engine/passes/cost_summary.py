"""Cost summary: price the finished trace and record the bill.

The final pipeline stage.  It adds no instructions — pricing of
individual ops happened during lowering — but totals the trace under
the platform's :class:`~repro.hardware.cost.CostModel` and records
the per-kind cycle breakdown in its diagnostics, giving every
compilation a built-in profile ("80% of cycles are shared_load")
without re-running anything.
"""

from __future__ import annotations

from repro.engine.pipeline import CompilationContext, Pass, PassDiagnostics


class CostSummary(Pass):
    """Total simulated cycles plus a per-kind cycle breakdown."""

    name = "cost-summary"

    def run(self, ctx: CompilationContext, diag: PassDiagnostics) -> None:
        if ctx.trace is None:
            raise ValueError(
                "cost-summary requires a lowered trace; run LowerToPlans "
                "(or a pass that sets ctx.trace) first"
            )
        ctx.cycles = ctx.cost.trace_cycles(ctx.trace)
        diag.bump("cycles", ctx.cycles)
        diag.bump("instructions", len(ctx.trace.instructions))
        diag.bump("conversions", len(ctx.conversions))
        for kind, cycles in sorted(ctx.cost.trace_breakdown(ctx.trace).items()):
            diag.bump(f"cycles[{kind}]", cycles)


__all__ = ["CostSummary"]
