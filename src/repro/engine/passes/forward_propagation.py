"""Forward layout propagation (the forward half of Section 4.4).

Walks the graph in program order: anchor layouts flow forward through
shape and compute ops via the transfer functions of
:mod:`repro.engine.propagate`, and ``convert_layout`` ops appear
wherever an operand arrives in the wrong layout.  Conversions between
equivalent layouts are elided — only the linear mode can compare
layouts across kinds (Section 6.2's welford no-op), which is captured
by the :class:`PropagationPolicy` the pass is constructed with rather
than mode branches in the walk itself.

The pass *replaces* ``ctx.graph`` with the rebuilt op list (values
are shared and rewired in place, matching how the engine has always
taken ownership of its input graph).
"""

from __future__ import annotations

from typing import Optional

from repro.engine.ir import Graph, Op, OpKind, Value
from repro.engine.pipeline import CompilationContext, Pass, PassDiagnostics
from repro.engine.propagate import (
    collapse_dims_to_one,
    forward_descriptor,
    forward_layout,
)
from repro.core.layout import LinearLayout


class PropagationPolicy:
    """The mode-specific decisions of the forward pass."""

    mode: str = "abstract"

    def try_elide(self, ctx, value: Value, layout, desc) -> bool:
        """True when ``value`` can be used as-is (no conversion).

        May raise :class:`~repro.core.errors.LegacyUnsupportedError`
        when the conversion that would otherwise be inserted is
        inexpressible.
        """
        raise NotImplementedError

    def check_reduce(self, ctx, value: Value) -> None:
        """Reject reductions the mode cannot lower."""

    def check_scan(self, ctx, op: Op, value: Value) -> None:
        """Reject scans the mode cannot lower."""

    def trans_input(self, ctx, op: Op, value: Value, convert_to):
        """(value, descriptor) to feed a transpose — a hook because
        legacy must bounce MMA-family layouts through blocked."""
        return value, value.descriptor


class LinearPropagationPolicy(PropagationPolicy):
    """Linear mode: elision by F2 equivalence, no capability gaps."""

    mode = "linear"

    def try_elide(self, ctx, value: Value, layout, desc) -> bool:
        return value.layout.equivalent(layout)


class LegacyPropagationPolicy(PropagationPolicy):
    """Legacy mode: named-descriptor comparisons and capability checks."""

    mode = "legacy"

    def _blocked(self, ctx, value: Value):
        return ctx.anchors.blocked_anchor(value.shape, value.dtype)[0]

    def try_elide(self, ctx, value: Value, layout, desc) -> bool:
        if (
            value.descriptor is not None
            and desc is not None
            and ctx.legacy.can_compare(value.descriptor, desc)
            and value.layout == layout
        ):
            return True
        ctx.legacy.check_conversion(
            value.descriptor
            if value.descriptor is not None
            else self._blocked(ctx, value),
            desc if desc is not None else self._blocked(ctx, value),
        )
        return False

    def check_reduce(self, ctx, value: Value) -> None:
        ctx.legacy.check_reduction(
            value.descriptor
            if value.descriptor is not None
            else self._blocked(ctx, value)
        )

    def check_scan(self, ctx, op: Op, value: Value) -> None:
        free = value.layout.free_variable_masks()
        has_dup = any(free.values())
        ctx.legacy.check_scan(
            value.descriptor
            if value.descriptor is not None
            else self._blocked(ctx, value),
            op.attrs.get("reverse", False),
            has_dup,
        )

    def trans_input(self, ctx, op: Op, value: Value, convert_to):
        desc = value.descriptor
        if forward_descriptor(op, desc) is None:
            # Legacy cannot transpose MMA-family layouts: bounce
            # through a blocked layout first.
            bdesc, blayout = ctx.anchors.blocked_anchor(value.shape, value.dtype)
            value = convert_to(value, blayout, bdesc)
            desc = bdesc
        return value, desc


class ForwardPropagation(Pass):
    """Assign layouts op by op, inserting conversions at conflicts."""

    name = "forward-propagation"

    def __init__(self, policy: PropagationPolicy):
        self.policy = policy

    def run(self, ctx: CompilationContext, diag: PassDiagnostics) -> None:
        graph = ctx.graph
        out = Graph()
        out.values = graph.values

        def convert_to(value: Value, layout, desc) -> Value:
            """Insert a convert_layout if the layouts truly differ."""
            if value.layout is None:
                value.layout = layout
                value.descriptor = desc
                diag.bump("layouts_assigned")
                return value
            if self.policy.try_elide(ctx, value, layout, desc):
                diag.bump("conversions_elided")
                return value
            new_val = out.new_value(value.shape, value.dtype)
            new_val.layout = layout
            new_val.descriptor = desc
            out.add(Op(OpKind.CONVERT_LAYOUT, [value], new_val, {}))
            diag.bump("conversions_inserted")
            return new_val

        for op in graph.ops:
            kind = op.kind
            if kind == OpKind.LOAD:
                # Anchored by the anchor-selection pass.
                out.add(op)
            elif kind == OpKind.STORE:
                value = op.inputs[0]
                desc, layout = ctx.anchors.blocked_anchor(value.shape, value.dtype)
                value = convert_to(value, layout, desc)
                out.add(Op(OpKind.STORE, [value], None, op.attrs))
            elif kind == OpKind.ELEMENTWISE:
                first = op.inputs[0]
                new_inputs = [first]
                for other in op.inputs[1:]:
                    new_inputs.append(convert_to(other, first.layout, first.descriptor))
                op.inputs = new_inputs
                op.output.layout = first.layout
                op.output.descriptor = first.descriptor
                out.add(op)
            elif kind == OpKind.DOT:
                self._propagate_dot(ctx, op, out, convert_to, diag)
            elif kind == OpKind.REDUCE:
                value = op.inputs[0]
                self.policy.check_reduce(ctx, value)
                op.output.layout = forward_layout(op, value.layout)
                op.output.descriptor = forward_descriptor(op, value.descriptor)
                out.add(op)
            elif kind == OpKind.SCAN:
                value = op.inputs[0]
                self.policy.check_scan(ctx, op, value)
                op.output.layout = value.layout
                op.output.descriptor = value.descriptor
                out.add(op)
            elif kind == OpKind.GATHER:
                src, index = op.inputs
                index = convert_to(index, src.layout, src.descriptor)
                op.inputs = [src, index]
                op.output.layout = src.layout
                op.output.descriptor = src.descriptor
                out.add(op)
            elif kind == OpKind.BROADCAST:
                # Broadcast into the consumer's layout and convert the
                # *small* input tensor instead (forward half of the
                # remat story; both compilers do this).
                value = op.inputs[0]
                target = self._consumer_layout(graph, op)
                if target is not None:
                    axes = [
                        i
                        for i, (old, new) in enumerate(zip(value.shape, op.attrs["shape"]))
                        if old == 1 and new > 1
                    ]
                    small = collapse_dims_to_one(target, axes)
                    value = convert_to(value, small, None)
                    op.inputs = [value]
                    op.output.layout = target
                    op.output.descriptor = None
                    out.add(op)
                else:
                    op.output.layout = forward_layout(op, value.layout)
                    op.output.descriptor = forward_descriptor(op, value.descriptor)
                    out.add(op)
            elif kind in (
                OpKind.TRANS,
                OpKind.RESHAPE,
                OpKind.EXPAND_DIMS,
                OpKind.JOIN,
                OpKind.SPLIT,
            ):
                value = op.inputs[0]
                desc = value.descriptor
                if kind == OpKind.TRANS:
                    value, desc = self.policy.trans_input(ctx, op, value, convert_to)
                    op.inputs = [value]
                op.output.layout = forward_layout(op, value.layout)
                op.output.descriptor = forward_descriptor(op, desc)
                out.add(op)
            elif kind == OpKind.CONVERT_LAYOUT:
                out.add(op)  # pre-inserted by a kernel model
            else:  # pragma: no cover
                raise ValueError(f"unhandled op {kind}")
        ctx.graph = out

    def _propagate_dot(
        self,
        ctx: CompilationContext,
        op: Op,
        out: Graph,
        convert_to,
        diag: PassDiagnostics,
    ) -> None:
        a, b = op.inputs
        m, k = a.shape
        _, n = b.shape
        del k
        parent = ctx.anchors.mma_parent(m, n)
        op.output.layout = ctx.anchors.dot_accumulator(m, n)
        op.output.descriptor = parent
        diag.bump("dot_anchors_assigned")
        new_inputs = []
        for idx, operand in enumerate((a, b)):
            desc, layout = ctx.anchors.dot_operand(parent, m, n, idx, operand)
            if desc is None:
                # Operand consumed from shared memory: stage it.
                staged = out.new_value(operand.shape, operand.dtype)
                staged.layout = operand.layout
                staged.descriptor = operand.descriptor
                out.add(Op(OpKind.LOCAL_STORE, [operand], staged, {}))
                diag.bump("operands_staged")
                new_inputs.append(staged)
            else:
                new_inputs.append(convert_to(operand, layout, desc))
        op.inputs = new_inputs
        out.add(op)

    @staticmethod
    def _consumer_layout(graph: Graph, op: Op) -> Optional[LinearLayout]:
        """The layout a broadcast's consumer already fixed for peers.

        Scans users of the broadcast result for an operand of the same
        shape whose layout is known (typically the tensor the
        broadcast value is combined with).
        """
        for user in graph.users_of(op.output):
            for other in user.inputs:
                if other is op.output:
                    continue
                if other.layout is not None and tuple(other.shape) == tuple(op.attrs["shape"]):
                    return other.layout
        return None


__all__ = [
    "ForwardPropagation",
    "LegacyPropagationPolicy",
    "LinearPropagationPolicy",
    "PropagationPolicy",
]
