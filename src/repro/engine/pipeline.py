"""The pass-based compilation pipeline (Section 4.4 as architecture).

The paper describes the layout engine as a sequence of phases —
anchor selection, forward propagation, backward rematerialization,
lowering — and this module makes that structure explicit the way
production layout compilers do: a :class:`PassManager` runs discrete
:class:`Pass` objects over a shared :class:`CompilationContext`, and
every pass leaves a :class:`PassDiagnostics` record (wall time,
structured counters, cache-hit attribution) behind.

The legacy/linear difference is declarative: :func:`standard_passes`
returns a different pass list per mode (different propagation policy,
different rematerialization guard, different cost policy) instead of
``if mode`` branches inside one monolithic class.  Custom pipelines
are first-class — build a :class:`PassManager` from any pass sequence
(e.g. drop :class:`BackwardRematerialization
<repro.engine.passes.remat.BackwardRematerialization>` to measure what
the backward pass buys).

``LayoutEngine.compile`` remains as a thin façade over this module;
see ``docs/ARCHITECTURE.md`` for the full pipeline contract and how
to add a pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro import cache as _cache
from repro.codegen.plan import ConversionPlan
from repro.obs import core as _obs
from repro.engine.ir import Graph
from repro.gpusim.opcost import OpCostModel, op_cost_model
from repro.gpusim.trace import Trace
from repro.hardware.spec import GpuSpec, RTX4090
from repro.layouts.legacy import LegacyLayoutSystem


@dataclass
class PassDiagnostics:
    """What one pass did: timing, counters, cache behaviour, notes.

    ``counters`` is pass-specific but follows a shared vocabulary
    (``anchors_assigned``, ``conversions_inserted``,
    ``conversions_eliminated``, ``ops_lowered``, ``cycles`` — see
    ``docs/ARCHITECTURE.md`` for the schema); ``cache_hits`` /
    ``cache_misses`` are the :mod:`repro.cache` lookups attributed to
    the pass.
    """

    name: str
    wall_time_ms: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    notes: List[str] = field(default_factory=list)

    def bump(self, counter: str, amount: float = 1) -> None:
        """Increment one counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot (for reports and logs)."""
        return {
            "name": self.name,
            "wall_time_ms": round(self.wall_time_ms, 4),
            "counters": dict(self.counters),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "notes": list(self.notes),
        }

    def describe(self) -> str:
        """One human-readable line per pass."""
        counters = ", ".join(f"{k}={v:g}" for k, v in sorted(self.counters.items()))
        return (
            f"{self.name}: {self.wall_time_ms:.3f}ms"
            f" [{counters}]"
            f" cache {self.cache_hits}h/{self.cache_misses}m"
        )


@dataclass
class CompilationContext:
    """Everything the passes share while compiling one kernel.

    A pass reads and writes exactly these fields; nothing else flows
    between passes, which is what makes them independently testable.
    ``graph`` is *replaced* by the forward-propagation pass (it
    rebuilds the op list while sharing values), so later passes must
    re-read it from the context.
    """

    #: The kernel graph being compiled (rewired in place by passes).
    graph: Graph
    #: Target platform.
    spec: GpuSpec
    #: Engine mode: ``"linear"`` or ``"legacy"``.
    mode: str
    #: Warps per CTA — the anchor heuristics read this.
    num_warps: int
    #: The legacy layout system (capability checks in legacy mode).
    legacy: LegacyLayoutSystem = field(default_factory=LegacyLayoutSystem)
    #: The unified pricing authority (set by :meth:`create`).
    cost: Optional[OpCostModel] = None
    #: Anchor catalog, populated by the AnchorSelection pass.
    anchors: Optional[object] = None
    #: Priced instruction stream, populated by the lowering pass.
    trace: Optional[Trace] = None
    #: Lowered conversion plans, populated by the lowering pass.
    conversions: List[ConversionPlan] = field(default_factory=list)
    #: The plans' warp programs (unified instruction IR), parallel to
    #: ``conversions``; populated by the lowering pass.
    programs: List[object] = field(default_factory=list)
    #: Total simulated cycles, populated by the cost-summary pass.
    cycles: Optional[float] = None
    #: One record per executed pass, in execution order.
    diagnostics: List[PassDiagnostics] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        graph: Graph,
        spec: GpuSpec = RTX4090,
        mode: str = "linear",
        num_warps: int = 4,
    ) -> "CompilationContext":
        """A context wired with the mode's cost model."""
        if mode not in ("linear", "legacy"):
            raise ValueError(f"mode must be linear or legacy: {mode!r}")
        return cls(
            graph=graph,
            spec=spec,
            mode=mode,
            num_warps=num_warps,
            cost=op_cost_model(spec, mode),
        )


class Pass:
    """One pipeline stage.

    Subclasses set ``name`` and implement :meth:`run`; the manager
    handles timing, diagnostics bookkeeping, and cache attribution.
    A pass that cannot proceed raises (legacy capability gaps raise
    :class:`~repro.core.errors.LegacyUnsupportedError`, which the
    engine façade turns into a failed :class:`CompiledKernel`).
    """

    name: str = "pass"

    def run(self, ctx: CompilationContext, diag: PassDiagnostics) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class PassManager:
    """Runs a pass sequence over a context, recording diagnostics."""

    def __init__(self, passes: Sequence[Pass]):
        self.passes: List[Pass] = list(passes)

    @classmethod
    def standard(cls, mode: str) -> "PassManager":
        """The stock pipeline of an engine mode."""
        return cls(standard_passes(mode))

    def run(self, ctx: CompilationContext) -> CompilationContext:
        """Execute every pass in order.

        Each pass gets a fresh diagnostics record appended to
        ``ctx.diagnostics`` *before* it runs, so a raising pass still
        leaves its timing behind (with a note recording the error).

        Cache attribution uses the *thread-local* counters of
        :func:`repro.cache.counters`, so per-pass ``cache_hits`` stay
        correct even while other threads (a
        :class:`repro.serve.CompileService` pool) drive the same
        caches concurrently.

        When :mod:`repro.obs` is recording, every pass additionally
        emits a ``pass:<name>`` span whose attributes *are* the
        :meth:`PassDiagnostics.to_dict` record — one measurement,
        two views — nested under whatever span the caller opened
        (``compile:kernel``, ``serve:request``).  Disabled, the
        span hook is a no-op and nothing changes.
        """
        with _obs.span(
            "pipeline:run",
            mode=ctx.mode,
            platform=ctx.spec.name,
            num_warps=ctx.num_warps,
            passes=len(self.passes),
        ):
            for p in self.passes:
                diag = PassDiagnostics(name=p.name)
                ctx.diagnostics.append(diag)
                cache_before = _cache.counters()
                start = time.perf_counter()
                with _obs.span(f"pass:{p.name}", mode=ctx.mode) as sp:
                    try:
                        p.run(ctx, diag)
                    except Exception as exc:
                        diag.notes.append(
                            f"raised {type(exc).__name__}: {exc}"
                        )
                        raise
                    finally:
                        diag.wall_time_ms = (
                            time.perf_counter() - start
                        ) * 1e3
                        delta = _cache.counters_delta(cache_before)
                        diag.cache_hits = delta["hits"]
                        diag.cache_misses = delta["misses"]
                        sp.set_attrs(diag.to_dict())
                        _obs.observe(
                            "pipeline.pass_ms",
                            diag.wall_time_ms,
                            **{"pass": p.name, "mode": ctx.mode},
                        )
        return ctx

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self.passes)
        return f"PassManager([{names}])"


def standard_passes(mode: str) -> List[Pass]:
    """The stock pass list — the *declarative* legacy/linear split.

    Both modes share the pipeline shape; they differ only in the
    policies handed to each pass (propagation policy, remat guard,
    cost policy — the latter already lives in the context's cost
    model).
    """
    from repro.engine.passes.anchor_selection import AnchorSelection
    from repro.engine.passes.cost_summary import CostSummary
    from repro.engine.passes.forward_propagation import (
        ForwardPropagation,
        LegacyPropagationPolicy,
        LinearPropagationPolicy,
    )
    from repro.engine.passes.lower import LowerToPlans
    from repro.engine.passes.remat import BackwardRematerialization

    if mode == "linear":
        return [
            AnchorSelection(),
            ForwardPropagation(LinearPropagationPolicy()),
            BackwardRematerialization(require_descriptor=False),
            LowerToPlans(),
            CostSummary(),
        ]
    if mode == "legacy":
        return [
            AnchorSelection(),
            ForwardPropagation(LegacyPropagationPolicy()),
            BackwardRematerialization(require_descriptor=True),
            LowerToPlans(),
            CostSummary(),
        ]
    raise ValueError(f"mode must be linear or legacy: {mode!r}")


__all__ = [
    "CompilationContext",
    "Pass",
    "PassDiagnostics",
    "PassManager",
    "standard_passes",
]
