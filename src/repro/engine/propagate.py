"""Forward layout transfer functions for every IR op (Section 4.4).

For shape operations these are the closure constructions of Theorem
9.3: given the input layout, the returned output layout makes the op a
no-op on registers.  The legacy system lacks most of these transfers
(e.g. the transpose of an MMA layout is inexpressible), which the
engine models by forcing a conversion to blocked first.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.layout import LinearLayout
from repro.core.reshape import (
    broadcast_layout,
    expand_dims_layout,
    reshape_layout,
    transpose_layout,
)
from repro.core.reshape import join_layout as join_linear
from repro.core.reshape import split_layout as split_linear
from repro.engine.ir import Op, OpKind
from repro.layouts.blocked import BlockedLayout
from repro.layouts.sliced import SlicedLayout, slice_linear_layout


def forward_layout(op: Op, in_layout: LinearLayout) -> LinearLayout:
    """The output linear layout making ``op`` a register no-op."""
    kind = op.kind
    if kind == OpKind.TRANS:
        return transpose_layout(in_layout, op.attrs["perm"])
    if kind == OpKind.RESHAPE:
        return reshape_layout(in_layout, op.attrs["shape"])
    if kind == OpKind.EXPAND_DIMS:
        return expand_dims_layout(in_layout, op.attrs["axis"])
    if kind == OpKind.BROADCAST:
        out_shape = op.attrs["shape"]
        layout = in_layout
        for axis, (old, new) in enumerate(
            zip(op.inputs[0].shape, out_shape)
        ):
            if old == 1 and new > 1:
                layout = broadcast_layout(layout, axis, new)
        return layout
    if kind == OpKind.REDUCE:
        return slice_linear_layout(in_layout, op.attrs["axis"])
    if kind == OpKind.JOIN:
        return join_linear(in_layout)
    if kind == OpKind.SPLIT:
        return split_linear(in_layout)
    if kind in (OpKind.ELEMENTWISE, OpKind.GATHER, OpKind.CONVERT_LAYOUT):
        return in_layout
    raise ValueError(f"no forward transfer for {kind}")


def collapse_dims_to_one(
    layout: LinearLayout, axes: Sequence[int]
) -> LinearLayout:
    """The layout of a broadcast *input* that makes broadcasting to
    ``layout`` free.

    Zeroing the basis coordinates of the broadcast axes gives the
    layout in which every hardware slot holds the element its
    broadcast copy will replicate — the backward transfer function of
    ``tt.broadcast`` (Theorem 9.3), which Triton's rematerialization
    uses to move conversions onto the smaller pre-broadcast tensor.
    """
    names = list(layout.out_dims)
    axis_set = set(axes)
    bases = {}
    for d in layout.in_dims:
        bases[d] = [
            tuple(
                0 if i in axis_set else c for i, c in enumerate(img)
            )
            for img in layout.bases[d]
        ]
    outs = {
        name: (1 if i in axis_set else layout.out_dim_size(name))
        for i, name in enumerate(names)
    }
    return LinearLayout(bases, outs, require_surjective=False)


def forward_descriptor(op: Op, desc: object) -> Optional[object]:
    """Legacy descriptor propagation — None when legacy cannot express
    the result (forcing a conversion)."""
    kind = op.kind
    if kind == OpKind.ELEMENTWISE or kind == OpKind.GATHER:
        return desc
    if kind == OpKind.TRANS:
        if isinstance(desc, BlockedLayout):
            perm = op.attrs["perm"]
            inv = [0] * len(perm)
            for i, p in enumerate(perm):
                inv[p] = i
            return BlockedLayout(
                size_per_thread=tuple(
                    desc.size_per_thread[p] for p in perm
                ),
                threads_per_warp=tuple(
                    desc.threads_per_warp[p] for p in perm
                ),
                warps_per_cta=tuple(desc.warps_per_cta[p] for p in perm),
                order=tuple(inv[o] for o in desc.order),
            )
        return None  # legacy cannot transpose MMA & friends
    if kind == OpKind.REDUCE:
        if desc is None:
            return None
        axis = op.attrs["axis"]
        size = op.inputs[0].shape[axis]
        return SlicedLayout(parent=desc, dim=axis, parent_dim_size=size)
    if kind in (OpKind.RESHAPE, OpKind.EXPAND_DIMS, OpKind.BROADCAST,
                OpKind.JOIN, OpKind.SPLIT):
        if isinstance(desc, BlockedLayout):
            return None  # legacy re-derives a fresh blocked layout
        return None
    return None
