"""The mini tensor IR the layout engine operates on.

Ops mirror the Triton operations the paper's Section 4.4 enumerates:
computation (elementwise, ``dot``, ``reduce``), memory (``load``,
``store``, ``local_load``, ``local_store``), layout conversion
(``convert_layout``), and shape ops (``trans``, ``reshape``, ``join``,
``split``, ``expand_dims``, ``broadcast``), plus ``gather``
(Section 5.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.layout import LinearLayout
from repro.mxfp.types import DType


class OpKind(enum.Enum):
    """The operation kinds of the mini IR (Section 4.4's categories)."""
    LOAD = "load"
    STORE = "store"
    LOCAL_LOAD = "local_load"
    LOCAL_STORE = "local_store"
    CONVERT_LAYOUT = "convert_layout"
    ELEMENTWISE = "elementwise"
    DOT = "dot"
    REDUCE = "reduce"
    GATHER = "gather"
    TRANS = "trans"
    RESHAPE = "reshape"
    EXPAND_DIMS = "expand_dims"
    BROADCAST = "broadcast"
    JOIN = "join"
    SPLIT = "split"
    SCAN = "scan"
    CONSTANT = "constant"


@dataclass
class Value:
    """An SSA tensor value."""

    vid: int
    shape: Tuple[int, ...]
    dtype: DType
    producer: Optional["Op"] = None
    layout: Optional[LinearLayout] = None
    #: Descriptor (BlockedLayout / NvidiaMmaLayout / ...) when known —
    #: the legacy system reasons about these, not about linear maps.
    descriptor: Optional[object] = None

    def __repr__(self) -> str:
        return f"%{self.vid}: {list(self.shape)} x {self.dtype}"


@dataclass
class Op:
    """One IR operation."""

    kind: OpKind
    inputs: List[Value]
    output: Optional[Value]
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        ins = ", ".join(f"%{v.vid}" for v in self.inputs)
        out = f"%{self.output.vid} = " if self.output else ""
        return f"{out}{self.kind.value}({ins}) {self.attrs or ''}"


@dataclass
class Graph:
    """A straight-line kernel body (ops in program order)."""

    ops: List[Op] = field(default_factory=list)
    values: List[Value] = field(default_factory=list)

    def new_value(
        self,
        shape: Tuple[int, ...],
        dtype: DType,
        producer: Optional[Op] = None,
    ) -> Value:
        """Allocate a fresh SSA value of the given shape/dtype."""
        v = Value(vid=len(self.values), shape=tuple(shape), dtype=dtype,
                  producer=producer)
        self.values.append(v)
        return v

    def add(self, op: Op) -> Op:
        """Append an op and wire its output's producer."""
        self.ops.append(op)
        if op.output is not None:
            op.output.producer = op
        return op

    def count(self, kind: OpKind) -> int:
        """Number of ops of one kind in the graph."""
        return sum(1 for op in self.ops if op.kind == kind)

    def users_of(self, value: Value) -> List[Op]:
        """Ops consuming ``value`` as an input."""
        return [op for op in self.ops if value in op.inputs]

    def __repr__(self) -> str:
        return "\n".join(repr(op) for op in self.ops)
