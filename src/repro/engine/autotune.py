"""Layout autotuning — the paper's future-work direction (Section 8).

"In the future, we plan to integrate linear layouts with hardware
measurements to develop a holistic performance model for autotuning
kernel performance."  With the simulator standing in for hardware
measurements, this module closes that loop: it sweeps the
configuration space the layout engine exposes (warp count, anchor
layout choices) and picks the configuration with the lowest simulated
cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.builder import KernelBuilder
from repro.engine.engine import CompiledKernel, LayoutEngine
from repro.gpusim.opcost import kernel_cycles
from repro.hardware.spec import GpuSpec, RTX4090


@dataclass(frozen=True)
class TuningConfig:
    """One point of the autotuning space."""

    num_warps: int
    mode: str = "linear"

    def __str__(self) -> str:
        return f"num_warps={self.num_warps}, mode={self.mode}"


@dataclass
class TuningResult:
    """Outcome of a sweep: every evaluated point plus the winner."""

    best: TuningConfig
    best_cycles: float
    trials: List[Tuple[TuningConfig, Optional[float]]] = field(
        default_factory=list
    )

    def speedup_over_worst(self) -> float:
        """How much the tuned configuration beats the worst valid one."""
        valid = [c for _, c in self.trials if c is not None]
        return max(valid) / self.best_cycles if valid else 1.0


#: Architectural register-file limit per thread (PTX's 255-register
#: ceiling, rounded to a power of two of 32-bit registers).
MAX_REGISTERS_PER_THREAD = 256


def resource_violation(
    compiled: CompiledKernel, spec: GpuSpec
) -> Optional[str]:
    """Reject configurations that no real launch could sustain.

    Checks the two limits layout choices actually hit: per-thread
    register pressure (sum over live values is approximated by the
    largest layout) and the shared-memory footprint of the staged
    conversions.
    """
    worst_regs = 0
    for op in compiled.graph.ops:
        value = op.output
        if value is None or value.layout is None:
            continue
        regs32 = (
            value.layout.in_dim_size("register")
            * max(1, value.dtype.bits // 32)
        )
        worst_regs = max(worst_regs, regs32)
    if worst_regs > MAX_REGISTERS_PER_THREAD:
        return (
            f"register pressure: {worst_regs} > "
            f"{MAX_REGISTERS_PER_THREAD} per thread"
        )
    smem = max(
        (plan.shared_bytes for plan in compiled.conversions),
        default=0,
    )
    if smem > spec.shared_mem_bytes:
        return (
            f"shared memory: {smem} > {spec.shared_mem_bytes} bytes"
        )
    return None


def autotune(
    build: Callable[..., KernelBuilder],
    build_kwargs: Optional[Dict] = None,
    spec: GpuSpec = RTX4090,
    warp_candidates: Sequence[int] = (1, 2, 4, 8),
    mode: str = "linear",
) -> TuningResult:
    """Sweep configurations, compiling fresh each time, and keep the
    configuration with the lowest simulated cycle count.

    ``build`` is a kernel-builder function (e.g. one of
    :mod:`repro.kernels.models`); failures (e.g. legacy gaps) are
    recorded as ``None`` and skipped.
    """
    build_kwargs = build_kwargs or {}
    trials: List[Tuple[TuningConfig, Optional[float]]] = []
    best: Optional[TuningConfig] = None
    best_cycles = float("inf")
    for num_warps in warp_candidates:
        config = TuningConfig(num_warps=num_warps, mode=mode)
        try:
            kb = build(**build_kwargs)
            compiled = LayoutEngine(
                spec, mode, num_warps=num_warps
            ).compile(kb.graph)
        except Exception:
            trials.append((config, None))
            continue
        if not compiled.ok:
            trials.append((config, None))
            continue
        if resource_violation(compiled, spec) is not None:
            trials.append((config, None))
            continue
        # Price through the same authority the lowering pass charges
        # with (repro.gpusim.opcost) — the tuner can never rank
        # configurations under a different model than the compiler.
        cycles = kernel_cycles(compiled.trace.instructions, spec)
        trials.append((config, cycles))
        if cycles < best_cycles:
            best, best_cycles = config, cycles
    if best is None:
        raise RuntimeError("no configuration compiled successfully")
    return TuningResult(best=best, best_cycles=best_cycles,
                        trials=trials)
