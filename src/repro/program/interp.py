"""Warp-program interpreters: one scalar oracle, one vectorized.

Both interpreters execute the same instruction stream with the same
observable semantics — real data movement through register files and
banked shared memory, plus an instruction :class:`Trace` for the cost
model.  The scalar interpreter is a direct port of the historical
per-lane execution loops and serves as the differential-testing
oracle; the vectorized interpreter compiles each instruction's
routing tables into NumPy index arrays once (cached on the program)
and then moves whole warps per instruction.

Bank-conflict accounting is *static* for conversion instructions (the
addresses live in the instruction), so both backends share one
accounting function and their traces are identical by construction.
Gather loads have data-dependent addresses; their wavefronts are
measured on the actual offsets, again through shared code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dims import LANE, REGISTER, WARP
from repro.codegen.views import DistributedView
from repro.gpusim.memory import SharedMemory
from repro.gpusim.registers import RegisterFile
from repro.gpusim.trace import Trace
from repro.hardware.instructions import InstructionKind
from repro.hardware.spec import GpuSpec
from repro.program.ir import Opcode, WarpProgram


# ----------------------------------------------------------------------
# Shared static accounting (identical across backends by construction)
# ----------------------------------------------------------------------
def shared_accounting(
    instr, spec: GpuSpec, num_warps: int, is_store: bool
) -> Optional[Tuple]:
    """Bank accounting of one STS/LDS instruction.

    Returns ``("matrix", insts)`` for ld/stmatrix lowering, or
    ``("vec", vector_bits, count, wavefronts)`` for plain accesses,
    or ``None`` when the instruction touches nothing.  Addresses are
    static, so this is a pure function of the instruction, the
    platform, and the executing CTA's warp count.
    """
    accesses = instr.accesses
    max_accesses = max((len(a) for a in accesses), default=0)
    if max_accesses == 0:
        return None
    matrix = instr.use_stmatrix if is_store else instr.use_ldmatrix
    if matrix:
        bytes_per_lane = 0
        for lane_accesses in accesses:
            total = sum(len(regs) for _, regs in lane_accesses)
            bytes_per_lane = max(
                bytes_per_lane, total * instr.elem_bytes
            )
        return ("matrix", max(1, (bytes_per_lane + 15) // 16))
    memory = SharedMemory(spec, instr.elem_bytes)
    ws = spec.warp_size
    total_wavefronts = 0
    vector_bits = 0
    for k in range(max_accesses):
        worst = 0
        for w in range(num_warps):
            requests = []
            for lane in range(ws):
                tid = w * ws + lane
                if tid >= len(accesses):
                    continue
                lane_accesses = accesses[tid]
                if k < len(lane_accesses):
                    base, regs = lane_accesses[k]
                    requests.append((base, len(regs)))
            if not requests:
                continue
            worst = max(
                worst, memory.wavefronts(requests, is_store=is_store)
            )
            vector_bits = max(
                vector_bits,
                max(n for _, n in requests) * instr.elem_bytes * 8,
            )
        total_wavefronts += worst
    return (
        "vec",
        vector_bits,
        max_accesses,
        max(1, total_wavefronts // max_accesses),
    )


def emit_shared(
    instr,
    trace: Trace,
    spec: GpuSpec,
    num_warps: int,
    is_store: bool,
    cache: Optional[Dict] = None,
    key: Optional[Tuple] = None,
) -> None:
    """Emit the priced record(s) of one STS/LDS instruction."""
    acct = None
    if cache is not None and key in cache:
        acct = cache[key]
    else:
        acct = shared_accounting(instr, spec, num_warps, is_store)
        if cache is not None:
            cache[key] = acct
    if acct is None:
        return
    if acct[0] == "matrix":
        kind = (
            InstructionKind.STMATRIX
            if is_store
            else InstructionKind.LDMATRIX
        )
        trace.emit(kind, vector_bits=128, count=acct[1], wavefronts=1)
    else:
        kind = (
            InstructionKind.SHARED_STORE
            if is_store
            else InstructionKind.SHARED_LOAD
        )
        trace.emit(
            kind,
            vector_bits=acct[1],
            count=acct[2],
            wavefronts=acct[3],
        )


# ----------------------------------------------------------------------
# Gather geometry shared by both backends
# ----------------------------------------------------------------------
def _axis_field(layout, axis: int) -> Tuple[int, int]:
    """(shift, mask) of the gather axis inside the row-major flatten."""
    names = list(layout.out_dims)
    shift = sum(
        layout.out_dim_size_log2(name) for name in names[axis + 1 :]
    )
    bits = layout.out_dim_size_log2(names[axis])
    return shift, ((1 << bits) - 1) << shift


def gather_lds_wavefronts(
    spec: GpuSpec,
    elem_bytes: int,
    offsets,
    warps: int,
    lanes: int,
    regs: int,
) -> int:
    """Measured wavefronts of the data-dependent gathered loads.

    ``offsets[w][l][r]`` (any indexable) holds the flat source
    offsets; the metric is the historical one — per register slot the
    worst warp, averaged over slots.
    """
    memory = SharedMemory(spec, elem_bytes)
    total = 0
    for r in range(regs):
        worst = 1
        for w in range(warps):
            requests = [(int(offsets[w][l][r]), 1) for l in range(lanes)]
            worst = max(worst, memory.wavefronts(requests, False))
        total += worst
    return max(1, total // max(1, regs))


# ----------------------------------------------------------------------
# Scalar oracle
# ----------------------------------------------------------------------
class ScalarInterpreter:
    """Per-lane reference execution of warp programs.

    Slow and obviously correct: every instruction is a Python loop
    over (warp, lane, register) slots, preserved verbatim from the
    original plan executor.  Used as the differential-testing oracle
    for the vectorized backend.
    """

    backend = "scalar"

    def __init__(self, spec: GpuSpec, num_warps: int):
        self.spec = spec
        self.num_warps = num_warps

    def run(
        self, program: WarpProgram, inputs: Dict[str, RegisterFile]
    ) -> Tuple[Dict[str, RegisterFile], Trace]:
        """Execute; returns (register spaces, trace)."""
        trace = Trace(self.spec)
        files: Dict[str, RegisterFile] = dict(inputs)
        anchor = next(iter(inputs.values()))
        dims = (anchor.num_warps, anchor.warp_size)
        memory: Optional[SharedMemory] = None
        for i, instr in enumerate(program.instrs):
            op = instr.opcode
            if op == Opcode.MOVR:
                files[instr.dst] = self._movr(instr, files[instr.src], dims)
            elif op == Opcode.SHFL:
                if instr.dst not in files:
                    files[instr.dst] = RegisterFile(*dims)
                self._shfl(instr, files[instr.src], files[instr.dst])
                trace.emit(InstructionKind.SHUFFLE, count=instr.insts)
            elif op == Opcode.STS:
                memory = SharedMemory(self.spec, instr.elem_bytes)
                self._sts(instr, files[instr.src], memory)
                emit_shared(
                    instr, trace, self.spec, self.num_warps, True,
                    program.scratch,
                    ("acct", self.spec.name, self.num_warps, i),
                )
            elif op == Opcode.BAR:
                trace.emit(InstructionKind.BARRIER)
            elif op == Opcode.LDS:
                if memory is None:
                    raise RuntimeError("LDS before any STS")
                out = RegisterFile(*dims)
                self._lds(instr, out, memory)
                files[instr.dst] = out
                emit_shared(
                    instr, trace, self.spec, self.num_warps, False,
                    program.scratch,
                    ("acct", self.spec.name, self.num_warps, i),
                )
            elif op == Opcode.GATHER_SHFL:
                files[instr.dst] = self._gather_shfl(
                    instr, files[instr.src], files[instr.index], dims
                )
                trace.emit(
                    InstructionKind.SHUFFLE, count=instr.shuffle_count
                )
            elif op == Opcode.GATHER_STS:
                memory = SharedMemory(self.spec, instr.elem_bytes)
                self._gather_sts(instr, files[instr.src], memory)
                trace.emit(
                    InstructionKind.SHARED_STORE,
                    vector_bits=32,
                    count=instr.layout.in_dim_size(REGISTER),
                    wavefronts=1,
                )
            elif op == Opcode.GATHER_LDS:
                if memory is None:
                    raise RuntimeError("GATHER_LDS before any store")
                out = RegisterFile(*dims)
                wavefronts = self._gather_lds(
                    instr, out, files[instr.index], memory
                )
                files[instr.dst] = out
                trace.emit(
                    InstructionKind.SHARED_LOAD,
                    vector_bits=32,
                    count=instr.layout.in_dim_size(REGISTER),
                    wavefronts=wavefronts,
                    dependent=True,
                )
            else:  # pragma: no cover
                raise TypeError(f"unknown instruction {instr!r}")
        return files, trace

    # -- conversion instructions ---------------------------------------
    def _movr(self, instr, src: RegisterFile, dims) -> RegisterFile:
        dst = RegisterFile(*dims)
        for w in range(instr.warps):
            for lane in range(instr.lanes):
                for new_reg, old_reg in enumerate(instr.dst_to_src):
                    dst.write(w, lane, new_reg, src.read(w, lane, old_reg))
        return dst

    def _shfl(self, instr, src: RegisterFile, dst: RegisterFile) -> None:
        for w in range(instr.warps):
            for lane, s_lane in enumerate(instr.src_lane):
                for s_reg, d_reg in zip(
                    instr.send_regs[s_lane], instr.recv_regs[lane]
                ):
                    dst.write(w, lane, d_reg, src.read(w, s_lane, s_reg))

    def _requests(self, instr, warp: int, k: int) -> List[Tuple]:
        ws = self.spec.warp_size
        out = []
        for lane in range(ws):
            tid = warp * ws + lane
            if tid >= len(instr.accesses):
                continue
            lane_accesses = instr.accesses[tid]
            if k < len(lane_accesses):
                base, regs = lane_accesses[k]
                out.append((lane, base, regs))
        return out

    def _sts(self, instr, src: RegisterFile, memory: SharedMemory) -> None:
        max_accesses = max((len(a) for a in instr.accesses), default=0)
        for k in range(max_accesses):
            for w in range(self.num_warps):
                for lane, base, regs in self._requests(instr, w, k):
                    for j, reg in enumerate(regs):
                        memory.write(base + j, src.read(w, lane, reg))

    def _lds(self, instr, dst: RegisterFile, memory: SharedMemory) -> None:
        max_accesses = max((len(a) for a in instr.accesses), default=0)
        for k in range(max_accesses):
            for w in range(self.num_warps):
                for lane, base, regs in self._requests(instr, w, k):
                    for j, reg in enumerate(regs):
                        dst.write(w, lane, reg, memory.read(base + j))

    # -- gather instructions -------------------------------------------
    def _gather_shfl(
        self, instr, src: RegisterFile, index: RegisterFile, dims
    ) -> RegisterFile:
        layout = instr.layout
        view = DistributedView(layout)
        out = RegisterFile(*dims)
        regs = layout.in_dim_size(REGISTER)
        lanes = layout.in_dim_size(LANE)
        warps = layout.in_dim_size(WARP)
        shift, mask = _axis_field(layout, instr.axis)
        for w in range(warps):
            for lane in range(lanes):
                for r in range(regs):
                    pos = index.read(w, lane, r)
                    here = view.flat_of(
                        {REGISTER: r, LANE: lane, WARP: w}
                    )
                    src_flat = (here & ~mask) | (int(pos) << shift)
                    owner = view.owner_of(src_flat)
                    out.write(
                        w,
                        lane,
                        r,
                        src.read(
                            w,
                            owner.get(LANE, 0),
                            owner.get(REGISTER, 0),
                        ),
                    )
        return out

    def _gather_sts(
        self, instr, src: RegisterFile, memory: SharedMemory
    ) -> None:
        layout = instr.layout
        view = DistributedView(layout)
        for w in range(layout.in_dim_size(WARP)):
            for lane in range(layout.in_dim_size(LANE)):
                for r in range(layout.in_dim_size(REGISTER)):
                    p = view.flat_of({REGISTER: r, LANE: lane, WARP: w})
                    memory.write(p, src.read(w, lane, r))

    def _gather_lds(
        self, instr, dst: RegisterFile, index: RegisterFile,
        memory: SharedMemory,
    ) -> int:
        layout = instr.layout
        view = DistributedView(layout)
        regs = layout.in_dim_size(REGISTER)
        lanes = layout.in_dim_size(LANE)
        warps = layout.in_dim_size(WARP)
        shift, mask = _axis_field(layout, instr.axis)
        offsets = [
            [[0] * regs for _ in range(lanes)] for _ in range(warps)
        ]
        for w in range(warps):
            for lane in range(lanes):
                for r in range(regs):
                    pos = index.read(w, lane, r)
                    here = view.flat_of(
                        {REGISTER: r, LANE: lane, WARP: w}
                    )
                    src_flat = (here & ~mask) | (int(pos) << shift)
                    offsets[w][lane][r] = src_flat
                    dst.write(w, lane, r, memory.read(src_flat))
        return gather_lds_wavefronts(
            self.spec, instr.elem_bytes, offsets, warps, lanes, regs
        )


# ----------------------------------------------------------------------
# Vectorized backend
# ----------------------------------------------------------------------
class VectorInterpreter:
    """Whole-warp NumPy execution of warp programs.

    Register spaces are ``(warps, warp_size, regs)`` object arrays
    (``None`` marks an unwritten slot, mirroring the scalar backend's
    sparse register files); each instruction's routing tables compile
    once into flat index arrays, cached on the program, after which
    every execution is a handful of fancy-indexing gathers/scatters.
    """

    backend = "vector"

    def __init__(self, spec: GpuSpec, num_warps: int):
        self.spec = spec
        self.num_warps = num_warps

    def run(
        self, program: WarpProgram, inputs: Dict[str, RegisterFile]
    ) -> Tuple[Dict[str, RegisterFile], Trace]:
        """Execute; returns (register spaces, trace)."""
        trace = Trace(self.spec)
        anchor = next(iter(inputs.values()))
        ws = anchor.warp_size
        nw = max(
            [anchor.num_warps]
            + [
                instr.warps
                for instr in program.instrs
                if instr.opcode in (Opcode.MOVR, Opcode.SHFL)
            ]
        )
        arrays: Dict[str, np.ndarray] = {}
        for name, rf in inputs.items():
            regs = max(program.num_regs(name), rf.num_regs)
            arrays[name] = rf.dense(nw, ws, regs)
        memory: Optional[np.ndarray] = None
        mem_bytes = 4
        written = set()
        for i, instr in enumerate(program.instrs):
            op = instr.opcode
            if instr.writes() is not None:
                written.add(instr.writes())
            key = ("vec", self.spec.name, self.num_warps, i)
            if op == Opcode.MOVR:
                src = arrays[instr.src]
                table = list(instr.dst_to_src)
                out = np.full(
                    (nw, ws, len(table)), None, dtype=object
                )
                w, l = min(instr.warps, nw), min(instr.lanes, ws)
                out[:w, :l, :] = src[:w, :l, table]
                arrays[instr.dst] = out
            elif op == Opcode.SHFL:
                plan = program.scratch.get(key)
                if plan is None:
                    plan = _compile_shfl(instr)
                    program.scratch[key] = plan
                dl, dr, sl, sr = plan
                out = arrays.get(instr.dst)
                if out is None:
                    out = np.full(
                        (nw, ws, program.num_regs(instr.dst)),
                        None,
                        dtype=object,
                    )
                    arrays[instr.dst] = out
                w = min(instr.warps, nw)
                out[:w, dl, dr] = arrays[instr.src][:w, sl, sr]
                trace.emit(InstructionKind.SHUFFLE, count=instr.insts)
            elif op == Opcode.STS:
                plan = program.scratch.get(key)
                if plan is None:
                    plan = _compile_shared(instr, ws, self.num_warps)
                    program.scratch[key] = plan
                w_idx, l_idx, r_idx, off = plan
                mem_bytes = instr.elem_bytes
                memory = _alloc_memory(program, ws, self.num_warps)
                if len(off):
                    memory[off] = arrays[instr.src][w_idx, l_idx, r_idx]
                emit_shared(
                    instr, trace, self.spec, self.num_warps, True,
                    program.scratch,
                    ("acct", self.spec.name, self.num_warps, i),
                )
            elif op == Opcode.BAR:
                trace.emit(InstructionKind.BARRIER)
            elif op == Opcode.LDS:
                if memory is None:
                    raise RuntimeError("LDS before any STS")
                plan = program.scratch.get(key)
                if plan is None:
                    plan = _compile_shared(instr, ws, self.num_warps)
                    program.scratch[key] = plan
                w_idx, l_idx, r_idx, off = plan
                out = np.full(
                    (nw, ws, program.num_regs(instr.dst)),
                    None,
                    dtype=object,
                )
                if len(off):
                    out[w_idx, l_idx, r_idx] = memory[off]
                arrays[instr.dst] = out
                emit_shared(
                    instr, trace, self.spec, self.num_warps, False,
                    program.scratch,
                    ("acct", self.spec.name, self.num_warps, i),
                )
            elif op == Opcode.GATHER_SHFL:
                arrays[instr.dst] = self._gather_shfl(
                    program, instr, key, arrays, nw, ws
                )
                trace.emit(
                    InstructionKind.SHUFFLE, count=instr.shuffle_count
                )
            elif op == Opcode.GATHER_STS:
                layout = instr.layout
                here = _slot_flats(program, instr.layout, key)
                warps = layout.in_dim_size(WARP)
                lanes = layout.in_dim_size(LANE)
                regs = layout.in_dim_size(REGISTER)
                mem_bytes = instr.elem_bytes
                memory = np.full(
                    1 << layout.total_out_bits(), None, dtype=object
                )
                memory[here.ravel()] = arrays[instr.src][
                    :warps, :lanes, :regs
                ].ravel()
                trace.emit(
                    InstructionKind.SHARED_STORE,
                    vector_bits=32,
                    count=regs,
                    wavefronts=1,
                )
            elif op == Opcode.GATHER_LDS:
                if memory is None:
                    raise RuntimeError("GATHER_LDS before any store")
                layout = instr.layout
                warps = layout.in_dim_size(WARP)
                lanes = layout.in_dim_size(LANE)
                regs = layout.in_dim_size(REGISTER)
                src_flat = self._gather_offsets(
                    program, instr, key, arrays, warps, lanes, regs
                )
                out = np.full((nw, ws, regs), None, dtype=object)
                out[:warps, :lanes, :regs] = memory[src_flat]
                arrays[instr.dst] = out
                trace.emit(
                    InstructionKind.SHARED_LOAD,
                    vector_bits=32,
                    count=regs,
                    wavefronts=gather_lds_wavefronts(
                        self.spec, mem_bytes, src_flat,
                        warps, lanes, regs,
                    ),
                    dependent=True,
                )
            else:  # pragma: no cover
                raise TypeError(f"unknown instruction {instr!r}")
        files = {}
        for name, arr in arrays.items():
            if name in written or name not in inputs:
                files[name] = RegisterFile.from_dense(
                    arr, anchor.num_warps, ws
                )
            else:
                # Untouched inputs pass through without an array
                # round-trip.
                files[name] = inputs[name]
        return files, trace

    # -- gather helpers ------------------------------------------------
    def _gather_offsets(
        self, program, instr, key, arrays, warps, lanes, regs
    ) -> np.ndarray:
        here = _slot_flats(program, instr.layout, (*key, "flats"))
        shift, mask = _axis_field(instr.layout, instr.axis)
        pos = arrays[instr.index][:warps, :lanes, :regs].astype(np.int64)
        return (here & ~mask) | (pos << shift)

    def _gather_shfl(
        self, program, instr, key, arrays, nw, ws
    ) -> np.ndarray:
        layout = instr.layout
        warps = layout.in_dim_size(WARP)
        lanes = layout.in_dim_size(LANE)
        regs = layout.in_dim_size(REGISTER)
        src_flat = self._gather_offsets(
            program, instr, key, arrays, warps, lanes, regs
        )
        view = DistributedView(layout)
        owner_lane = np.zeros_like(src_flat)
        owner_reg = np.zeros_like(src_flat)
        for pos, (dim, i) in view.bit_owner.items():
            sel = (src_flat >> pos) & 1
            if dim == LANE:
                owner_lane |= sel << i
            elif dim == REGISTER:
                owner_reg |= sel << i
        w_mesh = np.arange(warps).reshape(-1, 1, 1)
        w_mesh = np.broadcast_to(w_mesh, src_flat.shape)
        out = np.full((nw, ws, regs), None, dtype=object)
        out[:warps, :lanes, :regs] = arrays[instr.src][
            w_mesh, owner_lane, owner_reg
        ]
        return out


# ----------------------------------------------------------------------
# Compilation helpers (index-array construction, cached per program)
# ----------------------------------------------------------------------
def _compile_shfl(instr):
    dl: List[int] = []
    dr: List[int] = []
    sl: List[int] = []
    sr: List[int] = []
    for lane, s_lane in enumerate(instr.src_lane):
        for s_reg, d_reg in zip(
            instr.send_regs[s_lane], instr.recv_regs[lane]
        ):
            dl.append(lane)
            dr.append(d_reg)
            sl.append(s_lane)
            sr.append(s_reg)
    return (
        np.asarray(dl, dtype=np.intp),
        np.asarray(dr, dtype=np.intp),
        np.asarray(sl, dtype=np.intp),
        np.asarray(sr, dtype=np.intp),
    )


def _compile_shared(instr, warp_size: int, num_warps: int):
    """Flat (warp, lane, reg, offset) indices in machine write order."""
    w_idx: List[int] = []
    l_idx: List[int] = []
    r_idx: List[int] = []
    off: List[int] = []
    accesses = instr.accesses
    max_accesses = max((len(a) for a in accesses), default=0)
    for k in range(max_accesses):
        for w in range(num_warps):
            for lane in range(warp_size):
                tid = w * warp_size + lane
                if tid >= len(accesses):
                    continue
                lane_accesses = accesses[tid]
                if k < len(lane_accesses):
                    base, regs = lane_accesses[k]
                    for j, reg in enumerate(regs):
                        w_idx.append(w)
                        l_idx.append(lane)
                        r_idx.append(reg)
                        off.append(base + j)
    return (
        np.asarray(w_idx, dtype=np.intp),
        np.asarray(l_idx, dtype=np.intp),
        np.asarray(r_idx, dtype=np.intp),
        np.asarray(off, dtype=np.intp),
    )


def _alloc_memory(
    program: WarpProgram, warp_size: int, num_warps: int
) -> np.ndarray:
    """A fresh shared-memory array big enough for the whole program."""
    key = ("memsize", num_warps)
    size = program.scratch.get(key)
    if size is None:
        size = 1
        for instr in program.instrs:
            if instr.opcode in (Opcode.STS, Opcode.LDS):
                for lane_accesses in instr.accesses:
                    for base, regs in lane_accesses:
                        size = max(size, base + len(regs))
            elif instr.opcode in (
                Opcode.GATHER_STS,
                Opcode.GATHER_LDS,
            ):
                size = max(size, 1 << instr.layout.total_out_bits())
        program.scratch[key] = size
    return np.full(size, None, dtype=object)


def _slot_flats(program: WarpProgram, layout, key) -> np.ndarray:
    """``flat_of`` of every (warp, lane, reg) slot, vectorized."""
    cached = program.scratch.get(key)
    if cached is not None:
        return cached
    view = DistributedView(layout)
    warps = layout.in_dim_size(WARP)
    lanes = layout.in_dim_size(LANE)
    regs = layout.in_dim_size(REGISTER)
    w_mesh, l_mesh, r_mesh = np.meshgrid(
        np.arange(warps, dtype=np.int64),
        np.arange(lanes, dtype=np.int64),
        np.arange(regs, dtype=np.int64),
        indexing="ij",
    )
    flats = np.zeros((warps, lanes, regs), dtype=np.int64)
    for dim, values in ((REGISTER, r_mesh), (LANE, l_mesh), (WARP, w_mesh)):
        for bit, col in enumerate(view.columns.get(dim, [])):
            if col:
                flats ^= ((values >> bit) & 1) * col
    program.scratch[key] = flats
    return flats


def make_interpreter(
    backend: str, spec: GpuSpec, num_warps: int
):
    """The interpreter implementing one backend name."""
    if backend == "scalar":
        return ScalarInterpreter(spec, num_warps)
    if backend == "vector":
        return VectorInterpreter(spec, num_warps)
    raise ValueError(
        f"unknown simulator backend {backend!r} "
        "(expected 'scalar' or 'vector')"
    )


__all__ = [
    "ScalarInterpreter",
    "VectorInterpreter",
    "emit_shared",
    "gather_lds_wavefronts",
    "make_interpreter",
    "shared_accounting",
]
