"""Program-level peephole optimization.

Three rewrites, all restricted to :class:`~repro.program.ir.MovR` —
the only instruction with no priced footprint — so an optimized
program executes to the same values *and* prices to the same trace:

- **identity elimination**: an in-place move where every register
  keeps its own value is dropped;
- **move fusion**: two adjacent moves where the second consumes
  exactly what the first produced become one composed move;
- **dead-register elimination**: a move whose destination file is
  never read again (and is not the program result) is dropped.

Rewrites run to a fixpoint; everything else in the stream is
untouched.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.program.ir import MovR, Opcode, WarpProgram


def _fuse(first: MovR, second: MovR) -> MovR:
    """Compose two moves: ``second`` reading what ``first`` wrote."""
    return MovR(
        dst_to_src=tuple(first.dst_to_src[s] for s in second.dst_to_src),
        lanes=second.lanes,
        warps=second.warps,
        src=first.src,
        dst=second.dst,
    )


def _space_unused_after(instrs, start: int, space: str, result: str) -> bool:
    """Whether nothing from ``start`` on observes ``space``."""
    for later in instrs[start:]:
        if space in later.reads():
            return False
        if later.writes() == space and later.kills:
            return True
    return space != result


def _fusable(instrs, i: int, result: str) -> bool:
    """Whether the pair at ``i``, ``i + 1`` can become one move.

    ``second`` must read exactly the file ``first`` produced, consume
    only registers ``first`` wrote, and cover no more lanes/warps than
    ``first`` filled.  Replacing the pair drops ``first``'s write, so
    the intermediate file must not be observed afterwards — either
    ``second`` overwrites it, or nothing downstream reads it.
    """
    first, second = instrs[i], instrs[i + 1]
    if first.opcode != Opcode.MOVR or second.opcode != Opcode.MOVR:
        return False
    if second.src != first.dst:
        return False
    if second.lanes > first.lanes or second.warps > first.warps:
        return False
    n = len(first.dst_to_src)
    if not all(s < n for s in second.dst_to_src):
        return False
    return first.dst == second.dst or _space_unused_after(
        instrs, i + 2, first.dst, result
    )


def _is_dead(program: WarpProgram, index: int) -> bool:
    """Whether the MovR at ``index`` writes a file nobody observes.

    Scans forward: a read of the file keeps the move alive; a killing
    write to the file before any read makes it dead; reaching the end
    makes it dead unless the file is the program result.
    """
    space = program.instrs[index].writes()
    for later in program.instrs[index + 1 :]:
        if space in later.reads():
            return False
        if later.writes() == space and later.kills:
            return True
    return space != program.result


def optimize_program(program: WarpProgram) -> WarpProgram:
    """Run the peephole rewrites to a fixpoint."""
    instrs: Tuple = program.instrs
    changed = True
    while changed:
        changed = False
        # Identity elimination (in-place moves only: a cross-file
        # identity move is a copy, not a no-op).
        kept: List = []
        for instr in instrs:
            if (
                instr.opcode == Opcode.MOVR
                and instr.src == instr.dst
                and instr.is_identity()
            ):
                changed = True
                continue
            kept.append(instr)
        instrs = tuple(kept)
        # Move fusion over adjacent pairs.
        fused: List = []
        i = 0
        while i < len(instrs):
            if i + 1 < len(instrs) and _fusable(instrs, i, program.result):
                fused.append(_fuse(instrs[i], instrs[i + 1]))
                changed = True
                i += 2
            else:
                fused.append(instrs[i])
                i += 1
        instrs = tuple(fused)
        # Dead-register elimination.
        trial = WarpProgram(instrs, result=program.result)
        alive: List = []
        for i, instr in enumerate(instrs):
            if instr.opcode == Opcode.MOVR and _is_dead(trial, i):
                changed = True
                continue
            alive.append(instr)
        instrs = tuple(alive)
    return WarpProgram(instrs, result=program.result, label=program.label)


__all__ = ["optimize_program"]
