"""JSON round-tripping of warp programs.

Programs carry nothing but plain operands (ints, strings, nested
tuples) plus the occasional :class:`LinearLayout`, so serialization is
a mechanical field walk: tuples become lists, layouts become their
``to_dict`` form tagged with ``"__layout__"``, and the opcode names
the instruction class on the way back in.  ``scratch`` (backend
memoization) is deliberately not serialized — it is derived state.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.core.layout import LinearLayout
from repro.program.ir import (
    Opcode,
    WarpProgram,
    instr_class,
    instr_fields,
)


def _encode_value(value):
    if isinstance(value, LinearLayout):
        return {"__layout__": value.to_dict()}
    if isinstance(value, tuple):
        return [_encode_value(v) for v in value]
    return value


def _decode_value(value):
    if isinstance(value, dict) and "__layout__" in value:
        return LinearLayout.from_dict(value["__layout__"])
    if isinstance(value, list):
        return tuple(_decode_value(v) for v in value)
    return value


def instr_to_dict(instr) -> Dict[str, object]:
    """One instruction as a JSON-safe dict (opcode + operands)."""
    out: Dict[str, object] = {"op": instr.opcode.value}
    for name, value in instr_fields(instr).items():
        out[name] = _encode_value(value)
    return out


def instr_from_dict(data: Dict[str, object]):
    """Rebuild one instruction from :func:`instr_to_dict` output."""
    cls = instr_class(Opcode(data["op"]))
    kwargs = {
        name: _decode_value(value)
        for name, value in data.items()
        if name != "op"
    }
    return cls(**kwargs)


def program_to_dict(program: WarpProgram) -> Dict[str, object]:
    """A warp program as a JSON-safe dict."""
    return {
        "result": program.result,
        "label": program.label,
        "instrs": [instr_to_dict(i) for i in program.instrs],
    }


def program_from_dict(data: Dict[str, object]) -> WarpProgram:
    """Rebuild a warp program from :func:`program_to_dict` output."""
    instrs: List = [instr_from_dict(d) for d in data["instrs"]]
    return WarpProgram(
        tuple(instrs),
        result=data.get("result", "out"),
        label=data.get("label", ""),
    )


def program_to_json(program: WarpProgram) -> str:
    """A warp program as a JSON string."""
    return json.dumps(program_to_dict(program))


def program_from_json(text: str) -> WarpProgram:
    """Rebuild a warp program from :func:`program_to_json` output."""
    return program_from_dict(json.loads(text))


__all__ = [
    "instr_from_dict",
    "instr_to_dict",
    "program_from_dict",
    "program_from_json",
    "program_to_dict",
    "program_to_json",
]
