"""Lowering: conversion/gather plans -> warp programs.

The planners (:mod:`repro.codegen`) decide *what* moves; this module
rewrites their step lists into the one instruction stream every
backend consumes.  Lowering is semantics-preserving by construction —
each plan step maps onto exactly one instruction carrying the same
routing tables — and the default peephole pass only touches free
register moves, so priced traces are identical with or without it.
"""

from __future__ import annotations

from repro.core.dims import LANE, REGISTER, WARP
from repro.core.layout import LinearLayout
from repro.program.ir import (
    Bar,
    GatherLds,
    GatherShfl,
    GatherSts,
    Lds,
    MovR,
    R_IN,
    R_OUT,
    Shfl,
    Sts,
    WarpProgram,
)


def lower_plan(plan, optimize: bool = True) -> WarpProgram:
    """Lower a :class:`~repro.codegen.plan.ConversionPlan`.

    The mapping mirrors the plan executor's semantics: shuffle rounds
    always read the *original* source file (all rounds consume
    pre-conversion values), a register permute after shuffle rounds
    fans received values out within the destination file, and a
    standalone permute is the intra-thread conversion path.
    """
    from repro.codegen.plan import (
        Barrier,
        RegisterPermute,
        SharedLoad,
        SharedStore,
        ShuffleRound,
    )

    if plan.kind == "noop":
        return WarpProgram((), result=R_IN, label="noop")

    src_warps = plan.src.in_dim_size(WARP)
    dst_lanes = plan.dst.in_dim_size(LANE)
    dst_warps = plan.dst.in_dim_size(WARP)
    instrs = []
    shuffled = False
    cur = R_IN
    for step in plan.steps:
        if isinstance(step, RegisterPermute):
            if shuffled:
                instrs.append(
                    MovR(
                        dst_to_src=step.dst_to_src,
                        lanes=dst_lanes,
                        warps=dst_warps,
                        src=R_OUT,
                        dst=R_OUT,
                    )
                )
            else:
                instrs.append(
                    MovR(
                        dst_to_src=step.dst_to_src,
                        lanes=dst_lanes,
                        warps=dst_warps,
                        src=cur,
                        dst=R_OUT,
                    )
                )
                cur = R_OUT
        elif isinstance(step, ShuffleRound):
            shuffled = True
            instrs.append(
                Shfl(
                    src_lane=step.src_lane,
                    send_regs=step.send_regs,
                    recv_regs=step.recv_regs,
                    warps=src_warps,
                    insts=step.insts_per_round,
                    src=R_IN,
                    dst=R_OUT,
                )
            )
        elif isinstance(step, SharedStore):
            instrs.append(
                Sts(
                    accesses=step.accesses,
                    elem_bytes=step.elem_bytes,
                    use_stmatrix=step.use_stmatrix,
                    src=cur,
                )
            )
        elif isinstance(step, Barrier):
            instrs.append(Bar())
        elif isinstance(step, SharedLoad):
            instrs.append(
                Lds(
                    accesses=step.accesses,
                    elem_bytes=step.elem_bytes,
                    use_ldmatrix=step.use_ldmatrix,
                    dst=R_OUT,
                )
            )
        else:
            raise TypeError(f"unknown plan step {step!r}")
    result = cur if plan.kind == "register" else R_OUT
    program = WarpProgram(tuple(instrs), result=result, label=plan.kind)
    if optimize:
        from repro.program.optimize import optimize_program

        program = optimize_program(program)
    return program


def lower_gather_shuffle(layout: LinearLayout, axis: int) -> WarpProgram:
    """The warp-shuffle gather as a one-instruction program."""
    from repro.codegen.gather import plan_gather

    plan = plan_gather(layout, axis)
    return WarpProgram(
        (
            GatherShfl(
                layout=layout,
                axis=axis,
                shuffle_count=plan.total_shuffles,
            ),
        ),
        label="gather-shuffle",
    )


def lower_gather_shared(
    layout: LinearLayout, axis: int, elem_bytes: int = 4
) -> WarpProgram:
    """The legacy shared-memory gather: stage, barrier, gathered loads."""
    return WarpProgram(
        (
            GatherSts(layout=layout, elem_bytes=elem_bytes),
            Bar(),
            GatherLds(layout=layout, axis=axis, elem_bytes=elem_bytes),
        ),
        label="gather-shared",
    )


def lower_register_permute(
    dst_to_src,
    layout: LinearLayout,
    src: str = R_IN,
    dst: str = R_OUT,
) -> WarpProgram:
    """A standalone register permute over a layout's lane/warp extent.

    The lowering used by producers whose whole plan is intra-thread
    data movement (broadcast replication, the mxfp operand
    pre-shuffle).
    """
    return WarpProgram(
        (
            MovR(
                dst_to_src=tuple(dst_to_src),
                lanes=layout.in_dim_size(LANE),
                warps=layout.in_dim_size(WARP),
                src=src,
                dst=dst,
            ),
        ),
        label="register-permute",
    )


def broadcast_replication_program(layout: LinearLayout) -> WarpProgram:
    """Fan canonical register values out to every broadcast replica.

    For a layout with free (zero-column) register bits, destination
    register ``r`` takes the value of its canonical owner ``r`` with
    the free bits cleared — the select/broadcast fan-out the shuffle
    planner appends after its rounds (Section 5.1's zero-column
    detection, as an instruction).
    """
    free = layout.free_variable_masks().get(REGISTER, 0)
    regs = layout.in_dim_size(REGISTER)
    table = tuple(r & ~free for r in range(regs))
    return lower_register_permute(table, layout, src=R_IN, dst=R_OUT)


__all__ = [
    "broadcast_replication_program",
    "lower_gather_shared",
    "lower_gather_shuffle",
    "lower_plan",
    "lower_register_permute",
]
