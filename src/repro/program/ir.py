"""The warp-program instruction IR.

One algebraic object (an F2 linear map) drives all of codegen; this
module gives its *lowered* form an equally unified shape: a
:class:`WarpProgram` is a straight-line stream of typed warp-wide
instructions with explicit register-file and shared-memory operands.
Every backend concern consumes the same stream:

- execution — :mod:`repro.program.interp` moves real values through
  simulated register files and banked shared memory;
- pricing — :func:`repro.gpusim.opcost.price_program` turns the
  stream into priced :class:`~repro.hardware.instructions.Instruction`
  records, so simulated cycles and static op counts cannot diverge;
- optimization — :mod:`repro.program.optimize` peepholes the stream;
- serialization — :mod:`repro.program.serialize` round-trips it
  through JSON.

Register operands name *register spaces* (whole per-thread register
files): ``"in"`` holds the source distributed tensor, ``"out"`` the
destination, ``"idx"`` gather indices.  Individual registers are
indices into a space, exactly as the plans' routing tables already
encode them.  Shared-memory operands are element offsets — the
bank-relevant addresses the cost model measures wavefronts on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, Optional, Tuple

from repro.core.layout import LinearLayout

#: Conventional register-space names.
R_IN = "in"
R_OUT = "out"
R_IDX = "idx"

#: Per-lane access lists: ``accesses[tid]`` is a tuple of
#: ``(base_offset, regs)`` pairs — the thread moves the registers in
#: ``regs`` contiguously starting at element offset ``base_offset``.
AccessList = Tuple[Tuple[Tuple[int, Tuple[int, ...]], ...], ...]


class Opcode(enum.Enum):
    """The warp-level instruction classes of the program IR."""

    SHFL = "shfl"
    MOVR = "movr"
    STS = "sts"
    LDS = "lds"
    BAR = "bar"
    GATHER_SHFL = "gather_shfl"
    GATHER_STS = "gather_sts"
    GATHER_LDS = "gather_lds"


@dataclass(frozen=True)
class Shfl:
    """One ``shfl.sync`` round (Section 5.4, Figure 4).

    Per destination lane ``l``: ``src_lane[l]`` is the lane whose
    value arrives, ``send_regs[src_lane[l]]`` the registers the source
    lane contributes, ``recv_regs[l]`` where lane ``l`` stores them.
    ``insts`` is the real instruction count of the round (a vectorized
    payload wider than the 32-bit shuffle word issues several).
    """

    src_lane: Tuple[int, ...]
    send_regs: Tuple[Tuple[int, ...], ...]
    recv_regs: Tuple[Tuple[int, ...], ...]
    warps: int
    insts: int = 1
    src: str = R_IN
    dst: str = R_OUT

    opcode = Opcode.SHFL

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Optional[str]:
        return self.dst

    #: Shuffle rounds accumulate into an existing file (each round
    #: fills different lanes/registers), so the write does not kill
    #: prior contents.
    kills = False

    def describe(self) -> str:
        crossing = sum(
            1 for lane, src in enumerate(self.src_lane) if lane != src
        )
        return (
            f"shfl {self.src}->{self.dst}: {len(self.src_lane)} lanes "
            f"({crossing} crossing), {self.insts} inst"
        )


@dataclass(frozen=True)
class MovR:
    """Register select/move (``prmt``-class data movement, free).

    ``dst_to_src[r]`` names the source register whose value lands in
    destination register ``r``.  A non-injective table is a broadcast
    fan-out (select/broadcast); the instruction writes a fresh file,
    so it also models register-permute renaming.  Applies to lanes
    ``< lanes`` of warps ``< warps``.
    """

    dst_to_src: Tuple[int, ...]
    lanes: int
    warps: int
    src: str = R_IN
    dst: str = R_OUT

    opcode = Opcode.MOVR

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Optional[str]:
        return self.dst

    #: A register move materializes a fresh destination file.
    kills = True

    def is_identity(self) -> bool:
        """True iff every destination register keeps its own value."""
        return all(d == s for d, s in enumerate(self.dst_to_src))

    def describe(self) -> str:
        moved = sum(
            1 for d, s in enumerate(self.dst_to_src) if d != s
        )
        return (
            f"movr {self.src}->{self.dst}: {len(self.dst_to_src)} regs, "
            f"{moved} moved"
        )


@dataclass(frozen=True)
class Sts:
    """Per-lane vectorized stores to shared memory (``st.shared``).

    ``accesses[tid]`` carries the bank-relevant element addresses;
    entry ``k`` across lanes forms one lockstep warp instruction.
    """

    accesses: AccessList
    elem_bytes: int
    use_stmatrix: bool = False
    src: str = R_IN

    opcode = Opcode.STS

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Optional[str]:
        return None

    kills = False

    def describe(self) -> str:
        return _describe_shared("sts", self, self.use_stmatrix)


@dataclass(frozen=True)
class Lds:
    """Per-lane vectorized loads from shared memory (``ld.shared``)."""

    accesses: AccessList
    elem_bytes: int
    use_ldmatrix: bool = False
    dst: str = R_OUT

    opcode = Opcode.LDS

    def reads(self) -> Tuple[str, ...]:
        return ()

    def writes(self) -> Optional[str]:
        return self.dst

    #: The load materializes the destination file from shared memory.
    kills = True

    def describe(self) -> str:
        return _describe_shared("lds", self, self.use_ldmatrix)


@dataclass(frozen=True)
class Bar:
    """A CTA-wide ``bar.sync``."""

    opcode = Opcode.BAR

    def reads(self) -> Tuple[str, ...]:
        return ()

    def writes(self) -> Optional[str]:
        return None

    kills = False

    def describe(self) -> str:
        return "bar"


@dataclass(frozen=True)
class GatherShfl:
    """Data-dependent warp-shuffle gather (Section 5.5).

    The source lane/register of each output slot depends on the index
    *values*, so the routing is resolved at execution time from the
    layout; ``shuffle_count`` is the static instruction count
    (``rounds_per_position * positions_per_thread``).
    """

    layout: LinearLayout
    axis: int
    shuffle_count: int
    src: str = R_IN
    index: str = R_IDX
    dst: str = R_OUT

    opcode = Opcode.GATHER_SHFL

    def reads(self) -> Tuple[str, ...]:
        return (self.src, self.index)

    def writes(self) -> Optional[str]:
        return self.dst

    kills = True

    def describe(self) -> str:
        return (
            f"gather_shfl {self.src}[{self.index}]->{self.dst}: "
            f"axis={self.axis}, {self.shuffle_count} shfl"
        )


@dataclass(frozen=True)
class GatherSts:
    """Stage a whole distributed tensor at its flattened offsets.

    The store half of the legacy shared-memory gather: every slot of
    ``src`` lands at its flat logical position.
    """

    layout: LinearLayout
    elem_bytes: int = 4
    src: str = R_IN

    opcode = Opcode.GATHER_STS

    def reads(self) -> Tuple[str, ...]:
        return (self.src,)

    def writes(self) -> Optional[str]:
        return None

    kills = False

    def describe(self) -> str:
        return f"gather_sts {self.src}: {self.layout.total_out_bits()}b"


@dataclass(frozen=True)
class GatherLds:
    """Data-dependent scalar gathered loads from shared memory.

    Addresses come from the just-computed index values, so the loads
    are dependent (full latency) and bank behaviour is measured on the
    actual per-warp addresses.
    """

    layout: LinearLayout
    axis: int
    elem_bytes: int = 4
    index: str = R_IDX
    dst: str = R_OUT

    opcode = Opcode.GATHER_LDS

    def reads(self) -> Tuple[str, ...]:
        return (self.index,)

    def writes(self) -> Optional[str]:
        return self.dst

    kills = True

    def describe(self) -> str:
        return f"gather_lds [{self.index}]->{self.dst}: axis={self.axis}"


#: Union of the instruction types (typing alias; isinstance checks
#: dispatch on ``opcode`` instead).
Instr = object

_OPCODE_TO_CLASS = {
    Opcode.SHFL: Shfl,
    Opcode.MOVR: MovR,
    Opcode.STS: Sts,
    Opcode.LDS: Lds,
    Opcode.BAR: Bar,
    Opcode.GATHER_SHFL: GatherShfl,
    Opcode.GATHER_STS: GatherSts,
    Opcode.GATHER_LDS: GatherLds,
}


def instr_class(opcode: Opcode):
    """The dataclass implementing one opcode."""
    return _OPCODE_TO_CLASS[opcode]


def instr_fields(instr) -> Dict[str, object]:
    """The operand fields of an instruction, by name."""
    return {f.name: getattr(instr, f.name) for f in fields(instr)}


@dataclass
class WarpProgram:
    """A straight-line warp program.

    ``result`` names the register space holding the output when the
    stream finishes (``"in"`` for a no-op program).  ``label`` is a
    human-readable provenance tag (the plan kind, the gather flavor).

    The program object doubles as the memoization site for derived
    execution artifacts (vectorized index plans, static bank
    accounting) — see :attr:`scratch`; those never affect equality or
    serialization.
    """

    instrs: Tuple[Instr, ...]
    result: str = R_OUT
    label: str = ""
    #: Backend scratch: compiled index plans and cached static
    #: accounting, keyed by the consumer.  Not part of program
    #: identity.
    scratch: Dict[object, object] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def spaces(self) -> Tuple[str, ...]:
        """Every register space the program references, in order."""
        seen = []
        for instr in self.instrs:
            for name in (*instr.reads(), instr.writes()):
                if name is not None and name not in seen:
                    seen.append(name)
        if self.result not in seen:
            seen.append(self.result)
        return tuple(seen)

    def num_regs(self, space: str) -> int:
        """Registers a space must hold to run this program.

        The maximum register index any instruction reads from or
        writes to the space, plus one (zero when untouched).
        Memoized in :attr:`scratch` — access lists can be large and
        the interpreters ask on every run.
        """
        key = ("nregs", space)
        cached = self.scratch.get(key)
        if cached is not None:
            return cached
        hi = -1
        for instr in self.instrs:
            op = instr.opcode
            if op == Opcode.SHFL:
                if instr.src == space:
                    for regs in instr.send_regs:
                        hi = max(hi, max(regs, default=-1))
                if instr.dst == space:
                    for regs in instr.recv_regs:
                        hi = max(hi, max(regs, default=-1))
            elif op == Opcode.MOVR:
                if instr.src == space:
                    hi = max(hi, max(instr.dst_to_src, default=-1))
                if instr.dst == space:
                    hi = max(hi, len(instr.dst_to_src) - 1)
            elif op in (Opcode.STS, Opcode.LDS):
                touched = (
                    instr.src if op == Opcode.STS else instr.dst
                )
                if touched == space:
                    for lane_accesses in instr.accesses:
                        for _, regs in lane_accesses:
                            hi = max(hi, max(regs, default=-1))
        self.scratch[key] = hi + 1
        return hi + 1

    def describe(self) -> str:
        """A multi-line, human-readable rendering of the program."""
        header = f"WarpProgram[{self.label or 'anonymous'}] -> {self.result}"
        lines = [header]
        for i, instr in enumerate(self.instrs):
            lines.append(f"  {i}: {instr.describe()}")
        if not self.instrs:
            lines.append("  (empty)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<WarpProgram {self.label or 'anonymous'}: "
            f"{len(self.instrs)} instrs -> {self.result}>"
        )


def _describe_shared(mnemonic: str, instr, matrix: bool) -> str:
    lanes = len(instr.accesses)
    per_lane = max((len(a) for a in instr.accesses), default=0)
    widest = max(
        (len(regs) for lane in instr.accesses for _, regs in lane),
        default=0,
    )
    note = ", matrix" if matrix else ""
    return (
        f"{mnemonic}: {lanes} threads x {per_lane} accesses, "
        f"vec {widest * instr.elem_bytes * 8}b{note}"
    )


__all__ = [
    "AccessList",
    "Bar",
    "GatherLds",
    "GatherShfl",
    "GatherSts",
    "Instr",
    "Lds",
    "MovR",
    "Opcode",
    "R_IDX",
    "R_IN",
    "R_OUT",
    "Shfl",
    "Sts",
    "WarpProgram",
    "instr_class",
    "instr_fields",
]
