"""The unified warp-program IR (execution = pricing = tracing).

One instruction stream for everything the backend does with a lowered
layout operation: the planners produce it (:mod:`repro.program.lower`),
the peephole optimizer rewrites it (:mod:`repro.program.optimize`),
two interpreters execute it (:mod:`repro.program.interp` — a NumPy
vectorized default and a scalar differential-testing oracle), the cost
model prices it (:func:`repro.gpusim.opcost.price_program`), and JSON
round-trips it (:mod:`repro.program.serialize`).
"""

from repro.program.ir import (
    Bar,
    GatherLds,
    GatherShfl,
    GatherSts,
    Lds,
    MovR,
    Opcode,
    R_IDX,
    R_IN,
    R_OUT,
    Shfl,
    Sts,
    WarpProgram,
    instr_class,
    instr_fields,
)
from repro.program.interp import (
    ScalarInterpreter,
    VectorInterpreter,
    make_interpreter,
)
from repro.program.lower import (
    broadcast_replication_program,
    lower_gather_shared,
    lower_gather_shuffle,
    lower_plan,
    lower_register_permute,
)
from repro.program.optimize import optimize_program
from repro.program.serialize import (
    program_from_dict,
    program_from_json,
    program_to_dict,
    program_to_json,
)

__all__ = [
    "Bar",
    "GatherLds",
    "GatherShfl",
    "GatherSts",
    "Lds",
    "MovR",
    "Opcode",
    "R_IDX",
    "R_IN",
    "R_OUT",
    "ScalarInterpreter",
    "Shfl",
    "Sts",
    "VectorInterpreter",
    "WarpProgram",
    "broadcast_replication_program",
    "instr_class",
    "instr_fields",
    "lower_gather_shared",
    "lower_gather_shuffle",
    "lower_plan",
    "lower_register_permute",
    "make_interpreter",
    "optimize_program",
    "program_from_dict",
    "program_from_json",
    "program_to_dict",
    "program_to_json",
]
