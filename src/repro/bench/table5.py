"""Table 5: mixed-precision matmul pass rates per dtype pair.

For every dtype pair the paper enumerates, sweep small matmul shapes.
A case *passes* on a backend when it compiles (legacy raises
:class:`LegacyUnsupportedError` on the shape/dtype combinations its
MMA lowering never handled) and the compiled kernel's numerics match
the float64 reference through the interpreter.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.bench.harness import Table
from repro.engine import KernelBuilder, LayoutEngine
from repro.hardware.spec import GH200
from repro.interp import execute_graph
from repro.layouts.legacy import LegacyLayoutSystem
from repro.mxfp.emulate import emulated_matmul
from repro.mxfp.types import DType, dtype_by_name

#: The pairs of Table 5 (int x float).
DTYPE_PAIRS = [
    ("i16", "f16"), ("i16", "f32"), ("i16", "f64"), ("i16", "f8"),
    ("i32", "f16"), ("i32", "f64"), ("i32", "f8"),
    ("i64", "f16"), ("i64", "f32"), ("i64", "f8"),
    ("i8", "f16"), ("i8", "f32"), ("i8", "f64"), ("i8", "f8"),
]


def shape_sweep(a: DType, b: DType) -> List[Tuple[int, int, int]]:
    """Shapes tested for a pair: small M/N/K stress the legacy gaps.

    Lower-precision pairs get more K points (matching the paper's
    larger case counts for f8/i8 pairs).
    """
    ms = [16, 32]
    ns = [8, 16]
    min_bits = min(a.bits, b.bits)
    if min_bits <= 8:
        ks = [8, 16, 32, 64, 128, 256]
    elif min_bits <= 16:
        ks = [8, 16, 32, 64]
    else:
        ks = [8, 16, 32, 64]
    return [(m, n, k) for m in ms for n in ns for k in ks]


def linear_case_passes(
    a_dtype: DType, b_dtype: DType, m: int, n: int, k: int
) -> bool:
    """Compile + numeric check for Triton-Linear."""
    kb = KernelBuilder("mixed_mm")
    a = kb.load((m, k), a_dtype)
    b = kb.load((k, n), b_dtype)
    kb.store(kb.dot(a, b))
    compiled = LayoutEngine(GH200, "linear").compile(kb.graph)
    if not compiled.ok:
        return False
    rng = np.random.default_rng(m * 1000 + n * 10 + k)
    av = rng.integers(-4, 5, size=(m, k)).astype(np.float64)
    bv = rng.uniform(-2, 2, size=(k, n))
    # compile() takes ownership of the graph; execute its output so
    # the inserted convert_layout ops (data no-ops) are covered too.
    result = execute_graph(compiled.graph, [av, bv])
    expected, _ = emulated_matmul(av, bv, a_dtype, b_dtype)
    return bool(
        np.allclose(result.stores[0], expected, rtol=1e-6, atol=1e-6)
    )


def run_table5(full_numeric_check: bool = False) -> Table:
    """``full_numeric_check`` runs the interpreter on every case (slow);
    otherwise only the first case of each pair is numerically checked
    and the rest are compile-checked."""
    legacy = LegacyLayoutSystem()
    table = Table(
        title="Table 5: mixed-precision matmul pass rates",
        headers=["pair", "Triton", "Triton-Linear"],
    )
    grand_legacy = grand_linear = grand_total = 0
    for a_name, b_name in DTYPE_PAIRS:
        a_dtype = dtype_by_name(a_name)
        b_dtype = dtype_by_name(b_name)
        shapes = shape_sweep(a_dtype, b_dtype)
        legacy_pass = linear_pass = 0
        for idx, (m, n, k) in enumerate(shapes):
            if legacy.supports_mma_shape(a_dtype, b_dtype, m, n, k):
                legacy_pass += 1
            if full_numeric_check or idx == 0:
                ok = linear_case_passes(a_dtype, b_dtype, m, n, k)
            else:
                kb = KernelBuilder("mixed_mm")
                a = kb.load((m, k), a_dtype)
                b = kb.load((k, n), b_dtype)
                kb.store(kb.dot(a, b))
                ok = LayoutEngine(GH200, "linear").compile(kb.graph).ok
            if ok:
                linear_pass += 1
        total = len(shapes)
        grand_legacy += legacy_pass
        grand_linear += linear_pass
        grand_total += total
        table.add_row(
            f"{a_name}/{b_name}",
            f"{legacy_pass}/{total}",
            f"{linear_pass}/{total}",
        )
    table.add_row(
        "TOTAL",
        f"{grand_legacy}/{grand_total}",
        f"{grand_linear}/{grand_total}",
    )
    pct = 100.0 * grand_legacy / grand_total
    table.notes.append(
        f"legacy overall pass rate {pct:.1f}% (paper: 46.6%); "
        "Triton-Linear passes everything"
    )
    return table
