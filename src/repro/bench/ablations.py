"""Ablation study: how much does each design choice buy?

DESIGN.md calls out four load-bearing mechanisms in the linear-layout
codegen.  Each ablation disables exactly one of them on the workload
that exercises it and reports the cycle cost:

* **optimal swizzling** (vs raw and padded staging) on the f8
  transpose conversion;
* **the warp-shuffle fast path** (vs forced shared memory) on an
  intra-warp conversion;
* **broadcast deduplication** on a conversion from a replicated
  layout;
* **ldmatrix/stmatrix staging** on a blocked→MMA-operand conversion
  (platform-gated: GH200 with vs without the matrix instructions).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.bench.harness import Table
from repro.codegen.conversion import plan_conversion
from repro.gpusim.opcost import price_plan
from repro.hardware.spec import GH200
from repro.layouts import (
    BlockedLayout,
    MmaOperandLayout,
    NvidiaMmaLayout,
)


def _cycles(src, dst, bits, **kwargs) -> float:
    plan = plan_conversion(src, dst, bits, spec=GH200, **kwargs)
    return price_plan(plan, GH200).cycles()


def ablate_swizzling() -> List[List]:
    """Column-major to row-major f32: lanes stride whole rows in the
    staged tile, the worst case for unswizzled banks."""
    src = BlockedLayout((4, 1), (1, 32), (1, 4), (0, 1)).to_linear(
        (64, 64)
    )
    dst = BlockedLayout((1, 4), (32, 1), (4, 1), (1, 0)).to_linear(
        (64, 64)
    )
    full = _cycles(src, dst, 32, swizzle_mode="optimal",
                   allow_shuffle=False)
    padded = _cycles(src, dst, 32, swizzle_mode="padded",
                     allow_shuffle=False)
    raw = _cycles(src, dst, 32, swizzle_mode="none",
                  allow_shuffle=False)
    return [
        ["swizzle: optimal (full)", full, 1.0],
        ["swizzle: padding heuristic", padded, padded / full],
        ["swizzle: none (raw rows)", raw, raw / full],
    ]


def ablate_shuffle_path() -> List[List]:
    """Force an intra-warp conversion through shared memory."""
    src = BlockedLayout((1, 2), (8, 4), (2, 2), (1, 0)).to_linear(
        (32, 64)
    )
    dst = BlockedLayout((2, 1), (4, 8), (2, 2), (1, 0)).to_linear(
        (32, 64)
    )
    full = _cycles(src, dst, 16, allow_shuffle=True)
    no_shuffle = _cycles(src, dst, 16, allow_shuffle=False)
    return [
        ["shuffle path: on (full)", full, 1.0],
        ["shuffle path: off", no_shuffle, no_shuffle / full],
    ]


def ablate_broadcast_dedupe() -> List[List]:
    """Count shared stores with and without duplicate elimination.

    A source whose warps replicate the data 4x issues 4x the stores
    unless the zero-column analysis skips the replicas (Section 5.1).
    """
    from repro.codegen.plan import SharedStore

    src = BlockedLayout((2, 8), (8, 4), (1, 1), (1, 0)).to_linear(
        (16, 32)
    )
    src = src.resize_in_dim("warp", 4)  # 4 warps, all replicas
    dst = NvidiaMmaLayout((2, 2)).to_linear((16, 32))

    def store_count(dedupe: bool) -> int:
        plan = plan_conversion(
            src, dst, 16, spec=GH200, dedupe_broadcast=dedupe
        )
        total = 0
        for step in plan.steps:
            if isinstance(step, SharedStore):
                total = sum(len(a) for a in step.accesses)
        return total

    full = store_count(True)
    no_dedupe = store_count(False)
    return [
        ["broadcast dedupe: on (full), CTA stores", full, 1.0],
        [
            "broadcast dedupe: off, CTA stores",
            no_dedupe,
            no_dedupe / full,
        ],
    ]


def ablate_matrix_instructions() -> List[List]:
    """ldmatrix on a hardware-mandated staging layout.

    When another consumer (wgmma) fixes the shared tile's swizzle,
    the loader cannot re-choose the layout; ldmatrix is what keeps
    the loads wide.
    """
    from repro.layouts import shared_layout_for_mma

    src = BlockedLayout((1, 8), (8, 4), (2, 2), (1, 0)).to_linear(
        (64, 64)
    )
    dst = MmaOperandLayout(NvidiaMmaLayout((2, 2)), 0, 2).to_linear(
        (64, 64)
    )
    mem = shared_layout_for_mma(16, (64, 64)).to_linear((64, 64))
    with_matrix = price_plan(
        plan_conversion(src, dst, 16, spec=GH200, memory_layout=mem),
        GH200,
    ).cycles()
    no_matrix_spec = replace(
        GH200, has_ldmatrix=False, has_stmatrix=False
    )
    without = price_plan(
        plan_conversion(
            src, dst, 16, spec=no_matrix_spec, memory_layout=mem
        ),
        no_matrix_spec,
    ).cycles()
    return [
        ["ldmatrix: available (full)", with_matrix, 1.0],
        ["ldmatrix: removed", without, without / with_matrix],
    ]


def run_ablations() -> Table:
    """All ablation blocks as one table."""
    table = Table(
        title="Ablations: cost of disabling each codegen mechanism "
        "(GH200)",
        headers=["configuration", "cycles", "slowdown vs full"],
    )
    for rows in (
        ablate_swizzling(),
        ablate_shuffle_path(),
        ablate_broadcast_dedupe(),
        ablate_matrix_instructions(),
    ):
        for row in rows:
            table.add_row(*row)
    table.notes.append(
        "each block ablates one mechanism on the workload that "
        "stresses it; 'full' rows are the reference"
    )
    return table
