"""Simulator throughput: vectorized vs scalar program interpreter.

The warp-program IR has two interpreters (``repro.program.interp``):
the per-lane scalar oracle and the NumPy-vectorized default.  This
benchmark replays the Figure 7 conversion suite — both the shuffle
plans and the legacy shared-memory plans — through both backends and
reports plans executed per second.  The vectorized path is the one the
engine ships; the scalar path exists for differential testing, so the
ratio here is the price of keeping the oracle honest.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.bench.harness import Table
from repro.codegen.conversion import plan_conversion
from repro.codegen.plan import ConversionPlan
from repro.gpusim.machine import Machine
from repro.gpusim.registers import RegisterFile, distributed_data
from repro.hardware.spec import GH200, GpuSpec
from repro.layouts.blocked import BlockedLayout
from repro.mxfp.types import F16, F32, F8E5M2

NUM_WARPS = 4


def fig7_conversion_suite(
    sizes: Tuple[int, ...] = (32, 64, 128),
    spec: GpuSpec = GH200,
) -> List[Tuple[str, ConversionPlan, RegisterFile]]:
    """The Figure 7 sweep as (label, plan, input registers) cases.

    Each (size, dtype) point contributes both the shuffle plan and the
    legacy shared-memory plan, so the scalar/vector comparison covers
    every instruction class the suite can emit.
    """
    a_desc = BlockedLayout((1, 2), (8, 4), (2, 2), (1, 0))
    b_desc = BlockedLayout((2, 1), (4, 8), (2, 2), (1, 0))
    cases = []
    for dtype in (F8E5M2, F16, F32):
        for size in sizes:
            shape = (size, size)
            src = a_desc.to_linear(shape)
            dst = b_desc.to_linear(shape)
            registers = distributed_data(src, NUM_WARPS, spec.warp_size)
            shuffle = plan_conversion(
                src, dst, dtype.bits, spec=spec, allow_shuffle=True
            )
            shared = plan_conversion(
                src, dst, dtype.bits, spec=spec, allow_shuffle=False,
                swizzle_mode="padded", dedupe_broadcast=False,
            )
            stem = f"{size}x{size}/{dtype}"
            cases.append((f"{stem}/shuffle", shuffle, registers))
            cases.append((f"{stem}/shared", shared, registers))
    return cases


def _time_backend(
    machine: Machine,
    cases: List[Tuple[str, ConversionPlan, RegisterFile]],
    iters: int,
) -> float:
    """Seconds to run every case ``iters`` times on one backend."""
    # Warm once so compiled index plans (cached on the program) and
    # layout derivations don't bill the timed region of either backend.
    for _, plan, registers in cases:
        machine.run_conversion(plan, registers)
    start = time.perf_counter()
    for _ in range(iters):
        for _, plan, registers in cases:
            machine.run_conversion(plan, registers)
    return time.perf_counter() - start


def run_sim_throughput(
    sizes: Tuple[int, ...] = (32, 64, 128),
    spec: GpuSpec = GH200,
    iters: int = 3,
) -> Table:
    """Plans/sec for scalar vs vectorized interpreters, per case."""
    cases = fig7_conversion_suite(sizes, spec)
    scalar = Machine(spec, NUM_WARPS, backend="scalar")
    vector = Machine(spec, NUM_WARPS, backend="vector")
    table = Table(
        title=f"Simulator throughput: scalar vs vectorized ({spec.name})",
        headers=[
            "case",
            "scalar_ms",
            "vector_ms",
            "scalar_plans_s",
            "vector_plans_s",
            "speedup",
        ],
    )
    total_scalar = 0.0
    total_vector = 0.0
    for label, plan, registers in cases:
        one = [(label, plan, registers)]
        s = _time_backend(scalar, one, iters)
        v = _time_backend(vector, one, iters)
        total_scalar += s
        total_vector += v
        table.add_row(
            label,
            s * 1e3 / iters,
            v * 1e3 / iters,
            iters / s,
            iters / v,
            s / v,
        )
    runs = iters * len(cases)
    table.notes.append(
        f"aggregate: scalar {runs / total_scalar:.1f} plans/s, "
        f"vectorized {runs / total_vector:.1f} plans/s, "
        f"speedup {total_scalar / total_vector:.2f}x "
        f"({len(cases)} plans x {iters} iters, warm caches)"
    )
    return table


def aggregate_speedup(table: Table) -> float:
    """Suite-level throughput ratio (total scalar time / vector time)."""
    scalar = sum(table.column("scalar_ms"))
    vector = sum(table.column("vector_ms"))
    return scalar / vector
