"""Table 4: reduction support and shared-memory instruction counts.

For each layout family the paper lists, run reductions over the five
tensor shapes; legacy support is decided by the behavioural rules of
:class:`~repro.layouts.legacy.LegacyLayoutSystem`, and the
shared-memory traffic of the cross-warp combine is counted with and
without duplicate elimination (Section 5.1, Broadcasting).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.bench.harness import Table
from repro.codegen.broadcast import (
    reduction_load_count,
    reduction_store_count,
)
from repro.core.dims import LANE, REGISTER
from repro.core.layout import LinearLayout
from repro.layouts.blocked import BlockedLayout
from repro.layouts.legacy import LegacyLayoutSystem
from repro.layouts.mma import MmaOperandLayout, NvidiaMmaLayout
from repro.layouts.sliced import SlicedLayout, slice_linear_layout

SHAPES = [(128, 16), (128, 128), (32, 128), (32, 32), (16, 16)]


class _CustomLayout:
    """A bit-interleaved layout no legacy family expresses.

    Rows and columns alternate between lanes and registers — legal as
    a linear layout (Definition 4.10) but inexpressible as any tiled
    legacy encoding.
    """

    rank = 2
    legacy_kind = "custom"

    def to_linear(self, shape: Sequence[int]) -> LinearLayout:
        m, n = shape
        blocked = BlockedLayout((1, 1), (4, 8), (2, 2), (1, 0))
        base = blocked.to_linear([m, n])
        bases = base.bases
        # Swap one register/lane basis pair to interleave bits.
        if bases[REGISTER] and bases[LANE]:
            bases[REGISTER][0], bases[LANE][0] = (
                bases[LANE][0],
                bases[REGISTER][0],
            )
        return LinearLayout(bases, base.out_dim_sizes())

    def __str__(self) -> str:
        return "custom(bit-interleaved)"


def layout_family_cases() -> List[Tuple[str, Callable[[], object]]]:
    """The seven layout families of Table 4 with fresh constructors."""
    mma = NvidiaMmaLayout((2, 2))
    return [
        ("Blocked", lambda: BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0))),
        ("MMA", lambda: mma),
        ("MMA Input", lambda: MmaOperandLayout(mma, 0, 2)),
        (
            "Sliced<Blocked>",
            lambda: SlicedLayout(
                BlockedLayout((1, 2, 1), (4, 8, 1), (2, 2, 1), (2, 1, 0)),
                2,
                2,
            ),
        ),
        ("Sliced<MMA>", lambda: SlicedLayout(_Mma3D(), 2, 2)),
        (
            "Sliced<MMA Input>",
            lambda: SlicedLayout(_MmaInput3D(), 2, 2),
        ),
        ("Custom", lambda: _CustomLayout()),
    ]


class _Mma3D:
    """An MMA layout extended with a trailing unit-ish dim so it can be
    sliced (stand-in for the batched-MMA parents the suite uses)."""

    rank = 3
    legacy_kind = "mma"

    def to_linear(self, shape: Sequence[int]) -> LinearLayout:
        from repro.core.reshape import reshape_layout

        m, n, k = shape
        flat = NvidiaMmaLayout((2, 2)).to_linear([m, n * k])
        return reshape_layout(flat, [m, n, k])

    def __str__(self) -> str:
        return "mma3d"


class _MmaInput3D:
    rank = 3
    legacy_kind = "mma_input"

    def to_linear(self, shape: Sequence[int]) -> LinearLayout:
        """The reshaped 3D operand layout."""
        from repro.core.reshape import reshape_layout

        m, n, k = shape
        op = MmaOperandLayout(NvidiaMmaLayout((2, 2)), 0, 2)
        flat = op.to_linear([m, n * k])
        return reshape_layout(flat, [m, n, k])

    def __str__(self) -> str:
        return "mma_input3d"


def _family_kind(name: str) -> str:
    return {
        "Blocked": "blocked",
        "MMA": "mma",
        "MMA Input": "mma_input",
        "Sliced<Blocked>": "sliced<blocked>",
        "Sliced<MMA>": "sliced<mma>",
        "Sliced<MMA Input>": "sliced<mma_input>",
        "Custom": "custom",
    }[name]


def run_table4() -> Table:
    """Pass rates and smem instruction counts per layout family."""
    legacy = LegacyLayoutSystem()
    table = Table(
        title="Table 4: reduction pass rate and #shared memory insts",
        headers=[
            "layout", "Triton pass", "Triton-Linear pass",
            "Triton smem", "Triton-Linear smem", "reduction",
        ],
    )
    for name, make in layout_family_cases():
        kind = _family_kind(name)
        legacy_pass = 0
        linear_pass = 0
        total = 0
        legacy_smem = 0
        linear_smem = 0
        for shape in SHAPES:
            for axis in (0, 1):
                for _op in ("sum", "max"):
                    total += 1
                    desc = make()
                    full_shape = list(shape)
                    if desc.rank == 3:
                        full_shape = [shape[0], shape[1], 2]
                    try:
                        layout = desc.to_linear(full_shape)
                    except Exception:
                        continue
                    sliced = slice_linear_layout(layout, axis)
                    stores = reduction_store_count(sliced, dedupe=True)
                    loads = reduction_load_count(sliced, dedupe=True)
                    linear_pass += 1
                    linear_smem += stores + loads
                    if legacy.supports_reduction(_KindStub(kind)):
                        legacy_pass += 1
                        legacy_smem += reduction_store_count(
                            sliced, dedupe=False
                        ) + reduction_load_count(sliced, dedupe=False)
        table.add_row(
            name,
            f"{legacy_pass}/{total}",
            f"{linear_pass}/{total}",
            legacy_smem if legacy_pass else "N/A",
            linear_smem,
            (
                f"-{(legacy_smem - linear_smem) * 100 // legacy_smem}%"
                if legacy_pass and legacy_smem > linear_smem
                else "-"
            ),
        )
    table.notes.append(
        "paper: MMA Input / Sliced<MMA> / Sliced<MMA Input> / Custom "
        "fail entirely on legacy; Blocked saves 76% smem insts"
    )
    return table


class _KindStub:
    """A descriptor exposing only its legacy kind."""

    def __init__(self, kind: str):
        self.legacy_kind = kind
