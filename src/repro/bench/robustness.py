"""The robustness claim as a table: bug classes fixed by linear layouts.

"12% of bugs filed in Triton's GitHub repository are layout-related"
(Section 1); the evaluation shows linear layouts eliminating whole
classes of them.  Each row here is one such class, reproduced
behaviourally: the legacy system fails (or would miscompile) while the
linear engine compiles and passes the numeric check.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.bench.harness import Table
from repro.engine import KernelBuilder, LayoutEngine
from repro.hardware.spec import GH200, RTX4090
from repro.interp import execute_graph
from repro.mxfp import F32, F8E5M2, I8


def _compiles(kb: KernelBuilder, spec, mode: str) -> bool:
    return LayoutEngine(spec, mode).compile(kb.graph).ok


def _case_reduce_over_operand() -> Tuple[str, bool, bool]:
    """Reductions over MMA-input layouts (Table 4's 0/10 rows)."""
    from repro.layouts import MmaOperandLayout, NvidiaMmaLayout
    from repro.layouts.legacy import LegacyLayoutSystem

    operand = MmaOperandLayout(NvidiaMmaLayout((2, 2)), 0, 2)
    legacy_ok = LegacyLayoutSystem().supports_reduction(operand)
    from repro.layouts.sliced import slice_linear_layout

    sliced = slice_linear_layout(operand.to_linear((64, 64)), 1)
    linear_ok = sliced.is_surjective()
    return "reduce over MMA-input layout", legacy_ok, linear_ok


def _case_small_shape_mma() -> Tuple[str, bool, bool]:
    """Low-precision matmuls on small K (Table 5)."""
    def build():
        kb = KernelBuilder()
        a = kb.load((16, 8), I8)
        b = kb.load((8, 8), F8E5M2)
        kb.store(kb.dot(a, b))
        return kb

    from repro.layouts.legacy import LegacyLayoutSystem

    legacy_ok = LegacyLayoutSystem().supports_mma_shape(
        I8, F8E5M2, 16, 8, 8
    )
    linear_ok = _compiles(build(), GH200, "linear")
    return "i8 x f8 matmul at K=8", legacy_ok, linear_ok


def _case_reverse_scan() -> Tuple[str, bool, bool]:
    """associative_scan(reverse=True) — triton-lang/triton#4362."""
    def build():
        kb = KernelBuilder()
        x = kb.load((64, 64), F32)
        kb.store(kb.scan(x, axis=1, reverse=True))
        return kb

    legacy_ok = _compiles(build(), RTX4090, "legacy")
    linear = LayoutEngine(RTX4090, "linear").compile(build().graph)
    data = np.ones((64, 64))
    out = execute_graph(linear.graph, [data]).stores[0]
    linear_ok = linear.ok and out[0, 0] == 64.0
    return "reverse associative scan (#4362)", legacy_ok, linear_ok


def _case_scan_with_duplicates() -> Tuple[str, bool, bool]:
    """tl.sum + tl.cumsum in one kernel — triton-lang/triton#3017."""
    from repro.layouts import BlockedLayout
    from repro.layouts.legacy import LegacyLayoutSystem

    desc = BlockedLayout((1, 2), (4, 8), (2, 2), (1, 0))
    legacy_ok = LegacyLayoutSystem().supports_scan(desc, False, True)
    # The linear engine identifies duplicates from zero columns and
    # combines each element once.
    from repro.layouts.sliced import slice_linear_layout

    sliced = slice_linear_layout(desc.to_linear((16, 32)), 1)
    linear_ok = any(sliced.free_variable_masks().values())
    return "scan over duplicated data (#3017)", legacy_ok, linear_ok


def _case_transpose_mma() -> Tuple[str, bool, bool]:
    """tt.trans of an MMA layout: inexpressible in legacy (Sec 4.4)."""
    from repro.core.reshape import transpose_layout
    from repro.engine.propagate import forward_descriptor
    from repro.engine.ir import Op, OpKind
    from repro.layouts import NvidiaMmaLayout

    mma = NvidiaMmaLayout((2, 2))
    fake = Op(OpKind.TRANS, [], None, {"perm": (1, 0)})
    legacy_ok = forward_descriptor(fake, mma) is not None
    linear_ok = transpose_layout(
        mma.to_linear((32, 64)), (1, 0)
    ).is_surjective()
    return "transpose of an MMA layout", legacy_ok, linear_ok


def _case_cross_kind_equivalence() -> Tuple[str, bool, bool]:
    """Recognizing a Sliced and a Blocked layout as the same map."""
    from repro.layouts import BlockedLayout, SlicedLayout
    from repro.layouts.legacy import LegacyLayoutSystem

    blocked1d = BlockedLayout((1,), (32,), (4,), (0,))
    parent = BlockedLayout((1, 1), (32, 1), (4, 1), (1, 0))
    sliced = SlicedLayout(parent, 1, 1)
    legacy_ok = LegacyLayoutSystem().can_compare(sliced, blocked1d)
    linear_ok = sliced.to_linear((128,)).equivalent(
        blocked1d.to_linear((128,))
    )
    return "cross-kind layout equivalence (welford)", legacy_ok, linear_ok


CASES: List[Callable[[], Tuple[str, bool, bool]]] = [
    _case_reduce_over_operand,
    _case_small_shape_mma,
    _case_reverse_scan,
    _case_scan_with_duplicates,
    _case_transpose_mma,
    _case_cross_kind_equivalence,
]


def run_robustness() -> Table:
    """Evaluate every bug-class case and tabulate legacy vs linear."""
    table = Table(
        title="Robustness: layout bug classes fixed by linear layouts",
        headers=["bug class", "legacy", "linear"],
    )
    for case in CASES:
        name, legacy_ok, linear_ok = case()
        table.add_row(
            name,
            "ok" if legacy_ok else "FAILS",
            "ok" if linear_ok else "FAILS",
        )
    table.notes.append(
        "each row reproduces one documented legacy failure mode "
        "behaviourally; see the paper's Section 5.1 and Tables 4-5"
    )
    return table
