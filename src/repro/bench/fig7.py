"""Figure 7: layout conversion speedups — warp shuffles vs shared memory.

Conversions whose warp components match can bypass shared memory
entirely (Section 5.4).  Legacy Triton always staged through shared
memory; the speedup is the priced ratio, swept over tensor sizes and
dtypes.  It grows with the shared round-trip's relative cost and
shrinks as the tensor (and hence the number of shuffle rounds) grows.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bench.harness import Table
from repro.codegen.conversion import plan_conversion
from repro.gpusim.opcost import price_plan
from repro.hardware.spec import GH200, GpuSpec
from repro.layouts.blocked import BlockedLayout
from repro.mxfp.types import F16, F32, F8E5M2, DType


def shuffle_pair(size: int) -> Tuple[BlockedLayout, BlockedLayout]:
    """Two blocked layouts differing in the register/lane split only
    (same warp placement), so the shuffle path applies."""
    a = BlockedLayout((1, 2), (8, 4), (2, 2), (1, 0))
    b = BlockedLayout((2, 1), (4, 8), (2, 2), (1, 0))
    return a, b


def _global_traffic_cycles(
    size: int, dtype: DType, spec: GpuSpec, threads: int = 128
) -> float:
    """Load + store cycles of the benchmark kernel wrapping the
    conversion (the paper measures whole kernels)."""
    bytes_per_thread = size * size * dtype.bytes // threads
    insts = max(1, bytes_per_thread // (spec.max_vector_bits // 8))
    per = spec.issue_cycles + spec.gmem_transaction_cycles
    return 2 * insts * per


def conversion_speedup(
    size: int, dtype: DType, spec: GpuSpec = GH200
) -> Tuple[float, float, float]:
    """(shared cycles, shuffle cycles, speedup) for one case."""
    a_desc, b_desc = shuffle_pair(size)
    shape = (size, size)
    src = a_desc.to_linear(shape)
    dst = b_desc.to_linear(shape)
    linear = plan_conversion(
        src, dst, dtype.bits, spec=spec, allow_shuffle=True
    )
    legacy = plan_conversion(
        src, dst, dtype.bits, spec=spec, allow_shuffle=False,
        swizzle_mode="padded", dedupe_broadcast=False,
    )
    wrap = _global_traffic_cycles(size, dtype, spec)
    lin_cycles = price_plan(linear, spec).cycles() + wrap
    leg_cycles = price_plan(legacy, spec).cycles() + wrap
    return leg_cycles, lin_cycles, leg_cycles / lin_cycles


def run_fig7(
    sizes: List[int] = (32, 64, 128, 256),
    spec: GpuSpec = GH200,
) -> Table:
    """Sweep sizes and dtypes; report shuffle-vs-shared speedups."""
    table = Table(
        title=f"Figure 7: layout conversion speedups ({spec.name})",
        headers=["size", "dtype", "shared_cycles", "shuffle_cycles",
                 "speedup"],
    )
    for dtype in (F8E5M2, F16, F32):
        for size in sizes:
            leg, lin, speedup = conversion_speedup(size, dtype, spec)
            table.add_row(f"{size}x{size}", str(dtype), leg, lin, speedup)
    table.notes.append(
        "paper: up to 3.93x, shrinking as tensors grow (more shuffle "
        "rounds amortize the fixed shared round trip)"
    )
    return table
