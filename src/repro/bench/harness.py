"""Result tables: collection, formatting, and simple assertions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class Table:
    """A formatted experiment result."""

    title: str
    headers: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append a row; cell count must match the headers."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, expected {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> List[Any]:
        """All values of one named column."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        """Render the table as aligned monospace text."""
        def text(cell: Any) -> str:
            if isinstance(cell, float):
                return f"{cell:.2f}"
            return str(cell)

        widths = [len(h) for h in self.headers]
        rendered = [[text(c) for c in row] for row in self.rows]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append(sep)
        for row in rendered:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly dict of the table."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "notes": list(self.notes),
        }


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (NaN for an empty sequence)."""
    if not values:
        return float("nan")
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values))
