"""Figure 8: gather speedups — warp shuffles vs shared memory.

When the gathered axis stays within a warp, ``tl.gather`` lowers to
``2^{|L_Thr^axis|}`` shuffle rounds per output position (Section 5.5).
The speedup over the staged-through-shared legacy lowering collapses
once the axis grows past the point where shuffle rounds outweigh the
round trip — the paper sees the drop after ``[512, 32]``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bench.harness import Table
from repro.codegen.gather import plan_gather
from repro.core.dims import REGISTER
from repro.core.layout import LinearLayout
from repro.hardware.spec import GH200, GpuSpec
from repro.layouts.blocked import BlockedLayout
from repro.mxfp.types import F16, F32, DType


def gather_layout(rows: int, axis_size: int) -> LinearLayout:
    """A layout keeping the gather axis (dim1) within each warp.

    Lanes cover the axis as far as they can; the rest goes to
    registers.  Rows spread over the remaining lanes and warps.
    """
    axis_lanes = min(axis_size, 32)
    row_lanes = 32 // axis_lanes
    desc = BlockedLayout(
        size_per_thread=(1, max(1, axis_size // axis_lanes)),
        threads_per_warp=(row_lanes, axis_lanes),
        warps_per_cta=(4, 1),
        order=(1, 0),
    )
    return desc.to_linear((rows, axis_size))


def gather_cycles(
    rows: int, axis_size: int, dtype: DType, spec: GpuSpec
) -> Tuple[float, float]:
    """(shared cycles, shuffle cycles) for one gather case."""
    layout = gather_layout(rows, axis_size)
    plan = plan_gather(layout, axis=1)
    shuffle_cycles = plan.total_shuffles * spec.shuffle_cycles
    regs = layout.in_dim_size(REGISTER)
    # Staging stores are independent (pipelined); the gathered loads
    # are address-dependent and pay full latency with ~2-way conflicts
    # from the random access pattern.
    store = regs * (spec.issue_cycles + 2)
    load = regs * (spec.issue_cycles + spec.smem_access_cycles * 2)
    shared_cycles = store + spec.barrier_cycles + load
    return shared_cycles, shuffle_cycles


def run_fig8(
    rows: int = 512,
    axis_sizes: List[int] = (2, 4, 8, 16, 32, 64, 128),
    spec: GpuSpec = GH200,
) -> Table:
    """Sweep gathered-axis sizes; report the crossover curve."""
    table = Table(
        title=f"Figure 8: gather speedups ({spec.name})",
        headers=["shape", "dtype", "shared_cycles", "shuffle_cycles",
                 "speedup"],
    )
    for dtype in (F16, F32):
        for axis in axis_sizes:
            shared, shuffle = gather_cycles(rows, axis, dtype, spec)
            table.add_row(
                f"[{rows},{axis}]", str(dtype), shared, shuffle,
                shared / shuffle,
            )
    table.notes.append(
        "paper: up to 14.2x, dropping once the gathered axis exceeds "
        "~32 (shuffle rounds outgrow the shared round trip)"
    )
    return table
