"""Serving benchmark: batch-compile throughput vs. worker count.

Drives :class:`repro.serve.CompileService` over the cold Figure 9
kernel suite (every kernel's first case on every platform it
supports) and reports:

* **Throughput scaling** — requests/second at 1, 2, 4 workers for the
  thread and process backends, each run cold
  (:func:`repro.cache.clear` first).  Thread workers share the
  process-wide caches but serialize on the GIL for this pure-Python
  compiler; process workers fork and scale with physical cores.  The
  recorded entry carries ``cpu_count`` because the achievable scaling
  is bounded by it — on a 1-core host *no* backend can beat serial,
  and the numbers say so honestly.
* **Duplicate-traffic dedup** — the same suite requested ``dup``
  times over: single-flight plus the result cache serve the
  duplicates without recompiling, which is the serving win that does
  not depend on core count.
* **Golden equivalence** — every record of
  ``benchmarks/golden/pipeline_equivalence.json`` recompiled through
  the service and compared field-for-field (cycles, op counts)
  against the serial golden, proving the concurrent front-end is
  bit-identical to :func:`repro.engine.compile`.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import cache as _cache
from repro.bench.harness import Table
from repro.kernels import KERNELS
from repro.serve import CompileRequest, CompileService

__all__ = [
    "run_dedup",
    "run_equivalence",
    "run_throughput",
    "suite_requests",
    "throughput_speedups",
]


def suite_requests(
    modes: Sequence[str] = ("linear",),
    first_case_only: bool = True,
    kernels: Optional[Sequence[str]] = None,
) -> List[CompileRequest]:
    """The Figure 9 suite as service requests."""
    requests: List[CompileRequest] = []
    for name in kernels if kernels is not None else sorted(KERNELS):
        model = KERNELS[name]
        cases = model.cases[:1] if first_case_only else model.cases
        for case in cases:
            for platform in model.platforms:
                for mode in modes:
                    requests.append(
                        CompileRequest(
                            kernel=name,
                            case=case.name,
                            platform=platform,
                            mode=mode,
                        )
                    )
    return requests


def _run_batch(
    requests: Sequence[CompileRequest],
    workers: int,
    backend: str,
) -> Tuple[float, object]:
    """(wall seconds, service report) of one cold batch compile."""
    _cache.clear()
    start = time.perf_counter()
    with CompileService(
        workers=workers, backend=backend, name=f"bench-{backend}"
    ) as service:
        service.compile_batch(requests)
        report = service.report()
    return time.perf_counter() - start, report


def run_throughput(
    worker_counts: Sequence[int] = (1, 2, 4),
    backends: Sequence[str] = ("thread", "process"),
    requests: Optional[Sequence[CompileRequest]] = None,
) -> Table:
    """Cold-suite throughput per (backend, worker count)."""
    if requests is None:
        requests = suite_requests()
    table = Table(
        title="Batch-compile throughput vs workers (cold fig9 suite)",
        headers=[
            "backend", "workers", "requests", "wall_s",
            "req_per_s", "speedup_vs_1",
        ],
    )
    for backend in backends:
        base_rps: Optional[float] = None
        for workers in worker_counts:
            wall, _report = _run_batch(requests, workers, backend)
            rps = len(requests) / wall
            if workers == min(worker_counts):
                base_rps = rps
            table.add_row(
                backend, workers, len(requests), round(wall, 3),
                round(rps, 2),
                round(rps / base_rps, 3) if base_rps else 0.0,
            )
    table.notes.append(
        f"cpu_count={os.cpu_count()}; scaling is bounded by physical "
        "cores (thread backend additionally by the GIL)"
    )
    return table


def throughput_speedups(table: Table) -> Dict[str, float]:
    """Max-worker speedup vs 1 worker, per backend."""
    out: Dict[str, float] = {}
    for row in table.rows:
        backend, workers, _, _, _, speedup = row
        # Rows are in ascending worker order; the last one wins.
        out[backend] = speedup
        out[f"{backend}_workers"] = workers
    return out


def run_dedup(
    dup: int = 4,
    workers: int = 4,
    requests: Optional[Sequence[CompileRequest]] = None,
) -> Dict[str, object]:
    """Duplicate-traffic demo: the suite requested ``dup`` times.

    Serving-traffic shape: many users ask for the same kernels.  The
    service compiles each unique key once; single-flight and the
    result cache absorb the rest.
    """
    if requests is None:
        requests = suite_requests()
    traffic = [r for _ in range(dup) for r in requests]
    _cache.clear()
    start = time.perf_counter()
    with CompileService(workers=workers, name="bench-dedup") as service:
        service.compile_batch(traffic)
        report = service.report()
    wall = time.perf_counter() - start
    return {
        "dup_factor": dup,
        "workers": workers,
        "requests": len(traffic),
        "unique_keys": len({r.canonical_key() for r in traffic}),
        "compiles": report.compiles,
        "dedup_shared": report.dedup_shared,
        "result_cache_hits": report.result_cache_hits,
        "wall_s": round(wall, 3),
        "req_per_s": round(len(traffic) / wall, 2),
        "duplicate_work_eliminated": round(
            1.0 - report.compiles / len(traffic), 4
        ),
    }


def run_equivalence(
    golden_path: str, workers: int = 8
) -> Dict[str, object]:
    """Service output vs the serial pipeline-equivalence golden.

    Every golden record is recompiled through a cold thread-backend
    service; cycles and op counts must match the serially produced
    golden field-for-field.
    """
    with open(golden_path) as fh:
        golden = json.load(fh)["records"]
    requests = [
        CompileRequest(
            kernel=rec["kernel"],
            case=rec["case"],
            platform=rec["platform"],
            mode=rec["mode"],
        )
        for rec in golden
    ]
    _cache.clear()
    with CompileService(workers=workers, name="bench-equiv") as service:
        results = service.compile_batch(requests)
    mismatches: List[str] = []
    for rec, compiled in zip(golden, results):
        label = (
            f"{rec['kernel']}/{rec['case']}@{rec['platform']}"
            f"/{rec['mode']}"
        )
        if compiled.ok != rec["ok"]:
            mismatches.append(f"{label}: ok {compiled.ok} != {rec['ok']}")
            continue
        if not rec["ok"]:
            continue
        if round(compiled.cycles()) != rec["cycles"]:
            mismatches.append(
                f"{label}: cycles {round(compiled.cycles())} "
                f"!= {rec['cycles']}"
            )
        if compiled.op_counts() != rec["op_counts"]:
            mismatches.append(
                f"{label}: op_counts {compiled.op_counts()} "
                f"!= {rec['op_counts']}"
            )
    return {
        "records": len(golden),
        "mismatches": len(mismatches),
        "first_mismatches": mismatches[:10],
        "bit_identical": not mismatches,
    }
