"""Figure 2: float8 transpose speedup over the padding heuristic.

The transpose kernel loads an ``M x N`` f8 tile coalesced, transposes
it (free on layouts), and stores coalesced — which forces a layout
conversion through shared memory.  Triton-Linear stages it with the
optimal swizzled layout (max vectorization, no bank conflicts);
legacy Triton uses the padding heuristic.  We report simulated-cycle
speedups for each (M, N).
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import Table
from repro.codegen.conversion import plan_conversion
from repro.codegen.vectorize import legacy_default_blocked
from repro.core.reshape import transpose_layout
from repro.gpusim.opcost import price_plan
from repro.hardware.spec import GH200, GpuSpec
from repro.mxfp.types import F8E5M2


def transpose_conversion_cycles(
    m: int,
    n: int,
    spec: GpuSpec,
    mode: str,
    num_warps: int = 4,
) -> float:
    """Cycles of the layout conversion inside a transpose kernel."""
    src_desc = legacy_default_blocked(
        (m, n), F8E5M2.bits, num_warps, spec.warp_size
    )
    src = src_desc.to_linear((m, n))
    # After tt.trans the data is in the transposed layout; the store
    # anchor wants the coalesced layout of the (n, m) output.
    transposed = transpose_layout(src, (1, 0))
    dst_desc = legacy_default_blocked(
        (n, m), F8E5M2.bits, num_warps, spec.warp_size
    )
    dst = dst_desc.to_linear((n, m))
    if mode == "linear":
        plan = plan_conversion(
            transposed, dst, F8E5M2.bits, spec=spec,
            allow_shuffle=True, swizzle_mode="optimal",
        )
    else:
        plan = plan_conversion(
            transposed, dst, F8E5M2.bits, spec=spec,
            allow_shuffle=False, swizzle_mode="padded",
            dedupe_broadcast=False,
        )
    return price_plan(plan, spec).cycles()


def run_fig2(
    sizes: Sequence[int] = (32, 64, 128, 256),
    spec: GpuSpec = GH200,
) -> Table:
    """Sweep (M, N) and report padded-vs-optimal speedups."""
    table = Table(
        title="Figure 2: f8 transpose speedup vs padding heuristic "
        f"({spec.name})",
        headers=["M", "N", "padded_cycles", "optimal_cycles", "speedup"],
    )
    for m in sizes:
        for n in sizes:
            padded = transpose_conversion_cycles(m, n, spec, "legacy")
            optimal = transpose_conversion_cycles(m, n, spec, "linear")
            table.add_row(m, n, padded, optimal, padded / optimal)
    table.notes.append(
        "paper reports up to ~1.6x on large shapes; the shape to "
        "preserve is optimal >= padded everywhere, growing with size"
    )
    return table
