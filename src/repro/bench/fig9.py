"""Figure 9 + Tables 2 & 6: the real-benchmark suite.

Compiles every kernel model on every platform it supports in both
engine modes and reports per-case simulated speedups (Figure 9), the
platform inventory (Table 2), and the linear-mode op mix per benchmark
(Table 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.harness import Table, geomean
from repro.engine import compile as compile_graph
from repro.hardware.spec import PLATFORMS
from repro.kernels import KERNELS


def run_table2() -> Table:
    """The Table 2 platform inventory."""
    table = Table(
        title="Table 2: hardware platforms evaluated",
        headers=["platform", "warp", "banks", "mma flavor",
                 "ldmatrix", "stmatrix", "memory"],
    )
    for name, spec in PLATFORMS.items():
        table.add_row(
            name, spec.warp_size,
            f"{spec.num_banks}x{spec.bank_bytes}B",
            spec.mma_flavor,
            "yes" if spec.has_ldmatrix else "no",
            "yes" if spec.has_stmatrix else "no",
            spec.memory_desc,
        )
    return table


def compile_case(
    model, case, platform: str, mode: str
) -> Optional[object]:
    """Compile one kernel case on one platform in one mode."""
    kb = model.build(**case.kwargs())
    return compile_graph(kb.graph, spec=PLATFORMS[platform], mode=mode)


def run_fig9(
    kernels: Optional[List[str]] = None,
    first_case_only: bool = False,
) -> Tuple[Table, Table, List[float]]:
    """Returns (figure 9 table, table 6 table, all case speedups).

    ``first_case_only`` restricts each kernel to its first input
    configuration — enough for the Table 6 op-count columns without
    paying for the full Figure 9 sweep.
    """
    fig = Table(
        title="Figure 9: real benchmark speedups (per case)",
        headers=["benchmark", "platform", "case", "legacy_cyc",
                 "linear_cyc", "speedup"],
    )
    tab6 = Table(
        title="Table 6: local memory / convert op distribution "
        "(linear mode, first case)",
        headers=["benchmark", "#load", "#store", "#convert"],
    )
    speedups: List[float] = []
    names = kernels if kernels is not None else sorted(KERNELS)
    for name in names:
        model = KERNELS[name]
        first_counts: Optional[Dict[str, int]] = None
        cases = model.cases[:1] if first_case_only else model.cases
        for case in cases:
            for platform in model.platforms:
                linear = compile_case(model, case, platform, "linear")
                legacy = compile_case(model, case, platform, "legacy")
                if not (linear.ok and legacy.ok):
                    fig.add_row(
                        name, platform, case.name, "FAIL", "FAIL", 0.0
                    )
                    continue
                ratio = legacy.cycles() / linear.cycles()
                speedups.append(ratio)
                fig.add_row(
                    name, platform, case.name,
                    round(legacy.cycles()), round(linear.cycles()),
                    ratio,
                )
                if first_counts is None:
                    counts = linear.op_counts()
                    first_counts = counts
        if first_counts and (
            first_counts["convert_layout"]
            or first_counts["local_load"]
            or first_counts["local_store"]
        ):
            tab6.add_row(
                name,
                first_counts["local_load"],
                first_counts["local_store"],
                first_counts["convert_layout"],
            )
    if speedups:
        fig.notes.append(
            f"{len(speedups)} cases; min {min(speedups):.2f}x, "
            f"geomean {geomean(speedups):.2f}x, "
            f"max {max(speedups):.2f}x "
            "(paper: 0.96x-1.40x, average 1.07x over 265 cases)"
        )
    return fig, tab6, speedups


def run_pass_profile(
    kernels: Optional[List[str]] = None, mode: str = "linear"
) -> Table:
    """Where compilation time goes, pass by pass.

    Compiles the first case of each kernel on its first platform and
    aggregates the per-pass diagnostics the pipeline records — the
    observability view of :mod:`repro.engine.pipeline` over the real
    benchmark suite.  Wall times are workload-dependent; the counter
    columns (conversions inserted/eliminated, cache hits) are
    deterministic.
    """
    table = Table(
        title=f"Compilation pass profile ({mode} mode, first cases)",
        headers=[
            "pass", "wall_ms", "cache_hits", "cache_misses",
            "conv_inserted", "conv_eliminated",
        ],
    )
    totals: Dict[str, Dict[str, float]] = {}
    order: List[str] = []
    names = kernels if kernels is not None else sorted(KERNELS)
    for name in names:
        model = KERNELS[name]
        case = model.cases[0]
        compiled = compile_case(model, case, model.platforms[0], mode)
        if not compiled.ok:
            continue
        for diag in compiled.diagnostics:
            if diag.name not in totals:
                totals[diag.name] = {
                    "wall_ms": 0.0,
                    "cache_hits": 0,
                    "cache_misses": 0,
                    "conv_inserted": 0,
                    "conv_eliminated": 0,
                }
                order.append(diag.name)
            agg = totals[diag.name]
            agg["wall_ms"] += diag.wall_time_ms
            agg["cache_hits"] += diag.cache_hits
            agg["cache_misses"] += diag.cache_misses
            agg["conv_inserted"] += diag.counters.get(
                "conversions_inserted", 0
            )
            agg["conv_eliminated"] += diag.counters.get(
                "conversions_eliminated", 0
            )
    for pass_name in order:
        agg = totals[pass_name]
        table.add_row(
            pass_name,
            round(agg["wall_ms"], 3),
            int(agg["cache_hits"]),
            int(agg["cache_misses"]),
            int(agg["conv_inserted"]),
            int(agg["conv_eliminated"]),
        )
    return table


def summarize_by_platform(fig: Table) -> Table:
    """Min/geomean/max per platform, the Figure 9 per-plot summary."""
    out = Table(
        title="Figure 9 summary per platform",
        headers=["platform", "cases", "min", "geomean", "max"],
    )
    by_platform: Dict[str, List[float]] = {}
    for row in fig.rows:
        _, platform, _, _, _, speedup = row
        if speedup:
            by_platform.setdefault(platform, []).append(speedup)
    for platform, values in sorted(by_platform.items()):
        out.add_row(
            platform, len(values), min(values), geomean(values),
            max(values),
        )
    return out
