"""Experiment harness: regenerates every table and figure of Section 6.

Each ``figN``/``tableN`` module exposes a ``run_*`` function returning
:class:`~repro.bench.harness.Table` objects whose rows mirror what the
paper reports.  The ``benchmarks/`` directory wraps these in
pytest-benchmark entry points; every module also runs standalone
(``python benchmarks/bench_fig2_transpose.py``).
"""

from repro.bench.harness import Table

__all__ = ["Table"]
