"""Table 3: load/store contiguity across dimension boundaries.

Tensors ``[512, k]`` for f8 and f16: the legacy analysis vectorizes
only within the fastest non-unit dimension of its default blocked
layout, while the linear analysis measures the identity prefix of the
register map in the flattened tensor — and the linear *engine* is free
to anchor on the vectorization-maximizing layout.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.bench.harness import Table
from repro.codegen.vectorize import (
    best_coalesced_layout,
    legacy_default_blocked,
    legacy_vector_width_bits,
    ptx_vector_name,
    vector_width_bits,
)
from repro.mxfp.types import F16, F8E5M2, DType


def contiguity_case(
    shape: Sequence[int], dtype: DType
) -> Tuple[str, str, int, int]:
    """(legacy inst, linear inst, legacy bits, linear bits) for one row."""
    legacy_desc = legacy_default_blocked(shape, dtype.bits)
    legacy_bits = legacy_vector_width_bits(legacy_desc, shape, dtype.bits)
    linear_layout = best_coalesced_layout(shape, dtype.bits)
    linear_bits = vector_width_bits(linear_layout, dtype.bits)
    return (
        ptx_vector_name(legacy_bits),
        ptx_vector_name(linear_bits),
        legacy_bits,
        linear_bits,
    )


def run_table3() -> Table:
    """All ten Table 3 rows (f8 and f16, k in 1..16)."""
    table = Table(
        title="Table 3: load/store instructions and bitwidths",
        headers=[
            "tensor", "dtype",
            "Triton inst", "Triton-Linear inst",
            "Triton bits", "Triton-Linear bits", "gain",
        ],
    )
    for dtype in (F8E5M2, F16):
        for k in (1, 2, 4, 8, 16):
            shape = (512, k)
            leg_inst, lin_inst, leg_bits, lin_bits = contiguity_case(
                shape, dtype
            )
            gain = (
                f"+{(lin_bits - leg_bits) * 100 // leg_bits}%"
                if lin_bits > leg_bits
                else "-"
            )
            table.add_row(
                f"[512,{k}]", str(dtype),
                leg_inst, lin_inst, leg_bits, lin_bits, gain,
            )
    table.notes.append(
        "paper: [512,2]xf8 jumps 16->128 bits (700%); wide shapes tie"
    )
    return table
