"""Figure 6: MXFP4 matmul speedups from the pre-shuffle optimization.

One operand is mxfp4; the other sweeps bf16 / f16 / fp8.  Triton-
Linear pre-shuffles the higher-precision operand in HBM so the mxfp4
loads vectorize 4x wider (Section 5.2); for the f16 pairing the
baseline additionally failed to use wgmma at all, which is why that
series shows the largest gains (up to 1.87x in the paper).

The model prices one software-pipelined K-iteration of a 128x128
output tile: tensor-core work executes asynchronously, but operand
staging (shared loads at the achievable vector width), the upcast, and
the scale broadcast all occupy issue slots on the critical path — the
narrow un-shuffled loads are what stall wgmma issue in the baseline.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import Table
from repro.hardware.spec import GH200, GpuSpec
from repro.mxfp.shuffle_opt import operand_vector_bits
from repro.mxfp.types import BF16, DType, F16, F8E5M2, MXFP4


def _iteration_cycles(
    tile_m: int,
    tile_n: int,
    tile_k: int,
    other: DType,
    preshuffled: bool,
    use_wgmma: bool,
    spec: GpuSpec = GH200,
) -> float:
    """Per-warp cycles of one main-loop iteration."""
    threads = 128
    warps = 4
    # mxfp4 operand staging: shared loads at the achievable width.
    # Without the pre-shuffle the fragment runs are short *and* land
    # on conflicting banks (4-way measured on the staging layout).
    mx_bits_per_thread = tile_k * tile_n * MXFP4.bits // threads
    mx_vec = operand_vector_bits(MXFP4, preshuffled, spec.max_vector_bits)
    mx_loads = max(1, mx_bits_per_thread // mx_vec)
    mx_wavefronts = 2 if preshuffled else 8
    mx_cost = mx_loads * (3 + mx_wavefronts)
    # Scale handling: the layout engine loads shared exponents in the
    # layout the upcast needs; the baseline broadcasts via shuffles.
    scale_groups = max(1, tile_k // 32 * tile_n // threads)
    scale_cost = scale_groups * (
        spec.shuffle_cycles * 3 if not preshuffled else 1
    )
    # Upcast ALU work (identical both ways).
    upcast = mx_bits_per_thread // MXFP4.bits // 4
    # Tensor-core execution floor per warp: ~512 MAC/cycle/warp for
    # wgmma; the mma fallback loses ~35% to issue/addressing overhead.
    macs_per_warp = tile_m * tile_n * tile_k // warps
    if use_wgmma:
        exec_floor = macs_per_warp / 512
        mma_issue = (tile_m // 64) * max(1, tile_n // 64) * (
            tile_k // 16
        ) * 4
    else:
        exec_floor = macs_per_warp / 512 / 0.65
        mma_issue = (
            (tile_m // 16) * (tile_n // 8) * (tile_k // 16) // warps
        )
    return exec_floor + mx_cost + scale_cost + upcast + mma_issue


def run_fig6(
    sizes: Sequence[int] = (1024, 2048, 4096, 8192),
    spec: GpuSpec = GH200,
) -> Table:
    """Sweep sizes per dtype pairing and report speedups."""
    table = Table(
        title=f"Figure 6: MXFP4 matmul speedups ({spec.name})",
        headers=["other dtype", "M=N=K", "baseline", "linear", "speedup"],
    )
    for other in (BF16, F16, F8E5M2):
        for size in sizes:
            iters = size // 64
            legacy_wgmma = other is not F16
            base = iters * _iteration_cycles(
                128, 128, 64, other, False, legacy_wgmma, spec
            )
            lin = iters * _iteration_cycles(
                128, 128, 64, other, True, True, spec
            )
            table.add_row(str(other), size, base, lin, base / lin)
    table.notes.append(
        "paper: mxfp4 x f16 peaks at 1.87x (wgmma fix + shuffle); "
        "bf16/f8 series land between 1.1x and 1.6x"
    )
    return table
