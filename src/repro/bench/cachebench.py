"""Cold vs. warm compilation: the layout/plan cache microbenchmark.

A serving deployment compiles the same small set of kernel graphs over
and over; :mod:`repro.cache` interns layouts and memoizes conversion
planning so only the first compilation pays for F2 Gaussian
elimination and plan lowering.  This benchmark measures exactly that:
``compile()`` of a freshly rebuilt graph with cold caches, then warm
repeats, then the same workload with caching disabled — asserting
along the way that all three produce identical cycle counts.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

from repro import cache
from repro.bench.harness import Table
from repro.engine.engine import CompiledKernel, LayoutEngine
from repro.hardware.spec import GpuSpec, RTX4090
from repro.kernels.models import (
    build_flex_attention,
    build_gemm,
    build_layer_norm,
    build_softmax,
)

#: The compiled workloads: name -> a builder returning a fresh graph.
WORKLOADS: Tuple[Tuple[str, Callable], ...] = (
    ("gemm_64", lambda: build_gemm(m=64, n=64, k=64, k_iters=4)),
    ("gemm_128", lambda: build_gemm(m=128, n=128, k=64, k_iters=8)),
    ("flex_attention", lambda: build_flex_attention()),
    ("softmax", lambda: build_softmax()),
    ("layer_norm", lambda: build_layer_norm()),
)


def _compile_fresh(
    build: Callable, spec: GpuSpec, mode: str
) -> CompiledKernel:
    """Compile a freshly built graph (compile() takes graph ownership)."""
    engine = LayoutEngine(spec=spec, mode=mode)
    return engine.compile(build().graph)


def _time_compile(
    build: Callable, spec: GpuSpec, mode: str
) -> Tuple[float, CompiledKernel]:
    start = time.perf_counter()
    kernel = _compile_fresh(build, spec, mode)
    return time.perf_counter() - start, kernel


def run_cache_bench(
    spec: GpuSpec = RTX4090,
    mode: str = "linear",
    warm_iters: int = 5,
) -> Table:
    """Cold/warm/disabled compile times per workload.

    ``cold_ms`` is the first compile after ``repro.cache.clear()``,
    ``warm_ms`` the best of ``warm_iters`` recompiles of the same
    (rebuilt) graph, ``nocache_ms`` a compile inside
    ``repro.cache.disabled()``.  The ``speedup`` column is
    cold / warm; correctness (identical cycles in all three runs) is
    asserted, not just reported.
    """
    table = Table(
        title=f"Cache benchmark: cold vs warm compile ({spec.name}, "
        f"{mode} mode)",
        headers=[
            "kernel",
            "cold_ms",
            "warm_ms",
            "nocache_ms",
            "speedup",
            "cycles",
        ],
    )
    speedups: List[float] = []
    for name, build in WORKLOADS:
        cache.clear()
        cold_s, cold_kernel = _time_compile(build, spec, mode)
        warm_s = float("inf")
        warm_kernel = cold_kernel
        for _ in range(warm_iters):
            elapsed, warm_kernel = _time_compile(build, spec, mode)
            warm_s = min(warm_s, elapsed)
        with cache.disabled():
            nocache_s, nocache_kernel = _time_compile(build, spec, mode)
        if warm_kernel.cycles() != cold_kernel.cycles():
            raise AssertionError(
                f"{name}: warm compile changed cycles "
                f"({warm_kernel.cycles()} != {cold_kernel.cycles()})"
            )
        if nocache_kernel.cycles() != cold_kernel.cycles():
            raise AssertionError(
                f"{name}: cache-disabled compile changed cycles "
                f"({nocache_kernel.cycles()} != {cold_kernel.cycles()})"
            )
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        speedups.append(speedup)
        table.add_row(
            name,
            cold_s * 1e3,
            warm_s * 1e3,
            nocache_s * 1e3,
            speedup,
            cold_kernel.cycles(),
        )
    stats = cache.stats()
    table.notes.append(
        "warm = best of {} recompiles of the same rebuilt graph; "
        "cycles identical across cold/warm/disabled runs".format(
            warm_iters
        )
    )
    table.notes.append(
        "cache stats: "
        + ", ".join(
            f"{name}: {s.hits}h/{s.misses}m"
            for name, s in sorted(stats.items())
        )
    )
    return table
