"""Observability benchmark + suite capture (records BENCH_obs.json).

Three jobs, shared by ``benchmarks/bench_obs.py`` and the
``python -m repro.obs capture`` CLI:

* :func:`capture_suite` — compile a whole suite (Table 6 kernels by
  default) through :class:`repro.serve.CompileService` with
  observability recording, execute a sample of the lowered
  conversions on the simulated machine so simulator spans/metrics
  appear, and return the :class:`~repro.obs.core.Recorder` ready for
  export.  This is what CI exports and schema-checks.
* :func:`run_overhead` — enabled-vs-disabled compile wall time on the
  same suite (cold and warm cache), plus events captured and export
  bytes.  The <3% gate of ``bench_obs.py --check`` reads this.
* :func:`run_noop_latency` — nanoseconds per *disabled* span/metric
  hook, the "unmeasurable when off" line.
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import cache as _cache
from repro import obs
from repro.bench.servebench import suite_requests
from repro.gpusim import Machine, distributed_data
from repro.hardware.spec import PLATFORMS
from repro.serve import CompileRequest, CompileService

__all__ = [
    "TABLE6_KERNELS",
    "capture_suite",
    "run_noop_latency",
    "run_overhead",
    "suite",
]

#: The Table 6 kernel set (kernels with nonzero op counts) — must
#: match ``benchmarks/bench_table6_opcounts.py``.
TABLE6_KERNELS = [
    "gemm", "bf16xint16_gemm", "int4_gemm", "template_attention",
    "fp8_gemm", "welford", "gather_gemv", "grouped_gemm", "rope",
    "embedding",
]


def suite(name: str = "table6") -> List[CompileRequest]:
    """A named request suite: ``table6`` (default) or ``fig9``."""
    if name == "table6":
        return suite_requests(kernels=TABLE6_KERNELS)
    if name == "fig9":
        return suite_requests()
    raise ValueError(f"unknown suite {name!r} (expected table6 or fig9)")


def _simulate_conversions(
    pairs: Sequence[Tuple[CompileRequest, object]], limit: int
) -> int:
    """Run up to ``limit`` lowered conversions on the machine.

    Compilation alone never *executes* plans; driving a sample
    through :class:`~repro.gpusim.machine.Machine` puts simulator
    spans (``sim:run_program``) and metrics (``sim.cycles``,
    ``sim.bank_conflicts``) into the capture.
    """
    ran = 0
    machines: Dict[str, Machine] = {}
    for request, compiled in pairs:
        if ran >= limit:
            break
        if compiled is None or not getattr(compiled, "ok", False):
            continue
        machine = machines.get(request.platform)
        if machine is None:
            machine = machines[request.platform] = Machine(
                spec=PLATFORMS[request.platform],
                num_warps=request.num_warps,
            )
        for plan in compiled.conversions:
            if ran >= limit:
                break
            registers = distributed_data(
                plan.src, request.num_warps, machine.spec.warp_size
            )
            machine.run_conversion(plan, registers)
            ran += 1
    return ran


def capture_suite(
    suite_name: str = "table6",
    workers: int = 4,
    dup: int = 2,
    simulate: int = 12,
    max_spans: int = 500_000,
) -> Tuple[obs.Recorder, Dict[str, object]]:
    """One observed suite run; returns ``(recorder, info)``.

    The suite is submitted ``dup`` times so the capture also shows
    the dedup machinery working (single-flight sharing on round one,
    result-cache hits on later rounds), and the caches are cleared
    first so both misses and hits appear.
    """
    requests = suite(suite_name)
    _cache.clear()
    with obs.capture(max_spans=max_spans) as recorder:
        start = time.perf_counter()
        with CompileService(
            workers=workers, name=f"obs-{suite_name}"
        ) as service:
            results = service.compile_batch(requests * max(1, dup))
            report = service.report()
        simulated = _simulate_conversions(
            list(zip(requests, results[: len(requests)])), simulate
        )
        wall_s = time.perf_counter() - start
        _cache.publish_obs_gauges()
    info = {
        "suite": suite_name,
        "requests": len(requests) * max(1, dup),
        "unique_requests": len(requests),
        "compiles": report.compiles,
        "failures": report.failures,
        "simulated_conversions": simulated,
        "spans": len(recorder),
        "dropped_spans": recorder.dropped_spans,
        "wall_s": round(wall_s, 3),
        "service": report.describe(),
    }
    return recorder, info


# ----------------------------------------------------------------------
# Overhead measurement
# ----------------------------------------------------------------------
def _compile_suite_serial(requests: Sequence[CompileRequest]) -> None:
    for request in requests:
        request.build_and_compile()


def _timed_runs(
    requests: Sequence[CompileRequest],
    warm_repeats: int,
    cold_repeats: int = 2,
) -> Tuple[float, float]:
    """(best cold seconds, median warm seconds) of serial suite sweeps.

    Cold takes the best of ``cold_repeats`` fully-cleared runs so the
    <3% overhead gate compares compiler work, not scheduler noise.
    """
    colds = []
    for _ in range(max(1, cold_repeats)):
        _cache.clear()
        start = time.perf_counter()
        _compile_suite_serial(requests)
        colds.append(time.perf_counter() - start)
    warms = []
    for _ in range(warm_repeats):
        start = time.perf_counter()
        _compile_suite_serial(requests)
        warms.append(time.perf_counter() - start)
    return min(colds), statistics.median(warms)


def run_overhead(
    suite_name: str = "table6",
    kernels: Optional[Sequence[str]] = None,
    warm_repeats: int = 5,
    cold_repeats: int = 2,
) -> Dict[str, object]:
    """Enabled-vs-disabled compile time, events captured, export bytes.

    Serial compiles (no worker pool) so the measurement is pure
    compiler + instrumentation, not thread scheduling.  Cold numbers
    are dominated by real F2 planning — that is the production-shaped
    figure the <3% gate applies to; warm numbers (cache-hit compiles,
    microseconds each) are reported for honesty but not gated, since
    a handful of span records is a visible fraction of almost zero.
    """
    requests = (
        suite(suite_name)
        if kernels is None
        else suite_requests(kernels=kernels)
    )
    assert not obs.is_enabled(), "run_overhead must start disabled"
    cold_off, warm_off = _timed_runs(requests, warm_repeats, cold_repeats)
    with obs.capture() as recorder:
        cold_on, warm_on = _timed_runs(requests, warm_repeats, cold_repeats)
        _cache.publish_obs_gauges()
    events = obs.jsonl_events(recorder)
    export_bytes = sum(
        len(json.dumps(event, sort_keys=True).encode()) + 1
        for event in events
    )
    chrome = obs.chrome_trace(recorder, suite=suite_name)
    return {
        "suite": suite_name,
        "requests": len(requests),
        "warm_repeats": warm_repeats,
        "cold_disabled_s": round(cold_off, 4),
        "cold_enabled_s": round(cold_on, 4),
        "cold_overhead": round(cold_on / cold_off - 1, 4),
        "warm_disabled_s": round(warm_off, 4),
        "warm_enabled_s": round(warm_on, 4),
        "warm_overhead": round(warm_on / warm_off - 1, 4),
        "events_captured": len(events),
        "spans_captured": len(recorder),
        "export_bytes_jsonl": export_bytes,
        "chrome_trace_events": len(chrome["traceEvents"]),
    }


def run_noop_latency(iterations: int = 200_000) -> Dict[str, object]:
    """Nanoseconds per disabled span + metric hook pair."""
    assert not obs.is_enabled(), "noop latency must run disabled"
    # Warm the attribute lookups before timing.
    for _ in range(1000):
        with obs.span("bench:noop"):
            obs.count("bench.noop")
    start = time.perf_counter()
    for _ in range(iterations):
        with obs.span("bench:noop"):
            obs.count("bench.noop")
    elapsed = time.perf_counter() - start
    return {
        "iterations": iterations,
        "ns_per_hook_pair": round(elapsed / iterations * 1e9, 1),
    }
