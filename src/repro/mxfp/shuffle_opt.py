"""The data pre-shuffle optimization of Section 5.2 (Data Shuffling).

An ``mma``/``wgmma`` operand fragment gives each lane *two* runs along
K per instruction (positions ``[0, kwidth)`` and ``[4*kwidth,
5*kwidth)`` of its 8*kwidth-element K tile), so loads of the
low-precision operand vectorize only ``kwidth`` elements at a time.
Pre-shuffling the *other* (higher-precision) operand in HBM lets the
compiler feed the instruction from a permuted K order in which each
lane's fragment is contiguous — doubling (or more) the vector width of
the low-precision loads.

The Machete framework implements this in thousands of C++/CUTLASS
lines; with linear layouts it is a reshape/transpose/reshape on the
logical tensor — the "five lines of Python" the paper mentions —
because the layout engine propagates the permutation for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mxfp.types import DType, mma_kwidth


@dataclass(frozen=True)
class PreShuffleResult:
    """Outcome of the pre-shuffle analysis for an operand pair."""

    kwidth: int
    vector_bits_before: int
    vector_bits_after: int

    @property
    def speed_ratio(self) -> float:
        """Relative reduction in load instructions for the operand."""
        return self.vector_bits_after / self.vector_bits_before


def preshuffle_operand(w: np.ndarray, kwidth: int) -> np.ndarray:
    """Permute the K axis (axis 0) so lane fragments become contiguous.

    This is the whole optimization — the paper's five lines:
    """
    k, n = w.shape
    group = 8 * kwidth
    if k % group != 0:
        raise ValueError(f"K={k} must be a multiple of {group}")
    blocks = w.reshape(k // group, 2, 4, kwidth, n)
    shuffled = blocks.transpose(0, 2, 1, 3, 4)
    return shuffled.reshape(k, n)


def unshuffle_operand(w: np.ndarray, kwidth: int) -> np.ndarray:
    """The inverse permutation (used to verify the matmul result)."""
    k, n = w.shape
    group = 8 * kwidth
    blocks = w.reshape(k // group, 4, 2, kwidth, n)
    restored = blocks.transpose(0, 2, 1, 3, 4)
    return restored.reshape(k, n)


def fragment_positions(kwidth: int, lane_group: int = 0) -> list:
    """K positions one lane touches in one instruction K-tile.

    Two runs of ``kwidth``: the structure that limits vectorization
    before the shuffle.
    """
    base = lane_group * kwidth
    first = [base + j for j in range(kwidth)]
    second = [base + 4 * kwidth + j for j in range(kwidth)]
    return first + second


def operand_vector_bits(
    dtype: DType,
    preshuffled: bool,
    max_vector_bits: int = 128,
) -> int:
    """Vector width (bits) for loading the low-precision operand.

    Before the shuffle a lane can vectorize one ``kwidth`` run; after
    it both runs (and the runs of the subsequent K tile) are adjacent,
    up to the 128-bit cap.
    """
    kwidth = mma_kwidth(dtype)
    run_bits = kwidth * dtype.bits
    if not preshuffled:
        return min(run_bits, max_vector_bits)
    return min(4 * run_bits, max_vector_bits)


def analyze_pair(low: DType, preshuffled: bool = True) -> PreShuffleResult:
    """Vectorization gain for the low-precision operand of a pair."""
    kwidth = mma_kwidth(low)
    return PreShuffleResult(
        kwidth=kwidth,
        vector_bits_before=operand_vector_bits(low, False),
        vector_bits_after=operand_vector_bits(low, preshuffled),
    )


def preshuffle_register_table(num_regs: int, kwidth: int) -> tuple:
    """The pre-shuffle as a register permutation table.

    When a thread holds ``8 * kwidth`` consecutive K elements per
    group in its registers, :func:`preshuffle_operand`'s reshape /
    transpose / reshape is exactly this ``dst_to_src`` table: output
    register ``((c4 * 2 + c2) * kwidth + j)`` takes the value of input
    register ``((c2 * 4 + c4) * kwidth + j)``, tiled over groups.
    """
    group = 8 * kwidth
    if num_regs % group != 0:
        raise ValueError(
            f"{num_regs} registers is not a multiple of group {group}"
        )
    table = []
    for g in range(num_regs // group):
        base = g * group
        for c4 in range(4):
            for c2 in range(2):
                for j in range(kwidth):
                    table.append(base + (c2 * 4 + c4) * kwidth + j)
    return tuple(table)


def preshuffle_program(layout, kwidth: int):
    """The operand pre-shuffle as a warp program (one register move).

    ``layout`` is the distributed layout of the operand fragment whose
    registers run along K; the program is intra-thread data movement
    only, so it prices to zero instructions — the gain shows up in the
    load vectorization, not here.
    """
    from repro.core.dims import REGISTER
    from repro.program.lower import lower_register_permute

    table = preshuffle_register_table(
        layout.in_dim_size(REGISTER), kwidth
    )
    return lower_register_permute(table, layout)
