"""Upcast paths for software-emulated mixed-precision mma.

On hardware without native MXFP4 tensor cores, Triton upcasts the
low-precision operand to the other operand's precision before the
``mma``/``wgmma`` (Section 5.2).  The numerics here mirror that: both
operands are materialized in the *compute* precision, accumulate in
f32/f64.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.mxfp.quantize import quantize_to
from repro.mxfp.types import DType, F32, MXFP4


def compute_precision(a: DType, b: DType) -> DType:
    """The precision the emulated mma computes in: the wider operand's
    float type (low precision is upcast, Section 5.2)."""
    candidates = [t for t in (a, b) if t.is_float() and t != MXFP4]
    if not candidates:
        return F32
    return max(candidates, key=lambda t: t.bits)


def upcast_for_mma(
    values: np.ndarray,
    from_dtype: DType,
    to_dtype: DType,
    axis: int = -1,
) -> np.ndarray:
    """Upcast an operand through its storage format to compute format.

    The value is first rounded to its storage grid (so quantization
    error is faithfully present), then re-rounded into the compute
    precision.  ``axis`` orients block formats: MXFP4 scale groups run
    along the contraction axis (K), which is the last axis of an A
    operand but axis 0 of a B operand.
    """
    moved = np.moveaxis(np.asarray(values, dtype=np.float64), axis, -1)
    stored = quantize_to(moved, from_dtype)
    upcast = quantize_to(stored, to_dtype)
    return np.moveaxis(upcast, -1, axis)


def emulated_matmul(
    a: np.ndarray,
    b: np.ndarray,
    a_dtype: DType,
    b_dtype: DType,
) -> Tuple[np.ndarray, DType]:
    """A software-emulated mixed-precision matmul.

    Returns the accumulator (f64 array) and the compute precision the
    emulation used.  This is the reference the Table 5 pass/fail check
    compares against.  K runs along A's last axis and B's first.
    """
    prec = compute_precision(a_dtype, b_dtype)
    a_up = upcast_for_mma(a, a_dtype, prec, axis=-1)
    b_up = upcast_for_mma(b, b_dtype, prec, axis=0)
    return a_up @ b_up, prec
