"""Bit-exact software codecs for low-precision floats.

fp8 (both e4m3 and e5m2), bf16 and fp4(e2m1) are implemented by direct
bit manipulation so the emulated matmuls of Section 5.2 have hardware-
faithful rounding; MXFP4 follows the OCP MX v1.0 spec: groups of 32
fp4(e2m1) elements sharing one 8-bit power-of-two scale (E8M0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.mxfp.types import BF16, DType, F16, F32, F64, F8E4M3, F8E5M2, MXFP4

#: The 16 representable fp4 e2m1 magnitudes (sign handled separately).
_FP4_VALUES = np.array(
    [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0], dtype=np.float64
)

MXFP4_GROUP = 32


def _fp8_params(dtype: DType) -> Tuple[int, int, int]:
    """(exponent bits, mantissa bits, bias) of an fp8 flavour."""
    if dtype == F8E4M3:
        return 4, 3, 7
    if dtype == F8E5M2:
        return 5, 2, 15
    raise ValueError(f"not an fp8 dtype: {dtype}")


def encode_fp8(values: np.ndarray, dtype: DType) -> np.ndarray:
    """Round float values to fp8 bit patterns (round-to-nearest-even).

    Saturates to the format's max finite value (matching GPU cvt
    semantics with saturation, the mode Triton uses).
    """
    e_bits, m_bits, bias = _fp8_params(dtype)
    x = np.asarray(values, dtype=np.float64)
    sign = (np.signbit(x)).astype(np.uint8) << 7
    mag = np.abs(x)
    max_exp = (1 << e_bits) - 1 - (1 if dtype == F8E5M2 else 0)
    # e4m3 (OCP flavour) uses exponent 15 with mantissa < 7 for finite
    # values; keep it simple: compute the max finite value directly.
    if dtype == F8E4M3:
        max_finite = 448.0
    else:
        max_finite = 57344.0
    mag = np.minimum(mag, max_finite)
    out = np.zeros(x.shape, dtype=np.uint8)
    nonzero = mag > 0
    if np.any(nonzero):
        exp = np.floor(np.log2(np.where(nonzero, mag, 1.0)))
        exp = np.clip(exp, 1 - bias, max_exp - bias)
        scale = np.power(2.0, exp)
        frac = np.where(nonzero, mag / scale, 0.0)
        # Subnormals: exponent pinned at 1-bias, no implicit leading 1.
        subnormal = frac < 1.0
        mant = np.where(
            subnormal,
            _round_half_even(frac * (1 << m_bits)),
            _round_half_even((frac - 1.0) * (1 << m_bits)),
        )
        # Mantissa overflow bumps the exponent.
        overflow = (~subnormal) & (mant >= (1 << m_bits))
        exp = exp + overflow
        mant = np.where(overflow, 0, mant)
        too_big = exp > (max_exp - bias)
        exp = np.minimum(exp, max_exp - bias)
        mant = np.where(too_big, (1 << m_bits) - 1, mant)
        biased = np.where(subnormal & ~overflow, 0, exp + bias).astype(
            np.int64
        )
        code = (biased << m_bits) | mant.astype(np.int64)
        out = np.where(nonzero, code, 0).astype(np.uint8)
    return (out | sign).astype(np.uint8)


def _round_half_even(x: np.ndarray) -> np.ndarray:
    return np.rint(x)


def decode_fp8(codes: np.ndarray, dtype: DType) -> np.ndarray:
    """Decode fp8 bit patterns back to float64."""
    e_bits, m_bits, bias = _fp8_params(dtype)
    c = np.asarray(codes, dtype=np.uint8).astype(np.int64)
    sign = np.where(c & 0x80, -1.0, 1.0)
    exp = (c >> m_bits) & ((1 << e_bits) - 1)
    mant = c & ((1 << m_bits) - 1)
    normal = exp > 0
    value = np.where(
        normal,
        (1.0 + mant / (1 << m_bits)) * np.power(2.0, exp - bias),
        (mant / (1 << m_bits)) * np.power(2.0, 1 - bias),
    )
    return sign * value


def encode_bf16(values: np.ndarray) -> np.ndarray:
    """Round float32 to bf16 (round-to-nearest-even on the high half)."""
    f32 = np.asarray(values, dtype=np.float32)
    bits = f32.view(np.uint32)
    rounding = ((bits >> 16) & 1) + 0x7FFF
    rounded = (bits + rounding) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32)


def decode_bf16(values: np.ndarray) -> np.ndarray:
    """bf16 is stored as truncated float32 here; decoding is identity."""
    return np.asarray(values, dtype=np.float32)


def encode_fp4_e2m1(values: np.ndarray) -> np.ndarray:
    """Quantize to the 4-bit e2m1 grid (nearest, ties to even index)."""
    x = np.asarray(values, dtype=np.float64)
    sign = np.signbit(x).astype(np.uint8) << 3
    mag = np.abs(x)
    idx = np.argmin(
        np.abs(mag[..., None] - _FP4_VALUES[None, ...]), axis=-1
    ).astype(np.uint8)
    return sign | idx


def decode_fp4_e2m1(codes: np.ndarray) -> np.ndarray:
    """Decode 4-bit e2m1 codes to float64 values."""
    c = np.asarray(codes, dtype=np.uint8)
    sign = np.where(c & 0x8, -1.0, 1.0)
    return sign * _FP4_VALUES[c & 0x7]


@dataclass
class MxfpTensor:
    """An MXFP4 tensor: packed fp4 codes + per-group E8M0 scales.

    Grouping runs along the last axis (the K axis of a matmul operand,
    matching "each 32 floating-point elements share a single 8-bit
    exponent").
    """

    codes: np.ndarray   # uint8, one fp4 code per element (low nibble)
    scales: np.ndarray  # uint8 biased exponents, shape[..., k/32]

    @property
    def shape(self) -> Tuple[int, ...]:
        """Logical (unpacked) element shape."""
        return self.codes.shape


def encode_mxfp4(values: np.ndarray) -> MxfpTensor:
    """OCP MX encoding: scale = 2^(floor(log2(max)) - emax_elem)."""
    x = np.asarray(values, dtype=np.float64)
    if x.shape[-1] % MXFP4_GROUP != 0:
        raise ValueError(
            f"last axis ({x.shape[-1]}) must be a multiple of "
            f"{MXFP4_GROUP}"
        )
    grouped = x.reshape(*x.shape[:-1], -1, MXFP4_GROUP)
    max_abs = np.max(np.abs(grouped), axis=-1)
    safe = np.where(max_abs > 0, max_abs, 1.0)
    # emax of e2m1 is 2 (largest magnitude 6.0 = 1.5 * 2^2).
    exp = np.floor(np.log2(safe)).astype(np.int64) - 2
    exp = np.clip(exp, -127, 127)
    scales = (exp + 127).astype(np.uint8)
    scale_values = np.power(2.0, exp)[..., None]
    codes = encode_fp4_e2m1(grouped / scale_values)
    return MxfpTensor(
        codes=codes.reshape(x.shape), scales=scales
    )


def decode_mxfp4(tensor: MxfpTensor) -> np.ndarray:
    """Decode an MXFP4 tensor: fp4 values times per-group scales."""
    codes = tensor.codes
    grouped = decode_fp4_e2m1(codes).reshape(
        *codes.shape[:-1], -1, MXFP4_GROUP
    )
    exp = tensor.scales.astype(np.int64) - 127
    values = grouped * np.power(2.0, exp)[..., None]
    return values.reshape(codes.shape)


def pack_nibbles(codes: np.ndarray) -> np.ndarray:
    """Pack 4-bit codes two-per-byte along the last axis.

    Element ``2i`` occupies the low nibble — the layout int4/mxfp4
    weights use in HBM, where a packed byte holds two adjacent K
    elements (which is why the pre-shuffle of Section 5.2 operates on
    the *other* operand: the packed bytes must stay adjacent).
    """
    c = np.asarray(codes, dtype=np.uint8)
    if c.shape[-1] % 2 != 0:
        raise ValueError("last axis must be even to pack nibbles")
    lo = c[..., 0::2] & 0xF
    hi = c[..., 1::2] & 0xF
    return (lo | (hi << 4)).astype(np.uint8)


def unpack_nibbles(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_nibbles`."""
    p = np.asarray(packed, dtype=np.uint8)
    out = np.empty(p.shape[:-1] + (p.shape[-1] * 2,), dtype=np.uint8)
    out[..., 0::2] = p & 0xF
    out[..., 1::2] = p >> 4
    return out


def quantize_to(values: np.ndarray, dtype: DType) -> np.ndarray:
    """Round-trip values through a dtype (the emulation the engine
    applies before a software-emulated mma consumes an operand)."""
    if dtype in (F8E4M3, F8E5M2):
        return decode_fp8(encode_fp8(values, dtype), dtype)
    if dtype == BF16:
        return encode_bf16(values).astype(np.float64)
    if dtype == F16:
        return np.asarray(values, dtype=np.float16).astype(np.float64)
    if dtype in (F32,):
        return np.asarray(values, dtype=np.float32).astype(np.float64)
    if dtype == F64:
        return np.asarray(values, dtype=np.float64)
    if dtype == MXFP4:
        return decode_mxfp4(encode_mxfp4(values))
    if dtype.kind == "int":
        info_bits = dtype.bits - 1
        lo, hi = -(1 << info_bits), (1 << info_bits) - 1
        return np.clip(np.rint(np.asarray(values)), lo, hi).astype(
            np.float64
        )
    raise ValueError(f"cannot quantize to {dtype}")
