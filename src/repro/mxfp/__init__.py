"""Mixed-precision numerics: dtype registry and software codecs.

Section 5.2's mixed-precision matmul work needs bit-exact emulation of
the low-precision types Triton supports: fp8 (e4m3/e5m2), bf16, fp16,
the integer family, and MXFP4 — the OCP Microscaling format where each
group of 32 fp4(e2m1) values shares one power-of-two scale byte.
"""

from repro.mxfp.types import (
    BF16,
    DType,
    F16,
    F32,
    F64,
    F8E4M3,
    F8E5M2,
    I16,
    I32,
    I64,
    I8,
    MXFP4,
    dtype_by_name,
    mma_kwidth,
)
from repro.mxfp.quantize import (
    MxfpTensor,
    decode_fp4_e2m1,
    decode_fp8,
    decode_mxfp4,
    encode_bf16,
    encode_fp4_e2m1,
    encode_fp8,
    encode_mxfp4,
    pack_nibbles,
    quantize_to,
    unpack_nibbles,
)
from repro.mxfp.emulate import upcast_for_mma
from repro.mxfp.shuffle_opt import (
    PreShuffleResult,
    preshuffle_operand,
    operand_vector_bits,
)

__all__ = [
    "BF16",
    "DType",
    "F16",
    "F32",
    "F64",
    "F8E4M3",
    "F8E5M2",
    "I16",
    "I32",
    "I64",
    "I8",
    "MXFP4",
    "MxfpTensor",
    "PreShuffleResult",
    "decode_fp4_e2m1",
    "decode_fp8",
    "decode_mxfp4",
    "dtype_by_name",
    "encode_bf16",
    "encode_fp4_e2m1",
    "encode_fp8",
    "encode_mxfp4",
    "mma_kwidth",
    "pack_nibbles",
    "operand_vector_bits",
    "preshuffle_operand",
    "quantize_to",
    "unpack_nibbles",
    "upcast_for_mma",
]
