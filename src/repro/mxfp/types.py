"""The dtype registry used across the engine and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DType:
    """A tensor element type.

    ``bits`` is the storage width per element (MXFP4 reports 4; its
    shared scale byte is accounted separately).  ``kind`` is one of
    ``float``, ``int``, or ``mxfp``.
    """

    name: str
    bits: int
    kind: str

    @property
    def bytes(self) -> int:
        """Storage bytes per element (floored at 1 for sub-byte types)."""
        return max(1, self.bits // 8)

    def is_float(self) -> bool:
        """True for floating-point and block-float (mxfp) types."""
        return self.kind in ("float", "mxfp")

    def __str__(self) -> str:
        return self.name


F8E4M3 = DType("f8e4m3", 8, "float")
F8E5M2 = DType("f8e5m2", 8, "float")
F16 = DType("f16", 16, "float")
BF16 = DType("bf16", 16, "float")
F32 = DType("f32", 32, "float")
F64 = DType("f64", 64, "float")
I8 = DType("i8", 8, "int")
I16 = DType("i16", 16, "int")
I32 = DType("i32", 32, "int")
I64 = DType("i64", 64, "int")
MXFP4 = DType("mxfp4", 4, "mxfp")

_REGISTRY: Dict[str, DType] = {
    t.name: t
    for t in (
        F8E4M3, F8E5M2, F16, BF16, F32, F64, I8, I16, I32, I64, MXFP4,
    )
}
_REGISTRY["f8"] = F8E5M2  # the paper's shorthand


def dtype_by_name(name: str) -> DType:
    """Look up a dtype by its registry name (``f8`` aliases e5m2)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown dtype {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def mma_kwidth(dtype: DType) -> int:
    """Consecutive K elements per lane in an mma fragment: 32/bits."""
    return max(1, 32 // dtype.bits)
