"""Linear Layouts over F2 — a full reproduction of the ASPLOS 2026
paper "Linear Layouts: Robust Code Generation of Efficient Tensor
Computation Using F2".

The most-used entry points are re-exported here; see the package
README for a tour and ``docs/THEORY.md`` for the paper-to-code map.
"""

from repro import cache
from repro.core import (
    AffineLayout,
    BLOCK,
    LANE,
    OFFSET,
    REGISTER,
    WARP,
    LinearLayout,
    make_identity,
)
from repro.codegen import classify_conversion, plan_conversion
from repro.engine import CompiledKernel, KernelBuilder, LayoutEngine
from repro.gpusim import Machine, distributed_data
from repro.hardware import GH200, MI250, PLATFORMS, RTX4090
from repro.layouts import (
    AmdMfmaLayout,
    BlockedLayout,
    MmaOperandLayout,
    NvidiaMmaLayout,
    SlicedLayout,
    SwizzledSharedLayout,
    WgmmaLayout,
)

__version__ = "1.0.0"

__all__ = [
    "AffineLayout",
    "AmdMfmaLayout",
    "BLOCK",
    "BlockedLayout",
    "CompiledKernel",
    "GH200",
    "KernelBuilder",
    "LANE",
    "LayoutEngine",
    "LinearLayout",
    "MI250",
    "Machine",
    "MmaOperandLayout",
    "NvidiaMmaLayout",
    "OFFSET",
    "PLATFORMS",
    "REGISTER",
    "RTX4090",
    "SlicedLayout",
    "SwizzledSharedLayout",
    "WARP",
    "WgmmaLayout",
    "cache",
    "classify_conversion",
    "distributed_data",
    "make_identity",
    "plan_conversion",
    "__version__",
]
