"""The simulated machine: executes conversion plans and gathers.

Execution is real data movement: values travel through register files,
shuffle networks and banked shared memory, so a plan that routes a
single element wrong fails the correctness checks in tests.  At the
same time every step emits instruction records into a :class:`Trace`
for the cost model.

Instruction counts follow the static (per-program) convention the
paper's Tables 4 and 6 use; bank-conflict wavefronts are measured on
the actual addresses each warp generates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.dims import LANE, REGISTER, WARP
from repro.core.layout import LinearLayout
from repro.codegen.gather import plan_gather
from repro.codegen.plan import (
    Barrier,
    ConversionPlan,
    RegisterPermute,
    SharedLoad,
    SharedStore,
    ShuffleRound,
)
from repro.codegen.views import DistributedView
from repro.gpusim.memory import SharedMemory
from repro.gpusim.registers import RegisterFile
from repro.gpusim.trace import Trace
from repro.hardware.instructions import InstructionKind
from repro.hardware.spec import GpuSpec, RTX4090


class Machine:
    """Executes lowered plans over simulated hardware."""

    def __init__(self, spec: GpuSpec = RTX4090, num_warps: int = 4):
        self.spec = spec
        self.num_warps = num_warps

    # ------------------------------------------------------------------
    # Layout conversion
    # ------------------------------------------------------------------
    def run_conversion(
        self, plan: ConversionPlan, src: RegisterFile
    ) -> Tuple[RegisterFile, Trace]:
        """Execute a conversion plan; returns (dst registers, trace)."""
        trace = Trace(self.spec)
        if plan.kind == "noop":
            return src.copy(), trace
        dst = RegisterFile(src.num_warps, src.warp_size)
        memory: Optional[SharedMemory] = None
        current = src
        shuffled = False
        for step in plan.steps:
            if isinstance(step, RegisterPermute):
                # After shuffle rounds the permute fans received
                # values out to broadcast replicas; standalone it is
                # the intra-thread conversion path.
                base = dst if shuffled else current
                permuted = self._run_register_permute(step, base, plan)
                if shuffled:
                    dst = permuted
                else:
                    current = permuted
            elif isinstance(step, ShuffleRound):
                shuffled = True
                self._run_shuffle_round(step, src, dst, plan, trace)
            elif isinstance(step, SharedStore):
                memory = SharedMemory(self.spec, step.elem_bytes)
                self._run_shared_store(step, current, memory, trace)
            elif isinstance(step, Barrier):
                trace.emit(InstructionKind.BARRIER)
            elif isinstance(step, SharedLoad):
                if memory is None:
                    raise RuntimeError("SharedLoad before any SharedStore")
                dst = RegisterFile(src.num_warps, src.warp_size)
                self._run_shared_load(step, dst, memory, trace)
            else:
                raise TypeError(f"unknown plan step {step!r}")
        if plan.kind == "register":
            return current, trace
        if plan.kind == "shuffle":
            return dst, trace
        return dst, trace

    def _run_register_permute(
        self,
        step: RegisterPermute,
        src: RegisterFile,
        plan: ConversionPlan,
    ) -> RegisterFile:
        # Pure register renaming: free at runtime, so no instructions.
        dst = RegisterFile(src.num_warps, src.warp_size)
        lanes = plan.dst.in_dim_size(LANE)
        warps = plan.dst.in_dim_size(WARP)
        for w in range(warps):
            for l in range(lanes):
                for new_reg, old_reg in enumerate(step.dst_to_src):
                    dst.write(w, l, new_reg, src.read(w, l, old_reg))
        return dst

    def _run_shuffle_round(
        self,
        step: ShuffleRound,
        src: RegisterFile,
        dst: RegisterFile,
        plan: ConversionPlan,
        trace: Trace,
    ) -> None:
        warps = plan.src.in_dim_size(WARP)
        for w in range(warps):
            for l, s_lane in enumerate(step.src_lane):
                for s_reg, d_reg in zip(
                    step.send_regs[s_lane], step.recv_regs[l]
                ):
                    dst.write(w, l, d_reg, src.read(w, s_lane, s_reg))
        trace.emit(
            InstructionKind.SHUFFLE, count=step.insts_per_round
        )

    def _warp_requests(
        self,
        step,
        warp: int,
        access_index: int,
    ) -> List[Tuple[int, int, Tuple[int, int, Tuple[int, ...]]]]:
        """Collect (lane, base_offset, regs) for one lockstep access."""
        out = []
        ws = self.spec.warp_size
        for lane in range(ws):
            tid = warp * ws + lane
            if tid >= len(step.accesses):
                continue
            lane_accesses = step.accesses[tid]
            if access_index < len(lane_accesses):
                base, regs = lane_accesses[access_index]
                out.append((lane, base, regs))
        return out

    def _run_shared_store(
        self,
        step: SharedStore,
        src: RegisterFile,
        memory: SharedMemory,
        trace: Trace,
    ) -> None:
        ws = self.spec.warp_size
        max_accesses = max(
            (len(a) for a in step.accesses), default=0
        )
        total_wavefronts = 0
        vector_bits = 0
        for k in range(max_accesses):
            worst = 0
            for w in range(self.num_warps):
                requests = self._warp_requests(step, w, k)
                if not requests:
                    continue
                for lane, base, regs in requests:
                    for j, reg in enumerate(regs):
                        memory.write(base + j, src.read(w, lane, reg))
                worst = max(
                    worst,
                    memory.wavefronts(
                        [(base, len(regs)) for _, base, regs in requests],
                        is_store=True,
                    ),
                )
                vector_bits = max(
                    vector_bits,
                    max(len(regs) for _, _, regs in requests)
                    * step.elem_bytes
                    * 8,
                )
            total_wavefronts += worst
        if max_accesses:
            if step.use_stmatrix:
                self._emit_matrix(
                    step, trace, InstructionKind.STMATRIX
                )
            else:
                trace.emit(
                    InstructionKind.SHARED_STORE,
                    vector_bits=vector_bits,
                    count=max_accesses,
                    wavefronts=max(1, total_wavefronts // max_accesses),
                )

    def _run_shared_load(
        self,
        step: SharedLoad,
        dst: RegisterFile,
        memory: SharedMemory,
        trace: Trace,
    ) -> None:
        ws = self.spec.warp_size
        max_accesses = max(
            (len(a) for a in step.accesses), default=0
        )
        total_wavefronts = 0
        vector_bits = 0
        for k in range(max_accesses):
            worst = 0
            for w in range(self.num_warps):
                requests = self._warp_requests(step, w, k)
                if not requests:
                    continue
                for lane, base, regs in requests:
                    for j, reg in enumerate(regs):
                        dst.write(w, lane, reg, memory.read(base + j))
                worst = max(
                    worst,
                    memory.wavefronts(
                        [(base, len(regs)) for _, base, regs in requests],
                        is_store=False,
                    ),
                )
                vector_bits = max(
                    vector_bits,
                    max(len(regs) for _, _, regs in requests)
                    * step.elem_bytes
                    * 8,
                )
            total_wavefronts += worst
        if max_accesses:
            if step.use_ldmatrix:
                self._emit_matrix(step, trace, InstructionKind.LDMATRIX)
            else:
                trace.emit(
                    InstructionKind.SHARED_LOAD,
                    vector_bits=vector_bits,
                    count=max_accesses,
                    wavefronts=max(1, total_wavefronts // max_accesses),
                )

    def _emit_matrix(self, step, trace: Trace, kind: InstructionKind) -> None:
        """Instruction accounting for ldmatrix/stmatrix.

        One ``.x4`` instruction moves 16 bytes per lane, conflict-free
        when the staging layout keeps rows in distinct banks (which the
        optimal swizzle guarantees).
        """
        bytes_per_lane = 0
        for lane_accesses in step.accesses:
            total = sum(len(regs) for _, regs in lane_accesses)
            bytes_per_lane = max(bytes_per_lane, total * step.elem_bytes)
        insts = max(1, (bytes_per_lane + 15) // 16)
        trace.emit(kind, vector_bits=128, count=insts, wavefronts=1)

    # ------------------------------------------------------------------
    # Gather
    # ------------------------------------------------------------------
    def run_gather_shuffle(
        self,
        layout: LinearLayout,
        axis: int,
        src: RegisterFile,
        index: RegisterFile,
    ) -> Tuple[RegisterFile, Trace]:
        """Warp-shuffle gather (Section 5.5).

        ``index`` holds, per slot, the position along ``axis`` to read
        from; the data-dependent source lane/register is resolved here
        exactly as the emitted shuffle rounds would.
        """
        plan = plan_gather(layout, axis)
        view = DistributedView(layout)
        trace = Trace(self.spec)
        out = RegisterFile(src.num_warps, src.warp_size)
        regs = layout.in_dim_size(REGISTER)
        lanes = layout.in_dim_size(LANE)
        warps = layout.in_dim_size(WARP)
        names = list(layout.out_dims)
        axis_name = names[axis]
        for w in range(warps):
            for l in range(lanes):
                for r in range(regs):
                    pos = index.read(w, l, r)
                    here = view.flat_of({REGISTER: r, LANE: l, WARP: w})
                    coords = layout.unflatten_out(here)
                    coords[axis_name] = pos
                    src_flat = _flatten(coords, layout)
                    owner = view.owner_of(src_flat)
                    value = src.read(
                        w, owner.get(LANE, 0), owner.get(REGISTER, 0)
                    )
                    out.write(w, l, r, value)
        trace.emit(InstructionKind.SHUFFLE, count=plan.total_shuffles)
        return out, trace

    def run_gather_shared(
        self,
        layout: LinearLayout,
        axis: int,
        src: RegisterFile,
        index: RegisterFile,
    ) -> Tuple[RegisterFile, Trace]:
        """Legacy gather: stage the source tensor through shared memory
        and load each gathered element with a scalar read."""
        view = DistributedView(layout)
        trace = Trace(self.spec)
        elem_bytes = 4
        memory = SharedMemory(self.spec, elem_bytes)
        regs = layout.in_dim_size(REGISTER)
        lanes = layout.in_dim_size(LANE)
        warps = layout.in_dim_size(WARP)
        names = list(layout.out_dims)
        axis_name = names[axis]
        # Store every element at its flattened position.
        for w in range(warps):
            for l in range(lanes):
                for r in range(regs):
                    p = view.flat_of({REGISTER: r, LANE: l, WARP: w})
                    memory.write(p, src.read(w, l, r))
        trace.emit(
            InstructionKind.SHARED_STORE,
            vector_bits=32,
            count=regs,
            wavefronts=1,
        )
        trace.emit(InstructionKind.BARRIER)
        out = RegisterFile(src.num_warps, src.warp_size)
        # Scalar gathered loads, bank behaviour measured per warp.
        total_wavefronts = 0
        for r in range(regs):
            worst = 1
            for w in range(warps):
                requests = []
                for l in range(lanes):
                    pos = index.read(w, l, r)
                    here = view.flat_of({REGISTER: r, LANE: l, WARP: w})
                    coords = layout.unflatten_out(here)
                    coords[axis_name] = pos
                    src_flat = _flatten(coords, layout)
                    out.write(w, l, r, memory.read(src_flat))
                    requests.append((src_flat, 1))
                worst = max(worst, memory.wavefronts(requests, False))
            total_wavefronts += worst
        trace.emit(
            InstructionKind.SHARED_LOAD,
            vector_bits=32,
            count=regs,
            wavefronts=max(1, total_wavefronts // max(1, regs)),
            dependent=True,
        )
        return out, trace


def _flatten(coords: Dict[str, int], layout: LinearLayout) -> int:
    """Row-major flatten of per-dim coords (last dim fastest)."""
    flat = 0
    for name in layout.out_dims:
        bits = layout.out_dim_size_log2(name)
        flat = (flat << bits) | coords[name]
    return flat
