"""The simulated machine: a generic warp-program interpreter.

Every plan executes by lowering to the unified instruction IR
(:mod:`repro.program`) and running the stream through one dispatch
loop — there are no per-step-class execution methods left here.
Execution is still real data movement: values travel through register
files, shuffle networks and banked shared memory, so a plan that
routes a single element wrong fails the correctness checks in tests,
and every instruction emits records into a :class:`Trace` for the
cost model.

Two interpreter backends implement the loop: a NumPy-vectorized one
(default — whole-warp gather/scatter per instruction) and a scalar
per-lane oracle used for differential testing.  Select with the
``backend`` argument or the ``REPRO_SIM`` environment variable; both
produce bit-identical register files and traces.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro import cache as _cache
from repro.codegen.plan import ConversionPlan
from repro.core.layout import LinearLayout
from repro.gpusim.registers import RegisterFile
from repro.gpusim.trace import Trace
from repro.hardware.instructions import InstructionKind
from repro.hardware.spec import GpuSpec, RTX4090
from repro.obs import core as _obs
from repro.program.interp import make_interpreter
from repro.program.ir import R_IDX, R_IN, WarpProgram
from repro.program.lower import (
    lower_gather_shared,
    lower_gather_shuffle,
)


def _default_backend() -> str:
    return os.environ.get("REPRO_SIM", "vector")


class Machine:
    """Executes warp programs over simulated hardware."""

    def __init__(
        self,
        spec: GpuSpec = RTX4090,
        num_warps: int = 4,
        backend: Optional[str] = None,
    ):
        self.spec = spec
        self.num_warps = num_warps
        self.backend = backend or _default_backend()
        self._interp = make_interpreter(
            self.backend, spec, num_warps
        )

    # ------------------------------------------------------------------
    # The one execution entry point
    # ------------------------------------------------------------------
    def run_program(
        self,
        program: WarpProgram,
        inputs: Dict[str, RegisterFile],
    ) -> Tuple[Dict[str, RegisterFile], Trace]:
        """Interpret an instruction stream; returns (spaces, trace).

        When :mod:`repro.obs` is recording, the execution is wrapped
        in a ``sim:run_program`` span and the resulting trace's
        totals land in the ``sim.*`` metric families (instruction
        counts, cycles, bank-conflict wavefronts) labeled by platform
        and backend; the simulation itself is identical either way.
        """
        if not _obs.is_enabled():
            return self._interp.run(program, inputs)
        with _obs.span(
            "sim:run_program",
            backend=self.backend,
            platform=self.spec.name,
            instructions=len(program.instrs),
        ) as sp:
            files, trace = self._interp.run(program, inputs)
            self._publish_trace_metrics(trace, sp)
        return files, trace

    _SHARED_KINDS = (
        InstructionKind.SHARED_LOAD,
        InstructionKind.SHARED_STORE,
        InstructionKind.LDMATRIX,
        InstructionKind.STMATRIX,
    )

    def _publish_trace_metrics(self, trace: Trace, sp) -> None:
        """Turn one execution's trace totals into obs metrics."""
        issued = sum(i.count for i in trace.instructions)
        cycles = trace.cycles()
        conflicts = sum(
            (i.wavefronts - 1) * i.count
            for i in trace.instructions
            if i.kind in self._SHARED_KINDS and i.wavefronts > 1
        )
        labels = {"platform": self.spec.name, "backend": self.backend}
        _obs.count("sim.programs", 1, **labels)
        _obs.count("sim.instructions", issued, **labels)
        _obs.count("sim.cycles", cycles, **labels)
        _obs.count("sim.bank_conflicts", conflicts, **labels)
        sp.set_attrs(
            {"issued": issued, "cycles": cycles,
             "bank_conflicts": conflicts}
        )

    # ------------------------------------------------------------------
    # Plan-level conveniences (lower, then interpret)
    # ------------------------------------------------------------------
    def run_conversion(
        self, plan: ConversionPlan, src: RegisterFile
    ) -> Tuple[RegisterFile, Trace]:
        """Execute a conversion plan; returns (dst registers, trace)."""
        program = plan.program()
        if not program.instrs:
            return src.copy(), Trace(self.spec)
        files, trace = self.run_program(program, {R_IN: src})
        result = files[program.result]
        if result is src:
            result = src.copy()
        return result, trace

    def run_gather_shuffle(
        self,
        layout: LinearLayout,
        axis: int,
        src: RegisterFile,
        index: RegisterFile,
    ) -> Tuple[RegisterFile, Trace]:
        """Warp-shuffle gather (Section 5.5).

        ``index`` holds, per slot, the position along ``axis`` to read
        from; the data-dependent source lane/register is resolved by
        the interpreter exactly as the emitted shuffle rounds would.
        """
        program = _gather_shuffle_program(layout, axis)
        files, trace = self.run_program(
            program, {R_IN: src, R_IDX: index}
        )
        return files[program.result], trace

    def run_gather_shared(
        self,
        layout: LinearLayout,
        axis: int,
        src: RegisterFile,
        index: RegisterFile,
    ) -> Tuple[RegisterFile, Trace]:
        """Legacy gather: stage the source tensor through shared memory
        and load each gathered element with a scalar read."""
        program = _gather_shared_program(layout, axis)
        files, trace = self.run_program(
            program, {R_IN: src, R_IDX: index}
        )
        return files[program.result], trace


def _gather_shuffle_program(
    layout: LinearLayout, axis: int
) -> WarpProgram:
    """Memoized lowering so interpreter scratch persists across runs."""
    return _cache.cached(
        _cache.plans,
        ("program", "gather_shuffle", layout.canonical_key(), axis),
        lambda: lower_gather_shuffle(layout, axis),
    )


def _gather_shared_program(
    layout: LinearLayout, axis: int
) -> WarpProgram:
    """Memoized lowering so interpreter scratch persists across runs."""
    return _cache.cached(
        _cache.plans,
        ("program", "gather_shared", layout.canonical_key(), axis),
        lambda: lower_gather_shared(layout, axis),
    )
