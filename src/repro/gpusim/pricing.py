"""Fast plan pricing: the trace a plan produces, without moving data.

The benchmark harness compiles hundreds of kernels; executing every
conversion with full data movement would dominate runtime without
changing the counts.  Pricing walks the plan steps, measures bank
behaviour on warp 0's actual addresses (all warps are congruent for
the plans the planner emits), and emits the same instruction records
the machine would.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.codegen.plan import (
    Barrier,
    ConversionPlan,
    RegisterPermute,
    SharedLoad,
    SharedStore,
    ShuffleRound,
)
from repro.gpusim.memory import SharedMemory
from repro.gpusim.trace import Trace
from repro.hardware.instructions import InstructionKind
from repro.hardware.spec import GpuSpec


def _price_shared(step, trace: Trace, spec: GpuSpec, kind) -> None:
    memory = SharedMemory(spec, step.elem_bytes)
    ws = spec.warp_size
    lane_lists = step.accesses[:ws]  # warp 0
    max_accesses = max((len(a) for a in step.accesses), default=0)
    if max_accesses == 0:
        return
    if kind == InstructionKind.SHARED_STORE and step.use_stmatrix:
        _price_matrix(step, trace, InstructionKind.STMATRIX)
        return
    if kind == InstructionKind.SHARED_LOAD and step.use_ldmatrix:
        _price_matrix(step, trace, InstructionKind.LDMATRIX)
        return
    total_wavefronts = 0
    vector_bits = 32
    for k in range(max_accesses):
        requests: List[Tuple[int, int]] = []
        for lane_accesses in lane_lists:
            if k < len(lane_accesses):
                base, regs = lane_accesses[k]
                requests.append((base, len(regs)))
                vector_bits = max(
                    vector_bits, len(regs) * step.elem_bytes * 8
                )
        if requests:
            total_wavefronts += memory.wavefronts(
                requests, kind == InstructionKind.SHARED_STORE
            )
    trace.emit(
        kind,
        vector_bits=vector_bits,
        count=max_accesses,
        wavefronts=max(1, total_wavefronts // max_accesses),
    )


def _price_matrix(step, trace: Trace, kind: InstructionKind) -> None:
    bytes_per_lane = 0
    for lane_accesses in step.accesses:
        total = sum(len(regs) for _, regs in lane_accesses)
        bytes_per_lane = max(bytes_per_lane, total * step.elem_bytes)
    insts = max(1, (bytes_per_lane + 15) // 16)
    trace.emit(kind, vector_bits=128, count=insts, wavefronts=1)


def price_plan(plan: ConversionPlan, spec: GpuSpec) -> Trace:
    """The instruction trace of a plan, computed without data."""
    trace = Trace(spec)
    for step in plan.steps:
        if isinstance(step, RegisterPermute):
            continue  # register renaming is free
        if isinstance(step, ShuffleRound):
            trace.emit(InstructionKind.SHUFFLE, count=step.insts_per_round)
        elif isinstance(step, SharedStore):
            _price_shared(step, trace, spec, InstructionKind.SHARED_STORE)
        elif isinstance(step, SharedLoad):
            _price_shared(step, trace, spec, InstructionKind.SHARED_LOAD)
        elif isinstance(step, Barrier):
            trace.emit(InstructionKind.BARRIER)
        else:  # pragma: no cover
            raise TypeError(f"unknown step {step!r}")
    return trace
