"""Execution traces: the instruction stream a plan produced."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.hardware.cost import CostModel
from repro.hardware.instructions import Instruction, InstructionKind
from repro.hardware.spec import GpuSpec


@dataclass
class Trace:
    """Instruction stream plus derived statistics."""

    spec: GpuSpec
    instructions: List[Instruction] = field(default_factory=list)

    def emit(
        self,
        kind: InstructionKind,
        vector_bits: int = 32,
        count: int = 1,
        wavefronts: int = 1,
        note: str = "",
        dependent: bool = False,
    ) -> None:
        """Append one instruction record (no-op for count <= 0)."""
        if count <= 0:
            return
        self.instructions.append(
            Instruction(
                kind=kind,
                vector_bits=vector_bits,
                count=count,
                wavefronts=wavefronts,
                note=note,
                dependent=dependent,
            )
        )

    def cycles(self) -> float:
        """Total cycles under the platform's cost model."""
        return CostModel(self.spec).total_cycles(self.instructions)

    def histogram(self) -> Dict[str, int]:
        """Instruction counts by mnemonic."""
        return CostModel(self.spec).histogram(self.instructions)

    def count(self, kind: InstructionKind) -> int:
        """Total count of one instruction kind."""
        return sum(
            i.count for i in self.instructions if i.kind == kind
        )

    def shared_instruction_count(self) -> int:
        """Loads + stores + ld/stmatrix — the Table 4 / 6 metric."""
        kinds = (
            InstructionKind.SHARED_LOAD,
            InstructionKind.SHARED_STORE,
            InstructionKind.LDMATRIX,
            InstructionKind.STMATRIX,
        )
        return sum(self.count(k) for k in kinds)

    def merge(self, other: "Trace") -> "Trace":
        """A new trace with both instruction streams concatenated."""
        out = Trace(self.spec, list(self.instructions))
        out.instructions.extend(other.instructions)
        return out
