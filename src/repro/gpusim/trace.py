"""Execution traces: the instruction stream a plan produced."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.hardware.cost import CostModel, cost_model
from repro.hardware.instructions import Instruction, InstructionKind
from repro.hardware.spec import GpuSpec, get_platform


@dataclass
class Trace:
    """Instruction stream plus derived statistics."""

    spec: GpuSpec
    instructions: List[Instruction] = field(default_factory=list)

    def emit(
        self,
        kind: InstructionKind,
        vector_bits: int = 32,
        count: int = 1,
        wavefronts: int = 1,
        note: str = "",
        dependent: bool = False,
    ) -> None:
        """Append one instruction record (no-op for count <= 0)."""
        if count <= 0:
            return
        self.instructions.append(
            Instruction(
                kind=kind,
                vector_bits=vector_bits,
                count=count,
                wavefronts=wavefronts,
                note=note,
                dependent=dependent,
            )
        )

    def cost_model(self) -> CostModel:
        """The platform's cost model — one shared instance per spec.

        Memoized through :func:`repro.hardware.cost.cost_model`, so
        repeated ``cycles()``/``histogram()`` calls (every
        ``CompiledKernel.summary()``, every benchmark row) reuse one
        model instead of constructing a fresh one per call.
        """
        return cost_model(self.spec)

    def cycles(self) -> float:
        """Total cycles under the platform's cost model."""
        return self.cost_model().total_cycles(self.instructions)

    def histogram(self) -> Dict[str, int]:
        """Instruction counts by mnemonic."""
        return self.cost_model().histogram(self.instructions)

    def count(self, kind: InstructionKind) -> int:
        """Total count of one instruction kind."""
        return sum(
            i.count for i in self.instructions if i.kind == kind
        )

    def shared_instruction_count(self) -> int:
        """Loads + stores + ld/stmatrix — the Table 4 / 6 metric."""
        kinds = (
            InstructionKind.SHARED_LOAD,
            InstructionKind.SHARED_STORE,
            InstructionKind.LDMATRIX,
            InstructionKind.STMATRIX,
        )
        return sum(self.count(k) for k in kinds)

    def merge(self, other: "Trace") -> "Trace":
        """A new trace with both instruction streams concatenated."""
        out = Trace(self.spec, list(self.instructions))
        out.instructions.extend(other.instructions)
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe snapshot (platform by name + every record)."""
        return {
            "spec": self.spec.name,
            "instructions": [
                {
                    "kind": i.kind.value,
                    "vector_bits": i.vector_bits,
                    "count": i.count,
                    "wavefronts": i.wavefronts,
                    "note": i.note,
                    "dependent": i.dependent,
                }
                for i in self.instructions
            ],
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "Trace":
        """Rebuild a trace from :meth:`to_dict` output."""
        return Trace(
            get_platform(data["spec"]),
            [
                Instruction(
                    kind=InstructionKind(rec["kind"]),
                    vector_bits=rec.get("vector_bits", 32),
                    count=rec.get("count", 1),
                    wavefronts=rec.get("wavefronts", 1),
                    note=rec.get("note", ""),
                    dependent=rec.get("dependent", False),
                )
                for rec in data["instructions"]
            ],
        )

    def to_json(self) -> str:
        """The trace as a JSON string."""
        return json.dumps(self.to_dict())

    @staticmethod
    def from_json(text: str) -> "Trace":
        """Rebuild a trace from :meth:`to_json` output."""
        return Trace.from_dict(json.loads(text))
