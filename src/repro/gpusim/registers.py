"""Per-thread register files and distributed-tensor materialization."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.dims import LANE, REGISTER, WARP
from repro.core.layout import LinearLayout
from repro.codegen.views import DistributedView

Slot = Tuple[int, int, int]  # (warp, lane, reg)


class RegisterFile:
    """Values held by every (warp, lane, register) slot of a CTA."""

    def __init__(self, num_warps: int, warp_size: int):
        self.num_warps = num_warps
        self.warp_size = warp_size
        self._values: Dict[Slot, object] = {}

    def write(self, warp: int, lane: int, reg: int, value: object) -> None:
        """Set one register slot."""
        self._values[(warp, lane, reg)] = value

    def read(self, warp: int, lane: int, reg: int) -> object:
        """Read one register slot; raises KeyError if never written."""
        try:
            return self._values[(warp, lane, reg)]
        except KeyError:
            raise KeyError(
                f"read of unwritten register (w={warp}, l={lane}, r={reg})"
            ) from None

    def has(self, warp: int, lane: int, reg: int) -> bool:
        """True iff the slot has been written."""
        return (warp, lane, reg) in self._values

    def copy(self) -> "RegisterFile":
        """An independent copy of all slots."""
        out = RegisterFile(self.num_warps, self.warp_size)
        out._values = dict(self._values)
        return out

    def as_dict(self) -> Dict[Slot, object]:
        """All written slots as a plain dict."""
        return dict(self._values)

    def __len__(self) -> int:
        return len(self._values)


def distributed_data(
    layout: LinearLayout,
    num_warps: int,
    warp_size: int,
    value_of: Optional[Callable[[int], object]] = None,
) -> RegisterFile:
    """Materialize a register file where every slot holds the value of
    the logical element its layout assigns to it.

    ``value_of`` maps the flattened logical position to a value
    (default: the position itself), so conversion correctness checks
    reduce to comparing integers.
    """
    view = DistributedView(layout)
    rf = RegisterFile(num_warps, warp_size)
    regs = layout.in_dim_size(REGISTER)
    lanes = layout.in_dim_size(LANE)
    warps = layout.in_dim_size(WARP)
    if value_of is None:
        value_of = lambda p: p  # noqa: E731
    for w in range(warps):
        for l in range(lanes):
            for r in range(regs):
                p = view.flat_of({REGISTER: r, LANE: l, WARP: w})
                rf.write(w, l, r, value_of(p))
    return rf


def expected_data(
    layout: LinearLayout,
    num_warps: int,
    warp_size: int,
    value_of: Optional[Callable[[int], object]] = None,
) -> RegisterFile:
    """Alias of :func:`distributed_data` for readability in checks."""
    return distributed_data(layout, num_warps, warp_size, value_of)


def assert_matches_layout(
    rf: RegisterFile,
    layout: LinearLayout,
    value_of: Optional[Callable[[int], object]] = None,
) -> None:
    """Raise AssertionError when any slot disagrees with the layout."""
    view = DistributedView(layout)
    regs = layout.in_dim_size(REGISTER)
    lanes = layout.in_dim_size(LANE)
    warps = layout.in_dim_size(WARP)
    if value_of is None:
        value_of = lambda p: p  # noqa: E731
    for w in range(warps):
        for l in range(lanes):
            for r in range(regs):
                p = view.flat_of({REGISTER: r, LANE: l, WARP: w})
                got = rf.read(w, l, r)
                want = value_of(p)
                if got != want:
                    raise AssertionError(
                        f"slot (w={w}, l={l}, r={r}) holds {got!r}, "
                        f"expected element {want!r} (flat {p})"
                    )
