"""Per-thread register files and distributed-tensor materialization.

A :class:`RegisterFile` is backed by a dense ``(warps, lanes, regs)``
NumPy object array with ``None`` marking unwritten slots, so the
vectorized program interpreter can borrow or wrap the storage without
a per-slot conversion loop.  The dict-style API (``read``/``write``/
``has``/``as_dict``) is unchanged; storing ``None`` as a value is
indistinguishable from leaving the slot unwritten.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.dims import LANE, REGISTER, WARP
from repro.core.layout import LinearLayout
from repro.codegen.views import DistributedView

Slot = Tuple[int, int, int]  # (warp, lane, reg)


class RegisterFile:
    """Values held by every (warp, lane, register) slot of a CTA."""

    def __init__(self, num_warps: int, warp_size: int):
        self.num_warps = num_warps
        self.warp_size = warp_size
        self._arr = np.full((num_warps, warp_size, 0), None, dtype=object)

    def _grow(self, warp: int, lane: int, reg: int) -> None:
        nw, ws, nr = self._arr.shape
        new = np.full(
            (
                max(nw, warp + 1),
                max(ws, lane + 1),
                max(nr * 2, reg + 1),
            ),
            None,
            dtype=object,
        )
        new[:nw, :ws, :nr] = self._arr
        self._arr = new

    def write(self, warp: int, lane: int, reg: int, value: object) -> None:
        """Set one register slot."""
        nw, ws, nr = self._arr.shape
        if warp >= nw or lane >= ws or reg >= nr:
            self._grow(warp, lane, reg)
        self._arr[warp, lane, reg] = value

    def read(self, warp: int, lane: int, reg: int) -> object:
        """Read one register slot; raises KeyError if never written."""
        nw, ws, nr = self._arr.shape
        if warp < nw and lane < ws and reg < nr:
            value = self._arr[warp, lane, reg]
            if value is not None:
                return value
        raise KeyError(
            f"read of unwritten register (w={warp}, l={lane}, r={reg})"
        )

    def has(self, warp: int, lane: int, reg: int) -> bool:
        """True iff the slot has been written."""
        nw, ws, nr = self._arr.shape
        return (
            warp < nw
            and lane < ws
            and reg < nr
            and self._arr[warp, lane, reg] is not None
        )

    def copy(self) -> "RegisterFile":
        """An independent copy of all slots."""
        out = RegisterFile(self.num_warps, self.warp_size)
        out._arr = self._arr.copy()
        return out

    def as_dict(self) -> Dict[Slot, object]:
        """All written slots as a plain dict."""
        written = np.argwhere(self._arr != None)  # noqa: E711 — elementwise
        return {
            (int(w), int(l), int(r)): self._arr[w, l, r]
            for w, l, r in written
        }

    def __len__(self) -> int:
        return int(np.count_nonzero(self._arr != None))  # noqa: E711

    # -- dense-array interop (the vectorized interpreter's fast path) --
    @property
    def num_regs(self) -> int:
        """Capacity of the register dimension (highest written + 1)."""
        return self._arr.shape[2]

    def dense(
        self, num_warps: int, warp_size: int, num_regs: int
    ) -> np.ndarray:
        """An independent object array of exactly the given shape."""
        out = np.full((num_warps, warp_size, num_regs), None, dtype=object)
        nw, ws, nr = self._arr.shape
        w = min(nw, num_warps)
        l = min(ws, warp_size)
        r = min(nr, num_regs)
        out[:w, :l, :r] = self._arr[:w, :l, :r]
        return out

    @staticmethod
    def from_dense(
        arr: np.ndarray, num_warps: int, warp_size: int
    ) -> "RegisterFile":
        """Wrap an object array (ownership transfers; no copy)."""
        rf = RegisterFile.__new__(RegisterFile)
        rf.num_warps = num_warps
        rf.warp_size = warp_size
        rf._arr = arr
        return rf


def distributed_data(
    layout: LinearLayout,
    num_warps: int,
    warp_size: int,
    value_of: Optional[Callable[[int], object]] = None,
) -> RegisterFile:
    """Materialize a register file where every slot holds the value of
    the logical element its layout assigns to it.

    ``value_of`` maps the flattened logical position to a value
    (default: the position itself), so conversion correctness checks
    reduce to comparing integers.
    """
    view = DistributedView(layout)
    rf = RegisterFile(num_warps, warp_size)
    regs = layout.in_dim_size(REGISTER)
    lanes = layout.in_dim_size(LANE)
    warps = layout.in_dim_size(WARP)
    if value_of is None:
        value_of = lambda p: p  # noqa: E731
    for w in range(warps):
        for l in range(lanes):
            for r in range(regs):
                p = view.flat_of({REGISTER: r, LANE: l, WARP: w})
                rf.write(w, l, r, value_of(p))
    return rf


def expected_data(
    layout: LinearLayout,
    num_warps: int,
    warp_size: int,
    value_of: Optional[Callable[[int], object]] = None,
) -> RegisterFile:
    """Alias of :func:`distributed_data` for readability in checks."""
    return distributed_data(layout, num_warps, warp_size, value_of)


def assert_matches_layout(
    rf: RegisterFile,
    layout: LinearLayout,
    value_of: Optional[Callable[[int], object]] = None,
) -> None:
    """Raise AssertionError when any slot disagrees with the layout."""
    view = DistributedView(layout)
    regs = layout.in_dim_size(REGISTER)
    lanes = layout.in_dim_size(LANE)
    warps = layout.in_dim_size(WARP)
    if value_of is None:
        value_of = lambda p: p  # noqa: E731
    for w in range(warps):
        for l in range(lanes):
            for r in range(regs):
                p = view.flat_of({REGISTER: r, LANE: l, WARP: w})
                got = rf.read(w, l, r)
                want = value_of(p)
                if got != want:
                    raise AssertionError(
                        f"slot (w={w}, l={l}, r={r}) holds {got!r}, "
                        f"expected element {want!r} (flat {p})"
                    )
