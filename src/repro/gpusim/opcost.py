"""The unified op-level cost model: whole IR ops -> priced instructions.

:class:`repro.hardware.cost.CostModel` prices individual instruction
records; this module is the layer above it — the single authority that
decides *which* instructions an IR operation turns into (loads, dots,
reductions, scans, gathers, staged conversions) and what they cost.
Both the lowering pass (:mod:`repro.engine.passes.lower`) and the
autotuner (:mod:`repro.engine.autotune`) consume this interface, so
there is exactly one place where op pricing lives.

Mode differences (legacy vs linear) are declarative: a frozen
:class:`CostPolicy` captures every knob the two engine modes disagree
on — conversion planning options, descriptor-based vectorization, the
shuffle-gather path, broadcast deduplication — instead of ``if mode``
branches scattered through the pricing code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro import cache as _cache
from repro.codegen.conversion import plan_conversion
from repro.codegen.gather import can_gather_with_shuffles, plan_gather
from repro.codegen.plan import ConversionPlan
from repro.codegen.vectorize import legacy_vector_width_bits, vector_width_bits
from repro.core.dims import LANE, REGISTER, WARP
from repro.core.layout import LinearLayout
from repro.gpusim.memory import SharedMemory
from repro.gpusim.trace import Trace
from repro.hardware.cost import CostModel
from repro.hardware.instructions import Instruction, InstructionKind
from repro.hardware.spec import GpuSpec
from repro.program.ir import Opcode, WarpProgram
from repro.layouts.blocked import BlockedLayout
from repro.layouts.mfma import AmdMfmaLayout
from repro.layouts.wgmma import WgmmaLayout
from repro.mxfp.types import DType


@dataclass(frozen=True)
class CostPolicy:
    """Every pricing decision the two engine modes make differently.

    ``mode`` tags cache keys (and names the policy); the remaining
    fields are the actual decisions, so pricing code never asks "am I
    legacy?" — it asks for the decision it needs.
    """

    mode: str
    #: Conversion planner options (see :func:`plan_conversion`).
    allow_shuffle: bool
    swizzle_mode: str
    dedupe_broadcast: bool
    #: Use the descriptor-based legacy vector width for blocked layouts.
    descriptor_vectorize: bool
    #: Lower gathers through warp shuffles when the index pattern allows.
    gather_via_shuffles: bool


LINEAR_POLICY = CostPolicy(
    mode="linear",
    allow_shuffle=True,
    swizzle_mode="optimal",
    dedupe_broadcast=True,
    descriptor_vectorize=False,
    gather_via_shuffles=True,
)

LEGACY_POLICY = CostPolicy(
    mode="legacy",
    allow_shuffle=False,
    swizzle_mode="padded",
    dedupe_broadcast=False,
    descriptor_vectorize=True,
    gather_via_shuffles=False,
)


def policy_for_mode(mode: str) -> CostPolicy:
    """The pricing policy of an engine mode."""
    if mode == "linear":
        return LINEAR_POLICY
    if mode == "legacy":
        return LEGACY_POLICY
    raise ValueError(f"mode must be linear or legacy: {mode!r}")


# ----------------------------------------------------------------------
# Static pricing of warp programs (the fast no-data path)
# ----------------------------------------------------------------------
def _price_shared_instr(instr, trace: Trace, spec: GpuSpec, kind) -> None:
    """Price one STS/LDS on warp 0's addresses (all warps congruent)."""
    memory = SharedMemory(spec, instr.elem_bytes)
    ws = spec.warp_size
    lane_lists = instr.accesses[:ws]  # warp 0
    max_accesses = max((len(a) for a in instr.accesses), default=0)
    if max_accesses == 0:
        return
    if kind == InstructionKind.SHARED_STORE and instr.use_stmatrix:
        _price_matrix(instr, trace, InstructionKind.STMATRIX)
        return
    if kind == InstructionKind.SHARED_LOAD and instr.use_ldmatrix:
        _price_matrix(instr, trace, InstructionKind.LDMATRIX)
        return
    total_wavefronts = 0
    vector_bits = 32
    for k in range(max_accesses):
        requests = []
        for lane_accesses in lane_lists:
            if k < len(lane_accesses):
                base, regs = lane_accesses[k]
                requests.append((base, len(regs)))
                vector_bits = max(
                    vector_bits, len(regs) * instr.elem_bytes * 8
                )
        if requests:
            total_wavefronts += memory.wavefronts(
                requests, kind == InstructionKind.SHARED_STORE
            )
    trace.emit(
        kind,
        vector_bits=vector_bits,
        count=max_accesses,
        wavefronts=max(1, total_wavefronts // max_accesses),
    )


def _price_matrix(instr, trace: Trace, kind: InstructionKind) -> None:
    bytes_per_lane = 0
    for lane_accesses in instr.accesses:
        total = sum(len(regs) for _, regs in lane_accesses)
        bytes_per_lane = max(bytes_per_lane, total * instr.elem_bytes)
    insts = max(1, (bytes_per_lane + 15) // 16)
    trace.emit(kind, vector_bits=128, count=insts, wavefronts=1)


def price_program(program: WarpProgram, spec: GpuSpec) -> Trace:
    """The instruction trace of a warp program, computed without data.

    Register moves are free; shared accesses are priced on their
    static addresses.  Gather loads have data-dependent addresses, so
    their wavefronts here use the pipelined-kernel assumption the op
    pricing makes (see :meth:`OpCostModel.price_gather`); the
    interpreter measures the real addresses at execution time.
    """
    trace = Trace(spec)
    for instr in program.instrs:
        op = instr.opcode
        if op == Opcode.MOVR:
            continue  # register renaming is free
        if op == Opcode.SHFL:
            trace.emit(InstructionKind.SHUFFLE, count=instr.insts)
        elif op == Opcode.STS:
            _price_shared_instr(
                instr, trace, spec, InstructionKind.SHARED_STORE
            )
        elif op == Opcode.LDS:
            _price_shared_instr(
                instr, trace, spec, InstructionKind.SHARED_LOAD
            )
        elif op == Opcode.BAR:
            trace.emit(InstructionKind.BARRIER)
        elif op == Opcode.GATHER_SHFL:
            trace.emit(
                InstructionKind.SHUFFLE, count=instr.shuffle_count
            )
        elif op == Opcode.GATHER_STS:
            trace.emit(
                InstructionKind.SHARED_STORE,
                vector_bits=32,
                count=instr.layout.in_dim_size(REGISTER),
            )
        elif op == Opcode.GATHER_LDS:
            trace.emit(
                InstructionKind.SHARED_LOAD,
                vector_bits=32,
                count=instr.layout.in_dim_size(REGISTER),
                wavefronts=2,
            )
        else:  # pragma: no cover
            raise TypeError(f"unknown instruction {instr!r}")
    return trace


def price_plan(plan: ConversionPlan, spec: GpuSpec) -> Trace:
    """The instruction trace of a conversion plan, without data.

    Lowers the plan to its warp program (cached on the plan) and
    prices the stream — the one pricing path, shared with execution.
    """
    return price_program(plan.program(), spec)


class OpCostModel:
    """Prices whole IR operations on one platform under one policy.

    Emission methods (``price_*``) append instruction records to a
    :class:`Trace`; query methods (``global_cycles``,
    ``conversion_cycles``) return cycle counts for what-if comparisons
    — the rematerialization pass uses those to decide whether a
    rewrite pays off, guaranteeing it prices alternatives with exactly
    the model the lowering pass will charge.
    """

    def __init__(self, spec: GpuSpec, policy: CostPolicy):
        self.spec = spec
        self.policy = policy
        self.instruction_model = CostModel(spec)

    @property
    def mode(self) -> str:
        """The engine mode this model prices for."""
        return self.policy.mode

    # ------------------------------------------------------------------
    # Trace-level pricing (shared with the autotuner)
    # ------------------------------------------------------------------
    def trace_cycles(self, trace: Trace) -> float:
        """Total cycles of an instruction trace."""
        return self.instruction_model.total_cycles(trace.instructions)

    def trace_breakdown(self, trace: Trace) -> Dict[str, float]:
        """Cycles attributed to each instruction kind."""
        return self.instruction_model.breakdown(trace.instructions)

    # ------------------------------------------------------------------
    # Global memory
    # ------------------------------------------------------------------
    def vector_bits(self, layout, desc, shape, bits: int) -> int:
        """Vector access width of a global load/store of ``layout``."""
        if self.policy.descriptor_vectorize and isinstance(desc, BlockedLayout):
            return legacy_vector_width_bits(desc, shape, bits, self.spec.max_vector_bits)
        return vector_width_bits(layout, bits, self.spec.max_vector_bits)

    def price_global(self, value, trace: Trace, kind: InstructionKind) -> None:
        """Emit the global load/store instructions of one value."""
        vec = self.vector_bits(value.layout, value.descriptor, value.shape, value.dtype.bits)
        regs = value.layout.in_dim_size(REGISTER)
        count = max(1, regs * value.dtype.bits // vec)
        trace.emit(kind, vector_bits=vec, count=count)

    def global_cycles(self, layout, desc, shape, dtype) -> float:
        """Cycles of a global access without emitting it (memoized)."""

        def compute() -> float:
            vec = self.vector_bits(layout, desc, shape, dtype.bits)
            regs = layout.in_dim_size(REGISTER)
            count = max(1, regs * dtype.bits // vec)
            inst = Instruction(InstructionKind.GLOBAL_LOAD, vector_bits=vec, count=count)
            return self.instruction_model.instruction_cycles(inst)

        return _cache.cached(
            _cache.engine,
            (
                "cost",
                "global_cycles",
                self.policy.mode,
                layout.canonical_key(),
                None if desc is None else repr(desc),
                tuple(shape),
                dtype.bits,
                self.spec,
            ),
            compute,
        )

    # ------------------------------------------------------------------
    # Layout conversions
    # ------------------------------------------------------------------
    def plan(self, src: LinearLayout, dst: LinearLayout, dtype: DType) -> ConversionPlan:
        """Lower one conversion under this policy's planner options."""
        return plan_conversion(
            src,
            dst,
            elem_bits=dtype.bits,
            spec=self.spec,
            allow_shuffle=self.policy.allow_shuffle,
            swizzle_mode=self.policy.swizzle_mode,
            dedupe_broadcast=self.policy.dedupe_broadcast,
        )

    def priced_conversion(
        self, src: LinearLayout, dst: LinearLayout, dtype: DType
    ) -> Tuple[ConversionPlan, Tuple[Instruction, ...], float]:
        """(plan, priced instructions, cycles) of one conversion.

        The warm-path workhorse: repeated compilations of the same
        graph hit this cache and skip planning *and* pricing.  The
        instruction tuple is extended into each compilation's trace;
        instructions are frozen, so sharing is safe.
        """

        def make() -> Tuple[ConversionPlan, Tuple[Instruction, ...], float]:
            plan = self.plan(src, dst, dtype)
            priced = price_program(plan.program(), self.spec)
            return plan, tuple(priced.instructions), priced.cycles()

        return _cache.cached(
            _cache.engine,
            (
                "cost",
                "priced_conversion",
                src.canonical_key(),
                dst.canonical_key(),
                dtype.bits,
                self.policy.mode,
                self.spec,
            ),
            make,
        )

    def conversion_cycles(self, src: LinearLayout, dst: LinearLayout, dtype: DType) -> float:
        """Cycles of converting ``src`` to ``dst`` (memoized)."""
        return self.priced_conversion(src, dst, dtype)[2]

    # ------------------------------------------------------------------
    # Compute & cross-lane ops
    # ------------------------------------------------------------------
    def price_elementwise(self, op, trace: Trace) -> None:
        """One ALU instruction per register of the output layout."""
        layout = op.output.layout
        trace.emit(InstructionKind.ALU, count=max(1, layout.in_dim_size(REGISTER)))

    def price_local_store(self, op, trace: Trace) -> None:
        """Staging a dot operand into shared memory (wgmma/mfma B)."""
        operand = op.inputs[0]
        elems = operand.layout.in_dim_size(REGISTER) if operand.layout else 1
        trace.emit(
            InstructionKind.SHARED_STORE,
            vector_bits=128,
            count=max(1, elems * operand.dtype.bits // 128),
        )

    def price_dot(self, op, trace: Trace) -> None:
        """MMA instructions per warp for the dot's tile shape."""
        parent = op.output.descriptor
        m, n = op.output.shape
        k = op.inputs[0].shape[1]
        if isinstance(parent, WgmmaLayout):
            tile = (64, parent.instr_n, 16)
            weight = max(1, int(parent.instr_n / 2 / 1.3))
        elif isinstance(parent, AmdMfmaLayout):
            tile = (32, 32, 8)
            weight = 3
        else:
            tile = (16, 8, 16)
            weight = 1
        per_warp = (
            max(1, m // (tile[0] * parent.warps_per_cta[0]))
            * max(1, n // (tile[1] * parent.warps_per_cta[1]))
            * max(1, k // tile[2])
        )
        trace.emit(InstructionKind.MMA, count=per_warp, wavefronts=weight)

    def price_reduce(self, op, trace: Trace) -> None:
        """In-register tree, butterfly shuffles, shared combine."""
        value = op.inputs[0]
        axis = op.attrs["axis"]
        layout = value.layout
        lane_bits = sum(1 for img in layout.bases.get(LANE, []) if img[axis] != 0)
        warp_bits = sum(1 for img in layout.bases.get(WARP, []) if img[axis] != 0)
        reg_bits = sum(1 for img in layout.bases.get(REGISTER, []) if img[axis] != 0)
        trace.emit(InstructionKind.ALU, count=max(1, 1 << reg_bits))
        trace.emit(InstructionKind.SHUFFLE, count=lane_bits)
        if warp_bits:
            # Cross-warp combine through shared memory.
            out_layout = op.output.layout
            from repro.codegen.broadcast import reduction_store_count

            stores = reduction_store_count(out_layout, self.policy.dedupe_broadcast)
            lanes = max(1, out_layout.in_dim_size(LANE))
            warps = max(1, out_layout.in_dim_size(WARP))
            per_thread = max(1, stores // (lanes * warps))
            trace.emit(InstructionKind.SHARED_STORE, vector_bits=32, count=per_thread)
            trace.emit(InstructionKind.BARRIER)
            trace.emit(
                InstructionKind.SHARED_LOAD,
                vector_bits=32,
                count=per_thread * (1 << warp_bits),
            )
            trace.emit(InstructionKind.ALU, count=1 << warp_bits)

    def price_scan(self, op, trace: Trace) -> None:
        """Hillis-Steele within the warp, shared combine across warps."""
        layout = op.inputs[0].layout
        axis = op.attrs["axis"]
        regs = layout.in_dim_size(REGISTER)
        lane_bits = sum(1 for img in layout.bases.get(LANE, []) if img[axis] != 0)
        warp_bits = sum(1 for img in layout.bases.get(WARP, []) if img[axis] != 0)
        trace.emit(InstructionKind.ALU, count=max(1, regs))
        trace.emit(InstructionKind.SHUFFLE, count=lane_bits * max(1, regs))
        if warp_bits:
            trace.emit(InstructionKind.SHARED_STORE, vector_bits=32, count=1)
            trace.emit(InstructionKind.BARRIER)
            trace.emit(
                InstructionKind.SHARED_LOAD,
                vector_bits=32,
                count=1 << warp_bits,
            )
            trace.emit(InstructionKind.ALU, count=max(1, regs))

    def price_gather(self, op, trace: Trace) -> None:
        """Shuffle-based gather when profitable, else a shared round trip."""
        src = op.inputs[0]
        axis = op.attrs["axis"]
        layout = src.layout
        regs = layout.in_dim_size(REGISTER)
        if self.policy.gather_via_shuffles and can_gather_with_shuffles(layout, axis):
            plan = plan_gather(layout, axis)
            shuffle_cycles = plan.total_shuffles * self.spec.shuffle_cycles
            shared_cycles = (
                regs * (self.spec.issue_cycles + 2)
                + self.spec.barrier_cycles
                + regs * (self.spec.issue_cycles + 4)
            )
            # Past the Figure 8 crossover the rounds outgrow the
            # shared round trip; the compiler keeps the cheaper path.
            if shuffle_cycles <= shared_cycles:
                trace.emit(InstructionKind.SHUFFLE, count=plan.total_shuffles)
                return
        trace.emit(InstructionKind.SHARED_STORE, vector_bits=32, count=regs)
        trace.emit(InstructionKind.BARRIER)
        # Inside a full kernel the indices are loaded well before the
        # gather, so the addresses are ready and the loads pipeline
        # (unlike the standalone microbenchmark of Figure 8); only the
        # ~2-way random bank conflicts remain.
        trace.emit(
            InstructionKind.SHARED_LOAD,
            vector_bits=32,
            count=regs,
            wavefronts=2,
        )


def kernel_cycles(instructions: Iterable[Instruction], spec: GpuSpec) -> float:
    """Total cycles of an instruction stream on ``spec``.

    The one-call form of the pricing authority for consumers that
    hold a finished trace (the autotuner, report generators).
    """
    return CostModel(spec).total_cycles(instructions)


def op_cost_model(spec: GpuSpec, mode: str) -> OpCostModel:
    """The op cost model of an engine mode on a platform."""
    return OpCostModel(spec, policy_for_mode(mode))


__all__ = [
    "CostPolicy",
    "LEGACY_POLICY",
    "LINEAR_POLICY",
    "OpCostModel",
    "kernel_cycles",
    "op_cost_model",
    "policy_for_mode",
    "price_plan",
    "price_program",
]
