"""Banked shared memory with wavefront accounting.

Models the geometry every platform in Table 2 shares: 32 banks of 4
bytes, 128-byte transactions.  A warp access is split into 128-byte
transactions (wide vectors span several), and within each transaction
the cost is the worst-case number of distinct words any bank must
serve — same-word broadcast is free on loads, which is how real
hardware behaves and what Lemma 9.4 predicts.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.hardware.spec import GpuSpec


class SharedMemory:
    """Element-addressed shared memory with byte-level bank modeling."""

    def __init__(self, spec: GpuSpec, elem_bytes: int):
        if elem_bytes < 1:
            raise ValueError("elem_bytes must be >= 1")
        self.spec = spec
        self.elem_bytes = elem_bytes
        self._data: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def write(self, offset: int, value: object) -> None:
        """Store a value at an element offset."""
        self._data[offset] = value

    def read(self, offset: int) -> object:
        """Load the value at an element offset; raises if unwritten."""
        if offset not in self._data:
            raise KeyError(f"shared read of unwritten offset {offset}")
        return self._data[offset]

    def __contains__(self, offset: int) -> bool:
        return offset in self._data

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    # Cost plane
    # ------------------------------------------------------------------
    def wavefronts(
        self,
        accesses: Sequence[Tuple[int, int]],
        is_store: bool,
    ) -> int:
        """Wavefronts for one warp-wide access.

        ``accesses`` is a list of ``(element_offset, num_elements)``
        per participating lane.  The access is split into 128-byte
        transactions; each transaction costs the maximum number of
        distinct 4-byte words per bank.
        """
        if not accesses:
            return 0
        spec = self.spec
        row = spec.bank_row_bytes
        # Split each lane's byte range into per-transaction chunks.
        per_lane_bytes = max(
            n * self.elem_bytes for _, n in accesses
        )
        txns = max(1, (per_lane_bytes + row - 1) // row) if per_lane_bytes > row else 1
        # When one lane's vector exceeds a transaction, hardware splits
        # it; each sub-transaction sweeps distinct words, which the
        # per-bank distinct-word count below captures if we process the
        # whole range at once — so we just count distinct words/bank.
        del txns
        total = 0
        words_by_bank: Dict[int, set] = {}
        for offset, count in accesses:
            start = offset * self.elem_bytes
            end = start + count * self.elem_bytes
            word0 = start // spec.bank_bytes
            word1 = (end + spec.bank_bytes - 1) // spec.bank_bytes
            for word in range(word0, word1):
                bank = word % spec.num_banks
                words_by_bank.setdefault(bank, set()).add(word)
        del is_store
        total = max(len(words) for words in words_by_bank.values())
        return total
