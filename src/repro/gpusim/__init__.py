"""A simulated GPU: banked shared memory, register files, shuffles.

This is the hardware substitute for the paper's RTX4090/GH200/MI250
testbeds.  It *executes* conversion plans — actually moving values
between simulated register files through simulated shared memory — so
correctness is checked by construction, and it counts instructions,
bank-conflict wavefronts, and cycles so the benchmark harness can
reproduce the paper's speedup shapes.
"""

from repro.gpusim.memory import SharedMemory
from repro.gpusim.opcost import (
    CostPolicy,
    OpCostModel,
    kernel_cycles,
    op_cost_model,
    policy_for_mode,
    price_plan,
    price_program,
)
from repro.gpusim.registers import (
    RegisterFile,
    distributed_data,
    expected_data,
)
from repro.gpusim.trace import Trace
from repro.gpusim.machine import Machine

__all__ = [
    "CostPolicy",
    "Machine",
    "OpCostModel",
    "RegisterFile",
    "SharedMemory",
    "Trace",
    "distributed_data",
    "expected_data",
    "kernel_cycles",
    "op_cost_model",
    "policy_for_mode",
    "price_plan",
    "price_program",
]
